//! Full-system run: one workload through the USIMM-style timing simulator
//! under every mitigation scheme, reporting the paper's two metrics —
//! CMRPO (crosstalk-mitigation refresh power overhead) and ETO (execution
//! time overhead).
//!
//! Run with: `cargo run --release --example full_system [workload] [accesses-per-core]`
//!
//! The optional second argument caps the trace slice per core (default: a
//! quarter epoch) — `tests/examples_smoke.rs` passes a small cap so the
//! whole walkthrough runs in a debug build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catree::{cmrpo_from_stats, AccessStream, SchemeSpec, Simulator, SystemConfig};

fn traces(
    spec: &catree::WorkloadSpec,
    cfg: &SystemConfig,
    budget: u64,
) -> Vec<Box<dyn Iterator<Item = catree::MemAccess> + Send>> {
    (0..cfg.cores)
        .map(|core| {
            Box::new(AccessStream::new(spec, cfg, core, 1, 1234).take(budget as usize))
                as Box<dyn Iterator<Item = catree::MemAccess> + Send>
        })
        .collect()
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "face".into());
    let spec = catree::workloads::by_name(&name).unwrap_or_else(|| {
        panic!(
            "unknown workload {name}; try one of {:?}",
            catree::workloads::all()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
        )
    });
    let cfg = SystemConfig::dual_core_two_channel();
    let t = 32_768;
    // Keep the example snappy: a quarter-epoch slice per core unless the
    // caller asks for a specific cap.
    let budget = match std::env::args().nth(2) {
        Some(cap) => cap
            .parse()
            .unwrap_or_else(|_| panic!("accesses-per-core must be a number, got {cap:?}")),
        None => spec.accesses_per_epoch / cfg.cores as u64 / 4,
    };

    println!(
        "workload {} ({}), {} accesses/core",
        spec.name, spec.suite, budget
    );
    let mut base = Simulator::new(cfg.clone(), SchemeSpec::None);
    let baseline = base.run(traces(&spec, &cfg, budget));
    println!(
        "baseline: {} cycles = {:.2} ms, {} reads / {} writes",
        baseline.cycles,
        baseline.seconds * 1e3,
        baseline.reads,
        baseline.writes
    );
    // The simulator drives a cat_engine::MemorySystem: per-slice
    // engines behind the address decode (one per channel here).
    for (ch, engine) in base.system().engines().iter().enumerate() {
        println!(
            "  channel {ch}: {} activations over {} banks",
            engine.activations_per_bank().iter().sum::<u64>(),
            engine.bank_count()
        );
    }

    println!(
        "\n{:<12} {:>9} {:>12} {:>9} {:>8}",
        "scheme", "refreshes", "victim rows", "CMRPO", "ETO"
    );
    for spec_s in [
        SchemeSpec::pra(0.002),
        SchemeSpec::Sca {
            counters: 64,
            threshold: t,
        },
        SchemeSpec::Sca {
            counters: 128,
            threshold: t,
        },
        SchemeSpec::Prcat {
            counters: 64,
            levels: 11,
            threshold: t,
        },
        SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: t,
        },
    ] {
        // The simulator drives all banks through cat-engine's BankEngine;
        // the hardware profile comes straight from the spec.
        let mut sim = Simulator::new(cfg.clone(), spec_s);
        let report = sim.run(traces(&spec, &cfg, budget));
        let profile = spec_s.profile(cfg.rows_per_bank).expect("scheme attached");
        let cmrpo = cmrpo_from_stats(
            &profile,
            &report.scheme_stats,
            cfg.total_banks(),
            cfg.rows_per_bank,
            report.seconds,
        );
        println!(
            "{:<12} {:>9} {:>12} {:>8.2}% {:>7.3}%",
            spec_s.label(),
            report.scheme_stats.refresh_events,
            report.scheme_stats.refreshed_rows,
            cmrpo.total() * 100.0,
            report.eto(baseline.cycles) * 100.0
        );
    }
}
