//! Visualising the adaptive tree (the paper's Fig. 4): a biased access
//! pattern grows a deep, unbalanced tree around the hot rows, while a
//! uniform pattern converges to the balanced SCA-like shape.
//!
//! Run with: `cargo run --release --example adaptive_tree`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catree::{CatConfig, CatTree, MitigationScheme, RowId};

fn show(title: &str, tree: &CatTree) {
    let shape = tree.shape();
    println!("\n=== {title} ===");
    println!("{}", shape.render());
    println!(
        "leaves: {}   max depth: {}   partition ok: {}",
        shape.leaves().len(),
        shape.max_depth(),
        shape.is_partition(tree.rows()),
    );
}

fn main() -> Result<(), catree::ConfigError> {
    let config = CatConfig::new(1024, 8, 6, 512)?;

    // Fig. 4(a): biased references — 80 % of accesses hammer rows 700-703.
    let mut biased = CatTree::new(config.clone());
    for i in 0..4_000u32 {
        let row = if i % 5 != 0 {
            700 + i % 4
        } else {
            (i * 617) % 1024
        };
        biased.on_activation(RowId(row));
    }
    show("biased references (Fig. 4a): unbalanced tree", &biased);

    // Fig. 4(b): uniform references — counters spread evenly.
    let mut uniform = CatTree::new(config);
    for i in 0..4_000u32 {
        // Rotate across regions so the rate is uniform in time.
        let row = (i % 4) * 256 + (i * 61) % 256;
        uniform.on_activation(RowId(row));
    }
    show("uniform references (Fig. 4b): balanced tree", &uniform);

    let hot_leaf = biased
        .shape()
        .leaves()
        .iter()
        .find(|l| l.range.contains(700))
        .map(|l| l.depth)
        .unwrap();
    println!(
        "\nhot-row leaf depth under bias: {hot_leaf} (uniform max: {})",
        uniform.shape().max_depth()
    );
    println!(
        "\nGraphviz export of the biased tree (pipe into `dot -Tsvg`):\n{}",
        biased.shape().to_dot("biased_cat")
    );
    Ok(())
}
