//! `catd_router` — the fleet front-end (`DESIGN.md §12`): one process
//! fronting N sliced `catd` backends. Clients connect to it exactly as
//! they would to a single `catd` — same wire handshake (the **union**
//! geometry is advertised), same deterministic `(seq, producer)` merge —
//! and the router re-deals the merged stream by global bank to the
//! backend owning each record's slice, over one producer connection per
//! backend. The router owns the fleet's epoch clock: backends run
//! clockless (`catd --slice K/N` with epoch `0`) and receive `EpochCut`
//! frames at every global boundary. The final snapshot is the slice-order
//! merge of every backend's — bit-identical to a single host on the union
//! geometry, which is exactly what `catd_loadgen` verifies in the fleet
//! smoke of `scripts/tier1.sh`.
//!
//! Run with:
//! `cargo run --release --example catd_router -- [listen-addr] [producers] [epoch] <backend-addr>...`
//!
//! Defaults: `127.0.0.1:0` (the bound address is printed for scripts),
//! 1 producer, 50 000 accesses per epoch (`0` = clockless: client
//! `EpochCut`s are forwarded instead). One backend address per slice of
//! the uniform partition — 2 addresses = banks split in half, in address
//! order. The geometry is the paper's dual-core two-channel system; the
//! scheme spec is learned from the backends' handshakes (they must all
//! agree). One session is served, the merged report is printed, and the
//! process exits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::TcpListener;

use catree::engine::router::{serve, RouterOptions};
use catree::{Partition, SystemConfig};

fn parse<T: std::str::FromStr>(what: &str, s: &str) -> T
where
    T::Err: std::fmt::Debug,
{
    s.parse()
        .unwrap_or_else(|e| panic!("{what} ({s:?}): {e:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional = |n: usize| args.get(n).map(String::as_str);
    let listen: String = positional(0).unwrap_or("127.0.0.1:0").to_string();
    let producers: usize = parse("producers", positional(1).unwrap_or("1"));
    let epoch: u64 = parse("epoch", positional(2).unwrap_or("50000"));
    let backends: Vec<String> = args.iter().skip(3).cloned().collect();
    assert!(
        !backends.is_empty(),
        "usage: catd_router [listen-addr] [producers] [epoch] <backend-addr>..."
    );

    let cfg = SystemConfig::dual_core_two_channel();
    let partition = Partition::uniform(&cfg, backends.len() as u32)
        .unwrap_or_else(|e| panic!("{} backends: {e}", backends.len()));

    let listener = TcpListener::bind(&listen).expect("bind listen address");
    // The scrape line for scripts: always the *actual* address (for
    // `…:0`, the kernel-assigned ephemeral port).
    println!(
        "catd_router: listening on {}",
        listener.local_addr().expect("bound address")
    );
    println!(
        "catd_router: fronting {} backend(s) over {} banks, {} producer(s), epoch {}",
        backends.len(),
        cfg.total_banks(),
        producers,
        if epoch > 0 {
            epoch.to_string()
        } else {
            "client-driven".into()
        }
    );

    let options = RouterOptions {
        producers,
        epoch_len: (epoch > 0).then_some(epoch),
        ..Default::default()
    };
    let report =
        serve(&listener, &partition, &backends, &options).expect("fleet ingestion session failed");

    println!(
        "catd_router: session done — {} accesses, {} epochs, {} refreshes over {} rows, \
         {} stats snapshot(s) served",
        report.snapshot.accesses,
        report.snapshot.epochs,
        report.snapshot.stats.refresh_events,
        report.snapshot.stats.refreshed_rows,
        report.stats_served
    );
    for (slice, snap) in partition.slices().iter().zip(&report.per_backend) {
        println!(
            "catd_router:   backend [{slice}]: {} accesses, {} of {} banks materialized",
            snap.accesses, snap.materialized_banks, snap.banks
        );
    }
    println!(
        "catd_router: fleet footprint — {} of {} banks materialized, {} scheme bytes resident",
        report.snapshot.materialized_banks, report.snapshot.banks, report.snapshot.scheme_bytes
    );
}
