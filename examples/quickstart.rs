//! Quickstart: protect one DRAM bank with DRCAT and watch it catch a
//! hammered row.
//!
//! Run with: `cargo run --release --example quickstart`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catree::{CatConfig, Drcat, MitigationScheme, RowId};

fn main() -> Result<(), catree::ConfigError> {
    // The paper's default per-bank configuration: 64K rows, M = 64
    // counters, trees up to L = 11 levels, refresh threshold T = 32K.
    let config = CatConfig::new(65_536, 64, 11, 32_768)?;
    println!(
        "split thresholds per level: {:?}",
        config.split_thresholds().as_slice()
    );

    let mut scheme = Drcat::new(config);

    // An aggressor hammers row 31_337 while background traffic touches the
    // rest of the bank.
    let aggressor = RowId(31_337);
    let mut victim_refreshes = 0u64;
    for i in 0..200_000u32 {
        let row = if i % 4 != 0 {
            aggressor
        } else {
            RowId(i.wrapping_mul(2_654_435_761).wrapping_mul(7) % 65_536)
        };
        for range in scheme.on_activation(row) {
            println!(
                "refresh #{:<3} rows {}..={} ({} rows) after {} activations",
                scheme.stats().refresh_events,
                range.lo(),
                range.hi(),
                range.len(),
                i + 1
            );
            victim_refreshes += range.len();
        }
    }

    let stats = scheme.stats();
    println!("\n--- DRCAT_64 after 200K activations ---");
    println!("refresh events:      {}", stats.refresh_events);
    println!("victim rows:         {victim_refreshes}");
    println!("tree splits:         {}", stats.splits);
    println!("reconfigurations:    {}", stats.reconfigurations);
    println!(
        "SRAM accesses/act.:  {:.2}",
        stats.sram_accesses_per_activation()
    );
    println!(
        "deepest leaf:        level {} of max {}",
        scheme.tree().shape().max_depth(),
        scheme.tree().config().max_levels() - 1
    );
    assert!(stats.refresh_events > 0, "the hammered row must be caught");
    Ok(())
}
