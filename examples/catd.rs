//! `catd` — the CAT mitigation engine as a network service: a TCP server
//! that accepts N producer connections speaking the `cat-engine` wire
//! format, streams their activation records through per-producer
//! lock-free SPSC lanes and the deterministic `(seq, producer)` merge
//! into one `MemorySystem`, applies backpressure when a connection's
//! ring lane fills (ring-full blocks the producer, never the merge), and
//! answers stats-snapshot requests once ingestion completes
//! (`DESIGN.md §8`).
//!
//! Run with:
//! `cargo run --release --example catd -- [listen-addr] [spec] [producers] [epoch] [shards]`
//!
//! Defaults: `127.0.0.1:0` (ephemeral port — the bound address is printed,
//! so scripts can scrape it), `drcat:64:11:32768`, 1 producer, 50 000
//! accesses per epoch (`0` disables epoch accounting), 1 shard. The
//! geometry is the paper's dual-core two-channel system. One session is
//! served, the report is printed, and the process exits — `scripts/
//! tier1.sh` runs exactly this against the `catd_loadgen` example over
//! loopback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::TcpListener;

use catree::engine::ingest::{serve, ServeOptions};
use catree::{MemorySystem, SchemeSpec, SystemConfig};

fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    match std::env::args().nth(n) {
        Some(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("argument {n} ({s:?}): {e:?}")),
        None => default,
    }
}

fn main() {
    let listen: String = arg_or(1, "127.0.0.1:0".to_string());
    let spec: SchemeSpec = arg_or(2, "drcat:64:11:32768".parse().unwrap());
    let producers: usize = arg_or(3, 1);
    let epoch: u64 = arg_or(4, 50_000);
    let shards: usize = arg_or(5, 1);

    let cfg = SystemConfig::dual_core_two_channel();
    let mut system = MemorySystem::new(&cfg, spec).with_shards(shards);
    if epoch > 0 {
        system = system.with_epoch_length(epoch);
    }

    let listener = TcpListener::bind(&listen).expect("bind listen address");
    // The scrape line for scripts: always the *actual* address (for
    // `…:0`, the kernel-assigned ephemeral port).
    println!(
        "catd: listening on {}",
        listener.local_addr().expect("bound address")
    );
    println!(
        "catd: serving {spec} over {} banks, {} producer(s), {} shard(s), epoch {}",
        cfg.total_banks(),
        producers,
        shards,
        if epoch > 0 {
            epoch.to_string()
        } else {
            "off".into()
        }
    );

    let report = serve(
        &listener,
        &mut system,
        &ServeOptions {
            producers,
            ..Default::default()
        },
    )
    .expect("ingestion session failed");

    println!(
        "catd: session done — {} accesses, {} epochs, {} refreshes over {} rows, \
         {} stats snapshot(s) served",
        report.outcome.accesses,
        report.outcome.epochs,
        report.snapshot.stats.refresh_events,
        report.snapshot.stats.refreshed_rows,
        report.stats_served
    );
    for (ch, engine) in system.channel_engines().iter().enumerate() {
        println!(
            "catd:   channel {ch}: {} activations over {} banks",
            engine.activations_per_bank().iter().sum::<u64>(),
            engine.bank_count()
        );
    }
    let fp = system.footprint();
    println!(
        "catd: footprint — {} of {} banks materialized, {} scheme bytes + {} accounting \
         bytes resident",
        fp.materialized_banks, fp.banks, fp.scheme_bytes, fp.accounting_bytes
    );
}
