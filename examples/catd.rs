//! `catd` — the CAT mitigation engine as a network service: a TCP server
//! that accepts N producer connections speaking the `cat-engine` wire
//! format, streams their activation records through per-producer
//! lock-free SPSC lanes and the deterministic `(seq, producer)` merge
//! into one `MemorySystem`, applies backpressure when a connection's
//! ring lane fills (ring-full blocks the producer, never the merge), and
//! answers stats-snapshot requests once ingestion completes
//! (`DESIGN.md §8`).
//!
//! Run with:
//! `cargo run --release --example catd -- [listen-addr] [spec] [producers] [epoch] [shards]`
//!
//! Defaults: `127.0.0.1:0` (ephemeral port — the bound address is printed,
//! so scripts can scrape it), `drcat:64:11:32768`, 1 producer, 50 000
//! accesses per epoch (`0` disables epoch accounting), 1 shard. The
//! geometry is the paper's dual-core two-channel system. One session is
//! served, the report is printed, and the process exits — `scripts/
//! tier1.sh` runs exactly this against the `catd_loadgen` example over
//! loopback.
//!
//! Checkpointing flags (`DESIGN.md §11`, mixable with the positionals):
//!
//! - `--checkpoint-dir <dir>` — log every merged batch to `<dir>` before
//!   processing and publish a checkpoint image at epoch cuts; a killed
//!   session becomes resumable.
//! - `--checkpoint-epochs <n>` — publish a periodic image every `n`
//!   epochs instead of every one (clients can still request one with the
//!   `Checkpoint` frame).
//! - `--resume` — before serving, recover state from `--checkpoint-dir`
//!   (image + trace-log tail). The session configuration must match the
//!   one checkpointed; prints `catd: resumed N accesses` for scripts.
//!
//! Fleet flag (`DESIGN.md §12`):
//!
//! - `--slice K/N` — serve only slice `K` of the geometry split into `N`
//!   uniform slices (`N` a power of two). The slice is advertised in the
//!   wire handshake and out-of-slice records are refused. A sliced
//!   backend runs **clockless**: the epoch positional must be `0`, and
//!   epoch boundaries arrive as `EpochCut` frames from the router that
//!   owns the fleet clock (`catd_router`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::TcpListener;
use std::path::PathBuf;

use catree::engine::checkpoint::{resume_from_dir, CheckpointConfig};
use catree::engine::ingest::{serve, ServeOptions};
use catree::{MemorySystem, Partition, SchemeSpec, SystemConfig};

fn parse<T: std::str::FromStr>(what: &str, s: &str) -> T
where
    T::Err: std::fmt::Debug,
{
    s.parse()
        .unwrap_or_else(|e| panic!("{what} ({s:?}): {e:?}"))
}

fn main() {
    // Split `--flag`s out of the argument list; what remains are the
    // positionals, in their documented order.
    let mut positionals: Vec<String> = Vec::new();
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_epochs: u64 = 1;
    let mut resume = false;
    let mut slice: Option<(u32, u32)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--checkpoint-dir" => {
                let dir = args.next().expect("--checkpoint-dir needs a directory");
                checkpoint_dir = Some(PathBuf::from(dir));
            }
            "--checkpoint-epochs" => {
                let n = args.next().expect("--checkpoint-epochs needs a count");
                checkpoint_epochs = parse("--checkpoint-epochs", &n);
                assert!(checkpoint_epochs >= 1, "--checkpoint-epochs must be >= 1");
            }
            "--resume" => resume = true,
            "--slice" => {
                let kn = args.next().expect("--slice needs K/N");
                let (k, n) = kn.split_once('/').expect("--slice takes K/N, e.g. 0/2");
                slice = Some((parse("--slice K", k), parse("--slice N", n)));
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            _ => positionals.push(arg),
        }
    }
    let positional = |n: usize| positionals.get(n).map(String::as_str);
    let listen: String = positional(0).unwrap_or("127.0.0.1:0").to_string();
    let spec: SchemeSpec = parse("spec", positional(1).unwrap_or("drcat:64:11:32768"));
    let producers: usize = parse("producers", positional(2).unwrap_or("1"));
    let epoch: u64 = parse("epoch", positional(3).unwrap_or("50000"));
    let shards: usize = parse("shards", positional(4).unwrap_or("1"));
    if resume && checkpoint_dir.is_none() {
        panic!("--resume needs --checkpoint-dir");
    }

    let cfg = SystemConfig::dual_core_two_channel();
    let mut system = match slice {
        Some((k, n)) => {
            // A fleet member never runs its own epoch clock: the router
            // owns the clock and streams `EpochCut` frames instead.
            assert!(
                epoch == 0,
                "--slice backends are clockless: pass epoch 0 (the router fires the cuts)"
            );
            let partition = Partition::uniform(&cfg, n).expect("--slice N must split the banks");
            let owned = *partition
                .slices()
                .get(k as usize)
                .unwrap_or_else(|| panic!("--slice {k}/{n}: K must be < N"));
            MemorySystem::for_slice(&owned, spec).with_shards(shards)
        }
        None => MemorySystem::new(&cfg, spec).with_shards(shards),
    };
    if epoch > 0 {
        system = system.with_epoch_length(epoch);
    }
    if resume {
        let dir = checkpoint_dir.as_ref().expect("checked above");
        let state = resume_from_dir(&mut system, dir).expect("recover from checkpoint directory");
        // The scrape line for resume scripts: how far the recovered state
        // reaches into the access stream.
        println!(
            "catd: resumed {} accesses ({} epochs; image: {}, {} records replayed)",
            state.accesses,
            state.epochs,
            if state.from_checkpoint { "yes" } else { "no" },
            state.replayed
        );
    }

    let listener = TcpListener::bind(&listen).expect("bind listen address");
    // The scrape line for scripts: always the *actual* address (for
    // `…:0`, the kernel-assigned ephemeral port).
    println!(
        "catd: listening on {}",
        listener.local_addr().expect("bound address")
    );
    println!(
        "catd: serving {spec} over {}, {} producer(s), {} shard(s), epoch {}",
        system.slice(),
        producers,
        shards,
        if epoch > 0 {
            epoch.to_string()
        } else if slice.is_some() {
            "router-driven".into()
        } else {
            "off".into()
        }
    );

    let checkpoint = checkpoint_dir.map(|dir| CheckpointConfig {
        dir,
        every_epochs: checkpoint_epochs,
    });
    let report = serve(
        &listener,
        &mut system,
        &ServeOptions {
            producers,
            checkpoint,
            ..Default::default()
        },
    )
    .expect("ingestion session failed");

    println!(
        "catd: session done — {} accesses, {} epochs, {} refreshes over {} rows, \
         {} stats snapshot(s) served",
        report.outcome.accesses,
        report.outcome.epochs,
        report.snapshot.stats.refresh_events,
        report.snapshot.stats.refreshed_rows,
        report.stats_served
    );
    for (owned, engine) in system.engine_slices().iter().zip(system.engines()) {
        println!(
            "catd:   engine [{owned}]: {} activations over {} banks",
            engine.activations_per_bank().iter().sum::<u64>(),
            engine.bank_count()
        );
    }
    let fp = system.footprint();
    println!(
        "catd: footprint — {} of {} banks materialized, {} scheme bytes + {} accounting \
         bytes resident",
        fp.materialized_banks, fp.banks, fp.scheme_bytes, fp.accounting_bytes
    );
}
