//! `sparse_smoke` — the huge-geometry memory-ceiling smoke for the sparse
//! bank storage (`DESIGN.md §10`).
//!
//! Builds a 1Mi-bank memory system (4 channels × 4 ranks × 65 536 banks),
//! drives ~1% of the banks hot, and verifies that only the touched banks
//! ever materialize a scheme instance — the resident footprint must beat
//! the dense per-bank estimate by at least 10×. `scripts/tier1.sh` and CI
//! run this binary under a `ulimit -v` ceiling far below what eager dense
//! storage would allocate, so a regression to eager materialization fails
//! by running out of address space, not just by tripping the asserts.
//!
//! Run with: `cargo run --release --example sparse_smoke`

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Timing prints only (build time, Macts/s) — every assert is wall-clock-free.
// The same local opt-out the bench harnesses use (DESIGN.md §9).
#![allow(clippy::disallowed_methods)]

// cat-lint: allow(wall-clock) -- smoke prints build time and throughput; every assert is wall-clock-free
use std::time::Instant;

use catree::{MemGeometry, MemorySystem, SchemeSpec};

fn main() {
    let geometry = MemGeometry {
        channels: 4,
        ranks_per_channel: 4,
        banks_per_rank: 65_536,
        rows_per_bank: 4096,
        lines_per_row: 16,
        line_bytes: 64,
    };
    let total_banks = geometry.total_banks();
    assert_eq!(total_banks, 1 << 20);
    // A low threshold: with ~1% of 1Mi banks hot, each bank only sees a
    // few hundred of the 3M accesses — the smoke must still prove the
    // refresh path fires through lazily-built instances.
    let spec: SchemeSpec = "drcat:64:11:32".parse().expect("valid spec");

    // cat-lint: allow(wall-clock) -- timing print only, not an input to the datapath
    let built = Instant::now();
    let mut system = MemorySystem::new(geometry, spec).with_epoch_length(1_000_000);
    println!(
        "sparse_smoke: built {total_banks}-bank system in {:.3} ms",
        built.elapsed().as_secs_f64() * 1e3
    );

    // ~1% of the banks hot: every 97th global bank.
    let hot: Vec<u32> = (0..total_banks).step_by(97).collect();
    let accesses = 3_000_000usize;
    let batch: Vec<(u32, u32)> = (0..accesses)
        .map(|i| {
            let bank = hot[i % hot.len()];
            let row = if !i.is_multiple_of(4) {
                7
            } else {
                (i.wrapping_mul(2_654_435_761) % 4096) as u32
            };
            (bank, row)
        })
        .collect();
    // cat-lint: allow(wall-clock) -- timing print only, not an input to the datapath
    let run = Instant::now();
    let out = system.process(&batch);
    let secs = run.elapsed().as_secs_f64();

    let fp = system.footprint();
    assert_eq!(fp.banks, total_banks as usize);
    assert_eq!(
        fp.materialized_banks,
        hot.len(),
        "exactly the hot banks must materialize"
    );
    assert!(
        out.refresh_events > 0,
        "hammered rows must fire through the sparse storage"
    );
    let per_bank = fp.scheme_bytes / fp.materialized_banks;
    let dense_estimate = per_bank * fp.banks;
    assert!(
        fp.resident_bytes() * 10 <= dense_estimate,
        "resident {} bytes vs dense estimate {}: under the 10x win",
        fp.resident_bytes(),
        dense_estimate
    );
    println!(
        "sparse_smoke: {} hot banks ({:.2}%), {accesses} accesses at {:.1} Macts/s",
        hot.len(),
        100.0 * hot.len() as f64 / total_banks as f64,
        accesses as f64 / secs / 1e6
    );
    println!(
        "sparse_smoke: resident {} bytes ({per_bank} per hot bank) vs dense estimate {} — {:.0}x win",
        fp.resident_bytes(),
        dense_estimate,
        dense_estimate as f64 / fp.resident_bytes() as f64
    );
    println!("sparse_smoke: OK");
}
