//! Rowhammer attack vs. defences:
//!
//! 1. A kernel attack (§VIII-D) hammers 4 Gaussian-placed rows per bank;
//!    DRCAT — driven across every bank by the multi-bank `BankEngine` —
//!    confines it: the safety oracle confirms no victim exposure on the
//!    most-hammered bank ever exceeds the refresh threshold.
//! 2. PRA backed by a cheap LFSR collapses: a state-recovery attacker
//!    (§III-A's Monte-Carlo observation) learns the PRNG state from the
//!    refresh timing side channel and then evades every refresh.
//!
//! Run with: `cargo run --release --example attack_defense [attack-accesses] [lfsr-accesses-per-interval]`
//!
//! Both arguments shrink the default run (3 M hammering accesses, 1 M
//! accesses per observed refresh interval) — `tests/examples_smoke.rs`
//! passes small values so the walkthrough runs in a debug build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catree::engine::MemorySystem;
use catree::oracle::SafetyOracle;
use catree::reliability::lfsr_attack;
use catree::{AttackMode, KernelAttack, RowId, SchemeSpec, SystemConfig};

fn arg_or(n: usize, default: u64) -> u64 {
    match std::env::args().nth(n) {
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("argument {n} must be a number, got {raw:?}")),
        None => default,
    }
}

fn main() {
    let cfg = SystemConfig::dual_core_two_channel();
    let threshold = 16_384;
    let attack_accesses = arg_or(1, 3_000_000) as usize;
    let lfsr_budget = arg_or(2, 1_000_000);

    // --- Part 1: deterministic defence under a heavy kernel attack. ---
    println!("== kernel attack vs DRCAT_64 (T = 16K) ==");
    let benign = catree::workloads::by_name("com1").unwrap();
    let attack = KernelAttack::new(4, &cfg);
    // The memory system decodes every address and routes it to the DRCAT
    // instance of its bank; the safety oracle shadows the most-hammered
    // bank.
    let spec: SchemeSpec = format!("drcat:64:11:{threshold}")
        .parse()
        .expect("valid spec");
    let mut system = MemorySystem::new(&cfg, spec);
    let watched_bank = 0u32;
    let mut oracle = SafetyOracle::new(cfg.rows_per_bank, threshold);
    for access in attack
        .stream(&benign, &cfg, AttackMode::Heavy, 0, 1, 99)
        .take(attack_accesses)
    {
        let (bank, row) = system.decode(access.addr);
        let refreshes = system.activate_global(bank, row);
        if bank == watched_bank {
            oracle.on_activation(RowId(row), &refreshes);
        }
    }
    let bank_stats = system.per_bank_stats()[watched_bank as usize];
    println!(
        "bank {watched_bank}: {} of {} activations",
        bank_stats.activations,
        system.accesses()
    );
    println!("refresh events:   {}", bank_stats.refresh_events);
    println!("victim rows:      {}", bank_stats.refreshed_rows);
    println!(
        "all banks:        {} refresh events",
        system.stats().refresh_events
    );
    println!(
        "worst exposure:   {} (threshold {threshold})",
        oracle.worst_exposure()
    );
    println!("violations:       {}", oracle.violations());
    assert_eq!(oracle.violations(), 0, "DRCAT must confine the attack");

    // --- Part 2: LFSR-based PRA falls to state recovery. ---
    println!("\n== state-recovery attack vs LFSR-based PRA (T = 16K, p = 0.005) ==");
    for observe in [1.0, 0.01, 0.0001] {
        let out = lfsr_attack(0.005, 9, threshold, observe, lfsr_budget, 400, 2024);
        match (out.recovery_accesses, out.failure_interval) {
            (Some(rec), Some(interval)) => println!(
                "observe {observe:>7}: state recovered after {rec} accesses → victim lost in interval {interval} (evasion clean: {})",
                out.evasion_clean
            ),
            _ => println!("observe {observe:>7}: not recovered within budget"),
        }
    }
    println!(
        "\nideal-PRNG failure probability per window (Eq. 1 factor): 10^{:.1}",
        f64::from(threshold) * (1.0 - 0.005f64).log10()
    );
    println!("the LFSR attack replaces that exponent with a small constant number of intervals.");
}
