//! Rowhammer attack vs. defences:
//!
//! 1. A kernel attack (§VIII-D) hammers 4 Gaussian-placed rows per bank;
//!    DRCAT confines it — the safety oracle confirms no victim exposure
//!    ever exceeds the refresh threshold.
//! 2. PRA backed by a cheap LFSR collapses: a state-recovery attacker
//!    (§III-A's Monte-Carlo observation) learns the PRNG state from the
//!    refresh timing side channel and then evades every refresh.
//!
//! Run with: `cargo run --release --example attack_defense`

use catree::oracle::SafetyOracle;
use catree::reliability::lfsr_attack;
use catree::{
    AddressMapping, AttackMode, CatConfig, Drcat, KernelAttack, MitigationScheme, RowId,
    SystemConfig,
};

fn main() -> Result<(), catree::ConfigError> {
    let cfg = SystemConfig::dual_core_two_channel();
    let mapping = AddressMapping::new(&cfg);
    let threshold = 16_384;

    // --- Part 1: deterministic defence under a heavy kernel attack. ---
    println!("== kernel attack vs DRCAT_64 (T = 16K) ==");
    let benign = catree::workloads::by_name("com1").unwrap();
    let attack = KernelAttack::new(4, &cfg);
    // One DRCAT instance + oracle for the most-hammered bank.
    let watched_bank = 0u32;
    let mut scheme = Drcat::new(CatConfig::new(cfg.rows_per_bank, 64, 11, threshold)?);
    let mut oracle = SafetyOracle::new(cfg.rows_per_bank, threshold);
    let mut bank_hits = 0u64;
    for access in attack.stream(&benign, &cfg, AttackMode::Heavy, 0, 1, 99).take(3_000_000) {
        let loc = mapping.decode(access.addr);
        if loc.global_bank(&cfg) == watched_bank {
            bank_hits += 1;
            let refreshes = scheme.on_activation(RowId(loc.row));
            oracle.on_activation(RowId(loc.row), &refreshes);
        }
    }
    println!("bank {watched_bank}: {bank_hits} activations");
    println!("refresh events:   {}", scheme.stats().refresh_events);
    println!("victim rows:      {}", scheme.stats().refreshed_rows);
    println!("worst exposure:   {} (threshold {threshold})", oracle.worst_exposure());
    println!("violations:       {}", oracle.violations());
    assert_eq!(oracle.violations(), 0, "DRCAT must confine the attack");

    // --- Part 2: LFSR-based PRA falls to state recovery. ---
    println!("\n== state-recovery attack vs LFSR-based PRA (T = 16K, p = 0.005) ==");
    for observe in [1.0, 0.01, 0.0001] {
        let out = lfsr_attack(0.005, 9, threshold, observe, 1_000_000, 400, 2024);
        match (out.recovery_accesses, out.failure_interval) {
            (Some(rec), Some(interval)) => println!(
                "observe {observe:>7}: state recovered after {rec} accesses → victim lost in interval {interval} (evasion clean: {})",
                out.evasion_clean
            ),
            _ => println!("observe {observe:>7}: not recovered within budget"),
        }
    }
    println!(
        "\nideal-PRNG failure probability per window (Eq. 1 factor): 10^{:.1}",
        f64::from(threshold) * (1.0 - 0.005f64).log10()
    );
    println!("the LFSR attack replaces that exponent with a small constant number of intervals.");
    Ok(())
}
