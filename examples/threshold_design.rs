//! Split-threshold design space (§IV-D, Fig. 6): the cost model that
//! decides when an unbalanced tree beats a balanced one, and the threshold
//! schedules each policy produces.
//!
//! Run with: `cargo run --release --example threshold_design`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catree::thresholds::{cost, SplitThresholds, ThresholdPolicy};

fn main() {
    // --- Fig. 6 / Eqs. 2-4: cost of balanced vs unbalanced 4-counter CAT.
    let n = 65_536.0;
    let w = n / 4.0; // rows per quarter-group
    let r = 655_360.0; // references per interval
    let t = 32_768.0;
    println!(
        "CostSCA = w·R/T = {:.0} refreshed rows/interval",
        cost::cost_sca(w, r, t)
    );
    println!(
        "critical bias x* = 3w = {:.0} extra references\n",
        cost::critical_bias(w)
    );
    println!("{:>10} {:>14} {:>10}", "bias x/w", "CostCAT", "CAT wins?");
    for mult in [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 10.0, 20.0] {
        let c = cost::cost_cat(w, mult * w, r, t);
        println!(
            "{:>10.1} {:>14.0} {:>10}",
            mult,
            c,
            if c < cost::cost_sca(w, r, t) {
                "yes"
            } else {
                "no"
            }
        );
    }

    // --- Threshold schedules for the paper's configuration.
    println!("\nthreshold schedules for M = 64 (λ = 6), T = 32K:");
    for (l, label) in [
        (10u32, "L = 10 (paper example)"),
        (11, "L = 11 (evaluation)"),
    ] {
        println!("  {label}");
        for policy in [
            ThresholdPolicy::PaperCurve,
            ThresholdPolicy::Doubling,
            ThresholdPolicy::Uniform,
        ] {
            let s = SplitThresholds::new(policy, 32_768, 6, l);
            println!("    {:<12} {:?}", policy.to_string(), &s.as_slice()[5..]);
        }
    }
    println!(
        "\nthe PaperCurve row for L = 10 reproduces the published values\n\
         T5..T9 = 5155, 10309, 12886, 16384, 32768 exactly."
    );
}
