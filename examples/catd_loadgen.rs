//! Load generator for the `catd` example: streams a synthetic workload's
//! activation records to a running `catd` server over N producer
//! connections, then verifies the server's final stats snapshot
//! **bit-identically** against a local replay of the same trace — the
//! determinism contract of `DESIGN.md §7`/`§8`, checked end to end over a
//! real socket.
//!
//! Run with:
//! `cargo run --release --example catd_loadgen -- <addr> [workload] [accesses] [producers] [chunk] [skip] [send]`
//!
//! Defaults: workload `swapt`, 200 000 accesses, 2 producer connections,
//! 8 192 records per chunk. The trace is dealt round-robin by contiguous
//! chunk across the connections (chunk `k` → producer `k % P`), which the
//! server's `(seq, producer)` merge inverts — any producer count yields
//! the same merged stream, so the verification passes for every `P`.
//! Each connection reuses one frame buffer across sends
//! (`IngestClient::send` encodes in place), so the steady state
//! allocates nothing per chunk. Exits nonzero on any mismatch, making
//! this the client half of the loopback smoke in `scripts/tier1.sh`
//! (run there at 2 producers × 2 shards and 4 × 4).
//!
//! The `skip`/`send` positionals split the trace across *sessions* for
//! the kill-and-resume smoke (`DESIGN.md §11`): the full `accesses`-long
//! trace is still generated, but only `trace[skip .. skip + send]` is
//! streamed — `skip` records are assumed already inside the server, from
//! a `--resume`d checkpoint of an earlier partial session. The local
//! reference replays `trace[.. skip + send]`, so verification stays
//! bit-exact across the session boundary (the determinism contract makes
//! the session's chunking irrelevant). Defaults: `skip 0`, `send` =
//! everything after `skip`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use catree::engine::ingest::{deal, IngestClient};
use catree::{AccessStream, AddressMapping, MemorySystem, SchemeSpec, SystemConfig};

fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    match std::env::args().nth(n) {
        Some(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("argument {n} ({s:?}): {e:?}")),
        None => default,
    }
}

fn main() {
    let addr: String = std::env::args().nth(1).expect(
        "usage: catd_loadgen <addr> [workload] [accesses] [producers] [chunk] [skip] [send]",
    );
    let workload: String = arg_or(2, "swapt".to_string());
    let accesses: usize = arg_or(3, 200_000);
    let producers: usize = arg_or(4, 2);
    let chunk: usize = arg_or(5, 8_192);
    let skip: usize = arg_or(6, 0);
    let send: usize = arg_or(7, accesses.saturating_sub(skip));
    assert!(
        skip + send <= accesses,
        "skip {skip} + send {send} exceeds the {accesses}-access trace"
    );

    // Producer 0 connects first (with retry — the server of a freshly
    // spawned smoke may not have bound its listener yet) and learns the
    // served configuration from the handshake; everything — trace
    // geometry, the local reference run — follows what the *server*
    // announced, not local assumptions.
    let mut first = IngestClient::connect_with_retry(addr.as_str(), 0, 30)
        .unwrap_or_else(|e| panic!("connect {addr}: {e}"));
    let hello = first.server_hello().clone();
    let cfg = SystemConfig::dual_core_two_channel();
    assert_eq!(
        hello.geometry,
        cfg.geometry(),
        "catd serves a different geometry than this generator produces"
    );
    // The generator streams the whole bank space: a sliced fleet backend
    // (which would refuse most records) is not a valid target — point
    // this at `catd_router` (or an unsliced `catd`) instead.
    assert!(
        hello.slice_start == 0 && hello.slice_banks == cfg.total_banks(),
        "{addr} serves only {} of {} banks (a fleet backend?); aim at the router",
        hello.slice_banks,
        cfg.total_banks()
    );
    // The server's advertised stream position must equal the prefix this
    // invocation assumes was carried over from the checkpointed session.
    assert_eq!(
        hello.accesses, skip as u64,
        "{addr} holds {} accesses, this invocation skips {skip}",
        hello.accesses
    );
    let spec: SchemeSpec = hello
        .spec
        .parse()
        .unwrap_or_else(|e| panic!("server spec {:?}: {e}", hello.spec));
    println!(
        "loadgen: {addr} serves {spec} (epoch {:?}); streaming accesses {skip}..{} of a \
         {accesses}-access {workload} trace over {producers} connection(s), \
         {chunk}-record chunks",
        hello.epoch_len,
        skip + send
    );

    // Generate and decode the trace once (single-core-equivalent stream,
    // same shape the CMRPO benches replay).
    let wspec = catree::workloads::by_name(&workload)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let mut one = cfg.clone();
    one.cores = 1;
    let mapping = AddressMapping::new(&cfg);
    let trace: Vec<(u32, u32)> = AccessStream::new(&wspec, &one, 0, 64, 0xCA7D)
        .take(accesses)
        .map(|a| mapping.decode_bank_row(a.addr))
        .collect();
    assert_eq!(trace.len(), accesses, "workload stream exhausted early");

    // Local reference replay of everything the server will hold after
    // this session — the `skip` prefix (carried over from the earlier,
    // checkpointed session) plus what this session sends. The server must
    // report it bit for bit.
    let mut reference = MemorySystem::new(&cfg, spec);
    if let Some(epoch) = hello.epoch_len {
        reference = reference.with_epoch_length(epoch);
    }
    for &(bank, row) in &trace[..skip + send] {
        reference.push_decoded(bank, row);
    }
    reference.flush();

    // Deal this session's slice and stream it: producer 0 on this thread
    // (its connection already exists), the rest on their own threads.
    let lanes = deal(&trace[skip..skip + send], producers, chunk);
    let snapshots = std::thread::scope(|scope| {
        let mut lanes = lanes.into_iter().enumerate();
        let (_, first_lane) = lanes.next().expect("at least one producer");
        let rest: Vec<_> = lanes
            .map(|(id, lane)| {
                let addr = addr.as_str();
                scope.spawn(move || {
                    let mut client = IngestClient::connect_with_retry(addr, id as u32, 30)
                        .unwrap_or_else(|e| panic!("connect producer {id}: {e}"));
                    for batch in lane {
                        client.send(batch).expect("send records");
                    }
                    client.finish_with_stats().expect("stats snapshot")
                })
            })
            .collect();
        for batch in first_lane {
            first.send(batch).expect("send records");
        }
        let mut snapshots = vec![first.finish_with_stats().expect("stats snapshot")];
        snapshots.extend(rest.into_iter().map(|h| h.join().expect("producer thread")));
        snapshots
    });

    // Every connection saw the same snapshot, and it matches the local
    // replay exactly.
    let server = snapshots[0];
    for (id, snap) in snapshots.iter().enumerate() {
        assert_eq!(*snap, server, "producer {id} saw a different snapshot");
    }
    assert_eq!(
        server.accesses,
        (skip + send) as u64,
        "server lost accesses"
    );
    assert_eq!(server.epochs, reference.epochs(), "epoch count differs");
    if server.stats != reference.stats() {
        eprintln!(
            "loadgen: MISMATCH\n  server:    {:?}\n  reference: {:?}",
            server.stats,
            reference.stats()
        );
        std::process::exit(1);
    }
    // The footprint travels the wire too (summed across a fleet): the
    // server — or the merged fleet — must materialize exactly the banks
    // the reference run does.
    let fp = reference.footprint();
    let fp_expected = (
        fp.banks as u64,
        fp.materialized_banks as u64,
        fp.scheme_bytes as u64,
    );
    let fp_server = (server.banks, server.materialized_banks, server.scheme_bytes);
    if fp_server != fp_expected {
        eprintln!(
            "loadgen: FOOTPRINT MISMATCH (banks, materialized, scheme bytes)\n  \
             server:    {fp_server:?}\n  reference: {fp_expected:?}"
        );
        std::process::exit(1);
    }
    println!(
        "loadgen: verified bit-identical — {} accesses, {} epochs, {} refreshes over {} rows",
        server.accesses, server.epochs, server.stats.refresh_events, server.stats.refreshed_rows
    );
}
