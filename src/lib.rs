//! # catree — Counter-based Adaptive Trees for DRAM crosstalk mitigation
//!
//! A from-scratch Rust reproduction of *"Mitigating Wordline Crosstalk
//! using Adaptive Trees of Counters"* (Seyedzadeh, Jones, Melhem — ISCA
//! 2018): the CAT/PRCAT/DRCAT mitigation schemes, the baselines they are
//! evaluated against (PRA, SCA, per-row counter caches), and the full
//! evaluation substrate — a USIMM-style DDR3 memory-system simulator,
//! synthetic MSC-like workloads and kernel attacks, the Table-II hardware
//! energy/area model with CMRPO accounting, and the Eq.-1 reliability
//! analytics.
//!
//! This crate is a facade: it re-exports the workspace members so an
//! application can depend on `catree` alone.
//!
//! ```
//! use catree::{AccessStream, SchemeSpec, Simulator, SystemConfig};
//!
//! // Protect the paper's dual-core system with DRCAT_64 and measure one
//! // (abbreviated) workload slice.
//! let cfg = SystemConfig::dual_core_two_channel();
//! let spec = catree::workloads::by_name("black").unwrap();
//! let traces: Vec<Box<dyn Iterator<Item = catree::MemAccess> + Send>> = (0..cfg.cores)
//!     .map(|core| {
//!         Box::new(AccessStream::new(&spec, &cfg, core, 1, 7).take(20_000))
//!             as Box<dyn Iterator<Item = catree::MemAccess> + Send>
//!     })
//!     .collect();
//! let mut sim = Simulator::new(
//!     cfg,
//!     SchemeSpec::Drcat { counters: 64, levels: 11, threshold: 32_768 },
//! );
//! let report = sim.run(traces);
//! assert_eq!(report.activations(), 40_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seeded pseudo-random number generation: the workspace's zero-dependency
/// replacement for the `rand` crate (the build must work offline), exposing
/// `Rng`/`SeedableRng` traits and the `rngs::{SmallRng, StdRng}` generators.
pub use cat_prng as prng;

pub use cat_core::{
    oracle, rng, thresholds, tree, CatConfig, CatTree, ConfigError, CounterCache,
    CounterCacheConfig, Drcat, HardwareProfile, MitigationScheme, ParseSpecError, Pra, Prcat,
    Refreshes, RowId, RowRange, Sca, SchemeInstance, SchemeKind, SchemeStats, SpaceSaving,
    SplitThresholds, ThresholdPolicy,
};
pub use cat_energy::{cmrpo_from_stats, CmrpoBreakdown};
pub use cat_engine::{
    AddressMapping, BankEngine, BatchOutcome, EngineFootprint, EngineReport, GeometryError,
    GeometrySlice, Location, MemGeometry, MemorySystem, Partition, PartitionError, SliceError,
};
pub use cat_sim::{
    functional, tracefile, MappingPolicy, MemAccess, SchemeSpec, SimReport, Simulator,
    SystemConfig, SystemConfigError, TimingParams,
};
pub use cat_workloads::{
    AccessStream, AttackMode, Cluster, KernelAttack, Mix, RowHistogram, Suite, WorkloadSpec,
    ZipfMix,
};

/// Sharded, statically-dispatched multi-bank engine driving the mitigation
/// schemes, plus the `MemorySystem` decode front-end and the socket/queue
/// ingestion layer (`engine::ingest` — the deterministic multi-producer
/// merge behind the `catd` server — and `engine::wire`, its binary wire
/// format; see `cat-engine` for the determinism contract).
pub use cat_engine as engine;

/// Hardware energy/area model (paper Table II) and CMRPO accounting.
pub mod energy {
    pub use cat_energy::{cmrpo, prng, refresh, sram, table2};
}

/// PRA survivability analytics (Eq. 1) and LFSR Monte-Carlo studies.
pub mod reliability {
    pub use cat_reliability::{
        analytic, chipkill_log10, ideal_window_failures, lfsr_attack, log10_unsurvivability,
        montecarlo, unsurvivability, LfsrAttackOutcome, CHIPKILL,
    };
}

/// Workload catalog and generators.
pub mod workloads {
    pub use cat_workloads::catalog::{all, by_name, sweep_subset};
    pub use cat_workloads::{AccessStream, AttackMode, KernelAttack, RowHistogram, WorkloadSpec};
}
