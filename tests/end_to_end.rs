//! Cross-crate integration tests: workload generation → address mapping →
//! timing simulation → mitigation schemes → energy model, plus the
//! paper-level qualitative claims the reproduction must uphold.

use catree::{
    cmrpo_from_stats, AccessStream, AttackMode, KernelAttack, MemAccess, SchemeSpec, Simulator,
    SystemConfig,
};

fn traces(
    spec: &catree::WorkloadSpec,
    cfg: &SystemConfig,
    budget: usize,
    seed: u64,
) -> Vec<Box<dyn Iterator<Item = MemAccess> + Send>> {
    (0..cfg.cores)
        .map(|core| {
            Box::new(AccessStream::new(spec, cfg, core, 8, seed).take(budget))
                as Box<dyn Iterator<Item = MemAccess> + Send>
        })
        .collect()
}

#[test]
fn timed_pipeline_runs_all_schemes() {
    let cfg = SystemConfig::dual_core_two_channel();
    let w = catree::workloads::by_name("ferret").unwrap();
    let budget = 60_000;
    let mut baseline = Simulator::new(cfg.clone(), SchemeSpec::None);
    let base = baseline.run(traces(&w, &cfg, budget, 3));
    assert_eq!(base.activations(), 2 * budget as u64);

    for spec in [
        SchemeSpec::pra(0.002),
        SchemeSpec::Sca {
            counters: 64,
            threshold: 4_096,
        },
        SchemeSpec::Prcat {
            counters: 64,
            levels: 11,
            threshold: 4_096,
        },
        SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 4_096,
        },
        SchemeSpec::CounterCache {
            entries: 1024,
            ways: 8,
            threshold: 4_096,
        },
    ] {
        let mut sim = Simulator::new(cfg.clone(), spec);
        let r = sim.run(traces(&w, &cfg, budget, 3));
        assert_eq!(r.activations(), base.activations(), "{}", spec.label());
        // T = 4096 is a deliberate stress threshold: even SCA's whole-group
        // refreshes must stay well below a 2× slowdown. The lower bound
        // tolerates FR-FCFS scheduling noise: a rare refresh can perturb the
        // request interleaving enough to finish a handful of cycles early.
        let eto = r.eto(base.cycles);
        assert!(
            (-0.005..0.6).contains(&eto),
            "{}: ETO out of band: {eto}",
            spec.label()
        );
    }
}

#[test]
fn cmrpo_ordering_matches_figure8() {
    // The headline qualitative result at T = 16K on a skewed workload:
    // CAT-family < SCA_128 < SCA_64, and PRA pays its PRNG tax.
    let cfg = SystemConfig::dual_core_two_channel();
    let w = catree::workloads::by_name("mum").unwrap();
    let t = 16_384;
    let total = |spec: SchemeSpec| {
        let mut one = cfg.clone();
        one.cores = 1;
        let stream = AccessStream::new(&w, &one, 0, 2, 5);
        let report = catree::functional::run_functional(&cfg, spec, stream, w.accesses_per_epoch);
        let profile = spec.build(cfg.rows_per_bank, 0).unwrap().hardware();
        cmrpo_from_stats(
            &profile,
            &report.scheme_stats,
            cfg.total_banks(),
            cfg.rows_per_bank,
            0.128,
        )
        .total()
    };
    let sca64 = total(SchemeSpec::Sca {
        counters: 64,
        threshold: t,
    });
    let sca128 = total(SchemeSpec::Sca {
        counters: 128,
        threshold: t,
    });
    let drcat = total(SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: t,
    });
    let pra = total(SchemeSpec::pra(0.003));
    assert!(drcat < sca128, "DRCAT {drcat} < SCA128 {sca128}");
    assert!(sca128 < sca64, "SCA128 {sca128} < SCA64 {sca64}");
    assert!(drcat < pra, "DRCAT {drcat} < PRA {pra}");
}

#[test]
fn halving_threshold_hurts_sca_more_than_drcat() {
    // Fig. 8/10: T 32K → 16K roughly doubles SCA's CMRPO while CAT moves a
    // little.
    let cfg = SystemConfig::dual_core_two_channel();
    let w = catree::workloads::by_name("com3").unwrap();
    let refreshed = |spec: SchemeSpec| {
        let mut one = cfg.clone();
        one.cores = 1;
        let stream = AccessStream::new(&w, &one, 0, 1, 6);
        catree::functional::run_functional(&cfg, spec, stream, w.accesses_per_epoch)
            .scheme_stats
            .refreshed_rows as f64
    };
    let sca_32 = refreshed(SchemeSpec::Sca {
        counters: 64,
        threshold: 32_768,
    });
    let sca_16 = refreshed(SchemeSpec::Sca {
        counters: 64,
        threshold: 16_384,
    });
    let drcat_16 = refreshed(SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 16_384,
    });
    assert!(
        sca_16 > sca_32 * 1.6,
        "SCA refresh rows ~double: {sca_32} → {sca_16}"
    );
    // What Fig. 8 actually shows: at the lower threshold, DRCAT's adaptive
    // groups refresh far fewer rows than SCA's fixed 1024-row groups.
    assert!(
        drcat_16 * 3.0 < sca_16,
        "DRCAT must refresh far fewer rows at T = 16K: {drcat_16} vs {sca_16}"
    );
}

#[test]
fn attack_blend_respects_intensity_and_is_confined() {
    let cfg = SystemConfig::dual_core_two_channel();
    let benign = catree::workloads::by_name("com1").unwrap();
    let kernel = KernelAttack::new(7, &cfg);
    // Heavier attacks produce more mitigation refreshes under DRCAT.
    let rows_for = |mode: AttackMode| {
        let spec = SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 8_192,
        };
        let stream = kernel.stream(&benign, &cfg, mode, 0, 4, 11).take(2_000_000);
        catree::functional::run_functional(&cfg, spec, stream, benign.accesses_per_epoch)
            .scheme_stats
            .refreshed_rows
    };
    let heavy = rows_for(AttackMode::Heavy);
    let light = rows_for(AttackMode::Light);
    assert!(
        heavy > light,
        "heavier hammering must force more refreshes: {heavy} vs {light}"
    );
}

#[test]
fn per_bank_stats_sum_to_aggregate() {
    let cfg = SystemConfig::dual_core_two_channel();
    let w = catree::workloads::by_name("libq").unwrap();
    let mut sim = Simulator::new(
        cfg.clone(),
        SchemeSpec::Sca {
            counters: 32,
            threshold: 2_048,
        },
    );
    let r = sim.run(traces(&w, &cfg, 50_000, 9));
    let summed: u64 = r.per_bank_stats.iter().map(|s| s.refreshed_rows).sum();
    assert_eq!(summed, r.scheme_stats.refreshed_rows);
    let acts: u64 = r.per_bank_stats.iter().map(|s| s.activations).sum();
    assert_eq!(acts, r.activations());
    assert_eq!(r.activations_per_bank.iter().sum::<u64>(), r.activations());
}

#[test]
fn four_channel_spreads_refresh_pressure() {
    // Fig. 11's mechanism: the same traffic over 64 banks instead of 16
    // lowers per-bank counter pressure and thus total refreshed rows.
    let w = catree::workloads::by_name("com4").unwrap();
    let refreshed = |cfg: &SystemConfig| {
        let mut one = cfg.clone();
        one.cores = 1;
        let stream = AccessStream::new(&w, &one, 0, 1, 13);
        catree::functional::run_functional(
            cfg,
            SchemeSpec::Sca {
                counters: 128,
                threshold: 16_384,
            },
            stream,
            w.accesses_per_epoch,
        )
        .scheme_stats
        .refreshed_rows
    };
    let two = refreshed(&SystemConfig::quad_core_two_channel());
    let four = refreshed(&SystemConfig::quad_core_four_channel());
    assert!(
        four < two,
        "4-channel mapping must reduce refreshes: {four} vs {two}"
    );
}

#[test]
fn energy_model_agrees_with_scheme_profiles() {
    // The profile a built scheme reports must be accepted by the energy
    // model for every spec the benches use.
    let specs = [
        SchemeSpec::pra(0.005),
        SchemeSpec::Sca {
            counters: 256,
            threshold: 8_192,
        },
        SchemeSpec::Prcat {
            counters: 128,
            levels: 12,
            threshold: 8_192,
        },
        SchemeSpec::Drcat {
            counters: 32,
            levels: 6,
            threshold: 65_536,
        },
        SchemeSpec::CounterCache {
            entries: 2_048,
            ways: 16,
            threshold: 32_768,
        },
    ];
    let stats = catree::SchemeStats {
        activations: 1_000_000,
        refreshed_rows: 5_000,
        prng_bits: 9_000_000,
        ..Default::default()
    };
    for spec in specs {
        let profile = spec.build(65_536, 0).unwrap().hardware();
        let c = cmrpo_from_stats(&profile, &stats, 16, 65_536, 0.064);
        assert!(
            c.total().is_finite() && c.total() > 0.0,
            "{}: {c}",
            spec.label()
        );
    }
}
