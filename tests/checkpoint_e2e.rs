//! End-to-end kill-and-resume differential at facade scope
//! (`DESIGN.md §11`): a checkpointing loopback `catd` session (the
//! `cat_engine::ingest::serve` loop the `catd` example runs with
//! `--checkpoint-dir`) is fed half a workload trace over two producers
//! and then **killed mid-stream** — the clients drop their connections
//! without `Finish`, so the session ends in an error, exactly like a
//! process kill would end it. A second session recovers from the
//! checkpoint directory (`resume_from_dir`, the `--resume` path: newest
//! image + trace-log tail), ingests the rest of the trace, and must
//! report **bit-identical** `SchemeStats` to a single uninterrupted
//! `run_functional` pass over the whole trace.
//!
//! The in-process checkpoint matrix (every spec × shard count × epoch
//! cut, stats *and* footprint) lives in `crates/engine/tests/
//! checkpoint.rs`; this test pins the remaining gap: durability across
//! real sessions — the write-ahead trace log, the image rotation, and
//! recovery — driven over real sockets through the published facade.

use catree::engine::checkpoint::{resume_from_dir, CheckpointConfig};
use catree::engine::ingest::{deal, serve, IngestClient, ServeOptions};
use catree::functional::run_functional;
use catree::{AccessStream, AddressMapping, MemAccess, MemorySystem, SchemeSpec, SystemConfig};

#[test]
fn killed_session_resumes_bit_identically_to_an_uninterrupted_run() {
    let cfg = SystemConfig::dual_core_two_channel();
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 512,
    };
    let epoch = 25_000u64;
    let accesses = 120_000usize;
    let half = 60_000usize;
    let producers = 2usize;
    let dir = std::env::temp_dir().join(format!("catree-checkpoint-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // One workload trace, materialized once: the uninterrupted reference
    // and both partial sessions replay slices of the same records.
    let mut one = cfg.clone();
    one.cores = 1;
    let trace: Vec<MemAccess> = AccessStream::new(
        &catree::workloads::by_name("swapt").unwrap(),
        &one,
        0,
        64,
        7,
    )
    .take(accesses)
    .collect();
    assert_eq!(trace.len(), accesses);
    let reference = run_functional(&cfg, spec, trace.iter().copied(), epoch);
    assert!(
        reference.scheme_stats.refresh_events > 0,
        "trace too tame, nothing to compare"
    );
    let mapping = AddressMapping::new(&cfg);
    let decoded: Vec<(u32, u32)> = trace
        .iter()
        .map(|a| mapping.decode_bank_row(a.addr))
        .collect();

    let options = || ServeOptions {
        producers,
        checkpoint: Some(CheckpointConfig::new(&dir)),
        ..Default::default()
    };
    let fresh = || {
        MemorySystem::new(&cfg, spec)
            .with_epoch_length(epoch)
            .with_shards(2)
    };

    // Session 1: stream the first half, then die without Finish. Every
    // producer sends its complete `deal` lane first, so the merged prefix
    // that reaches the server is exactly `decoded[..half]` — and every
    // record was logged to the checkpoint directory before processing.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let killed = std::thread::spawn({
        let mut system = fresh();
        let options = options();
        move || serve(&listener, &mut system, &options).map(|r| r.outcome)
    });
    std::thread::scope(|scope| {
        for (id, lane) in deal(&decoded[..half], producers, 7_777)
            .into_iter()
            .enumerate()
        {
            scope.spawn(move || {
                let mut client = IngestClient::connect(addr, id as u32).expect("connect");
                for batch in lane {
                    client.send(batch).expect("send");
                }
                // The kill: drop the connection mid-session. The buffered
                // frames flush on drop, so everything sent above reaches
                // the server — then the reader hits EOF instead of Finish.
                drop(client);
            });
        }
    });
    let err = killed.join().unwrap().unwrap_err();
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::UnexpectedEof,
        "a killed producer must surface as an EOF, got: {err}"
    );

    // Session 2: recover from the directory — the image published at the
    // last epoch cut (50 000) plus the 10 000-record log tail — then
    // stream the second half and collect the final snapshot.
    let mut system = fresh();
    let recovered = resume_from_dir(&mut system, &dir).expect("recover");
    assert!(recovered.from_checkpoint, "no image was published");
    assert_eq!(recovered.accesses, half as u64);
    assert_eq!(recovered.epochs, half as u64 / epoch);
    assert_eq!(recovered.replayed, half as u64 % epoch);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let resumed = std::thread::spawn({
        let options = options();
        move || {
            let report = serve(&listener, &mut system, &options).expect("serve resumed session");
            (report, system.report())
        }
    });
    let snapshots: Vec<_> = std::thread::scope(|scope| {
        deal(&decoded[half..], producers, 7_777)
            .into_iter()
            .enumerate()
            .map(|(id, lane)| {
                scope.spawn(move || {
                    let mut client = IngestClient::connect(addr, id as u32).expect("connect");
                    for batch in lane {
                        client.send(batch).expect("send");
                    }
                    client.finish_with_stats().expect("snapshot")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("producer thread"))
            .collect()
    });
    let (report, system_report) = resumed.join().unwrap();

    // The resumed session's final state must be bit-identical to the
    // uninterrupted single-process run — over the wire and in the system.
    for snap in &snapshots {
        assert_eq!(*snap, report.snapshot, "producers saw different snapshots");
    }
    assert_eq!(report.snapshot.accesses, reference.accesses);
    assert_eq!(report.snapshot.epochs, reference.epochs);
    assert_eq!(report.snapshot.stats, reference.scheme_stats);
    assert_eq!(system_report.per_bank_stats, reference.per_bank_stats);
    assert_eq!(
        system_report.activations_per_bank,
        reference.activations_per_bank
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
