//! End-to-end socket-ingestion differential at facade scope: a loopback
//! `catd` session (the `cat_engine::ingest::serve` loop behind the `catd`
//! example) fed a real workload trace must report **bit-identical**
//! `SchemeStats` to `cat_sim::functional::run_functional` on the same
//! trace — the functional simulator and the network service are the same
//! computation behind different front-ends (`DESIGN.md §7`/`§8`).
//!
//! The engine-level matrix (1/2/4 producers × 1/2/4 shards × flush
//! boundaries, ≥ 1M accesses) lives in `crates/engine/tests/ingest.rs`;
//! this test pins the remaining gap: real addresses through the real
//! address decode and the published `run_functional` entry point.

use catree::engine::ingest::{deal, serve, IngestClient, ServeOptions};
use catree::functional::run_functional;
use catree::{AccessStream, AddressMapping, MemAccess, MemorySystem, SchemeSpec, SystemConfig};

#[test]
fn loopback_catd_matches_run_functional_on_a_workload_trace() {
    let cfg = SystemConfig::dual_core_two_channel();
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 2_048,
    };
    let epoch = 60_000u64;
    let accesses = 250_000usize;

    // One workload trace, materialized once and replayed through both
    // front-ends.
    let mut one = cfg.clone();
    one.cores = 1;
    let trace: Vec<MemAccess> = AccessStream::new(
        &catree::workloads::by_name("swapt").unwrap(),
        &one,
        0,
        64,
        7,
    )
    .take(accesses)
    .collect();
    assert_eq!(trace.len(), accesses);

    let reference = run_functional(&cfg, spec, trace.iter().copied(), epoch);
    assert!(
        reference.scheme_stats.refresh_events > 0,
        "trace too tame, nothing to compare"
    );

    // The same trace through a loopback catd session: 3 producers so the
    // round-robin deal and the (seq, producer) merge are both exercised.
    let mapping = AddressMapping::new(&cfg);
    let decoded: Vec<(u32, u32)> = trace
        .iter()
        .map(|a| mapping.decode_bank_row(a.addr))
        .collect();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let producers = 3usize;
    let server = std::thread::spawn({
        let cfg = cfg.clone();
        move || {
            let mut system = MemorySystem::new(&cfg, spec)
                .with_epoch_length(epoch)
                .with_shards(2);
            let report = serve(
                &listener,
                &mut system,
                &ServeOptions {
                    producers,
                    ..Default::default()
                },
            )
            .expect("serve");
            (report, system.report())
        }
    });
    std::thread::scope(|scope| {
        for (id, lane) in deal(&decoded, producers, 9_999).into_iter().enumerate() {
            scope.spawn(move || {
                let mut client = IngestClient::connect(addr, id as u32).expect("connect");
                for batch in lane {
                    client.send(batch).expect("send");
                }
                client.finish().expect("finish");
            });
        }
    });
    let (report, system_report) = server.join().unwrap();

    assert_eq!(report.snapshot.stats, reference.scheme_stats);
    assert_eq!(report.snapshot.accesses, reference.accesses);
    assert_eq!(report.snapshot.epochs, reference.epochs);
    assert_eq!(system_report.per_bank_stats, reference.per_bank_stats);
    assert_eq!(
        system_report.activations_per_bank,
        reference.activations_per_bank
    );
}
