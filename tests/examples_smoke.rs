//! Workspace smoke test: every `examples/` target must keep compiling, and
//! the examples that exercise the `MemorySystem` datapath (`quickstart`,
//! `full_system`, `attack_defense`) must run to completion with small
//! arguments — this pins the facade's public API surface *and* the example
//! walkthroughs' runtime behaviour (a rename, re-export removal, or
//! datapath panic that breaks the examples fails here, not in a user's
//! checkout).
//!
//! The nested cargo invocation uses its own target directory so it can
//! never contend for the build lock of the outer `cargo test`. It builds
//! from local path dependencies only, so it stays offline-safe.

use std::path::Path;
use std::process::Command;

/// Every example target in `examples/` (kept in sync by the assertion in
/// [`examples_build_and_quickstart_runs`]). The `catd`/`catd_loadgen`
/// pair additionally gets a loopback run (server + client over
/// 127.0.0.1) in `scripts/tier1.sh` and CI, and `catd_router` fronts a
/// two-backend fleet there (the fleet smoke).
const EXAMPLES: [&str; 9] = [
    "adaptive_tree",
    "attack_defense",
    "catd",
    "catd_loadgen",
    "catd_router",
    "full_system",
    "quickstart",
    "sparse_smoke",
    "threshold_design",
];

fn cargo_in_workspace() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    let root = env!("CARGO_MANIFEST_DIR");
    cmd.current_dir(root)
        // A dedicated target dir: no lock contention with the enclosing
        // `cargo test`, at the cost of one extra debug build of the tree.
        .env(
            "CARGO_TARGET_DIR",
            Path::new(root).join("target/smoke-examples"),
        )
        .env("CARGO_NET_OFFLINE", "true");
    cmd
}

#[test]
fn examples_build_and_quickstart_runs() {
    // The list above must cover exactly what is on disk.
    let mut on_disk: Vec<String> =
        std::fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("examples"))
            .expect("examples/ must exist")
            .map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                name.trim_end_matches(".rs").to_string()
            })
            .collect();
    on_disk.sort();
    assert_eq!(on_disk, EXAMPLES, "update EXAMPLES when adding an example");

    let status = cargo_in_workspace()
        .args(["build", "--examples"])
        .status()
        .expect("cargo must spawn");
    assert!(status.success(), "`cargo build --examples` failed");

    // Run every example that drives the MemorySystem datapath, each with
    // arguments small enough for a debug build (the examples' internal
    // asserts — safety-oracle confinement, hammered-row detection — still
    // hold at these sizes).
    let runs: [(&str, &[&str]); 3] = [
        ("quickstart", &[]),
        ("full_system", &["face", "4000"]),
        ("attack_defense", &["120000", "40000"]),
    ];
    for (example, args) in runs {
        let output = cargo_in_workspace()
            .args(["run", "--example", example, "--"])
            .args(args)
            .output()
            .expect("cargo must spawn");
        assert!(
            output.status.success(),
            "{example} {args:?} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            !output.stdout.is_empty(),
            "{example} must print its walkthrough"
        );
    }
}
