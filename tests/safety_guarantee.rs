//! The reproduction's most important property, end to end: under the full
//! system simulation, no deterministic scheme ever lets a row accumulate
//! more than `T` activations while a neighbouring victim goes unrefreshed.
//!
//! These tests replay full workload + attack traffic through per-bank
//! schemes with a [`catree::oracle::SafetyOracle`] shadowing every bank.

use catree::oracle::SafetyOracle;
use catree::{
    AccessStream, AddressMapping, AttackMode, KernelAttack, MitigationScheme, RowId, SchemeSpec,
    SystemConfig,
};

/// Replays `accesses` through per-bank scheme instances with shadow
/// oracles; panics on any exposure violation.
fn verify_system(
    cfg: &SystemConfig,
    spec: SchemeSpec,
    threshold: u32,
    accesses: impl Iterator<Item = catree::MemAccess>,
    epoch_len: u64,
) {
    let mapping = AddressMapping::new(cfg);
    let mut schemes: Vec<Box<dyn MitigationScheme + Send>> = (0..cfg.total_banks())
        .map(|b| spec.build(cfg.rows_per_bank, b).expect("real scheme"))
        .collect();
    let mut oracles: Vec<SafetyOracle> = (0..cfg.total_banks())
        .map(|_| SafetyOracle::new(cfg.rows_per_bank, threshold))
        .collect();
    let mut n = 0u64;
    for a in accesses {
        let loc = mapping.decode(a.addr);
        let b = loc.global_bank(cfg) as usize;
        let refreshes = schemes[b].on_activation(RowId(loc.row));
        oracles[b].on_activation(RowId(loc.row), &refreshes);
        assert_eq!(
            oracles[b].violations(),
            0,
            "{} violated exposure {threshold} in bank {b} at access {n}",
            schemes[b].name()
        );
        n += 1;
        if n.is_multiple_of(epoch_len) {
            for (s, o) in schemes.iter_mut().zip(oracles.iter_mut()) {
                s.on_epoch_end();
                o.on_epoch_end();
            }
        }
    }
    for o in &oracles {
        assert!(o.worst_exposure() <= u64::from(threshold));
    }
}

fn stream(
    name: &str,
    cfg: &SystemConfig,
    n: usize,
    seed: u64,
) -> impl Iterator<Item = catree::MemAccess> {
    let w = catree::workloads::by_name(name).unwrap();
    let mut one = cfg.clone();
    one.cores = 1;
    AccessStream::new(&w, &one, 0, 8, seed).take(n)
}

#[test]
fn drcat_guarantee_under_benign_traffic() {
    let cfg = SystemConfig::dual_core_two_channel();
    let t = 2_048; // small threshold stresses the guarantee harder
    verify_system(
        &cfg,
        SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: t,
        },
        t,
        stream("black", &cfg, 3_000_000, 21),
        1_000_000,
    );
}

#[test]
fn prcat_guarantee_across_epoch_resets() {
    let cfg = SystemConfig::dual_core_two_channel();
    let t = 2_048;
    verify_system(
        &cfg,
        SchemeSpec::Prcat {
            counters: 64,
            levels: 11,
            threshold: t,
        },
        t,
        stream("com2", &cfg, 3_000_000, 22),
        500_000, // several epochs
    );
}

#[test]
fn sca_guarantee_under_attack() {
    let cfg = SystemConfig::dual_core_two_channel();
    let t = 2_048;
    let benign = catree::workloads::by_name("com1").unwrap();
    let kernel = KernelAttack::new(2, &cfg);
    let accesses = kernel
        .stream(&benign, &cfg, AttackMode::Heavy, 0, 8, 23)
        .take(2_000_000);
    verify_system(
        &cfg,
        SchemeSpec::Sca {
            counters: 128,
            threshold: t,
        },
        t,
        accesses,
        1_000_000,
    );
}

#[test]
fn drcat_guarantee_under_attack_with_reconfiguration() {
    let cfg = SystemConfig::dual_core_two_channel();
    let t = 1_024;
    let benign = catree::workloads::by_name("face").unwrap();
    let kernel = KernelAttack::new(9, &cfg);
    let accesses = kernel
        .stream(&benign, &cfg, AttackMode::Medium, 0, 8, 24)
        .take(2_000_000);
    verify_system(
        &cfg,
        SchemeSpec::Drcat {
            counters: 32,
            levels: 10,
            threshold: t,
        },
        t,
        accesses,
        700_000,
    );
}

#[test]
fn counter_cache_guarantee_exact_per_row() {
    let cfg = SystemConfig::dual_core_two_channel();
    let t = 1_024;
    verify_system(
        &cfg,
        SchemeSpec::CounterCache {
            entries: 512,
            ways: 8,
            threshold: t,
        },
        t,
        stream("mum", &cfg, 1_500_000, 25),
        800_000,
    );
}
