//! Fidelity tests pinning the reproduction to the paper's published
//! numbers wherever exact values exist: split thresholds, Table II
//! entries, Eq. 1 crossovers, Figure 5/7 structures and the cost model.

use catree::thresholds::{cost, SplitThresholds, ThresholdPolicy};
use catree::SchemeKind;

#[test]
fn published_split_thresholds_m64_l10() {
    let t = SplitThresholds::new(ThresholdPolicy::PaperCurve, 32_768, 6, 10);
    assert_eq!(
        &t.as_slice()[5..],
        &[5_155, 10_309, 12_886, 16_384, 32_768],
        "§IV-D's quoted thresholds must be reproduced exactly"
    );
}

#[test]
fn published_table2_spot_checks() {
    use catree::energy::table2::{area_mm2, dynamic_nj_per_access, static_nj_per_interval};
    // One row per scheme, exact to the printed precision.
    assert!((dynamic_nj_per_access(SchemeKind::Drcat, 128, 11, 32_768) - 5.83e-4).abs() < 1e-9);
    assert!((static_nj_per_interval(SchemeKind::Prcat, 512, 32_768) - 1.02e5).abs() < 1e-1);
    assert!((area_mm2(SchemeKind::Sca, 32, 32_768) - 1.86e-2).abs() < 1e-6);
}

#[test]
fn figure1_survivability_crossovers() {
    use catree::reliability::{chipkill_log10, log10_unsurvivability};
    // The p the paper selects per threshold is exactly the smallest of its
    // sweep that beats Chipkill (§VIII-C uses these pairs).
    let q0 = [
        (65_536u32, 0.001f64, 10.0f64),
        (32_768, 0.002, 10.0),
        (16_384, 0.003, 20.0),
        (8_192, 0.005, 40.0),
    ];
    let grid = [0.001, 0.002, 0.003, 0.004, 0.005, 0.006];
    for (t, p_pick, q) in q0 {
        let smallest_ok = grid
            .iter()
            .copied()
            .find(|&p| log10_unsurvivability(p, t, q, 5.0) < chipkill_log10())
            .expect("some p must survive");
        assert_eq!(
            smallest_ok, p_pick,
            "T = {t}: paper picks p = {p_pick}, our Eq. 1 says {smallest_ok}"
        );
    }
}

#[test]
fn equation4_crossover() {
    let w = 8_192.0;
    let r = 1.0e6;
    let t = 32_768.0;
    let sca = cost::cost_sca(w, r, t);
    assert!(cost::cost_cat(w, 3.0 * w - 1.0, r, t) > sca);
    assert!(cost::cost_cat(w, 3.0 * w + 1.0, r, t) < sca);
}

#[test]
fn figure5_and_7_structures() {
    use catree::{CatConfig, Drcat, MitigationScheme, RowId};
    let cfg = CatConfig::new(32, 8, 6, 64)
        .unwrap()
        .with_policy(ThresholdPolicy::Doubling)
        .with_lambda(1)
        .unwrap();
    let mut d = Drcat::new(cfg);
    // Figure 5(a) choreography (see cat-core's unit tests for the detailed
    // walk-through).
    for _ in 0..32 {
        d.on_activation(RowId(4));
    }
    for _ in 0..12 {
        d.on_activation(RowId(12));
    }
    assert_eq!(
        d.tree().shape().depth_profile(),
        vec![3, 5, 5, 4, 3, 4, 4, 1]
    );
    // Figure 7: load §V-B's weight state, drive the hot counter to T.
    d.force_weights(&[1, 0, 2, 1, 1, 1, 2, 2]);
    for _ in 0..48 {
        d.on_activation(RowId(12));
    }
    assert_eq!(
        d.tree().shape().depth_profile(),
        vec![3, 4, 4, 3, 5, 5, 4, 1]
    );
    assert_eq!(d.weights(), &[0, 0, 1, 1, 0, 0, 1, 1]);
}

#[test]
fn prng_specification() {
    use catree::energy::prng;
    assert!((prng::ENG_PRNG_9BITS_NJ - 2.625e-2).abs() < 1e-6);
    assert!((prng::AREA_MM2 - 4.004e-3).abs() < 1e-9);
}

#[test]
fn counter_width_is_log2_t() {
    use catree::CatConfig;
    for (t, bits) in [(65_536u32, 16u32), (32_768, 15), (16_384, 14), (8_192, 13)] {
        assert_eq!(
            CatConfig::new(65_536, 64, 11, t).unwrap().counter_bits(),
            bits
        );
    }
}

#[test]
fn sram_access_bound_matches_section7() {
    // §VII-A: dynamic energy accounts for 2 ‥ L − log2(M/4) SRAM accesses.
    use catree::{CatConfig, CatTree, MitigationScheme, RowId};
    let cfg = CatConfig::new(65_536, 64, 11, 4_096).unwrap();
    let mut tree = CatTree::new(cfg);
    for i in 0..2_000_000u32 {
        let row = if i.is_multiple_of(2) {
            4_242
        } else {
            i.wrapping_mul(48_271) % 65_536
        };
        tree.on_activation(RowId(row));
    }
    let per_access = tree.stats().sram_accesses_per_activation();
    // Reads ∈ [1 inode + counter, …]; with writes included the average must
    // sit inside the architectural bound of L − log2(M) + 2 + 1 writes.
    assert!((2.0..=8.0).contains(&per_access), "{per_access}");
}
