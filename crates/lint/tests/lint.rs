//! Fixture-driven rule tests plus the self-check that keeps the live
//! workspace lint-clean.
//!
//! Each rule gets one deliberately-bad fragment (exact rule-id/line
//! assertions — the diagnostics are part of the tool's contract) and one
//! good fragment that exercises the rule's escape hatches: test-region
//! masking, path scoping, and the `cat-lint: allow` directive. The
//! fragments live under `tests/fixtures/`, which [`cat_lint::lint_workspace`]
//! deliberately skips so the bad ones never fail the self-check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;

use cat_lint::{lint_source, lint_workspace, Violation, BAD_ALLOW};

/// The `(line, rule)` skeleton of a diagnostic list.
fn skeleton(violations: &[Violation]) -> Vec<(usize, &'static str)> {
    violations.iter().map(|v| (v.line, v.rule)).collect()
}

// --- hash-order -----------------------------------------------------------

#[test]
fn hash_order_bad_fragment_is_rejected() {
    let src = include_str!("fixtures/hash_order_bad.rs");
    let v = lint_source("crates/engine/src/fixture.rs", src);
    assert_eq!(
        skeleton(&v),
        vec![
            (3, "hash-order"),  // use std::collections::HashMap;
            (6, "hash-order"),  // -> HashMap<u32, u32>
            (7, "hash-order"),  // HashMap::new()
            (11, "hash-order"), // -> RandomState
            (12, "hash-order"), // RandomState::new()
        ],
        "diagnostics: {v:#?}"
    );
}

#[test]
fn hash_order_good_fragment_is_clean() {
    let src = include_str!("fixtures/hash_order_good.rs");
    assert_eq!(lint_source("crates/core/src/fixture.rs", src), []);
}

#[test]
fn hash_order_only_applies_to_determinism_crates() {
    let src = include_str!("fixtures/hash_order_bad.rs");
    assert_eq!(lint_source("crates/workloads/src/fixture.rs", src), []);
}

// --- wall-clock -----------------------------------------------------------

#[test]
fn wall_clock_bad_fragment_is_rejected() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let v = lint_source("crates/sim/src/fixture.rs", src);
    assert_eq!(
        skeleton(&v),
        vec![
            (3, "wall-clock"),  // use std::time::Instant;
            (7, "wall-clock"),  // Instant::now()
            (14, "wall-clock"), // SystemTime::now()
        ],
        "diagnostics: {v:#?}"
    );
}

#[test]
fn wall_clock_good_fragment_is_clean() {
    let src = include_str!("fixtures/wall_clock_good.rs");
    assert_eq!(lint_source("crates/sim/src/fixture.rs", src), []);
}

#[test]
fn wall_clock_is_exempt_inside_bench() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    assert_eq!(lint_source("crates/bench/src/fixture.rs", src), []);
}

// --- panic-path -----------------------------------------------------------

#[test]
fn panic_path_bad_fragment_is_rejected() {
    let src = include_str!("fixtures/panic_path_bad.rs");
    let v = lint_source("crates/engine/src/wire.rs", src);
    assert_eq!(
        skeleton(&v),
        vec![
            (5, "panic-path"),  // .unwrap()
            (7, "panic-path"),  // panic!
            (15, "panic-path"), // .expect()
        ],
        "diagnostics: {v:#?}"
    );
}

#[test]
fn panic_path_good_fragment_is_clean() {
    let src = include_str!("fixtures/panic_path_good.rs");
    assert_eq!(lint_source("crates/engine/src/ingest.rs", src), []);
}

#[test]
fn panic_path_only_applies_to_the_datapath() {
    let src = include_str!("fixtures/panic_path_bad.rs");
    assert_eq!(lint_source("crates/engine/src/schemes.rs", src), []);
}

// --- lock-order -----------------------------------------------------------

#[test]
fn lock_order_bad_fragment_is_rejected() {
    let src = include_str!("fixtures/lock_order_bad.rs");
    let v = lint_source("crates/engine/src/fixture.rs", src);
    assert_eq!(
        skeleton(&v),
        vec![
            (14, "lock-order"), // `queue` lacks a `// lock-order:` annotation
            (22, "lock-order"), // cycle closes at the second edge
            (30, "lock-order"), // `.lock()` on a foreign receiver
        ],
        "diagnostics: {v:#?}"
    );
    assert!(
        v[1].message.contains("flags → stats → flags"),
        "cycle diagnostic names the loop: {}",
        v[1].message
    );
}

#[test]
fn lock_order_good_fragment_is_clean() {
    let src = include_str!("fixtures/lock_order_good.rs");
    assert_eq!(lint_source("crates/engine/src/fixture.rs", src), []);
}

#[test]
fn lock_order_only_applies_to_engine_sources() {
    let src = include_str!("fixtures/lock_order_bad.rs");
    assert_eq!(lint_source("crates/sim/src/fixture.rs", src), []);
}

// --- atomic-order ---------------------------------------------------------

#[test]
fn atomic_order_bad_fragment_is_rejected() {
    let src = include_str!("fixtures/atomic_order_bad.rs");
    let v = lint_source("crates/engine/src/ingest.rs", src);
    assert_eq!(
        skeleton(&v),
        vec![
            (8, "atomic-order"),  // cursor.store(pos, Ordering::Relaxed)
            (13, "atomic-order"), // cursor.load(Ordering::Relaxed)
        ],
        "diagnostics: {v:#?}"
    );
}

#[test]
fn atomic_order_good_fragment_is_clean() {
    let src = include_str!("fixtures/atomic_order_good.rs");
    assert_eq!(lint_source("crates/engine/src/ingest.rs", src), []);
}

#[test]
fn atomic_order_only_applies_to_engine_sources() {
    let src = include_str!("fixtures/atomic_order_bad.rs");
    assert_eq!(lint_source("crates/sim/src/fixture.rs", src), []);
}

// --- dense-banks ----------------------------------------------------------

#[test]
fn dense_banks_bad_fragment_is_rejected() {
    let src = include_str!("fixtures/dense_banks_bad.rs");
    let v = lint_source("crates/engine/src/fixture.rs", src);
    assert_eq!(
        skeleton(&v),
        vec![
            (8, "dense-banks"),  // banks: Vec<Option<SchemeInstance>>
            (15, "dense-banks"), // self.banks[bank]
        ],
        "diagnostics: {v:#?}"
    );
}

#[test]
fn dense_banks_good_fragment_is_clean() {
    let src = include_str!("fixtures/dense_banks_good.rs");
    assert_eq!(lint_source("crates/engine/src/fixture.rs", src), []);
}

#[test]
fn dense_banks_is_exempt_in_the_sparse_module_and_other_crates() {
    let src = include_str!("fixtures/dense_banks_bad.rs");
    // The sparse accessor module owns the block layout itself.
    assert_eq!(lint_source("crates/engine/src/sparse.rs", src), []);
    // Dense per-bank vectors elsewhere (the bench's boxed-dyn baseline,
    // the sim crate) are out of scope.
    assert_eq!(lint_source("crates/sim/src/fixture.rs", src), []);
}

// --- crate-attrs ----------------------------------------------------------

#[test]
fn crate_attrs_bad_fragment_is_rejected() {
    let src = include_str!("fixtures/crate_attrs_bad.rs");
    let v = lint_source("crates/x/src/lib.rs", src);
    assert_eq!(
        skeleton(&v),
        vec![(1, "crate-attrs"), (1, "crate-attrs")],
        "diagnostics: {v:#?}"
    );
    assert!(v[0].message.contains("forbid(unsafe_code)"));
    assert!(v[1].message.contains("warn(missing_docs)"));
}

#[test]
fn crate_attrs_good_fragment_is_clean() {
    let src = include_str!("fixtures/crate_attrs_good.rs");
    assert_eq!(lint_source("crates/x/src/lib.rs", src), []);
    // Bench targets and examples are crate roots too.
    assert_eq!(lint_source("crates/bench/benches/fixture.rs", src), []);
    assert_eq!(lint_source("examples/fixture.rs", src), []);
}

#[test]
fn crate_attrs_only_applies_to_crate_roots() {
    let src = include_str!("fixtures/crate_attrs_bad.rs");
    assert_eq!(lint_source("crates/x/src/util.rs", src), []);
}

// --- allow directive ------------------------------------------------------

#[test]
fn allow_directive_with_unknown_rule_is_itself_a_violation() {
    let src = "// cat-lint: allow(made-up-rule) -- because\nfn f() {}\n";
    let v = lint_source("crates/sim/src/fixture.rs", src);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, BAD_ALLOW);
}

#[test]
fn allow_directive_cannot_suppress_bad_allow() {
    // A malformed directive "allowed" by another directive still reports.
    let src =
        "// cat-lint: allow(bad-allow) -- nice try\n// cat-lint: allow(wall-clock)\nfn f() {}\n";
    let v = lint_source("crates/sim/src/fixture.rs", src);
    assert!(v.iter().any(|x| x.rule == BAD_ALLOW && x.line == 2));
}

#[test]
fn allow_directive_does_not_leak_past_the_next_line() {
    let src = "// cat-lint: allow(wall-clock) -- only covers line 2\nfn f() {}\nuse std::time::Instant;\n";
    let v = lint_source("crates/sim/src/fixture.rs", src);
    assert_eq!(skeleton(&v), vec![(3, "wall-clock")]);
}

// --- diagnostics format ---------------------------------------------------

#[test]
fn diagnostics_carry_file_line_and_rule() {
    let src = include_str!("fixtures/panic_path_bad.rs");
    let v = lint_source("crates/engine/src/wire.rs", src);
    let rendered = v[0].to_string();
    assert!(
        rendered.starts_with("crates/engine/src/wire.rs:5: [panic-path]"),
        "rendered diagnostic: {rendered}"
    );
}

// --- seeded violations against the live tree ------------------------------

/// Appending a single bad function to the real `wire.rs` must flip the file
/// from clean to rejected — the acceptance check for the tier-1 gate.
#[test]
fn seeding_a_violation_into_live_wire_rs_is_caught() {
    let root = workspace_root();
    let rel = "crates/engine/src/wire.rs";
    let live = std::fs::read_to_string(root.join(rel)).expect("read live wire.rs");
    assert_eq!(lint_source(rel, &live), [], "live wire.rs must be clean");

    let seeded = format!("{live}\nfn seeded(v: Option<u32>) -> u32 {{ v.unwrap() }}\n");
    let v = lint_source(rel, &seeded);
    let last_line = seeded.lines().count();
    assert_eq!(skeleton(&v), vec![(last_line, "panic-path")]);
}

/// Same check for the other rules, seeded into the live crate roots.
#[test]
fn seeding_violations_into_live_roots_is_caught() {
    let root = workspace_root();
    for (rel, seed, rule) in [
        (
            "crates/engine/src/lib.rs",
            "fn seeded() { let _ = std::collections::HashMap::<u32, u32>::new(); }",
            "hash-order",
        ),
        (
            "crates/core/src/lib.rs",
            "fn seeded() { let _ = std::time::Instant::now(); }",
            "wall-clock",
        ),
        (
            "crates/engine/src/lib.rs",
            "fn seeded(m: &std::sync::Mutex<u32>) { let _ = m.lock(); }",
            "lock-order",
        ),
        (
            "crates/engine/src/lib.rs",
            "fn seeded() { let _ = std::sync::atomic::Ordering::Relaxed; }",
            "atomic-order",
        ),
        (
            "crates/engine/src/lib.rs",
            "fn seeded(banks: &mut [Option<u32>], b: usize) { banks[b] = None; }",
            "dense-banks",
        ),
    ] {
        let live = std::fs::read_to_string(root.join(rel)).expect("read live source");
        assert_eq!(
            lint_source(rel, &live),
            [],
            "{rel} must be clean before seeding"
        );
        let seeded = format!("{live}\n{seed}\n");
        let v = lint_source(rel, &seeded);
        assert!(
            v.iter()
                .any(|x| x.rule == rule && x.line == seeded.lines().count()),
            "{rel} + `{seed}` should trip {rule}, got {v:#?}"
        );
    }
}

// --- the live workspace ---------------------------------------------------

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// The whole tree must stay lint-clean: this is the same check
/// `cargo run -p cat-lint -- --workspace` performs in `tier1.sh` and CI.
#[test]
fn cat_lint_self_clean() {
    let violations = lint_workspace(workspace_root()).expect("walk workspace");
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
