//! Fixture: the sanctioned replacements, test-only hash use, and a
//! justified exception.

use std::collections::{BTreeMap, BTreeSet};

/// Ordered iteration: deterministic for any hasher seed.
pub fn build() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

/// Ordered set.
pub fn set() -> BTreeSet<u32> {
    BTreeSet::new()
}

// cat-lint: allow(hash-order) -- fixture: membership-only use, never iterated
pub fn allowed() -> std::collections::HashSet<u32> {
    std::collections::HashSet::new() // cat-lint: allow(hash-order) -- fixture: membership-only use
}

#[cfg(test)]
mod tests {
    /// Test code may hash freely: it never feeds the stats pipeline.
    #[test]
    fn hashing_in_tests_is_fine() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
