//! Fixture: a crate root carrying both required attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Does nothing, with documentation.
pub fn noop() {}
