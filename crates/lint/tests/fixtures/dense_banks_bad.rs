//! Fixture: dense per-bank storage patterns in engine sources.

use cat_core::SchemeInstance;

/// The dense layout the sparse refactor removed: one resident slot per
/// bank, whether or not the bank is ever touched.
pub struct DenseEngine {
    banks: Vec<Option<SchemeInstance>>,
}

impl DenseEngine {
    /// Indexes bank storage directly instead of going through the sparse
    /// accessor module.
    pub fn touch(&mut self, bank: usize) {
        if let Some(s) = self.banks[bank].as_mut() {
            let _ = s;
        }
    }
}
