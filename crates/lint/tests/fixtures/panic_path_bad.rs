//! Fixture: panics reachable from a malformed peer frame.

/// Parses a length header from an untrusted peer frame.
pub fn parse_len(buf: &[u8]) -> u32 {
    let head: [u8; 4] = buf[..4].try_into().unwrap();
    if head[0] == 0xFF {
        panic!("bad frame");
    }
    u32::from_le_bytes(head)
}

/// Looks up a record — `.expect()` aborts the reader thread instead of
/// surfacing a wire error.
pub fn first(records: &[(u32, u32)]) -> (u32, u32) {
    *records.first().expect("peer sent an empty batch")
}
