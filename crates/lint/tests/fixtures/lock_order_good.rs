//! Fixture: every lock named, every nesting in one global order.

use std::sync::{Condvar, Mutex};

/// Shared state whose locks are all annotated and consistently nested.
pub struct Shared {
    state: Mutex<Vec<u32>>, // lock-order: state
    stats: Mutex<u64>, // lock-order: stats
    // lock-order: ready -- waits reacquire `state`, never `stats`
    ready: Condvar,
}

impl Shared {
    fn drain(&self) {
        let _s = self.state.lock();
        let _t = self.stats.lock();
        let _ = &self.ready;
    }
    fn publish(&self) {
        let _s = self.state.lock();
        let _t = self.stats.lock();
    }
    fn peek(&self) {
        let _t = self.stats.lock();
    }
}
