//! Fixture: ordered publications, a justified `Relaxed` payload access,
//! and test-masked `Relaxed` are all admitted.

use std::sync::atomic::{AtomicU64, Ordering};

/// Publishes with release ordering.
pub fn publish(cursor: &AtomicU64, pos: u64) {
    cursor.store(pos, Ordering::Release);
}

/// Observes with acquire ordering.
pub fn observe(cursor: &AtomicU64) -> u64 {
    cursor.load(Ordering::Acquire)
}

/// Reads a payload slot whose ordering the cursor pair carries.
pub fn slot_read(slot: &AtomicU64) -> u64 {
    // cat-lint: allow(atomic-order) -- payload slot; ordered by the cursor's release/acquire pair
    slot.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_is_fine_in_tests() {
        let x = AtomicU64::new(1);
        assert_eq!(x.load(Ordering::Relaxed), 1);
    }
}
