//! Fixture: bank access through the sparse accessor, plus the rule's
//! escape hatches (allow directive and test-region masking).

use cat_core::SchemeInstance;

use crate::sparse::SparseBanks;

/// Goes through the sparse accessor: the bank materializes lazily.
pub fn touch(banks: &mut SparseBanks, bank: usize) -> Option<&mut SchemeInstance> {
    banks.scheme_mut(bank)
}

/// A justified dense borrow (a scratch slice that is not scheme storage)
/// takes an allow directive with the rationale.
pub fn scratch(banks: &mut [u64], bank: usize) -> u64 {
    // cat-lint: allow(dense-banks) -- fixture: activation scratch, not scheme storage
    banks[bank]
}

#[cfg(test)]
mod tests {
    #[test]
    fn dense_indexing_in_tests_is_fine() {
        let banks = [1u64, 2];
        assert_eq!(banks[0], 1);
    }
}
