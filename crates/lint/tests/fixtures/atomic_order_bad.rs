//! Fixture: `Relaxed` atomic orderings in engine sources.

use std::sync::atomic::{AtomicU64, Ordering};

/// Publishes without ordering: a consumer may observe the cursor move
/// before the data it guards.
pub fn publish(cursor: &AtomicU64, pos: u64) {
    cursor.store(pos, Ordering::Relaxed);
}

/// Observes without ordering.
pub fn observe(cursor: &AtomicU64) -> u64 {
    cursor.load(Ordering::Relaxed)
}
