//! Fixture: wall-clock reads outside `crates/bench`.

use std::time::Instant;

/// Times a closure — wall time is nondeterministic input.
pub fn time_it<F: FnOnce()>(f: F) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos()
}

/// Epoch seconds — same problem, different clock.
pub fn stamp() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
