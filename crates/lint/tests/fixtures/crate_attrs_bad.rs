//! Fixture: a crate root missing both required attributes.

/// Does nothing.
pub fn noop() {}
