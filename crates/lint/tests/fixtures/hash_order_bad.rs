//! Fixture: hash-ordered collections in a determinism-critical crate.

use std::collections::HashMap;

/// Iteration order of the returned map depends on the per-process hasher.
pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}

/// Seeding the hasher explicitly is just as nondeterministic.
pub fn seeded() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}
