//! Fixture: lock-order violations — an unannotated field, an inverted
//! acquisition pair, and an unresolvable `.lock()` receiver.

use std::sync::Mutex;

/// A lock that belongs to some other module, not declared in this file.
pub struct OtherPart {
    /// Opaque to this file's lock table.
    pub inner: Vec<u32>,
}

/// Shared state with one unannotated lock and an inverted pair.
pub struct Shared {
    queue: Mutex<Vec<u32>>,
    stats: Mutex<u64>, // lock-order: stats
    flags: Mutex<u8>, // lock-order: flags
}

impl Shared {
    fn forward(&self) {
        let _s = self.stats.lock();
        let _f = self.flags.lock();
        let _ = &self.queue;
    }
    fn backward(&self) {
        let _f = self.flags.lock();
        let _s = self.stats.lock();
    }
    fn stray(&self, other: &OtherPart) {
        let _ = other.inner.lock();
    }
}
