//! Fixture: the same datapath logic with errors surfaced, one justified
//! infallible `.expect()`, and test-only unwraps.

use std::io;

/// Parses a length header; a short or poisoned frame is a wire error.
pub fn parse_len(buf: &[u8]) -> io::Result<u32> {
    let head: [u8; 4] = buf
        .get(..4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "short frame"))?;
    if head[0] == 0xFF {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame"));
    }
    Ok(u32::from_le_bytes(head))
}

/// A genuinely infallible unwrap takes a justified allow directive.
pub fn halves(x: u64) -> u32 {
    // cat-lint: allow(panic-path) -- infallible: masked to 32 bits on the line above
    (x & 0xFFFF_FFFF).try_into().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(parse_len(&[4, 0, 0, 0]).unwrap(), 4);
    }
}
