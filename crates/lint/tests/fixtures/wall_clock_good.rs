//! Fixture: time only ever enters the model as epoch *counts*, and test
//! code may time itself.

/// Simulated time: epochs elapsed, a pure function of the access stream.
pub fn epochs_elapsed(accesses: u64, per_epoch: u64) -> u64 {
    accesses / per_epoch.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_inside_tests_is_exempt() {
        let start = std::time::Instant::now();
        assert_eq!(epochs_elapsed(10, 3), 3);
        assert!(start.elapsed().as_secs() < 60);
    }
}
