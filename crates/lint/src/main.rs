//! `cat-lint` CLI: walk the workspace and enforce the determinism &
//! concurrency contract (`DESIGN.md §9`).
//!
//! ```text
//! cargo run --release -p cat-lint -- --workspace [--root <path>]
//! ```
//!
//! Exits 0 when the tree is clean, 1 with `file:line: [rule] message`
//! diagnostics otherwise, and 2 on usage or I/O errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cat-lint --workspace [--root <path>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if !workspace {
        return usage();
    }
    let root = match root.or_else(|| std::env::current_dir().ok().and_then(find_workspace_root)) {
        Some(r) => r,
        None => {
            eprintln!("cat-lint: no workspace Cargo.toml found above the current directory");
            return ExitCode::from(2);
        }
    };
    match cat_lint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("cat-lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!(
                "cat-lint: {} violation{} — fix, or annotate with \
                 `// cat-lint: allow(<rule>) -- <reason>` (DESIGN.md §9)",
                violations.len(),
                if violations.len() == 1 { "" } else { "s" }
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("cat-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
