//! # cat-lint — in-repo static analysis for the determinism & concurrency contract
//!
//! The engine's whole value proposition is the determinism contract of
//! `DESIGN.md §7–§8`: bit-identical stats for any shard count, producer
//! count, or ingestion path. The equivalence suites enforce that contract
//! *dynamically* — long after a violation is written. This crate enforces it
//! *statically*, at the source level, so a hasher-ordered iteration, a
//! wall-clock read, or a lock-order inversion is rejected at `tier1.sh` time
//! with a `file:line` diagnostic. The workspace builds offline (README
//! "Offline build constraint"), so this is a zero-dependency hand-rolled
//! linter rather than a clippy plugin / miri / loom: a Rust **lexer** (token
//! stream with string/char/comment awareness and `#[cfg(test)]`-region
//! tracking — no full parser) plus path-scoped **rules**:
//!
//! | rule | scope | rejects |
//! |---|---|---|
//! | `hash-order` | `cat-core`, `cat-engine`, `cat-prng` | `HashMap`/`HashSet`/`RandomState` — iteration order depends on hasher state |
//! | `wall-clock` | everywhere except `crates/bench` | `Instant`/`SystemTime` — wall time is nondeterministic input |
//! | `panic-path` | `catd` datapath (`wire.rs`, `ingest.rs`, `system.rs`, `checkpoint.rs`, `router.rs`) | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `lock-order` | `crates/engine/src` | unannotated `Mutex`/`Condvar` fields, unresolvable `.lock()` sites, acquisition-order cycles |
//! | `atomic-order` | `crates/engine/src` | `Ordering::Relaxed` — cross-thread publication needs Release/Acquire (or SeqCst) |
//! | `dense-banks` | `crates/engine/src` minus `sparse.rs` | `banks[…]` indexing and `Vec<Option<SchemeInstance>>` — dense per-bank storage outside the sparse accessor module (DESIGN.md §10) |
//! | `crate-attrs` | crate roots, bench targets, examples | missing `#![forbid(unsafe_code)]` / `#![warn(missing_docs)]` |
//!
//! Test code — `#[cfg(test)]` / `#[test]` regions and any file under a
//! `tests/` directory — is exempt from every rule but `crate-attrs`. A justified
//! exception is granted by a directive on the offending line or the line
//! directly above:
//!
//! ```text
//! // cat-lint: allow(panic-path) -- infallible: length checked above
//! ```
//!
//! The reason after `--` is **required**; a directive without one, or naming
//! an unknown rule, is itself a [`BAD_ALLOW`] violation. Lock fields are
//! named with `// lock-order: <name>` on the declaration line (or the line
//! above); the acquisition graph over those names must be acyclic.
//!
//! The analysis is deliberately token-level and type-blind: `hash-order`
//! bans the hash-collection *type names* wholesale in the determinism
//! crates (a strict superset of banning their iteration APIs — `BTreeMap`
//! is the sanctioned replacement, and a justified non-iterating use takes
//! an `allow`), and `lock-order` approximates guard nesting by acquisition
//! order within one function body. See `DESIGN.md §9` for the full contract
//! and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The enforceable rule identifiers, in documentation order.
pub const RULES: [&str; 7] = [
    "hash-order",
    "wall-clock",
    "panic-path",
    "lock-order",
    "atomic-order",
    "dense-banks",
    "crate-attrs",
];

/// Pseudo-rule reported for malformed or unknown `cat-lint:` directives.
/// Never suppressible by an `allow`.
pub const BAD_ALLOW: &str = "bad-allow";

/// One diagnostic: where, which rule, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule identifier (one of [`RULES`] or [`BAD_ALLOW`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TokKind {
    Ident,
    Punct,
    Literal,
}

#[derive(Clone, Debug)]
struct Token {
    kind: TokKind,
    text: String,
    line: usize,
}

#[derive(Clone, Debug)]
struct Allow {
    line: usize,
    rule: String,
}

#[derive(Default)]
struct Lexed {
    tokens: Vec<Token>,
    allows: Vec<Allow>,
    /// `// lock-order: <name>` annotations: (line, name).
    lock_names: Vec<(usize, String)>,
    /// Malformed directives: (line, error).
    malformed: Vec<(usize, String)>,
}

/// Consumes a `"…"` string literal starting at the opening quote; returns
/// the index one past the closing quote.
fn skip_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut j = start + 1;
    while j < chars.len() {
        match chars[j] {
            // An escape may hide a newline (`\<newline>` line continuation):
            // still count it, or every later diagnostic drifts upward.
            '\\' => {
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '"' => return j + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    j
}

/// Consumes a `'…'` char literal starting at the opening quote; returns the
/// index one past the closing quote.
fn skip_char(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut j = start + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '\'' => return j + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    j
}

/// Recognizes `b"…"`, `b'…'`, `r"…"`, `r#"…"#`, `br#"…"#` starting at `i`
/// (which must be `b` or `r`); returns the index past the literal, or
/// `None` if this is an ordinary identifier.
fn try_string_like(chars: &[char], i: usize, line: &mut usize) -> Option<usize> {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if j < n && chars[j] == 'r' {
        let mut k = j + 1;
        let mut hashes = 0usize;
        while k < n && chars[k] == '#' {
            hashes += 1;
            k += 1;
        }
        if k < n && chars[k] == '"' {
            // Raw string: no escapes; ends at `"` followed by `hashes` `#`s.
            let mut p = k + 1;
            while p < n {
                if chars[p] == '\n' {
                    *line += 1;
                }
                if chars[p] == '"'
                    && chars[p + 1..].iter().take_while(|c| **c == '#').count() >= hashes
                {
                    return Some(p + 1 + hashes);
                }
                p += 1;
            }
            return Some(p);
        }
        return None; // `r#ident` raw identifier or a plain ident starting with r/br
    }
    if j > i && j < n && chars[j] == '"' {
        return Some(skip_string(chars, j, line));
    }
    if j > i && j < n && chars[j] == '\'' {
        return Some(skip_char(chars, j, line));
    }
    None
}

fn parse_allow(s: &str) -> Result<String, String> {
    let inner = s
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<rule>)`".to_string())?;
    let (rule, after) = inner
        .split_once(')')
        .ok_or_else(|| "unclosed `allow(`".to_string())?;
    let reason = after
        .trim_start()
        .strip_prefix("--")
        .ok_or_else(|| "missing ` -- <reason>` justification".to_string())?
        .trim();
    if reason.is_empty() {
        return Err("empty justification after `--`".to_string());
    }
    Ok(rule.trim().to_string())
}

/// Parses one `//` comment body (text after the slashes) for directives.
fn parse_comment(body: &str, line: usize, lx: &mut Lexed) {
    if body.starts_with('/') || body.starts_with('!') {
        return; // doc comment: prose, never a directive
    }
    let t = body.trim();
    if let Some(rest) = t.strip_prefix("cat-lint:") {
        match parse_allow(rest.trim()) {
            Ok(rule) => lx.allows.push(Allow { line, rule }),
            Err(e) => lx.malformed.push((line, e)),
        }
    } else if let Some(rest) = t.strip_prefix("lock-order:") {
        // Grammar: `lock-order: <name>` with an optional ` -- <note>` tail.
        let name = rest.split("--").next().unwrap_or("").trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            lx.malformed.push((
                line,
                format!("`lock-order:` needs an identifier name, got `{name}`"),
            ));
        } else {
            lx.lock_names.push((line, name.to_string()));
        }
    }
}

fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut lx = Lexed::default();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let body: String = chars[start..j].iter().collect();
            parse_comment(&body, line, &mut lx);
            i = j;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            let l = line;
            i = skip_string(&chars, i, &mut line);
            lx.tokens.push(Token {
                kind: TokKind::Literal,
                text: String::new(),
                line: l,
            });
        } else if c == '\'' {
            // Lifetime (`'a`) vs char literal (`'a'`).
            let is_lifetime = i + 1 < n
                && (chars[i + 1].is_alphanumeric() || chars[i + 1] == '_')
                && !(i + 2 < n && chars[i + 2] == '\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                i = j;
            } else {
                let l = line;
                i = skip_char(&chars, i, &mut line);
                lx.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: l,
                });
            }
        } else if c.is_alphabetic() || c == '_' {
            if (c == 'b' || c == 'r') && i + 1 < n {
                if let Some(j) = try_string_like(&chars, i, &mut line) {
                    lx.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            let mut j = i;
            // Raw identifier `r#name` lexes as the bare name.
            if c == 'r' && i + 1 < n && chars[i + 1] == '#' {
                j = i + 2;
                i = j;
            }
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            lx.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            lx.tokens.push(Token {
                kind: TokKind::Literal,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
        } else if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            lx.tokens.push(Token {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
        } else {
            lx.tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    lx
}

// ---------------------------------------------------------------------------
// Test-region tracking
// ---------------------------------------------------------------------------

/// Returns the index one past the `]` closing the attribute whose `[` is at
/// `open`, plus the attribute's inner token texts.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, Vec<String>) {
    let mut depth = 0usize;
    let mut inner = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, inner);
                }
            }
            _ => {}
        }
        if depth >= 1 && j > open {
            inner.push(tokens[j].text.clone());
        }
        j += 1;
    }
    (j, inner)
}

/// Marks every token belonging to a `#[cfg(test)]`- or `#[test]`-attributed
/// item (the attribute through the item's closing `}` or `;`).
fn test_token_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let n = tokens.len();
    let mut i = 0usize;
    while i < n {
        if tokens[i].text == "#" && i + 1 < n && tokens[i + 1].text == "[" {
            let (after, inner) = scan_attr(tokens, i + 1);
            let is_test = inner == ["test"] || inner == ["cfg", "(", "test", ")"];
            if !is_test {
                i = after;
                continue;
            }
            // Skip any further attributes between this one and the item.
            let mut k = after;
            while k + 1 < n && tokens[k].text == "#" && tokens[k + 1].text == "[" {
                let (next, _) = scan_attr(tokens, k + 1);
                k = next;
            }
            // The item ends at `;` (e.g. a `use`) or at the matching `}` of
            // its first top-level brace block.
            let mut pd = 0i32;
            let mut end = n.saturating_sub(1);
            while k < n {
                match tokens[k].text.as_str() {
                    "(" | "[" => pd += 1,
                    ")" | "]" => pd -= 1,
                    ";" if pd == 0 => {
                        end = k;
                        break;
                    }
                    "{" if pd == 0 => {
                        let mut bd = 0i32;
                        while k < n {
                            if tokens[k].text == "{" {
                                bd += 1;
                            } else if tokens[k].text == "}" {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            k += 1;
                        }
                        end = k.min(n - 1);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct FileScope {
    /// Under a `tests/` directory: the whole file is test code.
    is_test_file: bool,
    /// Under `crates/bench/`: exempt from `wall-clock`.
    in_bench: bool,
    /// Determinism-critical crates: `hash-order` applies.
    det_crate: bool,
    /// The `catd` server datapath: `panic-path` applies.
    datapath: bool,
    /// Engine sources: `lock-order` applies.
    engine_src: bool,
    /// Engine sources outside the sparse accessor module: `dense-banks`
    /// applies (`sparse.rs` itself owns the block layout).
    dense_banks: bool,
    /// A crate root / bench target / example: `crate-attrs` applies.
    crate_root: bool,
}

fn classify(rel: &str) -> FileScope {
    let comps: Vec<&str> = rel.split('/').collect();
    let parent = if comps.len() >= 2 {
        comps[comps.len() - 2]
    } else {
        ""
    };
    FileScope {
        is_test_file: comps.contains(&"tests"),
        in_bench: rel.starts_with("crates/bench/"),
        det_crate: ["crates/core/", "crates/engine/", "crates/prng/"]
            .iter()
            .any(|p| rel.starts_with(p)),
        datapath: matches!(
            rel,
            "crates/engine/src/wire.rs"
                | "crates/engine/src/ingest.rs"
                | "crates/engine/src/system.rs"
                | "crates/engine/src/checkpoint.rs"
                | "crates/engine/src/router.rs"
        ),
        engine_src: rel.starts_with("crates/engine/src/"),
        dense_banks: rel.starts_with("crates/engine/src/") && rel != "crates/engine/src/sparse.rs",
        crate_root: rel.ends_with("src/lib.rs")
            || rel.ends_with("src/main.rs")
            || parent == "benches"
            || parent == "examples",
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct Ctx<'a> {
    tokens: &'a [Token],
    test: &'a [bool],
    lock_names: &'a [(usize, String)],
}

fn push(out: &mut Vec<Violation>, rel: &str, line: usize, rule: &'static str, message: String) {
    out.push(Violation {
        path: rel.to_string(),
        line,
        rule,
        message,
    });
}

fn rule_hash_order(ctx: &Ctx<'_>, rel: &str, out: &mut Vec<Violation>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.test[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => push(
                out,
                rel,
                t.line,
                "hash-order",
                format!(
                    "`{}` in a determinism-critical crate: iteration order depends on \
                     hasher state; use `BTree{}` (or justify a non-iterating use with \
                     an allow directive)",
                    t.text,
                    &t.text[4..]
                ),
            ),
            "RandomState" => push(
                out,
                rel,
                t.line,
                "hash-order",
                "`RandomState` seeds per-process hasher randomness into a \
                 determinism-critical crate"
                    .to_string(),
            ),
            _ => {}
        }
    }
}

fn rule_wall_clock(ctx: &Ctx<'_>, rel: &str, out: &mut Vec<Violation>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                out,
                rel,
                t.line,
                "wall-clock",
                format!(
                    "`{}` outside `crates/bench`: wall time is nondeterministic input \
                     (stats must be a pure function of the access stream)",
                    t.text
                ),
            );
        }
    }
}

fn rule_atomic_order(ctx: &Ctx<'_>, rel: &str, out: &mut Vec<Violation>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Relaxed" {
            push(
                out,
                rel,
                t.line,
                "atomic-order",
                "`Ordering::Relaxed` in engine sources: cross-thread publication must \
                 use Release/Acquire (or SeqCst); a data slot whose ordering is carried \
                 by a neighbouring cursor publication takes an allow with the rationale \
                 (DESIGN.md §9)"
                    .to_string(),
            );
        }
    }
}

fn rule_panic_path(ctx: &Ctx<'_>, rel: &str, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        match toks[i].text.as_str() {
            m @ ("unwrap" | "expect") if prev == Some(".") && next == Some("(") => push(
                out,
                rel,
                toks[i].line,
                "panic-path",
                format!(
                    "`.{m}()` in the catd server datapath: a malformed peer frame must \
                     surface as a wire/ingest error, not a thread abort"
                ),
            ),
            m @ ("panic" | "unreachable" | "todo" | "unimplemented") if next == Some("!") => push(
                out,
                rel,
                toks[i].line,
                "panic-path",
                format!("`{m}!` in the catd server datapath: return an error instead"),
            ),
            _ => {}
        }
    }
}

fn rule_dense_banks(ctx: &Ctx<'_>, rel: &str, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let at = |k: usize| toks.get(i + k).map(|t| t.text.as_str());
        if toks[i].text == "banks" && at(1) == Some("[") {
            push(
                out,
                rel,
                toks[i].line,
                "dense-banks",
                "`banks[…]` indexes bank storage directly: go through the sparse \
                 accessor module (`SparseBanks::scheme_mut` / `iter`), which \
                 materializes banks lazily — dense indexing reintroduces O(banks) \
                 residency (DESIGN.md §10)"
                    .to_string(),
            );
        }
        if toks[i].text == "Vec"
            && at(1) == Some("<")
            && at(2) == Some("Option")
            && at(3) == Some("<")
            && at(4) == Some("SchemeInstance")
        {
            push(
                out,
                rel,
                toks[i].line,
                "dense-banks",
                "`Vec<Option<SchemeInstance>>` is the dense per-bank layout the sparse \
                 storage replaced: one resident slot per bank whether or not the bank \
                 is ever touched; hold a `SparseBanks` instead (DESIGN.md §10)"
                    .to_string(),
            );
        }
    }
}

fn rule_crate_attrs(ctx: &Ctx<'_>, rel: &str, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    let mut forbid_unsafe = false;
    let mut missing_docs = false;
    for i in 0..toks.len().saturating_sub(7) {
        if toks[i].text == "#"
            && toks[i + 1].text == "!"
            && toks[i + 2].text == "["
            && toks[i + 3].kind == TokKind::Ident
            && toks[i + 4].text == "("
            && toks[i + 5].kind == TokKind::Ident
            && toks[i + 6].text == ")"
            && toks[i + 7].text == "]"
        {
            let level = toks[i + 3].text.as_str();
            let lint = toks[i + 5].text.as_str();
            if level == "forbid" && lint == "unsafe_code" {
                forbid_unsafe = true;
            }
            if matches!(level, "warn" | "deny" | "forbid") && lint == "missing_docs" {
                missing_docs = true;
            }
        }
    }
    if !forbid_unsafe {
        push(
            out,
            rel,
            1,
            "crate-attrs",
            "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        );
    }
    if !missing_docs {
        push(
            out,
            rel,
            1,
            "crate-attrs",
            "crate root lacks `#![warn(missing_docs)]`".to_string(),
        );
    }
}

/// Tokens inside `use …;` items (so `use std::sync::{Condvar, Mutex};` is
/// not mistaken for a lock declaration).
fn use_item_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    let mut prev: Option<usize> = None;
    while i < tokens.len() {
        let at_item_position = match prev {
            None => true,
            Some(p) => matches!(tokens[p].text.as_str(), ";" | "{" | "}" | "]"),
        };
        if tokens[i].kind == TokKind::Ident && tokens[i].text == "use" && at_item_position {
            while i < tokens.len() && tokens[i].text != ";" {
                mask[i] = true;
                i += 1;
            }
        } else {
            prev = Some(i);
            i += 1;
        }
    }
    mask
}

fn rule_lock_order(ctx: &Ctx<'_>, rel: &str, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    let n = toks.len();
    let in_use = use_item_mask(toks);

    // Pass 1: lock declarations (`name: Mutex<…>` / `name: Condvar` fields
    // or annotated locals) → field name → lock-order name. Each annotation
    // names exactly one lock: a same-line annotation binds tighter than a
    // line-above one, and a consumed annotation never re-binds (otherwise a
    // trailing annotation would also claim the *next* field's line-above
    // slot and adjacent lock fields would all alias the first name).
    let mut locks: BTreeMap<String, String> = BTreeMap::new();
    let mut used_annotations: BTreeSet<usize> = BTreeSet::new();
    for i in 0..n {
        if ctx.test[i] || in_use[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let is_decl = match toks[i].text.as_str() {
            "Mutex" => next == Some("<"),
            "Condvar" => next != Some("::"),
            _ => false,
        };
        if !is_decl {
            continue;
        }
        // Walk back over `Path::` and `Wrapper<` prefixes to the binding.
        let mut j = i;
        while j >= 2
            && matches!(toks[j - 1].text.as_str(), "::" | "<")
            && toks[j - 2].kind == TokKind::Ident
        {
            j -= 2;
        }
        let line = toks[i].line;
        if !(j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == TokKind::Ident) {
            push(
                out,
                rel,
                line,
                "lock-order",
                format!(
                    "`{}` outside a recognizable `name: Type` binding — cat-lint cannot \
                     attach a lock-order name to it",
                    toks[i].text
                ),
            );
            continue;
        }
        let field = toks[j - 2].text.clone();
        let annotation = ctx
            .lock_names
            .iter()
            .enumerate()
            .filter(|(k, _)| !used_annotations.contains(k))
            .find(|(_, (l, _))| *l == line)
            .or_else(|| {
                ctx.lock_names
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| !used_annotations.contains(k))
                    .find(|(_, (l, _))| l + 1 == line)
            });
        match annotation {
            Some((k, (_, name))) => {
                used_annotations.insert(k);
                locks.insert(field, name.clone());
            }
            None => {
                push(
                    out,
                    rel,
                    line,
                    "lock-order",
                    format!("lock field `{field}` has no `// lock-order: <name>` annotation"),
                );
                // Fall back to the field name so acquisitions still resolve
                // and the cycle check still runs.
                locks.insert(field.clone(), field);
            }
        }
    }

    // Pass 2: `.lock()` acquisition sites → (token index, line, lock name).
    let mut acqs: Vec<(usize, usize, String)> = Vec::new();
    for i in 0..n {
        if ctx.test[i] || toks[i].kind != TokKind::Ident || toks[i].text != "lock" {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        if prev != Some(".") || next != Some("(") {
            continue;
        }
        let receiver = i
            .checked_sub(2)
            .filter(|&r| toks[r].kind == TokKind::Ident)
            .map(|r| toks[r].text.clone());
        match receiver.as_deref().and_then(|r| locks.get(r)) {
            Some(name) => acqs.push((i, toks[i].line, name.clone())),
            None => push(
                out,
                rel,
                toks[i].line,
                "lock-order",
                format!(
                    "`.lock()` on `{}` does not resolve to an annotated lock field of \
                     this file",
                    receiver.as_deref().unwrap_or("<expression>")
                ),
            ),
        }
    }

    // Pass 3: acquisition-order edges within each function body.
    let mut edges: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut i = 0usize;
    while i < n {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && !ctx.test[i] {
            let mut pd = 0i32;
            let mut j = i + 1;
            let mut body: Option<(usize, usize)> = None;
            while j < n {
                match toks[j].text.as_str() {
                    "(" | "[" => pd += 1,
                    ")" | "]" => pd -= 1,
                    ";" if pd == 0 => break,
                    "{" if pd == 0 => {
                        let mut bd = 0i32;
                        let mut k = j;
                        while k < n {
                            if toks[k].text == "{" {
                                bd += 1;
                            } else if toks[k].text == "}" {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            k += 1;
                        }
                        body = Some((j, k.min(n - 1)));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some((start, end)) = body {
                let inside: Vec<&(usize, usize, String)> =
                    acqs.iter().filter(|a| a.0 > start && a.0 < end).collect();
                for x in 0..inside.len() {
                    for y in (x + 1)..inside.len() {
                        if inside[x].2 != inside[y].2 {
                            edges
                                .entry((inside[x].2.clone(), inside[y].2.clone()))
                                .or_insert(inside[y].1);
                        }
                    }
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }

    // Pass 4: cycle rejection.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().insert(b);
    }
    if let Some(cycle) = find_cycle(&adj) {
        let closing = (
            cycle[cycle.len() - 2].to_string(),
            cycle[cycle.len() - 1].to_string(),
        );
        let line = edges.get(&closing).copied().unwrap_or(1);
        push(
            out,
            rel,
            line,
            "lock-order",
            format!("lock acquisition cycle: {}", cycle.join(" → ")),
        );
    }
}

fn find_cycle<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Option<Vec<&'a str>> {
    // 1 = on the current DFS stack, 2 = fully explored.
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        state: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<&'a str>> {
        state.insert(node, 1);
        stack.push(node);
        if let Some(nexts) = adj.get(node) {
            for &next in nexts {
                match state.get(next) {
                    Some(1) => {
                        let pos = stack.iter().position(|n| *n == next)?;
                        let mut cycle = stack[pos..].to_vec();
                        cycle.push(next);
                        return Some(cycle);
                    }
                    Some(2) => {}
                    _ => {
                        if let Some(c) = dfs(next, adj, state, stack) {
                            return Some(c);
                        }
                    }
                }
            }
        }
        stack.pop();
        state.insert(node, 2);
        None
    }
    let mut state: BTreeMap<&str, u8> = BTreeMap::new();
    for &node in adj.keys() {
        if !state.contains_key(node) {
            if let Some(c) = dfs(node, adj, &mut state, &mut Vec::new()) {
                return Some(c);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Lints one source file as if it lived at workspace-relative `rel`
/// (`/`-separated). The path decides which rules apply — see the
/// [crate docs](self) scope table.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let lx = lex(src);
    let test = test_token_mask(&lx.tokens);
    let scope = classify(rel);
    let ctx = Ctx {
        tokens: &lx.tokens,
        test: &test,
        lock_names: &lx.lock_names,
    };
    let mut out = Vec::new();
    for (line, err) in &lx.malformed {
        push(
            &mut out,
            rel,
            *line,
            BAD_ALLOW,
            format!("malformed directive: {err}"),
        );
    }
    for a in &lx.allows {
        if !RULES.contains(&a.rule.as_str()) {
            push(
                &mut out,
                rel,
                a.line,
                BAD_ALLOW,
                format!("allow directive names unknown rule `{}`", a.rule),
            );
        }
    }
    if !scope.is_test_file {
        if scope.det_crate {
            rule_hash_order(&ctx, rel, &mut out);
        }
        if !scope.in_bench {
            rule_wall_clock(&ctx, rel, &mut out);
        }
        if scope.datapath {
            rule_panic_path(&ctx, rel, &mut out);
        }
        if scope.engine_src {
            rule_lock_order(&ctx, rel, &mut out);
            rule_atomic_order(&ctx, rel, &mut out);
        }
        if scope.dense_banks {
            rule_dense_banks(&ctx, rel, &mut out);
        }
    }
    if scope.crate_root {
        rule_crate_attrs(&ctx, rel, &mut out);
    }
    // Apply allow directives: a violation is suppressed by a well-formed
    // allow for its rule on the same line or the line directly above.
    out.retain(|v| {
        v.rule == BAD_ALLOW
            || !lx
                .allows
                .iter()
                .any(|a| a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line))
    });
    out.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    out
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let path = entry.path();
        if path.is_dir() {
            // `target/` is build output, hidden dirs are tooling state, and
            // `fixtures/` holds deliberately-bad lint-test fragments.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root` (the workspace), skipping `target/`,
/// hidden directories, and lint-fixture corpora. Diagnostics are ordered by
/// path then line, so output is deterministic.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or from reading a source file.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        out.extend(lint_source(rel, &src));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_skips_strings_comments_and_lifetimes() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            /// doc: SystemTime
            fn f<'a>(s: &'a str) -> char {
                let _ = "HashMap Instant";
                let _ = r#"SystemTime"#;
                let _ = b"unwrap()";
                'x'
            }
        "##;
        let lx = lex(src);
        assert!(lx.tokens.iter().all(|t| !matches!(
            t.text.as_str(),
            "HashMap" | "Instant" | "SystemTime" | "unwrap"
        )));
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests {
                fn inner() { let x: usize = 1; }
            }
            fn live2() {}
        ";
        let lx = lex(src);
        let mask = test_token_mask(&lx.tokens);
        let masked: Vec<&str> = lx
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"inner"));
        assert!(!masked.contains(&"live"));
        assert!(!masked.contains(&"live2"));
    }

    #[test]
    fn string_line_continuations_keep_line_numbers_honest() {
        // `\<newline>` inside a string hides a newline from a naive scanner;
        // the diagnostic on line 5 must not drift up to line 4.
        let src = "fn f() -> String {\n    format!(\"a \\\n     b\")\n}\nuse std::time::Instant;\n";
        let v = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn allow_requires_a_reason() {
        let src = "// cat-lint: allow(wall-clock)\nfn f() {}\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, BAD_ALLOW);
    }

    #[test]
    fn allow_covers_same_line_and_next_line() {
        let next =
            "// cat-lint: allow(wall-clock) -- fixture\nfn f() { let _ = Instant::now(); }\n";
        assert!(lint_source("crates/core/src/x.rs", next).is_empty());
        let same = "fn f() { let _ = Instant::now(); } // cat-lint: allow(wall-clock) -- fixture\n";
        assert!(lint_source("crates/core/src/x.rs", same).is_empty());
    }
}
