//! Monte-Carlo unsurvivability: ideal PRNG validation of Eq. 1, and the
//! LFSR state-recovery attack that collapses PRA's guarantee (§III-A).
//!
//! The paper reports (without further detail) that a Monte-Carlo simulation
//! of PRA with an LFSR-based PRNG reaches 1e-4 unsurvivability "after only
//! 25 refresh intervals" for T = 16K, p = 0.005. Our reconstruction makes
//! the mechanism concrete:
//!
//! 1. A 16-bit LFSR has 65535 states; every refresh decision is a pure
//!    function of the state, and the state advances deterministically.
//! 2. An attacker who can observe (a fraction of) the refresh decisions —
//!    e.g. by timing its own accesses — prunes the candidate-state set on
//!    every observation until a single state remains.
//! 3. From then on the attacker predicts every future decision: it hammers
//!    the aggressor only on predicted "no refresh" draws and burns the
//!    predicted "refresh" draws on harmless dummy accesses, accumulating
//!    `T` activations with *zero* victim refreshes — deterministic failure.
//!
//! With full observation, recovery takes tens of accesses and PRA fails
//! within the first interval; sparse observation stretches recovery across
//! tens of intervals — the regime the paper's 25-interval figure lives in.

use cat_core::rng::{DecisionRng, IdealRng, Lfsr16};
use cat_prng::rngs::StdRng;
use cat_prng::{Rng, SeedableRng};

/// Counts refresh-free windows of `t` draws under an ideal PRNG — the
/// Monte-Carlo estimate of `(1 − p_eff)^T` behind Eq. 1.
///
/// ```
/// // T = 1000, p = 1/512 ⇒ ≈ e^(−1000/512) ≈ 0.1416 of windows fail.
/// let fails = cat_reliability::ideal_window_failures(0.002, 9, 1_000, 20_000, 7);
/// let rate = fails as f64 / 20_000.0;
/// assert!((rate - 0.1416).abs() < 0.02);
/// ```
pub fn ideal_window_failures(p: f64, bits: u32, t: u32, windows: u64, seed: u64) -> u64 {
    let threshold = ((p * f64::from(1u32 << bits)).round() as u32).max(1);
    let mut rng = IdealRng::seeded(seed);
    let mut failures = 0;
    for _ in 0..windows {
        let mut refreshed = false;
        for _ in 0..t {
            if rng.draw(bits) < threshold {
                refreshed = true;
                break;
            }
        }
        if !refreshed {
            failures += 1;
        }
    }
    failures
}

/// Counts refresh-free windows when decisions come from one free-running
/// 16-bit LFSR (no attacker — measures the bias/correlation alone).
pub fn lfsr_window_failures(p: f64, bits: u32, t: u32, windows: u64, seed: u16) -> u64 {
    let threshold = ((p * f64::from(1u32 << bits)).round() as u32).max(1);
    let mut lfsr = Lfsr16::new(seed);
    let mut failures = 0;
    for _ in 0..windows {
        let mut refreshed = false;
        for _ in 0..t {
            if lfsr.draw(bits) < threshold {
                refreshed = true;
                break;
            }
        }
        if !refreshed {
            failures += 1;
        }
    }
    failures
}

/// Result of the LFSR state-recovery attack.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LfsrAttackOutcome {
    /// Accesses observed until exactly one candidate state remained.
    pub recovery_accesses: Option<u64>,
    /// First refresh interval (1-based) in which the victim accumulates
    /// `T` aggressor activations with zero refreshes.
    pub failure_interval: Option<u64>,
    /// Confirmation that the post-recovery evasion run saw no refresh.
    pub evasion_clean: bool,
}

/// Precomputed doubling jump tables: `tables[j][s]` is the LFSR state after
/// `2^j` *draws* (of `bits` LFSR steps each) starting from state `s`.
/// Lets the attack advance 65535 candidate states across millions of
/// unobserved draws in `O(log gap)` per candidate.
struct JumpTables {
    tables: Vec<Vec<u16>>,
}

impl JumpTables {
    fn new(bits: u32, max_log2: usize) -> Self {
        // Base table: one draw = `bits` steps.
        let mut base = vec![0u16; 1 << 16];
        for s in 1..=u16::MAX {
            let mut l = Lfsr16::new(s);
            let _ = l.draw(bits);
            base[s as usize] = l.state();
        }
        let mut tables = vec![base];
        for j in 1..=max_log2 {
            let prev = &tables[j - 1];
            let next: Vec<u16> = (0..=u16::MAX as usize)
                .map(|s| prev[prev[s] as usize])
                .collect();
            tables.push(next);
        }
        JumpTables { tables }
    }

    fn advance(&self, mut state: u16, mut draws: u64) -> u16 {
        let mut j = 0;
        while draws > 0 {
            if draws & 1 == 1 {
                state = self.tables[j][state as usize];
            }
            draws >>= 1;
            j += 1;
            debug_assert!(j <= self.tables.len());
        }
        state
    }
}

/// The refresh decision taken from LFSR state `s` (draw `bits`, compare).
fn decision_from(s: u16, bits: u32, threshold: u32) -> bool {
    let mut l = Lfsr16::new(s);
    l.draw(bits) < threshold
}

/// Runs the state-recovery attack against LFSR-based PRA.
///
/// * `observe_prob` — fraction of refresh decisions the attacker can
///   attribute and learn from (1.0 = perfect side channel).
/// * `accesses_per_interval` — attacker-visible accesses per 64 ms.
/// * `max_intervals` — give up after this many intervals.
pub fn lfsr_attack(
    p: f64,
    bits: u32,
    t: u32,
    observe_prob: f64,
    accesses_per_interval: u64,
    max_intervals: u64,
    seed: u64,
) -> LfsrAttackOutcome {
    assert!((0.0..=1.0).contains(&observe_prob) && observe_prob > 0.0);
    assert!(accesses_per_interval > 0 && max_intervals > 0);
    let threshold = ((p * f64::from(1u32 << bits)).round() as u32).max(1);
    let mut observer_rng = StdRng::seed_from_u64(seed);
    let lfsr_seed = (observer_rng.gen::<u16>()).max(1);
    let budget = max_intervals * accesses_per_interval;
    let jumps = JumpTables::new(bits, 64 - budget.leading_zeros() as usize + 1);

    // Candidate states, tracked at the position of the last observation.
    let mut candidates: Vec<u16> = (1..=u16::MAX).collect();
    let mut real_state = lfsr_seed;
    let mut position: u64 = 0; // draws consumed so far

    // Geometric gaps between observed decisions.
    let next_gap = |rng: &mut StdRng| -> u64 {
        if observe_prob >= 1.0 {
            1
        } else {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            (u.ln() / (1.0 - observe_prob).ln()).floor() as u64 + 1
        }
    };

    while candidates.len() > 1 {
        let gap = next_gap(&mut observer_rng);
        if position + gap > budget {
            return LfsrAttackOutcome {
                recovery_accesses: None,
                failure_interval: None,
                evasion_clean: false,
            };
        }
        // Advance the real stream and all candidates to the observation.
        real_state = jumps.advance(real_state, gap - 1);
        let observed = decision_from(real_state, bits, threshold);
        real_state = jumps.advance(real_state, 1);
        position += gap;
        for s in candidates.iter_mut() {
            *s = jumps.advance(*s, gap - 1);
        }
        candidates.retain(|&s| decision_from(s, bits, threshold) == observed);
        for s in candidates.iter_mut() {
            *s = jumps.advance(*s, 1);
        }
    }

    let recovery_accesses = position;

    // Evasion phase: predict each draw; hammer on "no refresh", burn
    // "refresh" draws on dummy accesses.
    let mut predictor = Lfsr16::new(candidates[0]);
    let mut real = Lfsr16::new(real_state);
    let mut hammers = 0u32;
    let mut victim_refreshed = false;
    while hammers < t {
        position += 1;
        let predicted = predictor.draw(bits) < threshold;
        let actual = real.draw(bits) < threshold;
        if !predicted {
            hammers += 1;
            if actual {
                victim_refreshed = true; // misprediction — cannot happen
            }
        }
        // else: dummy access to an unrelated row absorbs the refresh.
    }
    let interval = position / accesses_per_interval + 1;
    LfsrAttackOutcome {
        recovery_accesses: Some(recovery_accesses),
        failure_interval: (interval <= max_intervals && !victim_refreshed).then_some(interval),
        evasion_clean: !victim_refreshed,
    }
}

/// Exact refresh probability of the LFSR decision stream over one full
/// period (65535 draws of `bits` bits) — exposes the quantisation bias.
pub fn lfsr_effective_probability(p: f64, bits: u32, seed: u16) -> f64 {
    let threshold = ((p * f64::from(1u32 << bits)).round() as u32).max(1);
    let mut lfsr = Lfsr16::new(seed);
    let mut fires = 0u64;
    for _ in 0..65_535u64 {
        if lfsr.draw(bits) < threshold {
            fires += 1;
        }
    }
    fires as f64 / 65_535.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_mc_matches_eq1() {
        // (1 − 3/512)^2000 ≈ e^(−11.72) is too small to sample; use a short
        // window where the analytic value is testable.
        let t = 500;
        let p = 0.005; // quantised to 3/512
        let windows = 40_000;
        let fails = ideal_window_failures(p, 9, t, windows, 11);
        let expect = (1.0 - 3.0 / 512.0_f64).powi(t as i32);
        let rate = fails as f64 / windows as f64;
        assert!(
            (rate - expect).abs() < 0.01,
            "MC {rate} vs analytic {expect}"
        );
    }

    #[test]
    fn full_observation_recovers_state_within_one_interval() {
        let out = lfsr_attack(0.005, 9, 16_384, 1.0, 1_000_000, 10, 42);
        let rec = out.recovery_accesses.expect("state must be recovered");
        assert!(rec < 1_000, "full observation recovers fast: {rec}");
        assert_eq!(out.failure_interval, Some(1));
        assert!(out.evasion_clean, "prediction must be perfect");
    }

    #[test]
    fn sparse_observation_stretches_recovery_across_intervals() {
        // ~25-interval failure arises at low observation rates — the regime
        // of the paper's reported figure.
        let out = lfsr_attack(0.005, 9, 16_384, 0.00002, 1_000_000, 200, 43);
        match out.failure_interval {
            Some(iv) => assert!(iv > 1, "sparse observer needs several intervals: {iv}"),
            None => {
                // Budget exceeded is also an acceptable sparse outcome.
                assert!(out.recovery_accesses.is_none());
            }
        }
    }

    #[test]
    fn evasion_is_deterministic_once_recovered() {
        for seed in [1u64, 2, 3] {
            let out = lfsr_attack(0.01, 9, 4_096, 1.0, 1_000_000, 5, seed);
            assert!(out.evasion_clean, "seed {seed}");
            assert_eq!(out.failure_interval, Some(1));
        }
    }

    #[test]
    fn lfsr_effective_probability_near_nominal() {
        let p_eff = lfsr_effective_probability(0.005, 9, 0xACE1);
        // Quantised nominal is 3/512 ≈ 0.00586.
        assert!((p_eff - 3.0 / 512.0).abs() < 0.002, "effective p {p_eff}");
    }

    #[test]
    fn lfsr_windows_are_deterministic_not_random() {
        // The crucial structural difference from an ideal PRNG: the LFSR's
        // failure pattern is a deterministic function of the seed — rerun
        // it and the "random" outcome repeats bit for bit, which is what a
        // state-recovery attacker exploits.
        let a = lfsr_window_failures(0.01, 9, 200, 300, 0x1234);
        let b = lfsr_window_failures(0.01, 9, 200, 300, 0x1234);
        assert_eq!(a, b, "same seed, same failures");
        // Benign (non-adversarial) traffic still sees roughly the nominal
        // failure rate — the bias alone is not the problem.
        let expect = (1.0 - 5.0 / 512.0_f64).powi(200) * 300.0;
        assert!(
            (a as f64) > expect * 0.3 && (a as f64) < expect * 3.0,
            "lfsr failures {a} vs ideal expectation {expect}"
        );
    }
}
