//! # cat-reliability — PRA survivability analysis
//!
//! Reproduces §III-A:
//!
//! * [`analytic`] — Eq. 1: the probability that PRA fails to protect a
//!   victim within `Y` years, `(1−p)^T · Q0 · Q1`, evaluated in log space
//!   (the probabilities underflow `f64` for large `T`), plus the Chipkill
//!   reference of 1e-4 (Fig. 1).
//! * [`montecarlo`] — simulation of refresh-threshold windows under an
//!   ideal PRNG (validating Eq. 1) and under a 16-bit LFSR, including the
//!   state-recovery attacker that makes LFSR-based PRA collapse — our
//!   reconstruction of the paper's "unsurvivability reaches 1e-4 after only
//!   25 refresh intervals" Monte-Carlo claim (see `DESIGN.md` §3.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod montecarlo;

pub use analytic::{chipkill_log10, log10_unsurvivability, unsurvivability, CHIPKILL};
pub use montecarlo::{ideal_window_failures, lfsr_attack, LfsrAttackOutcome};
