//! Eq. 1 — PRA's Y-years unsurvivability.
//!
//! `unsurvivability = (1 − p)^T × Q0 × Q1`, where `p` is the probability of
//! refreshing the two victim rows on an access, `T` the refresh threshold,
//! `Q0` the number of refresh-threshold windows per 64 ms refresh interval,
//! and `Q1` the number of 64 ms periods in `Y` years.

/// Chipkill's 5-year unsurvivability reference used throughout Fig. 1.
pub const CHIPKILL: f64 = 1e-4;

/// Seconds per refresh interval (64 ms).
const INTERVAL_S: f64 = 0.064;
/// Seconds per (Julian) year.
const YEAR_S: f64 = 365.25 * 24.0 * 3600.0;

/// Number of 64 ms periods in `years` years (`Q1`).
pub fn q1(years: f64) -> f64 {
    years * YEAR_S / INTERVAL_S
}

/// log10 of Eq. 1 — stable for any `T` (the raw probability underflows
/// `f64` around `T ≈ 3.5e5` for p = 0.002).
///
/// ```
/// // Fig. 1: T = 32K, p = 0.001 sits just above the Chipkill line.
/// let u = cat_reliability::log10_unsurvivability(0.001, 32_768, 10.0, 5.0);
/// assert!(u > -4.0 && u < -3.0);
/// ```
pub fn log10_unsurvivability(p: f64, t: u32, q0: f64, years: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p in (0,1)");
    assert!(q0 > 0.0 && years > 0.0);
    f64::from(t) * (1.0 - p).log10() + q0.log10() + q1(years).log10()
}

/// Eq. 1 as a plain probability (0 when it underflows).
pub fn unsurvivability(p: f64, t: u32, q0: f64, years: f64) -> f64 {
    10f64.powf(log10_unsurvivability(p, t, q0, years)).min(1.0)
}

/// log10 of the Chipkill reference.
pub fn chipkill_log10() -> f64 {
    CHIPKILL.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_for_five_years() {
        // ≈ 2.466e9 periods.
        let q = q1(5.0);
        assert!((q / 2.466e9 - 1.0).abs() < 0.01, "{q}");
    }

    #[test]
    fn fig1_t32k_crossover_near_p_001() {
        // The paper: "for T = 32K and p > 0.001, PRA's unsurvivability is
        // lower than the Chipkill's 1E-4".
        let at_001 = log10_unsurvivability(0.001, 32_768, 10.0, 5.0);
        let at_002 = log10_unsurvivability(0.002, 32_768, 10.0, 5.0);
        assert!(
            at_001 > chipkill_log10(),
            "p=0.001 fails chipkill: {at_001}"
        );
        assert!(
            at_002 < chipkill_log10(),
            "p=0.002 beats chipkill: {at_002}"
        );
    }

    #[test]
    fn smaller_thresholds_need_larger_p() {
        // Fig. 1's key observation: unsurvivability rises exponentially as
        // T scales down.
        for (t, p_needed) in [(32_768u32, 0.002), (16_384, 0.003), (8_192, 0.005)] {
            let ok = log10_unsurvivability(p_needed, t, 40.0, 5.0);
            assert!(ok < chipkill_log10(), "T={t} p={p_needed}: {ok}");
            let not_ok = log10_unsurvivability(p_needed / 2.5, t, 40.0, 5.0);
            assert!(
                not_ok > chipkill_log10(),
                "T={t} p={}: {not_ok}",
                p_needed / 2.5
            );
        }
    }

    #[test]
    fn unsurvivability_is_monotone() {
        // Decreasing in p, increasing in Q0, decreasing in T.
        let base = log10_unsurvivability(0.003, 16_384, 20.0, 5.0);
        assert!(log10_unsurvivability(0.004, 16_384, 20.0, 5.0) < base);
        assert!(log10_unsurvivability(0.003, 16_384, 40.0, 5.0) > base);
        assert!(log10_unsurvivability(0.003, 8_192, 20.0, 5.0) > base);
    }

    #[test]
    fn plain_probability_clamps() {
        assert_eq!(unsurvivability(0.5, 1_000_000, 10.0, 5.0), 0.0);
        assert_eq!(unsurvivability(1e-9, 2, 1e6, 100.0), 1.0);
        let mid = unsurvivability(0.002, 32_768, 10.0, 5.0);
        assert!(mid > 0.0 && mid < 1e-10);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn zero_p_rejected() {
        let _ = log10_unsurvivability(0.0, 1024, 10.0, 5.0);
    }
}
