//! DRAM refresh energy constants (§VI, \[17, 49, 60\]).

/// Energy to refresh one DRAM row, nJ (Ghosh & Lee \[60\]).
pub const ROW_REFRESH_NJ: f64 = 1.0;

/// Regular auto-refresh power of a 64K-row bank over the 64 ms interval,
/// watts — the CMRPO denominator.
pub const REGULAR_REFRESH_POWER_64K_W: f64 = 2.5e-3;

/// Auto-refresh interval, seconds.
pub const REFRESH_INTERVAL_S: f64 = 64e-3;

/// Regular refresh power for a bank of `rows` rows (scaled from the 64K
/// reference; the quad-core configuration has 128K-row banks).
pub fn regular_refresh_power_w(rows: u32) -> f64 {
    REGULAR_REFRESH_POWER_64K_W * f64::from(rows) / 65_536.0
}

/// Average power spent refreshing `rows` victim rows over `seconds`, watts.
pub fn victim_refresh_power_w(rows: u64, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "need a positive execution time");
    rows as f64 * ROW_REFRESH_NJ * 1e-9 / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_bank_power() {
        assert_eq!(regular_refresh_power_w(65_536), 2.5e-3);
        assert_eq!(regular_refresh_power_w(131_072), 5.0e-3);
    }

    #[test]
    fn victim_power_scales_with_rows_and_time() {
        // 16_000 rows over 64 ms = 0.25 mW = 10 % of a 64K bank's refresh.
        let w = victim_refresh_power_w(16_000, REFRESH_INTERVAL_S);
        assert!((w - 2.5e-4).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "positive execution time")]
    fn zero_time_rejected() {
        let _ = victim_refresh_power_w(1, 0.0);
    }
}
