//! SRAM-level helpers for Fig. 2: the SCA energy sweep over 16‥65536
//! counters and the counter-cache baseline's "optimistic" energy lines.

use cat_core::SchemeKind;

use crate::table2;

/// Counter-cache overhead factor relative to plain SCA SRAM of equal
/// counter capacity: tag array + LRU state + comparators. The paper's
/// footnote 4 argues the tag storage is "inconsequential on a log plot";
/// 1.25 keeps the lines within that reading.
pub const CACHE_OVERHEAD: f64 = 1.25;

/// One point of the Fig. 2 energy breakdown (per bank, per 64 ms interval,
/// in nJ — raw Table II magnitudes, not the CMRPO calibration).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Fig2Point {
    /// Counters per bank.
    pub counters: usize,
    /// Static + dynamic counter energy.
    pub counter_nj: f64,
    /// Victim-refresh energy (measured by simulation).
    pub refresh_nj: f64,
}

impl Fig2Point {
    /// Total energy.
    pub fn total_nj(&self) -> f64 {
        self.counter_nj + self.refresh_nj
    }
}

/// Counter energy (static per interval + dynamic for `accesses`) of SCA
/// with `m` counters, per bank per interval.
pub fn sca_counter_energy_nj(m: usize, accesses: u64, threshold: u32) -> f64 {
    table2::static_nj_per_interval(SchemeKind::Sca, m, threshold)
        + table2::dynamic_nj_per_access(SchemeKind::Sca, m, 1, threshold) * accesses as f64
}

/// The "optimistic" (no-miss) per-interval energy of a counter cache
/// holding `entries` counters, as plotted by Fig. 2's horizontal lines.
pub fn counter_cache_energy_nj(entries: usize, accesses: u64, threshold: u32) -> f64 {
    sca_counter_energy_nj(entries, accesses, threshold) * CACHE_OVERHEAD
}

/// Builds the Fig. 2 sweep given measured refresh-row counts per counter
/// configuration (`refresh_rows[i]` corresponds to `ms[i]`).
pub fn fig2_sweep(
    ms: &[usize],
    refresh_rows: &[u64],
    accesses: u64,
    threshold: u32,
) -> Vec<Fig2Point> {
    assert_eq!(ms.len(), refresh_rows.len());
    ms.iter()
        .zip(refresh_rows)
        .map(|(&m, &rows)| Fig2Point {
            counters: m,
            counter_nj: sca_counter_energy_nj(m, accesses, threshold),
            refresh_nj: rows as f64 * crate::refresh::ROW_REFRESH_NJ,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_energy_grows_with_m() {
        let a = sca_counter_energy_nj(16, 500_000, 32_768);
        let b = sca_counter_energy_nj(1024, 500_000, 32_768);
        let c = sca_counter_energy_nj(65_536, 500_000, 32_768);
        assert!(a < b && b < c);
    }

    #[test]
    fn cache_lines_sit_near_iso_storage_sca() {
        // Fig. 2: the 2KB/8KB cache lines intersect the SCA4096/SCA16384
        // region. With 16-bit counters, 2KB ≈ 1024 entries and 8KB ≈ 4096.
        let line_2kb = counter_cache_energy_nj(1024, 500_000, 32_768);
        let sca_4096 = sca_counter_energy_nj(4096, 500_000, 32_768);
        assert!(
            line_2kb < sca_4096 * 2.0 && line_2kb > sca_4096 / 8.0,
            "2KB line {line_2kb} vs SCA4096 {sca_4096}"
        );
    }

    #[test]
    fn fig2_total_is_u_shaped_with_synthetic_refresh_counts() {
        // Refresh rows fall roughly as 1/M for skewed workloads.
        let ms = [16usize, 64, 128, 512, 4096, 65_536];
        let rows: Vec<u64> = ms.iter().map(|&m| 6_000_000 / m as u64 + 2 * 10).collect();
        let sweep = fig2_sweep(&ms, &rows, 500_000, 32_768);
        let totals: Vec<f64> = sweep.iter().map(|p| p.total_nj()).collect();
        let min_idx = totals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < ms.len() - 1,
            "interior minimum: {totals:?}"
        );
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn sweep_lengths_must_match() {
        let _ = fig2_sweep(&[16, 32], &[100], 1, 32_768);
    }
}
