//! The paper's Table II: per-bank hardware energy and area of DRCAT, PRCAT
//! and SCA for M ∈ {32, 64, 128, 256, 512} counters (T = 32K, L = 11,
//! 45 nm FreePDK synthesis + CACTI SRAM), plus interpolation and scaling.
//!
//! * Interpolation across `M` is log-log linear between table points and
//!   slope-extrapolated beyond them (the Fig. 2 sweep needs 16‥65536).
//! * Scaling across `T` multiplies the storage-dominated terms by the
//!   counter-width ratio: `log2 T` bits per counter for SCA/PRCAT plus the
//!   2-bit weight register for DRCAT (§V-B: "PRCAT uses 2 bytes per counter
//!   for T = 16K … similar to DRCAT").
//! * Scaling across `L` applies to CAT *dynamic* energy only: a lookup
//!   costs between 2 and `L − log2(M) + 2` SRAM accesses (§IV-C), so the
//!   maximum traversal depth scales the per-access energy.

use cat_core::SchemeKind;

/// Counter counts of the published table.
pub const TABLE_M: [usize; 5] = [32, 64, 128, 256, 512];

/// (dynamic nJ/access, static nJ/interval, area mm²) rows per scheme at
/// T = 32K, L = 11.
const DRCAT: [(f64, f64, f64); 5] = [
    (3.05e-4, 5.77e3, 3.16e-2),
    (4.30e-4, 1.39e4, 6.12e-2),
    (5.83e-4, 2.77e4, 1.16e-1),
    (8.72e-4, 5.44e4, 2.23e-1),
    (1.17e-3, 1.06e5, 3.93e-1),
];
const PRCAT: [(f64, f64, f64); 5] = [
    (2.91e-4, 5.55e3, 3.04e-2),
    (4.09e-4, 1.32e4, 5.86e-2),
    (5.50e-4, 2.63e4, 1.11e-1),
    (8.25e-4, 5.13e4, 2.11e-1),
    (1.10e-3, 1.02e5, 3.75e-1),
];
const SCA: [(f64, f64, f64); 5] = [
    (1.41e-4, 3.16e3, 1.86e-2),
    (1.92e-4, 8.81e3, 4.04e-2),
    (2.22e-4, 1.44e4, 6.04e-2),
    (3.12e-4, 2.39e4, 1.00e-1),
    (4.25e-4, 4.52e4, 1.72e-1),
];

/// Reference threshold/levels the table was synthesized for.
const TABLE_T_BITS: f64 = 15.0; // log2(32768)
const TABLE_L: u32 = 11;

fn rows_for(kind: SchemeKind) -> &'static [(f64, f64, f64); 5] {
    match kind {
        SchemeKind::Drcat => &DRCAT,
        SchemeKind::Prcat => &PRCAT,
        // The counter cache stores plain counters in SRAM like SCA; its
        // extra tag/LRU overhead is applied by the `sram` module.
        SchemeKind::Sca | SchemeKind::CounterCache => &SCA,
        SchemeKind::Pra => panic!("PRA has no counter table; use the prng module"),
    }
}

/// Log-log linear interpolation over M with end-slope extrapolation.
fn interp(table: &[(f64, f64, f64); 5], column: usize, m: usize) -> f64 {
    assert!(m >= 2, "need at least 2 counters, got {m}");
    let get = |i: usize| match column {
        0 => table[i].0,
        1 => table[i].1,
        _ => table[i].2,
    };
    let x = (m as f64).log2();
    let xs: Vec<f64> = TABLE_M.iter().map(|&m| (m as f64).log2()).collect();
    // Find the bracketing segment (clamped to end segments).
    let seg = if x <= xs[1] {
        0
    } else if x >= xs[3] {
        3
    } else {
        (1..4).find(|&i| x <= xs[i + 1]).unwrap_or(3)
    };
    let (x0, x1) = (xs[seg], xs[seg + 1]);
    let (y0, y1) = (get(seg).log2(), get(seg + 1).log2());
    let y = y0 + (x - x0) / (x1 - x0) * (y1 - y0);
    y.exp2()
}

/// Width of a counter in bits for the given threshold (`⌈log2 T⌉`).
fn counter_bits(threshold: u32) -> f64 {
    f64::from(32 - (threshold.max(2) - 1).leading_zeros())
}

/// Storage scaling factor relative to the table's T = 32K entry.
fn threshold_scale(kind: SchemeKind, threshold: u32) -> f64 {
    let bits = counter_bits(threshold);
    match kind {
        // DRCAT carries a 2-bit weight register per counter.
        SchemeKind::Drcat => (bits + 2.0) / (TABLE_T_BITS + 2.0),
        _ => bits / TABLE_T_BITS,
    }
}

/// Dynamic-energy scaling with the maximum tree height (CAT only): SRAM
/// accesses per lookup span 2 ‥ `L − log2 M + 2`.
fn level_scale(kind: SchemeKind, m: usize, levels: u32) -> f64 {
    match kind {
        SchemeKind::Drcat | SchemeKind::Prcat => {
            let lg = (m as f64).log2();
            let max_hops = |l: u32| (f64::from(l) - lg + 2.0).max(2.0);
            max_hops(levels) / max_hops(TABLE_L)
        }
        _ => 1.0,
    }
}

/// Dynamic energy per row activation, in nJ.
///
/// ```
/// use cat_core::SchemeKind;
/// // The published table entry is reproduced exactly.
/// let e = cat_energy::dynamic_nj_per_access(SchemeKind::Drcat, 64, 11, 32_768);
/// assert!((e - 4.30e-4).abs() < 1e-9);
/// ```
pub fn dynamic_nj_per_access(kind: SchemeKind, m: usize, levels: u32, threshold: u32) -> f64 {
    interp(rows_for(kind), 0, m) * threshold_scale(kind, threshold) * level_scale(kind, m, levels)
}

/// Static (leakage) energy per 64 ms refresh interval, in nJ — the raw
/// per-table value; the CMRPO module divides by the DIMM's bank count (see
/// the crate-level calibration note).
pub fn static_nj_per_interval(kind: SchemeKind, m: usize, threshold: u32) -> f64 {
    interp(rows_for(kind), 1, m) * threshold_scale(kind, threshold)
}

/// Synthesized area in mm².
pub fn area_mm2(kind: SchemeKind, m: usize, threshold: u32) -> f64 {
    interp(rows_for(kind), 2, m) * threshold_scale(kind, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_entries_reproduced_exactly() {
        for (i, &m) in TABLE_M.iter().enumerate() {
            for (kind, table) in [
                (SchemeKind::Drcat, &DRCAT),
                (SchemeKind::Prcat, &PRCAT),
                (SchemeKind::Sca, &SCA),
            ] {
                let (dy, st, ar) = table[i];
                assert!((dynamic_nj_per_access(kind, m, 11, 32_768) - dy).abs() / dy < 1e-9);
                assert!((static_nj_per_interval(kind, m, 32_768) - st).abs() / st < 1e-9);
                assert!((area_mm2(kind, m, 32_768) - ar).abs() / ar < 1e-9);
            }
        }
    }

    #[test]
    fn interpolation_is_monotone_in_m() {
        let mut prev = 0.0;
        for m in [16, 32, 48, 64, 96, 128, 1024, 65_536] {
            let e = static_nj_per_interval(SchemeKind::Sca, m, 32_768);
            assert!(e > prev, "static energy must grow with M");
            prev = e;
        }
    }

    #[test]
    fn extrapolation_brackets_match_paper_figure2_magnitudes() {
        // Fig. 2's counter-energy curve spans ~1e3 nJ (M=16) to ~5e6 nJ
        // (M=65536) per interval.
        let lo = static_nj_per_interval(SchemeKind::Sca, 16, 32_768);
        let hi = static_nj_per_interval(SchemeKind::Sca, 65_536, 32_768);
        assert!((8e2..4e3).contains(&lo), "M=16: {lo}");
        assert!((1e6..2e7).contains(&hi), "M=65536: {hi}");
    }

    #[test]
    fn smaller_thresholds_shrink_storage() {
        let full = static_nj_per_interval(SchemeKind::Sca, 64, 32_768);
        let half = static_nj_per_interval(SchemeKind::Sca, 64, 16_384);
        assert!((half / full - 14.0 / 15.0).abs() < 1e-9);
        // DRCAT's weight bits damp the ratio.
        let full = static_nj_per_interval(SchemeKind::Drcat, 64, 32_768);
        let half = static_nj_per_interval(SchemeKind::Drcat, 64, 16_384);
        assert!((half / full - 16.0 / 17.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_trees_cost_more_dynamic_energy() {
        let e11 = dynamic_nj_per_access(SchemeKind::Drcat, 64, 11, 32_768);
        let e14 = dynamic_nj_per_access(SchemeKind::Drcat, 64, 14, 32_768);
        let e7 = dynamic_nj_per_access(SchemeKind::Drcat, 64, 7, 32_768);
        assert!(e14 > e11 && e11 > e7);
        // SCA ignores levels.
        let s = dynamic_nj_per_access(SchemeKind::Sca, 64, 1, 32_768);
        assert!((s - 1.92e-4).abs() < 1e-9);
    }

    #[test]
    fn iso_area_prcat64_approx_sca128() {
        // §VII-A: "PRCAT64 and SCA128 occupy iso-area".
        let prcat = area_mm2(SchemeKind::Prcat, 64, 32_768);
        let sca = area_mm2(SchemeKind::Sca, 128, 32_768);
        assert!((prcat / sca - 1.0).abs() < 0.05, "{prcat} vs {sca}");
    }

    #[test]
    #[should_panic(expected = "PRA has no counter table")]
    fn pra_rejected() {
        let _ = dynamic_nj_per_access(SchemeKind::Pra, 64, 1, 32_768);
    }
}
