//! The true-random-number-generator specification PRA depends on
//! (Table II, from Srinivasan et al. \[25\]: an all-digital PVT-tolerant
//! TRNG in 45 nm).

/// Synthesized area of the shared PRNG, mm².
pub const AREA_MM2: f64 = 4.004e-3;
/// Sustained throughput, Gbit/s.
pub const THROUGHPUT_GBPS: f64 = 2.4;
/// Active power, mW.
pub const POWER_MW: f64 = 7.0;
/// Energy efficiency, nJ per bit (`power / throughput`).
pub const NJ_PER_BIT: f64 = 2.90e-3;
/// Energy to draw the paper's 9 decision bits, nJ (`eng_PRNG`).
pub const ENG_PRNG_9BITS_NJ: f64 = 2.625e-2;

/// Energy in nJ to generate `bits` random bits.
///
/// ```
/// // The paper's 9-bit draw costs ~2.625e-2 nJ (eng_PRNG).
/// assert!((cat_energy::prng::energy_nj(9) - 2.625e-2).abs() < 5e-4);
/// ```
pub fn energy_nj(bits: u32) -> f64 {
    f64::from(bits) * NJ_PER_BIT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_power_over_throughput() {
        let computed = POWER_MW * 1e-3 / (THROUGHPUT_GBPS * 1e9) * 1e9; // nJ/bit
        assert!((computed - NJ_PER_BIT).abs() / NJ_PER_BIT < 0.01);
    }

    #[test]
    fn nine_bits_match_eng_prng() {
        assert!((energy_nj(9) - ENG_PRNG_9BITS_NJ).abs() / ENG_PRNG_9BITS_NJ < 0.01);
    }

    #[test]
    fn fifty_accesses_cost_about_one_row_refresh() {
        // §VII-B: "on average, for every 50 row accesses, PRA consumes
        // energy equal to that of refreshing one row" (1 nJ).
        let fifty = 50.0 * energy_nj(9);
        assert!((0.9..1.6).contains(&fifty), "{fifty} nJ");
    }
}
