//! CMRPO — Crosstalk Mitigation Refresh Power Overhead (§VI, §VII-B).
//!
//! > "The CMRPO is the average power consumed for deciding which rows to be
//! > refreshed in order to mitigate crosstalk … computed relative to the
//! > regular refresh power in the absence of any crosstalk mitigation
//! > (2.5 mW to refresh 64K rows during a 64 ms refresh interval)."
//!
//! Three components per §VII-B: (1) dynamic power — per-access decision
//! energy times the access rate; (2) static power — leakage of the counter
//! structures per refresh interval; (3) refresh power — victim rows
//! refreshed times 1 nJ, over the execution time.

use cat_core::{HardwareProfile, SchemeKind, SchemeStats};

use crate::{prng, refresh, table2};

/// Table II's static column interpreted DIMM-wide: divide per bank (see
/// the crate-level calibration note).
pub const STATIC_SHARE_BANKS: f64 = 16.0;

/// CMRPO split into the paper's three components, each already normalised
/// to the regular refresh power (i.e. `0.04` = 4 %).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CmrpoBreakdown {
    /// Per-access decision energy (counter SRAM traffic or PRNG draws).
    pub dynamic: f64,
    /// Counter-structure leakage.
    pub static_: f64,
    /// Victim-row refresh energy.
    pub refresh: f64,
}

impl CmrpoBreakdown {
    /// Total CMRPO (fraction of regular refresh power).
    pub fn total(&self) -> f64 {
        self.dynamic + self.static_ + self.refresh
    }
}

impl std::fmt::Display for CmrpoBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2}% (dyn {:.2}% + static {:.2}% + refresh {:.2}%)",
            self.total() * 100.0,
            self.dynamic * 100.0,
            self.static_ * 100.0,
            self.refresh * 100.0
        )
    }
}

/// Computes CMRPO from aggregated scheme statistics.
///
/// * `profile` — the scheme's hardware description.
/// * `stats` — event counts summed over all banks.
/// * `banks` — number of banks the stats cover.
/// * `rows_per_bank` — bank height (scales the refresh-power denominator).
/// * `exec_seconds` — execution time the stats accumulated over.
///
/// ```
/// use cat_core::{HardwareProfile, SchemeKind, SchemeStats};
///
/// let profile = HardwareProfile {
///     kind: SchemeKind::Drcat, counters: 64, counter_bits: 15,
///     max_levels: 11, prng_bits_per_activation: 0, refresh_threshold: 32_768,
/// };
/// let stats = SchemeStats {
///     activations: 8_000_000,
///     refreshed_rows: 30_000,
///     ..SchemeStats::default()
/// };
/// let c = cat_energy::cmrpo_from_stats(&profile, &stats, 16, 65_536, 0.064);
/// assert!(c.total() > 0.0 && c.total() < 0.2);
/// ```
pub fn cmrpo_from_stats(
    profile: &HardwareProfile,
    stats: &SchemeStats,
    banks: u32,
    rows_per_bank: u32,
    exec_seconds: f64,
) -> CmrpoBreakdown {
    assert!(banks > 0 && exec_seconds > 0.0);
    let baseline_w = f64::from(banks) * refresh::regular_refresh_power_w(rows_per_bank);

    let dynamic_w = match profile.kind {
        SchemeKind::Pra => {
            // One shared PRNG serves all banks; energy scales with draws.
            prng::NJ_PER_BIT * stats.prng_bits as f64 * 1e-9 / exec_seconds
        }
        _ => {
            table2::dynamic_nj_per_access(
                profile.kind,
                profile.counters,
                profile.max_levels,
                profile.refresh_threshold,
            ) * stats.activations as f64
                * 1e-9
                / exec_seconds
        }
    };

    let static_w = match profile.kind {
        SchemeKind::Pra => 0.0,
        _ => {
            table2::static_nj_per_interval(
                profile.kind,
                profile.counters,
                profile.refresh_threshold,
            ) / STATIC_SHARE_BANKS
                * f64::from(banks)
                * 1e-9
                / refresh::REFRESH_INTERVAL_S
        }
    };

    let refresh_w = refresh::victim_refresh_power_w(stats.refreshed_rows, exec_seconds);

    CmrpoBreakdown {
        dynamic: dynamic_w / baseline_w,
        static_: static_w / baseline_w,
        refresh: refresh_w / baseline_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(kind: SchemeKind, counters: usize) -> HardwareProfile {
        HardwareProfile {
            kind,
            counters,
            counter_bits: 15,
            max_levels: 11,
            prng_bits_per_activation: 9,
            refresh_threshold: 32_768,
        }
    }

    fn stats(activations: u64, refreshed_rows: u64, prng_bits: u64) -> SchemeStats {
        SchemeStats {
            activations,
            refreshed_rows,
            prng_bits,
            ..SchemeStats::default()
        }
    }

    #[test]
    fn pra_is_prng_dominated() {
        // 8.4M accesses over 64 ms (the paper's traffic band), p = 0.002:
        // ~2100 victim rows per bank × 16 banks.
        let s = stats(8_400_000, 33_600, 8_400_000 * 9);
        let c = cmrpo_from_stats(&profile(SchemeKind::Pra, 0), &s, 16, 65_536, 0.064);
        assert!(c.dynamic > c.refresh, "PRNG dominates: {c}");
        assert!((0.06..0.14).contains(&c.total()), "PRA total {c}");
        assert_eq!(c.static_, 0.0);
    }

    #[test]
    fn drcat64_lands_in_the_paper_band() {
        // Fig. 8: DRCAT64 ≈ 4 % at T = 32K. Refresh rows ~25K per system.
        let s = stats(8_400_000, 25_000, 0);
        let c = cmrpo_from_stats(&profile(SchemeKind::Drcat, 64), &s, 16, 65_536, 0.064);
        assert!((0.01..0.06).contains(&c.total()), "DRCAT64 total {c}");
    }

    #[test]
    fn sca64_refresh_dominates() {
        // SCA64 refreshes 1026-row groups: ~10 events per bank per epoch.
        let s = stats(8_400_000, 1026 * 10 * 16, 0);
        let c = cmrpo_from_stats(&profile(SchemeKind::Sca, 64), &s, 16, 65_536, 0.064);
        assert!(c.refresh > c.static_ + c.dynamic, "{c}");
        assert!((0.05..0.15).contains(&c.total()), "SCA64 total {c}");
    }

    #[test]
    fn quad_core_banks_scale_the_denominator() {
        let s = stats(8_400_000, 25_000, 0);
        let dual = cmrpo_from_stats(&profile(SchemeKind::Drcat, 64), &s, 16, 65_536, 0.064);
        let quad = cmrpo_from_stats(&profile(SchemeKind::Drcat, 64), &s, 16, 131_072, 0.064);
        assert!(quad.total() < dual.total(), "bigger banks, bigger baseline");
    }

    #[test]
    fn longer_runs_amortise_nothing() {
        // Rates, not totals: doubling both time and events keeps CMRPO.
        let p = profile(SchemeKind::Prcat, 64);
        let a = cmrpo_from_stats(&p, &stats(4_000_000, 10_000, 0), 16, 65_536, 0.064);
        let b = cmrpo_from_stats(&p, &stats(8_000_000, 20_000, 0), 16, 65_536, 0.128);
        assert!((a.total() - b.total()).abs() < 1e-12);
    }

    #[test]
    fn display_formats_percentages() {
        let c = CmrpoBreakdown {
            dynamic: 0.01,
            static_: 0.02,
            refresh: 0.03,
        };
        let s = c.to_string();
        assert!(s.contains("6.00%"), "{s}");
    }
}
