//! # cat-energy — hardware energy, area and CMRPO model
//!
//! Reproduces the paper's hardware cost accounting:
//!
//! * [`table2`] — the synthesized per-bank energy/area constants of
//!   Table II (Synopsys Design Compiler / PrimeTime at 45 nm + CACTI SRAM),
//!   with interpolation across the counter count `M` and documented scaling
//!   for the refresh threshold `T` and tree height `L`.
//! * [`prng`] — the true-random-number-generator specification used by PRA
//!   (reference \[25\]: 2.4 Gbps, 7 mW, 2.9 pJ/bit).
//! * [`refresh`] — DRAM refresh constants: 1 nJ per row refresh \[60\] and
//!   the 2.5 mW regular auto-refresh power of a 64K-row bank.
//! * [`cmrpo`] — the Crosstalk Mitigation Refresh Power Overhead (§VI):
//!   dynamic + static + victim-refresh power, relative to regular refresh.
//! * [`sram`] — SRAM scaling helpers extending Table II to Fig. 2's
//!   16‥65536-counter sweep and the counter-cache baseline \[26\].
//!
//! **Calibration note (DESIGN.md §3.2):** Table II's "static energy per
//! refresh interval" taken at face value *per bank* would alone exceed the
//! total CMRPO the paper reports for DRCAT64 (0.217 mW ≈ 8.7 % of 2.5 mW
//! vs. a reported 4 % total), so [`cmrpo`] interprets the static column as
//! DIMM-wide (16 banks) and divides accordingly; [`sram`]'s Fig. 2 curves
//! use the raw per-bank values, matching that figure's plotted magnitudes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmrpo;
pub mod prng;
pub mod refresh;
pub mod sram;
pub mod table2;

pub use cmrpo::{cmrpo_from_stats, CmrpoBreakdown};
pub use table2::{area_mm2, dynamic_nj_per_access, static_nj_per_interval};
