//! Trace records: the USIMM-style "N non-memory instructions, then one
//! memory access" format.

/// One trace record: `gap` non-memory instructions followed by one memory
/// access to the cache line at byte address `addr`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Non-memory instructions executed before this access.
    pub gap: u32,
    /// `true` for a store (enters the write queue), `false` for a load.
    pub write: bool,
    /// Physical byte address (decoded by [`crate::AddressMapping`]).
    pub addr: u64,
}

/// A per-core instruction/memory trace. Blanket-implemented for every
/// iterator of [`MemAccess`], so synthetic generators plug in directly.
pub trait TraceSource: Iterator<Item = MemAccess> {}

impl<T: Iterator<Item = MemAccess>> TraceSource for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_iterator_is_a_trace_source() {
        fn count<T: TraceSource>(t: T) -> usize {
            t.count()
        }
        let v = vec![
            MemAccess {
                gap: 1,
                write: false,
                addr: 0,
            },
            MemAccess {
                gap: 2,
                write: true,
                addr: 64,
            },
        ];
        assert_eq!(count(v.into_iter()), 2);
    }
}
