//! System configurations (the paper's Table I) and DDR3 timing parameters.

use cat_engine::{GeometryError, MemGeometry};

/// Label for the paper's two Table-I interleavings (§VIII-B), used in
/// result tables and figure legends.
///
/// This is descriptive only: the actual address mapping always follows the
/// `rw:rk:bk:ch:col:offset` field order with widths derived from the
/// configured channel/rank/bank *counts* (see `cat_engine::AddressMapping`),
/// so the named constructors ([`SystemConfig::dual_core_two_channel`],
/// [`SystemConfig::quad_core_four_channel`]) set this field consistently
/// with their geometry, and arbitrary power-of-two geometries decode
/// correctly regardless of the label.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MappingPolicy {
    /// 2 channels × 1 rank × 8 banks = 16 banks.
    TwoChannel,
    /// 4 channels × 2 ranks × 8 banks = 64 banks.
    FourChannel,
}

impl std::fmt::Display for MappingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingPolicy::TwoChannel => f.write_str("2channels"),
            MappingPolicy::FourChannel => f.write_str("4channels"),
        }
    }
}

/// DDR3-1600 timing (Micron MT41J512M8 data sheet, as used by USIMM), in
/// memory-bus cycles of 1.25 ns.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimingParams {
    /// ACT → internal READ/WRITE delay (tRCD).
    pub t_rcd: u64,
    /// PRE → ACT delay (tRP).
    pub t_rp: u64,
    /// READ → first data (CL).
    pub t_cas: u64,
    /// ACT → PRE minimum (tRAS).
    pub t_ras: u64,
    /// ACT → ACT same bank (tRC) — also the per-row refresh cost.
    pub t_rc: u64,
    /// Refresh command duration (tRFC, 4 Gb device).
    pub t_rfc: u64,
    /// Average periodic refresh interval (tREFI).
    pub t_refi: u64,
    /// Data-burst occupancy of the channel (BL8 on a DDR bus).
    pub burst: u64,
    /// Write recovery (tWR).
    pub t_wr: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        // 1.25 ns cycles: tRCD = tRP = CL = 13.75 ns → 11 cycles;
        // tRAS = 35 ns → 28; tRC = 48.75 ns → 39; tRFC = 260 ns → 208;
        // tREFI = 7.8 µs → 6240; burst = 4 bus cycles; tWR = 15 ns → 12.
        TimingParams {
            t_rcd: 11,
            t_rp: 11,
            t_cas: 11,
            t_ras: 28,
            t_rc: 39,
            t_rfc: 208,
            t_refi: 6240,
            burst: 4,
            t_wr: 12,
        }
    }
}

/// Full system configuration (Table I).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Rows per bank (64K dual-core, 128K quad-core).
    pub rows_per_bank: u32,
    /// Cache lines per row (16 KB row / 64 B line = 256).
    pub lines_per_row: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
    /// Number of cores.
    pub cores: usize,
    /// Reorder-buffer entries per core.
    pub rob_size: usize,
    /// Instructions fetched per CPU cycle.
    pub fetch_width: usize,
    /// Instructions retired per CPU cycle.
    pub retire_width: usize,
    /// CPU cycles per memory-bus cycle (3.2 GHz / 800 MHz).
    pub cpu_per_mem_cycle: u64,
    /// Write-queue capacity per channel.
    pub write_queue_capacity: usize,
    /// Drain starts above this write-queue occupancy.
    pub wq_high_watermark: usize,
    /// Drain stops below this occupancy.
    pub wq_low_watermark: usize,
    /// Memory bus frequency in MHz (for time conversions).
    pub mem_clock_mhz: u64,
    /// Address interleaving policy.
    pub mapping: MappingPolicy,
    /// Auto-refresh epoch in milliseconds (64 ms for DDR3).
    pub epoch_ms: u64,
    /// DRAM timing.
    pub timing: TimingParams,
}

impl SystemConfig {
    /// The paper's default: two 3.2 GHz cores, 2 channels × 1 rank × 8
    /// banks, 64K-row banks (Table I).
    pub fn dual_core_two_channel() -> Self {
        SystemConfig {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 65_536,
            lines_per_row: 256,
            line_bytes: 64,
            cores: 2,
            rob_size: 128,
            fetch_width: 4,
            retire_width: 2,
            cpu_per_mem_cycle: 4,
            write_queue_capacity: 64,
            wq_high_watermark: 40,
            wq_low_watermark: 20,
            mem_clock_mhz: 800,
            mapping: MappingPolicy::TwoChannel,
            epoch_ms: 64,
            timing: TimingParams::default(),
        }
    }

    /// Quad-core system on the 2-channel mapping: 16 banks of 128K rows
    /// (§VIII-B).
    pub fn quad_core_two_channel() -> Self {
        SystemConfig {
            cores: 4,
            rows_per_bank: 131_072,
            ..Self::dual_core_two_channel()
        }
    }

    /// Quad-core system on the 4-channel mapping: 64 banks of 128K rows.
    pub fn quad_core_four_channel() -> Self {
        SystemConfig {
            cores: 4,
            rows_per_bank: 131_072,
            channels: 4,
            ranks_per_channel: 2,
            mapping: MappingPolicy::FourChannel,
            ..Self::dual_core_two_channel()
        }
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// The DRAM geometry as the engine layer's [`MemGeometry`] (what
    /// `AddressMapping::new(&cfg)` and `MemorySystem::new(&cfg, …)` convert
    /// to internally).
    pub fn geometry(&self) -> MemGeometry {
        MemGeometry::from(self)
    }

    /// Validates the configuration: every geometry field must be a nonzero
    /// power of two (the bit-field address map aliases otherwise) and the
    /// write-queue watermarks must satisfy `wq_low < wq_high ≤ capacity`
    /// (drain hysteresis deadlocks or thrashes otherwise).
    ///
    /// [`crate::Simulator::new`] and the engine-layer constructors
    /// (`AddressMapping::new`, `MemorySystem::new`) hard-error on invalid
    /// input; call this to get the failure as a value instead of a panic.
    pub fn validate(&self) -> Result<(), SystemConfigError> {
        self.geometry()
            .validate()
            .map_err(SystemConfigError::Geometry)?;
        if !(self.wq_low_watermark < self.wq_high_watermark
            && self.wq_high_watermark <= self.write_queue_capacity)
        {
            return Err(SystemConfigError::Watermarks {
                low: self.wq_low_watermark,
                high: self.wq_high_watermark,
                capacity: self.write_queue_capacity,
            });
        }
        Ok(())
    }

    /// Memory-bus cycles per auto-refresh epoch.
    pub fn cycles_per_epoch(&self) -> u64 {
        self.epoch_ms * self.mem_clock_mhz * 1000
    }

    /// Seconds per memory-bus cycle.
    pub fn seconds_per_cycle(&self) -> f64 {
        1.0 / (self.mem_clock_mhz as f64 * 1e6)
    }
}

/// Why a [`SystemConfig`] failed [`SystemConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SystemConfigError {
    /// A geometry field is not a nonzero power of two.
    Geometry(GeometryError),
    /// Write-queue watermarks violate `wq_low < wq_high ≤ capacity`.
    Watermarks {
        /// Configured `wq_low_watermark`.
        low: usize,
        /// Configured `wq_high_watermark`.
        high: usize,
        /// Configured `write_queue_capacity`.
        capacity: usize,
    },
}

impl std::fmt::Display for SystemConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemConfigError::Geometry(e) => write!(f, "{e}"),
            SystemConfigError::Watermarks {
                low,
                high,
                capacity,
            } => write!(
                f,
                "write-queue watermarks must satisfy wq_low < wq_high <= capacity, \
                 got low {low}, high {high}, capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for SystemConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SystemConfig::dual_core_two_channel();
        assert_eq!(c.total_banks(), 16);
        assert_eq!(c.rows_per_bank, 65_536);
        assert_eq!(c.cores, 2);
        assert_eq!(c.rob_size, 128);
        // 64 ms at 800 MHz = 51.2 M cycles.
        assert_eq!(c.cycles_per_epoch(), 51_200_000);
        assert!((c.seconds_per_cycle() - 1.25e-9).abs() < 1e-15);
    }

    #[test]
    fn quad_core_variants() {
        let q2 = SystemConfig::quad_core_two_channel();
        assert_eq!(q2.total_banks(), 16);
        assert_eq!(q2.rows_per_bank, 131_072);
        assert_eq!(q2.cores, 4);
        let q4 = SystemConfig::quad_core_four_channel();
        assert_eq!(q4.total_banks(), 64);
        assert_eq!(q4.mapping, MappingPolicy::FourChannel);
    }

    #[test]
    fn ddr3_timing_in_cycles() {
        let t = TimingParams::default();
        assert_eq!(t.t_rc, 39); // 48.75 ns at 1.25 ns/cycle
        assert_eq!(t.t_refi, 6240); // 7.8 µs
        assert!(t.t_ras + t.t_rp == t.t_rc);
    }

    #[test]
    fn mapping_display() {
        assert_eq!(MappingPolicy::TwoChannel.to_string(), "2channels");
        assert_eq!(MappingPolicy::FourChannel.to_string(), "4channels");
    }

    #[test]
    fn table1_configs_validate() {
        for cfg in [
            SystemConfig::dual_core_two_channel(),
            SystemConfig::quad_core_two_channel(),
            SystemConfig::quad_core_four_channel(),
        ] {
            cfg.validate().expect("Table I configs are valid");
            assert_eq!(cfg.geometry().total_banks(), cfg.total_banks());
        }
    }

    #[test]
    fn non_power_of_two_geometry_fails_validation() {
        let mut cfg = SystemConfig::dual_core_two_channel();
        cfg.banks_per_rank = 6;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, SystemConfigError::Geometry(_)));
        assert!(err.to_string().contains("banks_per_rank"));
    }

    #[test]
    fn misordered_watermarks_fail_validation() {
        let mut cfg = SystemConfig::dual_core_two_channel();
        cfg.wq_low_watermark = 50;
        cfg.wq_high_watermark = 40;
        assert!(matches!(
            cfg.validate(),
            Err(SystemConfigError::Watermarks { .. })
        ));
        cfg.wq_low_watermark = 20;
        cfg.wq_high_watermark = 65; // above capacity 64
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("capacity"));
    }
}
