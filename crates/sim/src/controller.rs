//! Per-channel memory controller: FR-FCFS over a closed-page DRAM, write
//! queue with drain hysteresis, per-rank auto-refresh, and mitigation
//! refreshes that block the bank for `rows × tRC`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::config::{SystemConfig, TimingParams};
use crate::Location;

/// A queued memory request.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Request {
    pub req: u32,
    pub loc: Location,
    pub write: bool,
}

#[derive(Copy, Clone, Debug, Default)]
pub(crate) struct BankState {
    pub busy_until: u64,
    /// Backlog of mitigation-refresh rows (each costs tRC).
    pub pending_refresh_rows: u64,
    /// Total cycles spent on mitigation refreshes (diagnostics).
    pub refresh_busy_cycles: u64,
    pub activations: u64,
}

/// How far ahead of "now" the scheduler looks when matching the data bus:
/// issue only if the burst slot is free.
pub(crate) struct Channel {
    pub read_q: VecDeque<Request>,
    pub write_q: VecDeque<Request>,
    pub banks: Vec<BankState>,
    /// Banks with a nonzero mitigation backlog (cheap skip when empty).
    pub pending_refresh_banks: u32,
    pub draining: bool,
    pub bus_free_at: u64,
    /// Read completions: (done_cycle, req_id).
    pub completions: BinaryHeap<Reverse<(u64, u32)>>,
    /// Next auto-refresh due time per rank.
    pub next_refi: Vec<u64>,
    banks_per_rank: u32,
    timing: TimingParams,
    wq_capacity: usize,
    wq_high: usize,
    wq_low: usize,
    /// How many queue entries the scheduler scans per cycle.
    scan_limit: usize,
    pub reads_issued: u64,
    pub writes_issued: u64,
}

impl Channel {
    pub(crate) fn new(cfg: &SystemConfig) -> Self {
        let banks = (cfg.ranks_per_channel * cfg.banks_per_rank) as usize;
        Channel {
            read_q: VecDeque::with_capacity(64),
            write_q: VecDeque::with_capacity(cfg.write_queue_capacity),
            banks: vec![BankState::default(); banks],
            pending_refresh_banks: 0,
            draining: false,
            bus_free_at: 0,
            completions: BinaryHeap::new(),
            // Stagger the per-rank auto-refresh evenly across one tREFI:
            // rank r first refreshes at tREFI·(r+1)/ranks, so with R ranks
            // some rank refreshes every tREFI/R cycles. (The old
            // `tREFI + r·tREFI/2` spread only worked for ≤ 2 ranks; with
            // more, later ranks started whole tREFIs late.)
            next_refi: (0..u64::from(cfg.ranks_per_channel))
                .map(|r| cfg.timing.t_refi * (r + 1) / u64::from(cfg.ranks_per_channel))
                .collect(),
            banks_per_rank: cfg.banks_per_rank,
            timing: cfg.timing,
            wq_capacity: cfg.write_queue_capacity,
            wq_high: cfg.wq_high_watermark,
            wq_low: cfg.wq_low_watermark,
            scan_limit: 16,
            reads_issued: 0,
            writes_issued: 0,
        }
    }

    /// Index of the bank inside this channel.
    pub(crate) fn bank_index(&self, loc: &Location) -> usize {
        (loc.rank * self.banks_per_rank + loc.bank) as usize
    }

    pub(crate) fn write_queue_full(&self) -> bool {
        self.write_q.len() >= self.wq_capacity
    }

    /// Adds mitigation-refresh work (in rows) for a bank.
    pub(crate) fn add_refresh_rows(&mut self, bank: usize, rows: u64) {
        if self.banks[bank].pending_refresh_rows == 0 && rows > 0 {
            self.pending_refresh_banks += 1;
        }
        self.banks[bank].pending_refresh_rows += rows;
    }

    /// Drains read completions due at or before `now` into `completed`.
    pub(crate) fn harvest_completions(&mut self, now: u64, completed: &mut [bool]) {
        while let Some(&Reverse((done, req))) = self.completions.peek() {
            if done > now {
                break;
            }
            self.completions.pop();
            completed[req as usize] = true;
        }
    }

    /// One scheduling step for cycle `now`. `on_activation` is called with
    /// the bank index and row of every row activation the channel issues,
    /// returning the number of victim rows the mitigation scheme wants
    /// refreshed in that bank.
    pub(crate) fn tick<F>(&mut self, now: u64, on_activation: &mut F)
    where
        F: FnMut(usize, u32) -> u64,
    {
        // 1. Per-rank auto-refresh: every tREFI, all banks of the rank are
        //    blocked for tRFC (present in baseline and mitigated runs alike).
        for rank in 0..self.next_refi.len() {
            if now >= self.next_refi[rank] {
                self.next_refi[rank] += self.timing.t_refi;
                let base = rank * self.banks_per_rank as usize;
                for b in 0..self.banks_per_rank as usize {
                    let bank = &mut self.banks[base + b];
                    bank.busy_until = bank.busy_until.max(now) + self.timing.t_rfc;
                }
            }
        }

        // 2. Mitigation refreshes have priority: a bank with backlog starts
        //    refreshing as soon as it is precharged, blocking reads/writes.
        if self.pending_refresh_banks > 0 {
            for bank in &mut self.banks {
                if bank.pending_refresh_rows > 0 && bank.busy_until <= now {
                    let cost = bank.pending_refresh_rows * self.timing.t_rc;
                    bank.busy_until = now + cost;
                    bank.refresh_busy_cycles += cost;
                    bank.pending_refresh_rows = 0;
                    self.pending_refresh_banks -= 1;
                }
            }
        }

        // 3. Write-drain hysteresis.
        if self.write_q.len() >= self.wq_high {
            self.draining = true;
        } else if self.write_q.len() <= self.wq_low {
            self.draining = false;
        }

        // 4. FR-FCFS with closed-page rows: oldest request whose bank is
        //    free and whose data burst fits on the bus. One issue per cycle.
        let use_writes = self.draining || self.read_q.is_empty();
        let data_at = now + self.timing.t_rcd + self.timing.t_cas;
        if self.bus_free_at > data_at {
            return; // data bus cannot take another burst yet
        }
        let queue = if use_writes {
            &self.write_q
        } else {
            &self.read_q
        };
        let mut chosen = None;
        for (i, r) in queue.iter().enumerate().take(self.scan_limit) {
            let b = (r.loc.rank * self.banks_per_rank + r.loc.bank) as usize;
            if self.banks[b].busy_until <= now {
                chosen = Some(i);
                break;
            }
        }
        let Some(i) = chosen else { return };
        let req = if use_writes {
            self.write_q.remove(i).expect("index valid")
        } else {
            self.read_q.remove(i).expect("index valid")
        };
        let b = self.bank_index(&req.loc);
        // Closed-page policy: ACT + RD + PRE occupy the bank for tRC. A
        // write must additionally complete its data burst and wait out the
        // tWR write recovery before the precharge can finish, so the bank
        // is busy for ACT → CWL (≈ CL here) → burst → tWR → tRP, never
        // less than tRC. (tWR used to be defined but never read: writes
        // wrongly freed the bank after plain tRC.)
        let occupancy = if req.write {
            (self.timing.t_rcd
                + self.timing.t_cas
                + self.timing.burst
                + self.timing.t_wr
                + self.timing.t_rp)
                .max(self.timing.t_rc)
        } else {
            self.timing.t_rc
        };
        self.banks[b].busy_until = now + occupancy;
        self.banks[b].activations += 1;
        self.bus_free_at = data_at + self.timing.burst;
        if req.write {
            self.writes_issued += 1;
        } else {
            self.reads_issued += 1;
            let done = data_at + self.timing.burst;
            self.completions.push(Reverse((done, req.req)));
        }
        // The activation is visible to the mitigation scheme; any victim
        // refreshes it requests become bank-blocking work.
        let refresh_rows = on_activation(b, req.loc.row);
        if refresh_rows > 0 {
            self.add_refresh_rows(b, refresh_rows);
        }
    }

    /// `true` when no requests or refresh backlog remain.
    pub(crate) fn idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.pending_refresh_banks == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;

    fn channel() -> Channel {
        Channel::new(&SystemConfig::dual_core_two_channel())
    }

    fn loc(bank: u32, row: u32) -> Location {
        Location {
            channel: 0,
            rank: 0,
            bank,
            row,
            col: 0,
        }
    }

    #[test]
    fn read_completes_after_rcd_cas_burst() {
        let mut ch = channel();
        ch.read_q.push_back(Request {
            req: 0,
            loc: loc(0, 5),
            write: false,
        });
        let mut noop = |_: usize, _: u32| 0u64;
        // Auto-refresh hits at t_refi; use a cycle before that.
        ch.tick(100, &mut noop);
        let mut completed = vec![false; 1];
        let t = &TimingParams::default();
        let done = 100 + t.t_rcd + t.t_cas + t.burst;
        ch.harvest_completions(done - 1, &mut completed);
        assert!(!completed[0]);
        ch.harvest_completions(done, &mut completed);
        assert!(completed[0]);
        assert_eq!(ch.reads_issued, 1);
    }

    #[test]
    fn bank_conflict_serialises_requests() {
        let mut ch = channel();
        ch.read_q.push_back(Request {
            req: 0,
            loc: loc(2, 5),
            write: false,
        });
        ch.read_q.push_back(Request {
            req: 1,
            loc: loc(2, 9),
            write: false,
        });
        let mut noop = |_: usize, _: u32| 0u64;
        ch.tick(10, &mut noop);
        ch.tick(11, &mut noop);
        assert_eq!(ch.reads_issued, 1, "same bank busy for tRC");
        ch.tick(10 + TimingParams::default().t_rc, &mut noop);
        assert_eq!(ch.reads_issued, 2);
    }

    #[test]
    fn younger_request_to_free_bank_bypasses_blocked_head() {
        let mut ch = channel();
        ch.read_q.push_back(Request {
            req: 0,
            loc: loc(0, 1),
            write: false,
        });
        ch.read_q.push_back(Request {
            req: 1,
            loc: loc(0, 2),
            write: false,
        });
        ch.read_q.push_back(Request {
            req: 2,
            loc: loc(1, 3),
            write: false,
        });
        let mut noop = |_: usize, _: u32| 0u64;
        ch.tick(10, &mut noop); // req 0 (bank 0)
        ch.tick(30, &mut noop); // bank 0 busy → req 2 (bank 1) goes
        assert_eq!(ch.reads_issued, 2);
        assert_eq!(ch.read_q.front().unwrap().req, 1);
    }

    #[test]
    fn mitigation_refresh_blocks_bank_for_rows_times_trc() {
        let mut ch = channel();
        ch.add_refresh_rows(3, 100);
        let mut noop = |_: usize, _: u32| 0u64;
        ch.tick(10, &mut noop);
        let t = TimingParams::default();
        assert_eq!(ch.banks[3].busy_until, 10 + 100 * t.t_rc);
        assert_eq!(ch.banks[3].refresh_busy_cycles, 100 * t.t_rc);
        assert_eq!(ch.pending_refresh_banks, 0);
        // A read to that bank cannot issue until the refresh ends.
        ch.read_q.push_back(Request {
            req: 0,
            loc: loc(3, 0),
            write: false,
        });
        ch.tick(11, &mut noop);
        assert_eq!(ch.reads_issued, 0);
        ch.tick(10 + 100 * t.t_rc, &mut noop);
        assert_eq!(ch.reads_issued, 1);
    }

    #[test]
    fn activation_hook_sees_issued_rows() {
        let mut ch = channel();
        ch.read_q.push_back(Request {
            req: 0,
            loc: loc(4, 1234),
            write: false,
        });
        let mut seen = Vec::new();
        let mut hook = |bank: usize, row: u32| {
            seen.push((bank, row));
            7u64
        };
        ch.tick(10, &mut hook);
        assert_eq!(seen, vec![(4, 1234)]);
        // The 7 victim rows became refresh backlog handled next tick.
        assert_eq!(ch.banks[4].pending_refresh_rows, 7);
    }

    #[test]
    fn write_drain_hysteresis() {
        let mut ch = channel();
        for i in 0..40 {
            ch.write_q.push_back(Request {
                req: i,
                loc: loc(i % 8, i),
                write: true,
            });
        }
        ch.read_q.push_back(Request {
            req: 99,
            loc: loc(0, 0),
            write: false,
        });
        let mut noop = |_: usize, _: u32| 0u64;
        ch.tick(10, &mut noop);
        assert_eq!(
            ch.writes_issued, 1,
            "above high watermark: drain writes first"
        );
    }

    #[test]
    fn auto_refresh_blocks_all_banks_of_rank() {
        let mut ch = channel();
        let t = TimingParams::default();
        let mut noop = |_: usize, _: u32| 0u64;
        ch.tick(t.t_refi, &mut noop);
        for b in 0..8 {
            assert!(ch.banks[b].busy_until >= t.t_refi + t.t_rfc);
        }
    }

    #[test]
    fn write_recovery_blocks_follow_up_act_beyond_trc() {
        let mut ch = channel();
        ch.write_q.push_back(Request {
            req: 0,
            loc: loc(2, 5),
            write: true,
        });
        let mut noop = |_: usize, _: u32| 0u64;
        ch.tick(10, &mut noop); // read queue empty → the write issues
        assert_eq!(ch.writes_issued, 1);
        let t = TimingParams::default();
        let recovered = 10 + t.t_rcd + t.t_cas + t.burst + t.t_wr + t.t_rp;
        assert!(recovered > 10 + t.t_rc, "write recovery must outlast tRC");
        assert_eq!(ch.banks[2].busy_until, recovered);
        // A follow-up ACT to the same bank cannot issue at tRC — the write
        // burst + tWR must complete before the precharge does.
        ch.read_q.push_back(Request {
            req: 0,
            loc: loc(2, 9),
            write: false,
        });
        ch.tick(10 + t.t_rc, &mut noop);
        assert_eq!(ch.reads_issued, 0, "bank still in write recovery at tRC");
        ch.tick(recovered, &mut noop);
        assert_eq!(ch.reads_issued, 1);
    }

    #[test]
    fn four_rank_auto_refresh_staggers_evenly() {
        let mut cfg = SystemConfig::dual_core_two_channel();
        cfg.ranks_per_channel = 4;
        let mut ch = Channel::new(&cfg);
        let t = cfg.timing;
        // First refresh per rank spreads uniformly over one tREFI (the old
        // tREFI + r·tREFI/2 formula put rank 3 at 2.5·tREFI).
        assert_eq!(
            ch.next_refi,
            vec![t.t_refi / 4, t.t_refi / 2, 3 * t.t_refi / 4, t.t_refi]
        );
        // At tREFI/4, only rank 0's banks block for tRFC.
        let mut noop = |_: usize, _: u32| 0u64;
        ch.tick(t.t_refi / 4, &mut noop);
        for b in 0..8 {
            assert!(ch.banks[b].busy_until >= t.t_refi / 4 + t.t_rfc, "rank 0");
        }
        for b in 8..32 {
            assert_eq!(ch.banks[b].busy_until, 0, "ranks 1..4 untouched");
        }
        // The stagger persists: rank 0 refreshes again exactly one tREFI
        // later.
        assert_eq!(ch.next_refi[0], t.t_refi / 4 + t.t_refi);
    }
}
