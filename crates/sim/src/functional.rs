//! Timing-free functional mode: drive only the mitigation schemes with the
//! activation stream. Used for the wide CMRPO parameter sweeps (Figs. 2,
//! 10, 12) where refresh-row counts — not cycle-accurate delays — are
//! needed, at two orders of magnitude more speed than the timed model.
//!
//! The decode-and-drive loop itself lives in [`cat_engine::MemorySystem`]
//! (address decode, per-channel engines, global epoch accounting, and the
//! streaming `push` front-end whose staging buffer batches the stream —
//! this module is now a thin adapter from [`MemAccess`] iterators).

use cat_core::SchemeStats;
use cat_engine::MemorySystem;

use crate::config::SystemConfig;
use crate::scheme_spec::SchemeSpec;
use crate::trace::MemAccess;

/// Result of a functional run.
#[derive(Clone, Debug, Default)]
pub struct FunctionalReport {
    /// Accesses processed.
    pub accesses: u64,
    /// Row activations per bank.
    pub activations_per_bank: Vec<u64>,
    /// Aggregated scheme statistics.
    pub scheme_stats: SchemeStats,
    /// Per-bank scheme statistics.
    pub per_bank_stats: Vec<SchemeStats>,
    /// Epochs processed.
    pub epochs: u64,
}

/// Replays an access stream through the multi-bank engine, invoking epoch
/// resets every `accesses_per_epoch` accesses (the stream is assumed to be
/// rate-uniform within an epoch — see `DESIGN.md`).
///
/// ```
/// use cat_sim::functional::run_functional;
/// use cat_sim::{MemAccess, SchemeSpec, SystemConfig};
///
/// let cfg = SystemConfig::dual_core_two_channel();
/// let stream = (0..100_000u64).map(|i| MemAccess {
///     gap: 0,
///     write: false,
///     addr: (i % 7) << 20,
/// });
/// let spec = SchemeSpec::Sca { counters: 64, threshold: 16_384 };
/// let report = run_functional(&cfg, spec, stream, 50_000);
/// assert_eq!(report.accesses, 100_000);
/// assert_eq!(report.epochs, 2);
/// ```
pub fn run_functional(
    config: &SystemConfig,
    spec: SchemeSpec,
    stream: impl Iterator<Item = MemAccess>,
    accesses_per_epoch: u64,
) -> FunctionalReport {
    assert!(accesses_per_epoch > 0, "epoch must contain accesses");
    let mut system = MemorySystem::new(config, spec).with_epoch_length(accesses_per_epoch);
    system.push_iter(stream.map(|access| access.addr));
    system.flush();

    let report = system.report();
    FunctionalReport {
        accesses: report.accesses,
        activations_per_bank: report.activations_per_bank,
        scheme_stats: report.scheme_stats,
        per_bank_stats: report.per_bank_stats,
        epochs: report.epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapping;

    fn hot_stream(cfg: &SystemConfig, n: u64) -> impl Iterator<Item = MemAccess> {
        let map = AddressMapping::new(cfg);
        (0..n).map(move |i| MemAccess {
            gap: 0,
            write: false,
            addr: map.encode_line(
                0,
                0,
                2,
                if i % 2 == 0 {
                    7_777
                } else {
                    (i % 65_536) as u32
                },
                0,
            ),
        })
    }

    #[test]
    fn counts_land_in_the_right_bank() {
        let cfg = SystemConfig::dual_core_two_channel();
        let r = run_functional(&cfg, SchemeSpec::None, hot_stream(&cfg, 10_000), 1_000_000);
        assert_eq!(r.accesses, 10_000);
        // channel 0, rank 0, bank 2 → global bank 2.
        assert_eq!(r.activations_per_bank[2], 10_000);
        assert_eq!(r.activations_per_bank.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn schemes_fire_in_functional_mode() {
        let cfg = SystemConfig::dual_core_two_channel();
        let spec = SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 2_048,
        };
        let r = run_functional(&cfg, spec, hot_stream(&cfg, 50_000), 1_000_000);
        assert!(r.scheme_stats.refresh_events > 0);
        assert!(r.scheme_stats.refreshed_rows > 0);
    }

    #[test]
    fn epoch_boundaries_by_access_count() {
        let cfg = SystemConfig::dual_core_two_channel();
        let r = run_functional(&cfg, SchemeSpec::None, hot_stream(&cfg, 10_000), 2_500);
        assert_eq!(r.epochs, 4);
    }

    #[test]
    fn epochs_fire_inside_and_across_batches() {
        // Epoch length smaller than one staged flush and not a divisor of
        // it: boundaries must land mid-batch and carry across flushes.
        let cfg = SystemConfig::dual_core_two_channel();
        let n = MemorySystem::DEFAULT_STREAM_CAPACITY as u64 * 3 + 500;
        let r = run_functional(&cfg, SchemeSpec::None, hot_stream(&cfg, n), 3_000);
        assert_eq!(r.epochs, n / 3_000);
        assert_eq!(r.accesses, n);
    }

    #[test]
    #[should_panic(expected = "epoch must contain accesses")]
    fn zero_epoch_length_rejected() {
        let cfg = SystemConfig::dual_core_two_channel();
        let _ = run_functional(&cfg, SchemeSpec::None, std::iter::empty(), 0);
    }

    #[test]
    fn bank_ids_beyond_u16_land_in_the_right_banks() {
        // Regression test for the old `global_bank as u16` truncation: a
        // synthetic geometry with 131_072 banks (2× the u16 range). Before
        // the u32 widening, bank 65_536 + b silently aliased onto bank b.
        let cfg = SystemConfig {
            channels: 8,
            ranks_per_channel: 4,
            banks_per_rank: 4096,
            rows_per_bank: 16,
            lines_per_row: 2,
            ..SystemConfig::dual_core_two_channel()
        };
        assert_eq!(cfg.total_banks(), 131_072);
        let map = AddressMapping::new(&cfg);
        let targets = [65_536u32, 70_001, 131_071];
        let alias_of = |g: u32| g & 0xFFFF; // where the u16 cast used to land
        let addr_of = |global: u32| {
            let bank = global % cfg.banks_per_rank;
            let rank = (global / cfg.banks_per_rank) % cfg.ranks_per_channel;
            let channel = global / (cfg.ranks_per_channel * cfg.banks_per_rank);
            map.encode_line(channel, rank, bank, u32::from(global as u8 % 16), 0)
        };
        let stream = (0..9_000u64).map(|i| MemAccess {
            gap: 0,
            write: false,
            addr: addr_of(targets[(i % 3) as usize]),
        });
        let r = run_functional(&cfg, SchemeSpec::None, stream, 1_000_000);
        assert_eq!(r.activations_per_bank.len(), 131_072);
        for &t in &targets {
            assert_eq!(r.activations_per_bank[t as usize], 3_000, "bank {t}");
            assert_eq!(
                r.activations_per_bank[alias_of(t) as usize],
                0,
                "u16 alias of bank {t} must stay cold"
            );
        }
        assert_eq!(r.activations_per_bank.iter().sum::<u64>(), 9_000);
    }

    #[test]
    fn million_bank_geometry_stays_sparse() {
        // 8× the regression above: 4 channels × 4 ranks × 65_536 banks =
        // 1_048_576 banks. Bank storage is lazily materialized, so the
        // system constructs in O(channels) and only the 64 banks the
        // stream touches ever hold a scheme instance — the other ~1M stay
        // cold and cost nothing.
        let cfg = SystemConfig {
            channels: 4,
            ranks_per_channel: 4,
            banks_per_rank: 65_536,
            rows_per_bank: 16,
            lines_per_row: 2,
            ..SystemConfig::dual_core_two_channel()
        };
        assert_eq!(cfg.total_banks(), 1 << 20);
        let spec = SchemeSpec::Sca {
            counters: 8,
            threshold: 64,
        };
        let mut system = MemorySystem::new(&cfg, spec).with_epoch_length(1_000_000);
        let map = AddressMapping::new(&cfg);
        let addr_of = |global: u32| {
            let bank = global % cfg.banks_per_rank;
            let rank = (global / cfg.banks_per_rank) % cfg.ranks_per_channel;
            let channel = global / (cfg.ranks_per_channel * cfg.banks_per_rank);
            map.encode_line(channel, rank, bank, 7, 0)
        };
        let hot: Vec<u32> = (0..64u32).map(|k| k * 16_384 + 5).collect();
        for i in 0..20_000u64 {
            system.push(addr_of(hot[(i % 64) as usize]));
        }
        system.flush();
        let fp = system.footprint();
        assert_eq!(fp.banks, 1 << 20);
        assert_eq!(
            fp.materialized_banks, 64,
            "cold banks must never materialize"
        );
        assert!(fp.scheme_bytes > 0, "footprint must see the hot banks");
        assert!(
            system.stats().refresh_events > 0,
            "hammered rows must fire through the sparse storage"
        );
        assert_eq!(system.accesses(), 20_000);
    }
}
