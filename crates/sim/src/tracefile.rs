//! USIMM-style trace file I/O.
//!
//! USIMM consumes ASCII traces of the form
//!
//! ```text
//! <gap> R <hex address>
//! <gap> W <hex address>
//! ```
//!
//! (gap = non-memory instructions preceding the access). This module reads
//! and writes that format so synthetic workloads can be exported for other
//! simulators and externally produced traces can be replayed here.

use std::io::{self, BufRead, Write};

use crate::trace::MemAccess;

/// Writes accesses in the USIMM ASCII format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// ```
/// use cat_sim::{tracefile, MemAccess};
/// let mut buf = Vec::new();
/// tracefile::write_trace(&mut buf, [
///     MemAccess { gap: 12, write: false, addr: 0x1f40 },
///     MemAccess { gap: 3, write: true, addr: 0x2000 },
/// ]).unwrap();
/// assert_eq!(String::from_utf8(buf).unwrap(), "12 R 0x1f40\n3 W 0x2000\n");
/// ```
pub fn write_trace<W: Write>(
    mut w: W,
    accesses: impl IntoIterator<Item = MemAccess>,
) -> io::Result<()> {
    for a in accesses {
        writeln!(
            w,
            "{} {} {:#x}",
            a.gap,
            if a.write { 'W' } else { 'R' },
            a.addr
        )?;
    }
    Ok(())
}

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Reads a USIMM ASCII trace into memory.
///
/// Empty lines and lines starting with `#` are skipped. Addresses accept
/// `0x` hex or plain decimal.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on the first malformed record; I/O errors
/// are converted with the line number at which they occurred.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<MemAccess>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| ParseTraceError {
            line: i + 1,
            message: e.to_string(),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |message: String| ParseTraceError {
            line: i + 1,
            message,
        };
        let gap: u32 = parts
            .next()
            .ok_or_else(|| err("missing gap".into()))?
            .parse()
            .map_err(|e| err(format!("bad gap: {e}")))?;
        let kind = parts.next().ok_or_else(|| err("missing R/W".into()))?;
        let write = match kind {
            "R" | "r" => false,
            "W" | "w" => true,
            other => return Err(err(format!("expected R or W, got {other}"))),
        };
        let addr_s = parts.next().ok_or_else(|| err("missing address".into()))?;
        let addr = if let Some(hex) = addr_s
            .strip_prefix("0x")
            .or_else(|| addr_s.strip_prefix("0X"))
        {
            u64::from_str_radix(hex, 16).map_err(|e| err(format!("bad address: {e}")))?
        } else {
            addr_s
                .parse()
                .map_err(|e| err(format!("bad address: {e}")))?
        };
        if parts.next().is_some() {
            return Err(err("trailing tokens".into()));
        }
        out.push(MemAccess { gap, write, addr });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let accesses = vec![
            MemAccess {
                gap: 0,
                write: false,
                addr: 0,
            },
            MemAccess {
                gap: 1_000_000,
                write: true,
                addr: u64::MAX >> 8,
            },
            MemAccess {
                gap: 7,
                write: false,
                addr: 0xdead_beef,
            },
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, accesses.iter().copied()).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, accesses);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# USIMM trace\n\n5 R 0x40\n\n# done\n3 W 64\n";
        let got = read_trace(text.as_bytes()).unwrap();
        assert_eq!(
            got,
            vec![
                MemAccess {
                    gap: 5,
                    write: false,
                    addr: 0x40
                },
                MemAccess {
                    gap: 3,
                    write: true,
                    addr: 64
                },
            ]
        );
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "1 R 0x10\n2 X 0x20\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("expected R or W"));

        let err = read_trace("zz R 0x10\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("bad gap"));

        let err = read_trace("1 R\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("missing address"));

        let err = read_trace("1 R 0x10 extra\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn decimal_addresses_accepted() {
        let got = read_trace("9 W 4096\n".as_bytes()).unwrap();
        assert_eq!(got[0].addr, 4096);
    }

    #[test]
    fn trailing_junk_on_a_record_line_is_rejected() {
        // Anything after the address is an error — including something
        // that looks like a comment: `#` only starts a comment at the
        // beginning of a line, and silently dropping trailing tokens
        // would mask a column-swapped or concatenated trace.
        for text in [
            "1 R 0x10 extra\n",
            "1 R 0x10 # inline comment\n",
            "1 R 0x10 0x20\n",
            "1 W 64 W 64\n",
        ] {
            let err = read_trace(text.as_bytes()).unwrap_err();
            assert!(err.message.contains("trailing"), "{text:?}: {err}");
            assert_eq!(err.line, 1, "{text:?}");
        }
    }

    #[test]
    fn overlong_gap_is_rejected_with_its_line_number() {
        // Gaps are u32; a 2^32-and-up gap (or a negative one) must fail
        // the parse, not wrap around into a tiny gap.
        let over = u64::from(u32::MAX) + 1;
        let text = format!("1 R 0x10\n{over} R 0x20\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad gap"), "{err}");

        let err = read_trace("-3 W 0x40\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("bad gap"), "{err}");

        // The largest representable gap still parses.
        let max = u32::MAX;
        let got = read_trace(format!("{max} R 0x10\n").as_bytes()).unwrap();
        assert_eq!(got[0].gap, u32::MAX);
    }

    #[test]
    fn missing_final_newline_and_trailing_blank_lines_are_fine() {
        // A trace truncated after its last record (no final newline) and a
        // trace padded with blank lines must both parse to the same
        // records.
        let complete = read_trace("5 R 0x40\n3 W 64\n".as_bytes()).unwrap();
        let unterminated = read_trace("5 R 0x40\n3 W 64".as_bytes()).unwrap();
        let padded = read_trace("5 R 0x40\n3 W 64\n\n\n  \n".as_bytes()).unwrap();
        assert_eq!(unterminated, complete);
        assert_eq!(padded, complete);
        assert_eq!(complete.len(), 2);

        // A record cut off mid-line is still an error, with the right line.
        let err = read_trace("5 R 0x40\n3 W".as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("missing address"));

        // An empty (or all-blank) trace is a valid empty record set.
        assert!(read_trace("".as_bytes()).unwrap().is_empty());
        assert!(read_trace("\n\n".as_bytes()).unwrap().is_empty());
    }
}
