//! Simulation results consumed by the energy model and the benches.

use cat_core::SchemeStats;

/// Outcome of one timed simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Memory-bus cycles until every core drained its trace.
    pub cycles: u64,
    /// Wall-clock seconds of simulated time.
    pub seconds: f64,
    /// Reads issued to DRAM.
    pub reads: u64,
    /// Writes issued to DRAM.
    pub writes: u64,
    /// Instructions committed across all cores.
    pub instructions: u64,
    /// Row activations observed per bank.
    pub activations_per_bank: Vec<u64>,
    /// Mitigation-scheme statistics aggregated over all banks.
    pub scheme_stats: SchemeStats,
    /// Per-bank mitigation statistics.
    pub per_bank_stats: Vec<SchemeStats>,
    /// Cycles banks spent blocked on mitigation refreshes (all banks).
    pub mitigation_busy_cycles: u64,
    /// Auto-refresh epochs completed during the run.
    pub epochs: u64,
}

impl SimReport {
    /// Total row activations.
    pub fn activations(&self) -> u64 {
        self.reads + self.writes
    }

    /// Execution-time overhead relative to a baseline run of the same
    /// workload without mitigation (the paper's ETO).
    pub fn eto(&self, baseline_cycles: u64) -> f64 {
        assert!(baseline_cycles > 0, "baseline must have run");
        (self.cycles as f64 - baseline_cycles as f64) / baseline_cycles as f64
    }

    /// Average read latency is not tracked per-request; expose the simple
    /// throughput figure instead: activations per second of simulated time.
    pub fn activation_rate(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.activations() as f64 / self.seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eto_is_relative_slowdown() {
        let r = SimReport {
            cycles: 110,
            ..SimReport::default()
        };
        assert!((r.eto(100) - 0.10).abs() < 1e-12);
        let r = SimReport {
            cycles: 100,
            ..SimReport::default()
        };
        assert_eq!(r.eto(100), 0.0);
    }

    #[test]
    fn activation_rate_handles_zero_time() {
        let r = SimReport::default();
        assert_eq!(r.activation_rate(), 0.0);
        let r = SimReport {
            reads: 100,
            writes: 50,
            seconds: 0.5,
            ..SimReport::default()
        };
        assert_eq!(r.activation_rate(), 300.0);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn eto_requires_baseline() {
        SimReport::default().eto(0);
    }
}
