//! The cycle-based system simulator tying cores, channels and mitigation
//! schemes together.

use cat_core::MitigationScheme;
use cat_engine::MemorySystem;

use crate::config::SystemConfig;
use crate::controller::{Channel, Request};
use crate::cpu::{Core, IssueResult};
use crate::report::SimReport;
use crate::scheme_spec::SchemeSpec;
use crate::trace::MemAccess;

/// A multi-core, multi-channel DRAM system with one mitigation-scheme
/// instance per bank, driven through [`cat_engine::MemorySystem`] (decode
/// front-end + per-channel engines). The timed model is inherently
/// single-access — each `ACT` is issued at its cycle via
/// `activate_in_channel`, and epoch boundaries come from the cycle clock —
/// so it deliberately bypasses the engine's batched/streaming paths.
///
/// See the crate-level example for usage; [`Simulator::run`] consumes one
/// trace per core and returns a [`SimReport`].
pub struct Simulator {
    config: SystemConfig,
    system: MemorySystem,
    /// Hard cap on simulated cycles (runaway guard).
    max_cycles: u64,
}

impl Simulator {
    /// Creates a simulator for `config`, instantiating `spec` per bank.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SystemConfig::validate`] (aliasing
    /// geometry or misordered write-queue watermarks) or `spec` is invalid
    /// for the bank geometry.
    pub fn new(config: SystemConfig, spec: SchemeSpec) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid system configuration: {e}");
        }
        // Epoch boundaries are cycle-driven here, so the system's
        // access-count epoch accounting stays disabled.
        let system = MemorySystem::new(&config, spec);
        Simulator {
            system,
            max_cycles: 40 * config.cycles_per_epoch(),
            config,
        }
    }

    /// Overrides the runaway-guard cycle cap.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the traces (one per core) to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces does not match the configured core
    /// count, or if the run exceeds the cycle cap (deadlock guard).
    pub fn run(&mut self, traces: Vec<Box<dyn Iterator<Item = MemAccess> + Send>>) -> SimReport {
        assert_eq!(
            traces.len(),
            self.config.cores,
            "need one trace per core ({} configured)",
            self.config.cores
        );
        let cfg = &self.config;
        let mut cores: Vec<Core> = traces
            .into_iter()
            .map(|t| Core::new(t, cfg.rob_size))
            .collect();
        let mut channels: Vec<Channel> = (0..cfg.channels).map(|_| Channel::new(cfg)).collect();
        let mut completed: Vec<bool> = Vec::with_capacity(1 << 16);

        let commit_budget = (cfg.retire_width as u64 * cfg.cpu_per_mem_cycle) as u32;
        let fetch_budget = (cfg.fetch_width as u64 * cfg.cpu_per_mem_cycle) as u32;
        let epoch_cycles = cfg.cycles_per_epoch();

        let mut cycle: u64 = 0;
        let mut epochs: u64 = 0;
        loop {
            cycle += 1;
            assert!(
                cycle <= self.max_cycles,
                "simulation exceeded {} cycles — livelock or trace far larger than the epoch budget",
                self.max_cycles
            );

            // Auto-refresh epoch boundary: every row has been refreshed.
            if cycle.is_multiple_of(epoch_cycles) {
                epochs += 1;
                self.system.end_epoch();
            }

            // Memory controllers.
            for (ci, ch) in channels.iter_mut().enumerate() {
                ch.harvest_completions(cycle, &mut completed);
                let system = &mut self.system;
                let mut on_activation = |bank_in_ch: usize, row: u32| -> u64 {
                    system.activate_in_channel(ci, bank_in_ch, row).total_rows()
                };
                ch.tick(cycle, &mut on_activation);
            }

            // Cores: commit then fetch (single-cycle ordering is immaterial
            // at this granularity).
            let mut all_done = true;
            for core in cores.iter_mut() {
                core.commit(commit_budget, &completed);
                let mapping = self.system.mapping();
                let channels = &mut channels;
                let completed_len = &mut completed;
                let mut issue = |access: &MemAccess| -> IssueResult {
                    let loc = mapping.decode(access.addr);
                    let ch = &mut channels[loc.channel as usize];
                    if access.write {
                        if ch.write_queue_full() {
                            return IssueResult::Stall;
                        }
                        ch.write_q.push_back(Request {
                            req: u32::MAX,
                            loc,
                            write: true,
                        });
                        IssueResult::Write
                    } else {
                        let req = completed_len.len() as u32;
                        completed_len.push(false);
                        ch.read_q.push_back(Request {
                            req,
                            loc,
                            write: false,
                        });
                        IssueResult::Read(req)
                    }
                };
                core.fetch(fetch_budget, &mut issue);
                all_done &= core.finished();
            }

            if all_done && channels.iter().all(|c| c.idle()) {
                break;
            }
        }

        // Collect statistics.
        let mut report = SimReport {
            cycles: cycle,
            seconds: cycle as f64 * cfg.seconds_per_cycle(),
            epochs,
            instructions: cores.iter().map(|c| c.retired).sum(),
            ..SimReport::default()
        };
        for ch in &channels {
            report.reads += ch.reads_issued;
            report.writes += ch.writes_issued;
            for b in &ch.banks {
                report.activations_per_bank.push(b.activations);
                report.mitigation_busy_cycles += b.refresh_busy_cycles;
            }
        }
        report.per_bank_stats = self.system.per_bank_stats();
        report.scheme_stats = self.system.stats();
        report
    }

    /// Access to the per-bank schemes after a run (diagnostics).
    pub fn schemes(&self) -> impl Iterator<Item = &(dyn MitigationScheme + Send)> {
        self.system
            .schemes()
            .map(|s| s as &(dyn MitigationScheme + Send))
    }

    /// Access to the underlying memory system (diagnostics).
    pub fn system(&self) -> &MemorySystem {
        &self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapping;
    use crate::config::MappingPolicy;

    /// A trace hammering `count` accesses at one row of bank 0, channel 0.
    fn hammer_trace(cfg: &SystemConfig, row: u32, count: u64, gap: u32) -> Vec<MemAccess> {
        let map = AddressMapping::new(cfg);
        (0..count)
            .map(|i| MemAccess {
                gap,
                write: i % 10 == 9,
                addr: map.encode_line(0, 0, 0, row, (i % 256) as u32),
            })
            .collect()
    }

    fn spread_trace(cfg: &SystemConfig, count: u64, gap: u32, salt: u32) -> Vec<MemAccess> {
        let map = AddressMapping::new(cfg);
        (0..count)
            .map(|i| {
                let j = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt);
                MemAccess {
                    gap,
                    write: i % 5 == 4,
                    addr: map.encode_line(
                        (j >> 1) % cfg.channels,
                        0,
                        (j >> 3) % cfg.banks_per_rank,
                        (j >> 7) % cfg.rows_per_bank,
                        j % cfg.lines_per_row,
                    ),
                }
            })
            .collect()
    }

    #[test]
    fn completes_and_counts_accesses() {
        let cfg = SystemConfig::dual_core_two_channel();
        let t0 = spread_trace(&cfg, 5_000, 20, 1);
        let t1 = spread_trace(&cfg, 5_000, 20, 2);
        let mut sim = Simulator::new(cfg, SchemeSpec::None);
        let r = sim.run(vec![Box::new(t0.into_iter()), Box::new(t1.into_iter())]);
        assert_eq!(r.reads + r.writes, 10_000);
        assert!(r.cycles > 0);
        assert!(r.instructions > 10_000 * 20);
    }

    #[test]
    fn mitigation_refreshes_slow_down_execution() {
        let cfg = SystemConfig::dual_core_two_channel();
        // A heavy hammer on one bank: SCA_16 refreshes 4096-row groups.
        let mk = |cfg: &SystemConfig| {
            vec![
                Box::new(hammer_trace(cfg, 1000, 40_000, 10).into_iter())
                    as Box<dyn Iterator<Item = MemAccess> + Send>,
                Box::new(hammer_trace(cfg, 1000, 40_000, 10).into_iter()),
            ]
        };
        let mut base = Simulator::new(cfg.clone(), SchemeSpec::None);
        let rb = base.run(mk(&cfg));
        let mut sim = Simulator::new(
            cfg.clone(),
            SchemeSpec::Sca {
                counters: 16,
                threshold: 8_192,
            },
        );
        let rs = sim.run(mk(&cfg));
        assert!(rs.scheme_stats.refresh_events > 0);
        assert!(rs.mitigation_busy_cycles > 0);
        assert!(
            rs.cycles > rb.cycles,
            "bank-blocking refreshes must cost time: {} vs {}",
            rs.cycles,
            rb.cycles
        );
        let eto = rs.eto(rb.cycles);
        assert!(eto > 0.0 && eto < 0.5, "ETO should be small: {eto}");
    }

    #[test]
    fn four_channel_mapping_uses_more_banks() {
        let cfg = SystemConfig::quad_core_four_channel();
        let traces: Vec<Box<dyn Iterator<Item = MemAccess> + Send>> = (0..4)
            .map(|c| {
                Box::new(spread_trace(&cfg, 2_000, 30, c).into_iter())
                    as Box<dyn Iterator<Item = MemAccess> + Send>
            })
            .collect();
        let mut sim = Simulator::new(cfg, SchemeSpec::None);
        let r = sim.run(traces);
        assert_eq!(r.activations_per_bank.len(), 64);
        let used = r.activations_per_bank.iter().filter(|&&a| a > 0).count();
        assert!(used > 16, "spread trace must hit many banks: {used}");
        assert_eq!(sim.config().mapping, MappingPolicy::FourChannel);
    }

    #[test]
    fn epoch_boundaries_reach_schemes() {
        // Shrink the epoch so a short run crosses several boundaries.
        let mut cfg = SystemConfig::dual_core_two_channel();
        cfg.epoch_ms = 1;
        let t0 = spread_trace(&cfg, 150_000, 60, 1);
        let t1 = spread_trace(&cfg, 150_000, 60, 2);
        let mut sim = Simulator::new(
            cfg,
            SchemeSpec::Prcat {
                counters: 64,
                levels: 11,
                threshold: 32_768,
            },
        );
        let r = sim.run(vec![Box::new(t0.into_iter()), Box::new(t1.into_iter())]);
        assert!(r.epochs >= 1, "run must span at least one epoch");
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_must_match_cores() {
        let cfg = SystemConfig::dual_core_two_channel();
        let mut sim = Simulator::new(cfg, SchemeSpec::None);
        let _ = sim.run(vec![Box::new(std::iter::empty())]);
    }

    #[test]
    #[should_panic(expected = "invalid system configuration")]
    fn construction_rejects_invalid_config() {
        let mut cfg = SystemConfig::dual_core_two_channel();
        cfg.wq_high_watermark = cfg.write_queue_capacity + 1;
        let _ = Simulator::new(cfg, SchemeSpec::None);
    }
}
