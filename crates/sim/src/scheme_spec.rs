//! Declarative scheme selection for simulations: which mitigation scheme to
//! instantiate per bank.

use cat_core::{
    CatConfig, CounterCache, CounterCacheConfig, Drcat, MitigationScheme, Pra, Prcat, Sca,
    SpaceSaving, ThresholdPolicy,
};

/// Which crosstalk-mitigation scheme a simulation attaches to every bank.
///
/// ```
/// use cat_sim::SchemeSpec;
/// let spec = SchemeSpec::Drcat { counters: 64, levels: 11, threshold: 32_768 };
/// let scheme = spec.build(65_536, 0).unwrap();
/// assert_eq!(scheme.name(), "DRCAT_64");
/// assert_eq!(SchemeSpec::None.build(65_536, 0).is_none(), true);
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum SchemeSpec {
    /// No mitigation (baseline for ETO).
    None,
    /// Probabilistic row activation with nominal probability `p`.
    Pra {
        /// Refresh probability per activation.
        p: f64,
        /// PRNG word width in bits (paper: 9).
        bits: u32,
        /// Base seed (per-bank seeds derive from it).
        seed: u64,
    },
    /// Static counter assignment with `counters` uniform groups.
    Sca {
        /// Counters per bank.
        counters: usize,
        /// Refresh threshold `T`.
        threshold: u32,
    },
    /// Periodically reset CAT.
    Prcat {
        /// Counters per bank (`M`).
        counters: usize,
        /// Maximum tree levels (`L`).
        levels: u32,
        /// Refresh threshold `T`.
        threshold: u32,
    },
    /// Dynamically reconfigured CAT.
    Drcat {
        /// Counters per bank (`M`).
        counters: usize,
        /// Maximum tree levels (`L`).
        levels: u32,
        /// Refresh threshold `T`.
        threshold: u32,
    },
    /// Per-row counters in DRAM with an on-chip counter cache.
    CounterCache {
        /// Cached counter entries per bank.
        entries: usize,
        /// Associativity.
        ways: usize,
        /// Refresh threshold `T`.
        threshold: u32,
    },
    /// Space-Saving frequent-item tracker (extension baseline; DESIGN.md §6).
    SpaceSaving {
        /// Tracking counters per bank.
        counters: usize,
        /// Refresh threshold `T`.
        threshold: u32,
    },
}

impl SchemeSpec {
    /// PRA with the paper's defaults (9 random bits per access).
    pub fn pra(p: f64) -> Self {
        SchemeSpec::Pra { p, bits: 9, seed: 0x5eed_cafe }
    }

    /// Instantiates the scheme for one bank of `rows` rows.
    ///
    /// Returns `None` for [`SchemeSpec::None`].
    ///
    /// # Panics
    ///
    /// Panics if the specification is invalid for the bank geometry (these
    /// are programming errors in experiment definitions, not runtime
    /// conditions).
    pub fn build(&self, rows: u32, bank_index: u32) -> Option<Box<dyn MitigationScheme + Send>> {
        match *self {
            SchemeSpec::None => None,
            SchemeSpec::Pra { p, bits, seed } => {
                let rng = Box::new(cat_core::rng::IdealRng::seeded(
                    seed ^ (u64::from(bank_index) << 32) ^ 0x9e37_79b9,
                ));
                Some(Box::new(
                    Pra::with_rng(rows, p, bits, rng).expect("valid PRA spec"),
                ))
            }
            SchemeSpec::Sca { counters, threshold } => Some(Box::new(
                Sca::new(rows, counters, threshold).expect("valid SCA spec"),
            )),
            SchemeSpec::Prcat {
                counters,
                levels,
                threshold,
            } => {
                let cfg = CatConfig::new(rows, counters, levels, threshold)
                    .expect("valid PRCAT spec")
                    .with_policy(ThresholdPolicy::PaperCurve);
                Some(Box::new(Prcat::new(cfg)))
            }
            SchemeSpec::Drcat {
                counters,
                levels,
                threshold,
            } => {
                let cfg = CatConfig::new(rows, counters, levels, threshold)
                    .expect("valid DRCAT spec")
                    .with_policy(ThresholdPolicy::PaperCurve);
                Some(Box::new(Drcat::new(cfg)))
            }
            SchemeSpec::CounterCache {
                entries,
                ways,
                threshold,
            } => {
                let cache = CounterCacheConfig::with_entries(entries, ways)
                    .expect("valid counter-cache spec");
                Some(Box::new(
                    CounterCache::new(rows, cache, threshold).expect("valid counter-cache spec"),
                ))
            }
            SchemeSpec::SpaceSaving { counters, threshold } => Some(Box::new(
                SpaceSaving::new(rows, counters, threshold).expect("valid space-saving spec"),
            )),
        }
    }

    /// Short label used in result tables, e.g. `PRA_0.002` or `DRCAT_64`.
    pub fn label(&self) -> String {
        match *self {
            SchemeSpec::None => "baseline".to_string(),
            SchemeSpec::Pra { p, .. } => format!("PRA_{p}"),
            SchemeSpec::Sca { counters, .. } => format!("SCA_{counters}"),
            SchemeSpec::Prcat { counters, .. } => format!("PRCAT_{counters}"),
            SchemeSpec::Drcat { counters, .. } => format!("DRCAT_{counters}"),
            SchemeSpec::CounterCache { entries, .. } => format!("CC_{entries}"),
            SchemeSpec::SpaceSaving { counters, .. } => format!("SS_{counters}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_scheme() {
        let specs = [
            SchemeSpec::pra(0.002),
            SchemeSpec::Sca { counters: 64, threshold: 32_768 },
            SchemeSpec::Prcat { counters: 64, levels: 11, threshold: 32_768 },
            SchemeSpec::Drcat { counters: 64, levels: 11, threshold: 32_768 },
            SchemeSpec::CounterCache { entries: 1024, ways: 8, threshold: 32_768 },
            SchemeSpec::SpaceSaving { counters: 64, threshold: 32_768 },
        ];
        for spec in specs {
            let s = spec.build(65_536, 3).expect("buildable");
            assert_eq!(s.rows(), 65_536);
            assert!(!spec.label().is_empty());
        }
        assert!(SchemeSpec::None.build(65_536, 0).is_none());
        assert_eq!(SchemeSpec::None.label(), "baseline");
    }

    #[test]
    fn pra_banks_get_distinct_seeds() {
        use cat_core::RowId;
        let spec = SchemeSpec::pra(0.5);
        let mut a = spec.build(1024, 0).unwrap();
        let mut b = spec.build(1024, 1).unwrap();
        // With p = 0.5 the decision streams diverge almost immediately if
        // the seeds differ.
        let fire = |s: &mut Box<dyn cat_core::MitigationScheme + Send>| {
            (0..64).map(|_| !s.on_activation(RowId(5)).is_empty()).collect::<Vec<_>>()
        };
        assert_ne!(fire(&mut a), fire(&mut b));
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(SchemeSpec::pra(0.002).label(), "PRA_0.002");
        assert_eq!(
            SchemeSpec::Sca { counters: 128, threshold: 16_384 }.label(),
            "SCA_128"
        );
    }
}
