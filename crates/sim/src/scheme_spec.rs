//! Compatibility shim: [`SchemeSpec`] moved down into `cat-core` so the
//! engine and every other layer can build schemes without depending on the
//! simulator. `cat_sim::SchemeSpec` remains a valid path.

pub use cat_core::SchemeSpec;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_core_type() {
        // The old `cat_sim::SchemeSpec` spelling keeps working and is the
        // same type the engine consumes.
        let spec: SchemeSpec = "drcat:64:11:32768".parse().unwrap();
        let mut engine = cat_engine::BankEngine::new(spec, 2, 65_536);
        assert_eq!(engine.bank_count(), 2);
        // Banks materialize lazily; touch both so the instances exist.
        engine.process(&[(0, 7), (1, 7)]);
        assert_eq!(engine.schemes().count(), 2);
    }
}
