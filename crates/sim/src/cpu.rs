//! ROB-limited in-order-commit core model (USIMM's processor front end).
//!
//! Each core executes a trace of "`gap` non-memory instructions, then one
//! memory access". Instructions are fetched into a reorder buffer (`ROB`,
//! 128 entries) at `fetch_width` per CPU cycle and committed in order at
//! `retire_width` per CPU cycle. Loads are sent to the memory controller at
//! fetch time (so independent loads overlap — memory-level parallelism is
//! bounded by the ROB) but block commit until their data returns. Stores
//! enter the channel write queue at fetch and commit immediately; a full
//! write queue stalls fetch.

use std::collections::VecDeque;

use crate::trace::MemAccess;

/// What the core asked the memory system to do during fetch.
pub(crate) enum IssueResult {
    /// Load accepted; completion is signalled through the given request id.
    Read(u32),
    /// Store accepted (fire and forget).
    Write,
    /// Write queue full — retry next cycle.
    Stall,
}

enum RobEntry {
    /// A block of non-memory instructions (commit `retire_width`/cycle).
    Insns(u32),
    /// A load waiting for request `req` to complete.
    Read { req: u32 },
    /// A store (commits immediately once at the head).
    Write,
}

pub(crate) struct Core {
    trace: Box<dyn Iterator<Item = MemAccess> + Send>,
    rob: VecDeque<RobEntry>,
    /// Instructions currently occupying ROB slots.
    rob_len: usize,
    rob_size: usize,
    /// Remaining gap instructions of the current record not yet fetched.
    pending_gap: u32,
    /// The memory access of the current record, not yet issued.
    pending_access: Option<MemAccess>,
    trace_done: bool,
    /// Instructions committed (for IPC-style sanity checks).
    pub retired: u64,
}

impl Core {
    pub(crate) fn new(trace: Box<dyn Iterator<Item = MemAccess> + Send>, rob_size: usize) -> Self {
        let mut core = Core {
            trace,
            rob: VecDeque::with_capacity(64),
            rob_len: 0,
            rob_size,
            pending_gap: 0,
            pending_access: None,
            trace_done: false,
            retired: 0,
        };
        core.pull_record();
        core
    }

    fn pull_record(&mut self) {
        match self.trace.next() {
            Some(rec) => {
                self.pending_gap = rec.gap;
                self.pending_access = Some(rec);
            }
            None => self.trace_done = true,
        }
    }

    /// The core has committed every fetched instruction and the trace is
    /// exhausted.
    pub(crate) fn finished(&self) -> bool {
        self.trace_done && self.rob.is_empty() && self.pending_access.is_none()
    }

    /// In-order commit of up to `budget` instructions. `completed[req]`
    /// says whether a read request has returned its data.
    pub(crate) fn commit(&mut self, mut budget: u32, completed: &[bool]) {
        while budget > 0 {
            match self.rob.front_mut() {
                None => return,
                Some(RobEntry::Insns(n)) => {
                    let k = (*n).min(budget);
                    *n -= k;
                    budget -= k;
                    self.rob_len -= k as usize;
                    self.retired += u64::from(k);
                    if *n == 0 {
                        self.rob.pop_front();
                    }
                }
                Some(RobEntry::Read { req }) if completed[*req as usize] => {
                    self.rob.pop_front();
                    self.rob_len -= 1;
                    self.retired += 1;
                    budget -= 1;
                }
                Some(RobEntry::Read { .. }) => return, // head load outstanding
                Some(RobEntry::Write) => {
                    self.rob.pop_front();
                    self.rob_len -= 1;
                    self.retired += 1;
                    budget -= 1;
                }
            }
        }
    }

    /// Fetches up to `budget` instructions, issuing memory operations to
    /// the controller through `issue`.
    pub(crate) fn fetch<F>(&mut self, mut budget: u32, issue: &mut F)
    where
        F: FnMut(&MemAccess) -> IssueResult,
    {
        while budget > 0 && self.rob_len < self.rob_size {
            if self.pending_gap > 0 {
                let free = (self.rob_size - self.rob_len) as u32;
                let k = self.pending_gap.min(budget).min(free);
                self.pending_gap -= k;
                self.rob_len += k as usize;
                budget -= k;
                match self.rob.back_mut() {
                    Some(RobEntry::Insns(n)) => *n += k,
                    _ => self.rob.push_back(RobEntry::Insns(k)),
                }
                continue;
            }
            let Some(access) = self.pending_access else {
                return; // trace exhausted
            };
            match issue(&access) {
                IssueResult::Read(req) => self.rob.push_back(RobEntry::Read { req }),
                IssueResult::Write => self.rob.push_back(RobEntry::Write),
                IssueResult::Stall => return, // write queue full
            }
            self.rob_len += 1;
            budget -= 1;
            self.pending_access = None;
            self.pull_record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(gap: u32, write: bool) -> MemAccess {
        MemAccess {
            gap,
            write,
            addr: 0,
        }
    }

    #[test]
    fn commits_gap_instructions_at_retire_rate() {
        let trace = vec![rec(100, true)];
        let mut core = Core::new(Box::new(trace.into_iter()), 128);
        let completed = vec![false; 4];
        let mut issue = |a: &MemAccess| {
            if a.write {
                IssueResult::Write
            } else {
                IssueResult::Read(0)
            }
        };
        // Fetch everything (100 gap + 1 store = 101 instructions > 16/cycle).
        for _ in 0..8 {
            core.fetch(16, &mut issue);
        }
        // Commit at 8/cycle: 101 instructions need 13 cycles.
        let mut cycles = 0;
        while !core.finished() {
            core.commit(8, &completed);
            cycles += 1;
            assert!(cycles < 20);
        }
        assert_eq!(core.retired, 101);
        assert_eq!(cycles, 13);
    }

    #[test]
    fn head_load_blocks_commit_until_completed() {
        let trace = vec![rec(0, false), rec(50, true)];
        let mut core = Core::new(Box::new(trace.into_iter()), 128);
        let mut completed = vec![false; 4];
        let mut next_req = 0;
        let mut issue = |a: &MemAccess| {
            if a.write {
                IssueResult::Write
            } else {
                let r = IssueResult::Read(next_req);
                next_req += 1;
                r
            }
        };
        core.fetch(16, &mut issue);
        core.fetch(16, &mut issue);
        core.fetch(16, &mut issue);
        core.fetch(16, &mut issue);
        core.commit(8, &completed);
        assert_eq!(core.retired, 0, "load at head blocks everything");
        completed[0] = true;
        core.commit(8, &completed);
        assert_eq!(core.retired, 8, "load + 7 gap instructions commit");
    }

    #[test]
    fn rob_capacity_limits_fetch_ahead() {
        // One load followed by a huge gap: fetch must stop at ROB capacity.
        let trace = vec![rec(0, false), rec(100_000, false)];
        let mut core = Core::new(Box::new(trace.into_iter()), 32);
        let completed = vec![false; 4];
        let mut issue = |_: &MemAccess| IssueResult::Read(0);
        for _ in 0..100 {
            core.fetch(16, &mut issue);
            core.commit(8, &completed);
        }
        assert_eq!(core.retired, 0);
        // ROB is full behind the blocked load: 32 instructions max.
        assert!(!core.finished());
    }

    #[test]
    fn write_queue_stall_pauses_fetch() {
        let trace = vec![rec(0, true), rec(0, true)];
        let mut core = Core::new(Box::new(trace.into_iter()), 128);
        let completed = vec![false; 4];
        let accepts = std::cell::Cell::new(1u32);
        let mut issue = |_: &MemAccess| {
            if accepts.get() > 0 {
                accepts.set(accepts.get() - 1);
                IssueResult::Write
            } else {
                IssueResult::Stall
            }
        };
        core.fetch(16, &mut issue);
        core.commit(8, &completed);
        assert_eq!(core.retired, 1, "only the accepted store commits");
        assert!(!core.finished());
        // The queue drains: fetch resumes.
        accepts.set(1);
        core.fetch(16, &mut issue);
        core.commit(8, &completed);
        assert!(core.finished());
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let core = Core::new(Box::new(std::iter::empty()), 128);
        assert!(core.finished());
    }
}
