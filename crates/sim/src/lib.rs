//! # cat-sim — a USIMM-style memory-system simulator
//!
//! The paper evaluates its mitigation schemes by replaying Memory Scheduling
//! Championship workloads through USIMM \[47\] configured as in its Table I.
//! This crate rebuilds the relevant subset of that infrastructure in Rust:
//!
//! * [`SystemConfig`] — Table-I system configurations (dual-core/2-channel
//!   default, quad-core and 4-channel variants) with DDR3-1600 timing,
//!   validated (power-of-two geometry, ordered write-queue watermarks)
//!   before any simulation runs.
//! * [`AddressMapping`] — the `rw:rk:bk:ch:col:offset` address mapping and
//!   its 4-channel variant (§VIII-B); the type itself lives in
//!   `cat-engine` (as does the [`cat_engine::MemorySystem`] front-end) and
//!   converts from `&SystemConfig`.
//! * [`Simulator`] — a cycle-based timing model: per-core ROB-limited
//!   front ends, FR-FCFS scheduling with closed-page policy, write-queue
//!   drain, per-rank auto-refresh, and **mitigation refreshes that block the
//!   bank** for `rows × tRC` — the mechanism behind the paper's execution
//!   time overhead (ETO) metric.
//! * [`functional`] — a fast timing-free mode that drives only the
//!   mitigation schemes (used for the large CMRPO parameter sweeps).
//!
//! Both modes drive the per-bank schemes through `cat_engine::BankEngine`
//! (statically-dispatched [`cat_core::SchemeInstance`] shards); the
//! [`SchemeSpec`] type itself lives in `cat-core` and is re-exported here.
//!
//! ```
//! use cat_sim::{SchemeSpec, SystemConfig, Simulator};
//!
//! // A tiny synthetic trace: every core hammers one hot line.
//! let cfg = SystemConfig::dual_core_two_channel();
//! let trace = |core: usize| {
//!     (0..2_000u64).map(move |i| cat_sim::MemAccess {
//!         gap: 30,
//!         write: i % 8 == 0,
//!         addr: (core as u64) << 33 | (i % 64) << 14,
//!     })
//! };
//! let mut sim = Simulator::new(cfg, SchemeSpec::Sca { counters: 64, threshold: 4096 });
//! let report = sim.run(vec![
//!     Box::new(trace(0)),
//!     Box::new(trace(1)),
//! ]);
//! assert!(report.cycles > 0);
//! assert_eq!(report.reads + report.writes, 4_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod config;
mod controller;
mod cpu;
pub mod functional;
mod report;
mod scheme_spec;
mod sim;
mod trace;
pub mod tracefile;

pub use address::{AddressMapping, GeometryError, Location, MemGeometry};
pub use config::{MappingPolicy, SystemConfig, SystemConfigError, TimingParams};
pub use report::SimReport;
pub use scheme_spec::SchemeSpec;
pub use sim::Simulator;
pub use trace::{MemAccess, TraceSource};
