//! Physical-address ↔ DRAM-location mapping.
//!
//! USIMM's default policy — and the paper's Table I — orders the fields
//! `rw:rk:bk:ch:col:offset` from most to least significant bit. The
//! 4-channel policy keeps the field order but widens the channel and rank
//! fields, spreading the same address stream over four times as many banks
//! (§VIII-B).

use crate::{MappingPolicy, SystemConfig};

/// A decoded DRAM location.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Cache-line column within the row.
    pub col: u32,
}

impl Location {
    /// Flat bank index across the whole system
    /// (`channel · ranks · banks + rank · banks + bank`).
    pub fn global_bank(&self, cfg: &SystemConfig) -> u32 {
        (self.channel * cfg.ranks_per_channel + self.rank) * cfg.banks_per_rank + self.bank
    }
}

/// Bit-field description of an address mapping.
///
/// ```
/// use cat_sim::{AddressMapping, SystemConfig};
/// let cfg = SystemConfig::dual_core_two_channel();
/// let map = AddressMapping::new(&cfg);
/// let loc = map.decode(map.encode_line(1, 0, 3, 1_234, 17));
/// assert_eq!((loc.channel, loc.bank, loc.row, loc.col), (1, 3, 1_234, 17));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AddressMapping {
    offset_bits: u32,
    col_bits: u32,
    ch_bits: u32,
    bk_bits: u32,
    rk_bits: u32,
    row_mask: u32,
}

fn bits_for(n: u32) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

impl AddressMapping {
    /// Builds the mapping for a system configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        let (ch_bits, rk_bits) = match cfg.mapping {
            MappingPolicy::TwoChannel => (1, 0),
            MappingPolicy::FourChannel => (2, 1),
        };
        AddressMapping {
            offset_bits: bits_for(cfg.line_bytes),
            col_bits: bits_for(cfg.lines_per_row),
            ch_bits,
            bk_bits: bits_for(cfg.banks_per_rank),
            rk_bits,
            row_mask: cfg.rows_per_bank - 1,
        }
    }

    /// Decodes a byte address into its DRAM location.
    pub fn decode(&self, addr: u64) -> Location {
        let mut a = addr >> self.offset_bits;
        let col = (a & ((1 << self.col_bits) - 1)) as u32;
        a >>= self.col_bits;
        let channel = (a & ((1 << self.ch_bits) - 1)) as u32;
        a >>= self.ch_bits;
        let bank = (a & ((1 << self.bk_bits) - 1)) as u32;
        a >>= self.bk_bits;
        let rank = if self.rk_bits == 0 {
            0
        } else {
            (a & ((1 << self.rk_bits) - 1)) as u32
        };
        a >>= self.rk_bits;
        let row = (a as u32) & self.row_mask;
        Location {
            channel,
            rank,
            bank,
            row,
            col,
        }
    }

    /// Composes the byte address of a cache line at the given location —
    /// the inverse of [`decode`](Self::decode); used by the workload
    /// generators.
    pub fn encode_line(&self, channel: u32, rank: u32, bank: u32, row: u32, col: u32) -> u64 {
        let mut a = u64::from(row & self.row_mask);
        a = (a << self.rk_bits) | u64::from(rank);
        a = (a << self.bk_bits) | u64::from(bank);
        a = (a << self.ch_bits) | u64::from(channel);
        a = (a << self.col_bits) | u64::from(col);
        a << self.offset_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_two_channel() {
        let cfg = SystemConfig::dual_core_two_channel();
        let map = AddressMapping::new(&cfg);
        for (ch, bank, row, col) in [(0, 0, 0, 0), (1, 7, 65_535, 255), (0, 3, 40_000, 100)] {
            let addr = map.encode_line(ch, 0, bank, row, col);
            let loc = map.decode(addr);
            assert_eq!(
                (loc.channel, loc.rank, loc.bank, loc.row, loc.col),
                (ch, 0, bank, row, col)
            );
        }
    }

    #[test]
    fn round_trip_four_channel() {
        let cfg = SystemConfig::quad_core_four_channel();
        let map = AddressMapping::new(&cfg);
        for (ch, rk, bank, row) in [(3, 1, 7, 131_071), (2, 0, 5, 1)] {
            let addr = map.encode_line(ch, rk, bank, row, 9);
            let loc = map.decode(addr);
            assert_eq!(
                (loc.channel, loc.rank, loc.bank, loc.row),
                (ch, rk, bank, row)
            );
        }
    }

    #[test]
    fn consecutive_lines_share_a_row() {
        // `col` occupies the bits just above the offset: sequential lines
        // stay in the same row until the column wraps.
        let cfg = SystemConfig::dual_core_two_channel();
        let map = AddressMapping::new(&cfg);
        let base = map.encode_line(0, 0, 2, 77, 0);
        for col in 0..cfg.lines_per_row {
            let loc = map.decode(base + u64::from(col) * u64::from(cfg.line_bytes));
            assert_eq!(loc.row, 77);
            assert_eq!(loc.col, col);
        }
    }

    #[test]
    fn global_bank_is_dense_and_unique() {
        let cfg = SystemConfig::quad_core_four_channel();
        let map = AddressMapping::new(&cfg);
        let mut seen = std::collections::HashSet::new();
        for ch in 0..4 {
            for rk in 0..2 {
                for bk in 0..8 {
                    let loc = map.decode(map.encode_line(ch, rk, bk, 0, 0));
                    assert!(seen.insert(loc.global_bank(&cfg)));
                }
            }
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(*seen.iter().max().unwrap(), 63);
    }

    #[test]
    fn remapping_spreads_banks() {
        // The same address stream decoded under the 4-channel policy uses
        // strictly more banks — the parallelism the paper attributes to the
        // 4-channel mapping.
        let cfg2 = SystemConfig::dual_core_two_channel();
        let cfg4 = SystemConfig::quad_core_four_channel();
        let m2 = AddressMapping::new(&cfg2);
        let m4 = AddressMapping::new(&cfg4);
        let addrs: Vec<u64> = (0..1024u64)
            .map(|i| {
                m2.encode_line(
                    (i % 2) as u32,
                    0,
                    ((i / 2) % 8) as u32,
                    (i * 97 % 65_536) as u32,
                    0,
                )
            })
            .collect();
        let banks2: std::collections::HashSet<u32> = addrs
            .iter()
            .map(|&a| m2.decode(a).global_bank(&cfg2))
            .collect();
        let banks4: std::collections::HashSet<u32> = addrs
            .iter()
            .map(|&a| m4.decode(a).global_bank(&cfg4))
            .collect();
        assert!(banks4.len() >= banks2.len());
    }
}
