//! Address-mapping glue: the mapping itself lives in `cat-engine`
//! ([`cat_engine::AddressMapping`], re-exported here), this module only
//! converts a [`SystemConfig`] into the engine's [`MemGeometry`] so every
//! existing `AddressMapping::new(&cfg)` / `loc.global_bank(&cfg)` call
//! keeps working.
//!
//! Both Table-I policies follow USIMM's `rw:rk:bk:ch:col:offset` field
//! order; the field widths derive from the configured channel/rank/bank
//! counts, which is what made the old `MappingPolicy`-matched widths
//! redundant (and is what lets synthetic geometries far beyond Table I —
//! including > 65 536 banks — decode correctly).

pub use cat_engine::{AddressMapping, GeometryError, Location, MemGeometry};

use crate::SystemConfig;

impl From<&SystemConfig> for MemGeometry {
    fn from(cfg: &SystemConfig) -> Self {
        MemGeometry {
            channels: cfg.channels,
            ranks_per_channel: cfg.ranks_per_channel,
            banks_per_rank: cfg.banks_per_rank,
            rows_per_bank: cfg.rows_per_bank,
            lines_per_row: cfg.lines_per_row,
            line_bytes: cfg.line_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_two_channel() {
        let cfg = SystemConfig::dual_core_two_channel();
        let map = AddressMapping::new(&cfg);
        for (ch, bank, row, col) in [(0, 0, 0, 0), (1, 7, 65_535, 255), (0, 3, 40_000, 100)] {
            let addr = map.encode_line(ch, 0, bank, row, col);
            let loc = map.decode(addr);
            assert_eq!(
                (loc.channel, loc.rank, loc.bank, loc.row, loc.col),
                (ch, 0, bank, row, col)
            );
        }
    }

    #[test]
    fn round_trip_four_channel() {
        let cfg = SystemConfig::quad_core_four_channel();
        let map = AddressMapping::new(&cfg);
        for (ch, rk, bank, row) in [(3, 1, 7, 131_071), (2, 0, 5, 1)] {
            let addr = map.encode_line(ch, rk, bank, row, 9);
            let loc = map.decode(addr);
            assert_eq!(
                (loc.channel, loc.rank, loc.bank, loc.row),
                (ch, rk, bank, row)
            );
        }
    }

    #[test]
    fn consecutive_lines_share_a_row() {
        // `col` occupies the bits just above the offset: sequential lines
        // stay in the same row until the column wraps.
        let cfg = SystemConfig::dual_core_two_channel();
        let map = AddressMapping::new(&cfg);
        let base = map.encode_line(0, 0, 2, 77, 0);
        for col in 0..cfg.lines_per_row {
            let loc = map.decode(base + u64::from(col) * u64::from(cfg.line_bytes));
            assert_eq!(loc.row, 77);
            assert_eq!(loc.col, col);
        }
    }

    #[test]
    fn global_bank_is_dense_and_unique() {
        let cfg = SystemConfig::quad_core_four_channel();
        let map = AddressMapping::new(&cfg);
        let mut seen = std::collections::BTreeSet::new();
        for ch in 0..4 {
            for rk in 0..2 {
                for bk in 0..8 {
                    let loc = map.decode(map.encode_line(ch, rk, bk, 0, 0));
                    assert!(seen.insert(loc.global_bank(&cfg)));
                    assert_eq!(
                        map.decode_bank_row(map.encode_line(ch, rk, bk, 0, 0)).0,
                        loc.global_bank(&cfg)
                    );
                }
            }
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(*seen.iter().max().unwrap(), 63);
    }

    #[test]
    fn remapping_spreads_banks() {
        // The same address stream decoded under the 4-channel policy uses
        // strictly more banks — the parallelism the paper attributes to the
        // 4-channel mapping.
        let cfg2 = SystemConfig::dual_core_two_channel();
        let cfg4 = SystemConfig::quad_core_four_channel();
        let m2 = AddressMapping::new(&cfg2);
        let m4 = AddressMapping::new(&cfg4);
        let addrs: Vec<u64> = (0..1024u64)
            .map(|i| {
                m2.encode_line(
                    (i % 2) as u32,
                    0,
                    ((i / 2) % 8) as u32,
                    (i * 97 % 65_536) as u32,
                    0,
                )
            })
            .collect();
        let banks2: std::collections::BTreeSet<u32> = addrs
            .iter()
            .map(|&a| m2.decode(a).global_bank(&cfg2))
            .collect();
        let banks4: std::collections::BTreeSet<u32> = addrs
            .iter()
            .map(|&a| m4.decode(a).global_bank(&cfg4))
            .collect();
        assert!(banks4.len() >= banks2.len());
    }

    #[test]
    #[should_panic(expected = "nonzero power of two")]
    fn invalid_geometry_rejected_in_release_builds_too() {
        // A release build with banks_per_rank: 6 used to produce a silently
        // aliasing map (only a debug_assert guarded it).
        let mut cfg = SystemConfig::dual_core_two_channel();
        cfg.banks_per_rank = 6;
        let _ = AddressMapping::new(&cfg);
    }
}
