//! Differential test: for every `SchemeSpec` variant the batched engine,
//! the pool-backed bank-sharded engine, and the per-channel `MemorySystem`
//! routing — serial, pooled-overlapped, and streaming — must all produce
//! exactly the same `SchemeStats` as the old sequential boxed-dyn
//! per-access loop, invariant under 1/2/4/8 shard threads, arbitrary batch
//! boundaries, streaming staging capacities, and epoch lengths smaller
//! than the batch (the cut-aware path's hard case). PRA is included —
//! per-bank PRNG seeding (with the channel engines' bank bases) makes both
//! bank-sharding and channel routing deterministic. The invariants being
//! exercised are spelled out in `DESIGN.md §7`.

use cat_core::{MitigationScheme, RowId, SchemeSpec, SchemeStats};
use cat_engine::{BankEngine, MemGeometry, MemorySystem};

const BANKS: u32 = 16;
const ROWS: u32 = 8192;
const EPOCH: u64 = 25_000;

/// The 16 banks arranged as the 2-channel geometry the `MemorySystem`
/// differential routes over (global bank order is channel-major, so flat
/// engine bank `b` is channel `b / 8`, local bank `b % 8`).
fn geometry() -> MemGeometry {
    MemGeometry {
        channels: 2,
        ranks_per_channel: 1,
        banks_per_rank: 8,
        rows_per_bank: ROWS,
        lines_per_row: 16,
        line_bytes: 64,
    }
}

/// Deterministic trace mixing a few hammered rows with a spread background,
/// across all banks (splitmix-style mixing, no RNG dependency).
fn trace(n: u64) -> Vec<(u32, u32)> {
    (0..n)
        .map(|i| {
            let mut z = i
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x6a09_e667);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            let bank = (z % u64::from(BANKS)) as u32;
            let row = if !i.is_multiple_of(4) {
                // Hot rows, distinct per bank, hammered 75% of the time.
                1000 + bank
            } else {
                ((z >> 32) % u64::from(ROWS)) as u32
            };
            (bank, row)
        })
        .collect()
}

/// The loop every consumer used to hand-roll before `cat-engine` existed:
/// boxed trait objects, per-access virtual dispatch, modulo epoch rollover.
fn old_loop_with_epoch(
    spec: SchemeSpec,
    trace: &[(u32, u32)],
    epoch: u64,
) -> (SchemeStats, Vec<SchemeStats>) {
    let mut schemes: Vec<Option<Box<dyn MitigationScheme + Send>>> =
        (0..BANKS).map(|b| spec.build(ROWS, b)).collect();
    let mut accesses = 0u64;
    for &(bank, row) in trace {
        if let Some(s) = &mut schemes[bank as usize] {
            s.on_activation(RowId(row));
        }
        accesses += 1;
        if accesses.is_multiple_of(epoch) {
            for s in schemes.iter_mut().flatten() {
                s.on_epoch_end();
            }
        }
    }
    let mut total = SchemeStats::default();
    let mut per_bank = Vec::new();
    for s in schemes.iter().flatten() {
        per_bank.push(*s.stats());
        total.merge(s.stats());
    }
    (total, per_bank)
}

fn old_sequential_loop(spec: SchemeSpec, trace: &[(u32, u32)]) -> (SchemeStats, Vec<SchemeStats>) {
    old_loop_with_epoch(spec, trace, EPOCH)
}

fn all_specs() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::None,
        SchemeSpec::pra(0.002),
        SchemeSpec::Sca {
            counters: 64,
            threshold: 512,
        },
        SchemeSpec::Prcat {
            counters: 64,
            levels: 11,
            threshold: 512,
        },
        SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 512,
        },
        SchemeSpec::CounterCache {
            entries: 256,
            ways: 4,
            threshold: 512,
        },
        SchemeSpec::SpaceSaving {
            counters: 64,
            threshold: 512,
        },
    ]
}

#[test]
fn engine_matches_old_loop_for_every_spec_and_shard_count() {
    let trace = trace(150_000);
    for spec in all_specs() {
        let (old_total, old_per_bank) = old_sequential_loop(spec, &trace);

        // Batched, unsharded.
        let mut engine = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(EPOCH);
        engine.process(&trace);
        assert_eq!(engine.stats(), old_total, "{spec}: batched != old loop");
        assert_eq!(
            engine.per_bank_stats(),
            old_per_bank,
            "{spec}: per-bank mismatch"
        );
        assert_eq!(engine.epochs(), 150_000 / EPOCH);

        // Pool-backed sharding, 1/2/4/8 worker threads.
        for shards in [1usize, 2, 4, 8] {
            let mut sharded = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(EPOCH);
            sharded.process_sharded(&trace, shards);
            assert_eq!(
                sharded.stats(),
                old_total,
                "{spec}: {shards}-shard stats != old loop"
            );
            assert_eq!(
                sharded.per_bank_stats(),
                old_per_bank,
                "{spec}: {shards}-shard per-bank mismatch"
            );
            assert_eq!(
                sharded.activations_per_bank(),
                engine.activations_per_bank()
            );
            assert_eq!(sharded.epochs(), engine.epochs());
        }

        // The comparison must not be vacuous: every real scheme fires.
        if spec != SchemeSpec::None {
            assert!(
                old_total.refresh_events > 0,
                "{spec}: trace too tame, no refreshes to compare"
            );
        }
    }
}

#[test]
fn memory_system_matches_old_loop_for_every_spec_and_shard_count() {
    // The per-channel routing front-end, sequential and pool-backed, must
    // be bit-identical to the flat sequential engine (and so to the old
    // loop) — including across batch boundaries that straddle epochs.
    let trace = trace(150_000);
    for spec in all_specs() {
        let (old_total, old_per_bank) = old_sequential_loop(spec, &trace);
        let mut flat = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(EPOCH);
        flat.process(&trace);

        for shards in [1usize, 2, 4, 8] {
            let mut system = MemorySystem::new(geometry(), spec)
                .with_epoch_length(EPOCH)
                .with_shards(shards);
            for chunk in trace.chunks(13_337) {
                system.process(chunk);
            }
            assert_eq!(
                system.stats(),
                old_total,
                "{spec}: {shards}-shard system stats != old loop"
            );
            assert_eq!(
                system.per_bank_stats(),
                old_per_bank,
                "{spec}: {shards}-shard system per-bank mismatch"
            );
            assert_eq!(
                system.activations_per_bank(),
                flat.activations_per_bank(),
                "{spec}: {shards}-shard activations mismatch"
            );
            assert_eq!(system.epochs(), flat.epochs());
            assert_eq!(system.accesses(), 150_000);
        }
    }
}

#[test]
fn streaming_push_matches_old_loop_for_every_spec() {
    // The streaming front-end (push_decoded + automatic capacity flushes +
    // one final flush) must be bit-identical to the flat path for every
    // scheme, for staging capacities below, at, and above the epoch length
    // — including capacities that leave epoch boundaries mid-buffer.
    let trace = trace(120_000);
    for spec in all_specs() {
        let (old_total, old_per_bank) = old_loop_with_epoch(spec, &trace, EPOCH);
        for (capacity, shards) in [(257usize, 1usize), (8_192, 1), (8_192, 4), (60_000, 2)] {
            let mut system = MemorySystem::new(geometry(), spec)
                .with_epoch_length(EPOCH)
                .with_shards(shards)
                .with_stream_capacity(capacity);
            for &(bank, row) in &trace {
                system.push_decoded(bank, row);
            }
            let out = system.flush();
            assert_eq!(
                out.accesses,
                trace.len() as u64,
                "{spec}: stream cap {capacity} lost accesses"
            );
            assert_eq!(
                system.stats(),
                old_total,
                "{spec}: cap {capacity} × {shards} shards streamed stats != old loop"
            );
            assert_eq!(
                system.per_bank_stats(),
                old_per_bank,
                "{spec}: cap {capacity} × {shards} shards streamed per-bank mismatch"
            );
            assert_eq!(system.epochs(), trace.len() as u64 / EPOCH);
            assert_eq!(out.epochs, system.epochs());
        }
    }
}

#[test]
fn small_epochs_match_old_loop_for_every_spec_and_path() {
    // Epoch lengths far below the batch (and chunk) size: the cut-aware
    // batch path must fire hundreds of boundaries inside a single bank
    // loan — including segments in which a whole channel sees no access —
    // and stay bit-identical on the flat, sharded, routed and pooled
    // paths.
    let trace = trace(60_000);
    for epoch in [61u64, 997] {
        for spec in all_specs() {
            let (old_total, old_per_bank) = old_loop_with_epoch(spec, &trace, epoch);

            let mut flat = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(epoch);
            flat.process(&trace);
            assert_eq!(flat.stats(), old_total, "{spec}: flat != old loop @{epoch}");

            let mut sharded = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(epoch);
            for chunk in trace.chunks(13_337) {
                sharded.process_sharded(chunk, 4);
            }
            assert_eq!(
                sharded.stats(),
                old_total,
                "{spec}: sharded != old loop @{epoch}"
            );
            assert_eq!(sharded.per_bank_stats(), old_per_bank);

            for shards in [1usize, 2, 8] {
                let mut system = MemorySystem::new(geometry(), spec)
                    .with_epoch_length(epoch)
                    .with_shards(shards);
                for chunk in trace.chunks(13_337) {
                    system.process(chunk);
                }
                assert_eq!(
                    system.stats(),
                    old_total,
                    "{spec}: {shards}-shard system != old loop @{epoch}"
                );
                assert_eq!(
                    system.per_bank_stats(),
                    old_per_bank,
                    "{spec}: {shards}-shard system per-bank mismatch @{epoch}"
                );
                assert_eq!(system.epochs(), 60_000 / epoch);
            }
        }
    }
}

#[test]
fn external_cuts_match_internal_epoch_accounting() {
    // process_with_cuts / process_sharded_with_cuts with the cut positions
    // with_epoch_length would have computed must land on identical stats —
    // the cut-list form is the same epoch clock, just caller-owned.
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 512,
    };
    let trace = trace(50_000);
    let epoch = 7_000u64;
    let mut internal = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(epoch);
    internal.process(&trace);

    let cuts: Vec<usize> = (1..)
        .map(|k| (k * epoch) as usize)
        .take_while(|&c| c <= trace.len())
        .collect();
    let mut external = BankEngine::new(spec, BANKS, ROWS);
    let out = external.process_with_cuts(&trace, &cuts);
    assert_eq!(external.stats(), internal.stats());
    assert_eq!(external.per_bank_stats(), internal.per_bank_stats());
    assert_eq!(external.epochs(), internal.epochs());
    assert_eq!(out.epochs, cuts.len() as u64);

    let mut external_sharded = BankEngine::new(spec, BANKS, ROWS);
    external_sharded.process_sharded_with_cuts(&trace, &cuts, 4);
    assert_eq!(external_sharded.stats(), internal.stats());
    assert_eq!(external_sharded.per_bank_stats(), internal.per_bank_stats());
}

/// The old eager loop generalized over the bank count — the dense
/// reference for the sparse-storage differential below.
fn old_loop_over_banks(
    spec: SchemeSpec,
    trace: &[(u32, u32)],
    epoch: u64,
    banks: u32,
    rows: u32,
) -> (SchemeStats, Vec<SchemeStats>) {
    let mut schemes: Vec<Option<Box<dyn MitigationScheme + Send>>> =
        (0..banks).map(|b| spec.build(rows, b)).collect();
    let mut accesses = 0u64;
    for &(bank, row) in trace {
        if let Some(s) = &mut schemes[bank as usize] {
            s.on_activation(RowId(row));
        }
        accesses += 1;
        if accesses.is_multiple_of(epoch) {
            for s in schemes.iter_mut().flatten() {
                s.on_epoch_end();
            }
        }
    }
    let mut total = SchemeStats::default();
    let mut per_bank = Vec::new();
    for s in schemes.iter().flatten() {
        per_bank.push(*s.stats());
        total.merge(s.stats());
    }
    (total, per_bank)
}

#[test]
fn sparse_storage_matches_dense_reference_across_touch_patterns() {
    // The tentpole differential for the lazily-materialized bank storage:
    // whatever subset of banks a workload touches — a contiguous hot
    // range, a stride that leaves gaps, one single bank, or every bank —
    // the sparse engine must be bit-identical to the dense eagerly-built
    // reference on the flat and 1/2/4-shard pooled paths, and must have
    // materialized exactly the touched banks, never the cold ones.
    const SPARSE_BANKS: u32 = 64;
    const N: u64 = 60_000;
    let mix = |i: u64, bank: u32| {
        let mut z = i
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x6a09_e667);
        z ^= z >> 27;
        if !i.is_multiple_of(4) {
            1000 + bank
        } else {
            (z % u64::from(ROWS)) as u32
        }
    };
    let patterns: Vec<(&str, Vec<(u32, u32)>)> = vec![
        (
            "contiguous-hot",
            (0..N)
                .map(|i| {
                    let bank = (i % 4) as u32;
                    (bank, mix(i, bank))
                })
                .collect(),
        ),
        (
            "strided",
            (0..N)
                .map(|i| {
                    let bank = ((i % 8) * 8) as u32;
                    (bank, mix(i, bank))
                })
                .collect(),
        ),
        ("single-bank", (0..N).map(|i| (37, mix(i, 37))).collect()),
        (
            "all-banks",
            (0..N)
                .map(|i| {
                    let bank = (i % u64::from(SPARSE_BANKS)) as u32;
                    (bank, mix(i, bank))
                })
                .collect(),
        ),
    ];
    for (name, trace) in &patterns {
        let touched: std::collections::BTreeSet<u32> = trace.iter().map(|&(b, _)| b).collect();
        for spec in all_specs() {
            let (old_total, old_per_bank) =
                old_loop_over_banks(spec, trace, EPOCH, SPARSE_BANKS, ROWS);
            let mut flat = BankEngine::new(spec, SPARSE_BANKS, ROWS).with_epoch_length(EPOCH);
            flat.process(trace);
            assert_eq!(flat.stats(), old_total, "{spec} {name}: flat != dense");
            if spec != SchemeSpec::None {
                assert_eq!(
                    flat.per_bank_stats().len(),
                    SPARSE_BANKS as usize,
                    "{spec} {name}: cold banks must still report (zero) stats"
                );
                assert_eq!(
                    flat.per_bank_stats(),
                    old_per_bank,
                    "{spec} {name}: per-bank mismatch"
                );
                let fp = flat.footprint();
                assert_eq!(
                    fp.materialized_banks,
                    touched.len(),
                    "{spec} {name}: must materialize exactly the touched banks"
                );
                assert!(fp.scheme_bytes > 0, "{spec} {name}: footprint not wired");
            } else {
                assert_eq!(flat.footprint().materialized_banks, 0);
            }

            for shards in [1usize, 2, 4] {
                let mut sharded =
                    BankEngine::new(spec, SPARSE_BANKS, ROWS).with_epoch_length(EPOCH);
                sharded.process_sharded(trace, shards);
                assert_eq!(
                    sharded.stats(),
                    old_total,
                    "{spec} {name}: {shards}-shard != dense"
                );
                assert_eq!(sharded.per_bank_stats(), flat.per_bank_stats());
                assert_eq!(sharded.activations_per_bank(), flat.activations_per_bank());
                if spec != SchemeSpec::None {
                    assert_eq!(
                        sharded.footprint().materialized_banks,
                        touched.len(),
                        "{spec} {name}: {shards}-shard workers over-materialized"
                    );
                }
            }
        }
    }
}

#[test]
fn cold_banks_never_materialize_at_big_geometry() {
    // Construction must be O(1) in the bank count and cold banks must
    // stay unbuilt: a 1Mi-bank engine touching 64 banks holds exactly 64
    // scheme instances, and its resident footprint is orders of magnitude
    // below the dense estimate.
    const BIG: u32 = 1 << 20;
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 512,
    };
    let mut engine = BankEngine::new(spec, BIG, ROWS).with_epoch_length(1_000);
    let trace: Vec<(u32, u32)> = (0..10_000u64)
        .map(|i| ((i % 64 * 16_384) as u32, 1_000 + (i % 7) as u32))
        .collect();
    engine.process(&trace);
    let fp = engine.footprint();
    assert_eq!(fp.banks, BIG as usize);
    assert_eq!(fp.materialized_banks, 64);
    let per_instance = fp.scheme_bytes / 64;
    let dense_estimate = per_instance * BIG as usize;
    assert!(
        fp.resident_bytes() * 10 <= dense_estimate,
        "sparse {} vs dense estimate {}: under 10x win",
        fp.resident_bytes(),
        dense_estimate
    );
    // The pooled path must stay lazy too (shard workers materialize only
    // on rows), and keep matching the flat run.
    let mut pooled = BankEngine::new(spec, BIG, ROWS).with_epoch_length(1_000);
    pooled.process_sharded(&trace, 4);
    assert_eq!(pooled.stats(), engine.stats());
    assert_eq!(pooled.footprint().materialized_banks, 64);
}

#[test]
fn sharded_batches_compose_across_process_calls() {
    // Epoch state must carry across repeated sharded batches exactly as in
    // one big sequential run — and the persistent pool must keep producing
    // identical results when fed many small batches.
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 512,
    };
    let trace = trace(90_000);
    let (old_total, _) = old_sequential_loop(spec, &trace);
    let mut engine = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(EPOCH);
    for chunk in trace.chunks(13_337) {
        engine.process_sharded(chunk, 4);
    }
    assert_eq!(engine.stats(), old_total);
    assert_eq!(engine.epochs(), 90_000 / EPOCH);
}
