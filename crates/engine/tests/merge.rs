//! Stats-merge exactness and associativity (`DESIGN.md §12`): merging
//! per-slice [`SchemeStats`], [`EngineReport`]s and [`EngineFootprint`]s
//! in slice-id order over **any** partition of the bank space must equal
//! the unpartitioned totals exactly — this algebra is what lets a fleet
//! report bit-identically to a single host. The suite sweeps randomized,
//! seed-driven partitions (recursive aligned-pow2 halving) against the
//! flat reference, then checks the merge operators directly: associative,
//! with `Default` as identity.

use cat_core::{SchemeSpec, SchemeStats};
use cat_engine::{
    EngineFootprint, EngineReport, GeometrySlice, MemGeometry, MemorySystem, Partition,
};

const BANKS: u32 = 16;
const ROWS: u32 = 4096;
const EPOCH: u64 = 10_000;

fn geometry() -> MemGeometry {
    MemGeometry {
        channels: 2,
        ranks_per_channel: 1,
        banks_per_rank: 8,
        rows_per_bank: ROWS,
        lines_per_row: 16,
        line_bytes: 64,
    }
}

fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic hammered-plus-background trace across all banks (same
/// shape as the ingest and router suites).
fn seeded_trace(n: u64, seed: u64) -> Vec<(u32, u32)> {
    (0..n)
        .map(|i| {
            let z = mix(i.wrapping_add(seed.wrapping_mul(0x632b_e592_17f2_2b32)));
            let bank = (z % u64::from(BANKS)) as u32;
            let row = if i % 4 != 0 {
                1000 + bank
            } else {
                ((z >> 32) % u64::from(ROWS)) as u32
            };
            (bank, row)
        })
        .collect()
}

/// A random valid partition: start from the full bank range and keep
/// splitting slices in half, driven by seed bits — every result is a
/// disjoint, gap-free, aligned-pow2 cover, but slice widths vary (e.g.
/// `4 + 4 + 8`), which a uniform split never produces.
fn random_partition(seed: u64) -> Partition {
    let geometry = geometry();
    let mut z = seed;
    let mut work = vec![(0u32, geometry.total_banks())];
    let mut slices = Vec::new();
    while let Some((start, banks)) = work.pop() {
        z = mix(z);
        if banks > 1 && !z.is_multiple_of(3) {
            let half = banks / 2;
            work.push((start + half, half));
            work.push((start, half));
        } else {
            slices.push(GeometrySlice::new(geometry, start, banks).expect("halving stays valid"));
        }
    }
    slices.sort_by_key(|s| s.start_bank());
    Partition::from_slices(slices).expect("halving covers without gaps")
}

/// Runs `trace` through one clockless [`MemorySystem`] per slice,
/// routing each record to its owner and firing every epoch boundary on
/// **all** slices at the same global stream position — the in-process
/// shape of what the fleet router does over sockets.
fn run_sliced(spec: SchemeSpec, trace: &[(u32, u32)], partition: &Partition) -> Vec<MemorySystem> {
    let mut systems: Vec<MemorySystem> = partition
        .slices()
        .iter()
        .map(|s| MemorySystem::for_slice(s, spec))
        .collect();
    for (i, &(bank, row)) in trace.iter().enumerate() {
        systems[partition.route(bank)].push_decoded(bank, row);
        if (i as u64 + 1).is_multiple_of(EPOCH) {
            for system in &mut systems {
                system.flush();
                system.end_epoch();
            }
        }
    }
    for system in &mut systems {
        system.flush();
    }
    systems
}

/// Field-by-field [`EngineReport`] comparison, excluding
/// `footprint.accounting_bytes` (scratch high-water marks depend on the
/// engine split — the execution strategy — so only the wire-travelling
/// footprint fields are partition-invariant, exactly as `StatsSnapshot`
/// encodes).
fn assert_report_matches(merged: &EngineReport, reference: &EngineReport, label: &str) {
    assert_eq!(merged.accesses, reference.accesses, "{label}: accesses");
    assert_eq!(merged.epochs, reference.epochs, "{label}: epochs");
    assert_eq!(
        merged.activations_per_bank, reference.activations_per_bank,
        "{label}: per-bank activations"
    );
    assert_eq!(
        merged.scheme_stats, reference.scheme_stats,
        "{label}: aggregate stats"
    );
    assert_eq!(
        merged.per_bank_stats, reference.per_bank_stats,
        "{label}: per-bank stats"
    );
    assert_eq!(
        merged.footprint.banks, reference.footprint.banks,
        "{label}: banks"
    );
    assert_eq!(
        merged.footprint.materialized_banks, reference.footprint.materialized_banks,
        "{label}: materialized banks"
    );
    assert_eq!(
        merged.footprint.scheme_bytes, reference.footprint.scheme_bytes,
        "{label}: scheme bytes"
    );
}

/// Every partition of the bank space — uniform and randomized — merges
/// back to the unpartitioned totals exactly, for a flat-counter and a
/// tree scheme across several trace seeds.
#[test]
fn sliced_merges_equal_unpartitioned_totals_over_randomized_partitions() {
    let cases = [
        (
            SchemeSpec::Sca {
                counters: 64,
                threshold: 512,
            },
            1u64,
        ),
        (
            SchemeSpec::Sca {
                counters: 64,
                threshold: 512,
            },
            0x5EED,
        ),
        (
            SchemeSpec::Drcat {
                counters: 64,
                levels: 11,
                threshold: 512,
            },
            0xC0FFEE,
        ),
    ];
    for (spec, seed) in cases {
        let trace = seeded_trace(60_003, seed);
        let mut reference = MemorySystem::new(geometry(), spec).with_epoch_length(EPOCH);
        reference.process(&trace);
        assert!(
            reference.stats().refresh_events > 0,
            "seed {seed:#x}: trace too tame, nothing to compare"
        );
        let ref_report = reference.report();

        let mut partitions: Vec<Partition> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&n| Partition::uniform(geometry(), n).unwrap())
            .collect();
        partitions.extend((0..3).map(|i| random_partition(seed.wrapping_add(i))));

        for partition in &partitions {
            let label = format!(
                "{spec} seed {seed:#x}, {} slice(s) {:?}",
                partition.len(),
                partition
                    .slices()
                    .iter()
                    .map(|s| s.banks())
                    .collect::<Vec<_>>()
            );
            let systems = run_sliced(spec, &trace, partition);

            // SchemeStats: sum in slice order == the flat run's stats.
            let mut stats = SchemeStats::default();
            for system in &systems {
                stats.merge(&system.stats());
            }
            assert_eq!(stats, reference.stats(), "{label}: merged stats");

            // EngineReport: slice-order merge == the flat run's report
            // (per-bank vectors concatenate into global bank order).
            let mut report = EngineReport::default();
            for system in &systems {
                report.merge(&system.report());
            }
            assert_report_matches(&report, &ref_report, &label);

            // EngineFootprint: the wire-travelling fields sum exactly.
            let mut footprint = EngineFootprint::default();
            for system in &systems {
                footprint.merge(&system.footprint());
            }
            let ref_footprint = reference.footprint();
            assert_eq!(footprint.banks, ref_footprint.banks, "{label}");
            assert_eq!(
                footprint.materialized_banks, ref_footprint.materialized_banks,
                "{label}"
            );
            assert_eq!(
                footprint.scheme_bytes, ref_footprint.scheme_bytes,
                "{label}"
            );
        }
    }
}

/// The merge operators themselves: associative over real per-slice
/// values (any grouping of a slice-ordered fold agrees) with `Default`
/// as identity — the property that lets a fleet merge be staged in any
/// tree shape without changing the result.
#[test]
fn merges_are_associative_with_default_identity() {
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 512,
    };
    let trace = seeded_trace(40_000, 0xA550C);
    let partition = Partition::uniform(geometry(), 4).unwrap();
    let systems = run_sliced(spec, &trace, &partition);

    // SchemeStats: ((a ⊕ b) ⊕ c) ⊕ d == a ⊕ ((b ⊕ c) ⊕ d), and the
    // identity folds in anywhere. `max_depth_touched` merges by max, the
    // counters by sum — both associative, both with 0 as identity.
    let stats: Vec<SchemeStats> = systems.iter().map(|s| s.stats()).collect();
    let fold_left = {
        let mut acc = SchemeStats::default();
        for s in &stats {
            acc.merge(s);
        }
        acc
    };
    let fold_grouped = {
        let mut left = stats[0];
        left.merge(&stats[1]);
        let mut right = stats[2];
        right.merge(&stats[3]);
        let mut acc = SchemeStats::default();
        acc.merge(&left);
        acc.merge(&SchemeStats::default());
        acc.merge(&right);
        acc
    };
    assert_eq!(
        fold_left, fold_grouped,
        "SchemeStats grouping changed the merge"
    );

    // EngineFootprint over the same slices, plus synthesized values far
    // from any real run (large, odd, non-pow2) to rule out coincidence.
    let mut fleet = EngineFootprint::default();
    for system in &systems {
        fleet.merge(&system.footprint());
    }
    let mut staged = systems[0].footprint();
    staged.merge(&systems[1].footprint());
    let mut tail = systems[2].footprint();
    tail.merge(&systems[3].footprint());
    staged.merge(&tail);
    assert_eq!(fleet, staged, "EngineFootprint grouping changed the merge");
    let synth = |z: u64| EngineFootprint {
        banks: (mix(z) % 1_000_003) as usize,
        materialized_banks: (mix(z + 1) % 999_983) as usize,
        scheme_bytes: (mix(z + 2) % (1 << 40)) as usize,
        accounting_bytes: (mix(z + 3) % (1 << 40)) as usize,
    };
    let (a, b, c) = (synth(7), synth(77), synth(777));
    let mut left = a;
    left.merge(&b);
    left.merge(&c);
    let mut right = b;
    right.merge(&c);
    let mut outer = a;
    outer.merge(&right);
    assert_eq!(
        left, outer,
        "synthesized EngineFootprint merge not associative"
    );

    // EngineReport: slice-ordered grouping invariance (per-bank vectors
    // concatenate, so order must be preserved — grouping is free, order
    // is not).
    let reports: Vec<EngineReport> = systems.iter().map(|s| s.report()).collect();
    let mut flat = EngineReport::default();
    for r in &reports {
        flat.merge(r);
    }
    let mut head = reports[0].clone();
    head.merge(&reports[1]);
    let mut tail = reports[2].clone();
    tail.merge(&reports[3]);
    head.merge(&tail);
    assert_report_matches(&head, &flat, "EngineReport grouping");
    assert_eq!(
        head.footprint.accounting_bytes, flat.footprint.accounting_bytes,
        "same slicing, so even accounting bytes agree"
    );
}
