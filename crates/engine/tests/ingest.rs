//! Loopback differential for the socket/queue ingestion front-end: a
//! `catd`-style TCP server ([`cat_engine::ingest::serve`] — the exact loop
//! the `catd` example runs) must produce **bit-identical** `SchemeStats`
//! to the flat in-process batch path (and therefore to
//! `cat_sim::functional::run_functional`, which is that same
//! `MemorySystem` push/flush path behind an address decode — see
//! `tests/equivalence.rs`) for every combination of producer count, shard
//! count, and staging-flush boundary. The merge rule making this possible
//! is `DESIGN.md §8`.

use std::net::TcpListener;

use cat_core::{SchemeSpec, SchemeStats};
use cat_engine::ingest::{deal, serve, IngestClient, IngestQueue, ServeOptions};
use cat_engine::wire::StatsSnapshot;
use cat_engine::{MemGeometry, MemorySystem};

const BANKS: u32 = 16;
const ROWS: u32 = 4096;
const EPOCH: u64 = 25_000;
/// Records per dealt chunk (and so per wire frame) — deliberately not a
/// divisor of the trace length or any staging capacity.
const CHUNK: usize = 7_777;

fn geometry() -> MemGeometry {
    MemGeometry {
        channels: 2,
        ranks_per_channel: 1,
        banks_per_rank: 8,
        rows_per_bank: ROWS,
        lines_per_row: 16,
        line_bytes: 64,
    }
}

/// Deterministic hammered-plus-background trace across all banks
/// (splitmix-style mixing, same shape as `tests/equivalence.rs`).
fn trace(n: u64) -> Vec<(u32, u32)> {
    seeded_trace(n, 0)
}

/// [`trace`] with a seed folded into the mix, for the cross-thread sweep.
fn seeded_trace(n: u64, seed: u64) -> Vec<(u32, u32)> {
    (0..n)
        .map(|i| {
            let mut z = i
                .wrapping_add(seed.wrapping_mul(0x632b_e592_17f2_2b32))
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x6a09_e667);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            let bank = (z % u64::from(BANKS)) as u32;
            let row = if i % 4 != 0 {
                1000 + bank
            } else {
                ((z >> 32) % u64::from(ROWS)) as u32
            };
            (bank, row)
        })
        .collect()
}

/// Runs the whole trace through one loopback `catd` session: a server
/// thread drives `serve` over 127.0.0.1, `producers` client threads each
/// stream their `deal` lane, and every client collects the final stats
/// snapshot. Returns the snapshot plus the server system's per-bank stats.
fn loopback_run(
    spec: SchemeSpec,
    trace: &[(u32, u32)],
    producers: usize,
    shards: usize,
    stream_capacity: usize,
) -> (StatsSnapshot, Vec<SchemeStats>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut system = MemorySystem::new(geometry(), spec)
            .with_epoch_length(EPOCH)
            .with_shards(shards)
            .with_stream_capacity(stream_capacity);
        let report = serve(
            &listener,
            &mut system,
            &ServeOptions {
                producers,
                queue_capacity: 1 << 14,
                ..Default::default()
            },
        )
        .expect("serve");
        (report, system.per_bank_stats())
    });

    let snapshots: Vec<StatsSnapshot> = std::thread::scope(|scope| {
        let clients: Vec<_> = deal(trace, producers, CHUNK)
            .into_iter()
            .enumerate()
            .map(|(id, lane)| {
                scope.spawn(move || {
                    let mut client =
                        IngestClient::connect(addr, id as u32).expect("connect loopback");
                    assert_eq!(client.server_hello().geometry, geometry());
                    assert_eq!(client.server_hello().spec, spec.to_string());
                    assert_eq!(client.server_hello().epoch_len, Some(EPOCH));
                    for batch in lane {
                        client.send(batch).expect("send records");
                    }
                    client.finish_with_stats().expect("stats snapshot")
                })
            })
            .collect();
        clients.into_iter().map(|c| c.join().unwrap()).collect()
    });

    let (report, per_bank) = server.join().unwrap();
    assert_eq!(report.stats_served, producers);
    assert_eq!(report.outcome.accesses, trace.len() as u64);
    // Every client sees the same final snapshot.
    for snap in &snapshots {
        assert_eq!(*snap, report.snapshot);
    }
    (report.snapshot, per_bank)
}

/// The acceptance differential: ≥ 1M accesses through loopback `catd`,
/// bit-identical to the in-process reference for 1/2/4 producers × 1/2/4
/// shards × two staging-flush boundaries.
#[test]
fn loopback_catd_matches_flat_engine_for_every_producer_shard_and_flush_combo() {
    let spec = SchemeSpec::Sca {
        counters: 64,
        threshold: 512,
    };
    let trace = trace(1_000_003);

    // Reference: the flat single-process batch path (the computation
    // `run_functional` performs behind its address decode).
    let mut reference = MemorySystem::new(geometry(), spec).with_epoch_length(EPOCH);
    reference.process(&trace);
    let ref_stats = reference.stats();
    let ref_per_bank = reference.per_bank_stats();
    assert!(
        ref_stats.refresh_events > 0,
        "trace too tame, nothing to compare"
    );

    for producers in [1usize, 2, 4] {
        for shards in [1usize, 2, 4] {
            for stream_capacity in [4_096usize, 50_000] {
                let (snapshot, per_bank) =
                    loopback_run(spec, &trace, producers, shards, stream_capacity);
                let label =
                    format!("{producers} producers × {shards} shards × cap {stream_capacity}");
                assert_eq!(snapshot.stats, ref_stats, "{label}: aggregate stats");
                assert_eq!(per_bank, ref_per_bank, "{label}: per-bank stats");
                assert_eq!(snapshot.accesses, trace.len() as u64, "{label}");
                assert_eq!(snapshot.epochs, trace.len() as u64 / EPOCH, "{label}");
            }
        }
    }
}

/// In-process sweep of the SPSC lanes without the socket layer: for
/// several trace seeds and every 1/2/4 producers × 1/2/4 shards combo,
/// real OS threads stream `deal` lanes through a deliberately small ring
/// (1 << 10 slots — smaller than the 7 777-record chunks, so every batch
/// must stream through the ring under producer/consumer backpressure)
/// while the consumer merges into a sharded [`MemorySystem`]. The result
/// must match the flat single-thread reference bit for bit.
#[test]
fn in_process_queue_matches_flat_engine_across_seeds() {
    let spec = SchemeSpec::Sca {
        counters: 64,
        threshold: 512,
    };
    for seed in [1u64, 0x5EED, 0xC0FFEE] {
        let trace = seeded_trace(200_003, seed);
        let mut reference = MemorySystem::new(geometry(), spec).with_epoch_length(EPOCH);
        reference.process(&trace);
        let ref_stats = reference.stats();
        let ref_per_bank = reference.per_bank_stats();
        assert!(
            ref_stats.refresh_events > 0,
            "seed {seed:#x}: trace too tame, nothing to compare"
        );

        for producers in [1usize, 2, 4] {
            for shards in [1usize, 2, 4] {
                let (handles, mut consumer) = IngestQueue::bounded(producers, 1 << 10);
                let mut system = MemorySystem::new(geometry(), spec)
                    .with_epoch_length(EPOCH)
                    .with_shards(shards);
                let outcome = std::thread::scope(|scope| {
                    for (lane, handle) in deal(&trace, producers, CHUNK).into_iter().zip(handles) {
                        scope.spawn(move || {
                            let mut handle = handle;
                            for batch in lane {
                                handle.send(batch).expect("consumer outlives the scope");
                            }
                        });
                    }
                    system.ingest(&mut consumer)
                });
                let label = format!("seed {seed:#x}: {producers} producers × {shards} shards");
                assert_eq!(outcome.accesses, trace.len() as u64, "{label}");
                assert_eq!(system.stats(), ref_stats, "{label}: aggregate stats");
                assert_eq!(
                    system.per_bank_stats(),
                    ref_per_bank,
                    "{label}: per-bank stats"
                );
            }
        }
    }
}

/// A tree scheme (with splits/merges and deeper per-access state) over the
/// wire, to make sure the differential is not SCA-shaped by accident.
#[test]
fn loopback_catd_matches_flat_engine_for_a_tree_scheme() {
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 512,
    };
    let trace = trace(120_000);
    let mut reference = MemorySystem::new(geometry(), spec).with_epoch_length(EPOCH);
    reference.process(&trace);
    assert!(reference.stats().refresh_events > 0);

    let (snapshot, per_bank) = loopback_run(spec, &trace, 3, 2, 8_192);
    assert_eq!(snapshot.stats, reference.stats());
    assert_eq!(per_bank, reference.per_bank_stats());
}

#[test]
fn idle_producers_and_empty_sessions_are_handled() {
    let spec = SchemeSpec::Sca {
        counters: 16,
        threshold: 64,
    };
    // Producer 1 of 2 sends nothing at all; the session still completes
    // and the stats cover exactly producer 0's records.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut system = MemorySystem::new(geometry(), spec).with_epoch_length(EPOCH);
        serve(
            &listener,
            &mut system,
            &ServeOptions {
                producers: 2,
                ..Default::default()
            },
        )
        .expect("serve")
    });
    let sender = std::thread::spawn(move || {
        let mut client = IngestClient::connect(addr, 0).unwrap();
        client.send(&[(3, 50); 100]).unwrap();
        client.finish_with_stats().unwrap()
    });
    let idle = std::thread::spawn(move || {
        let client = IngestClient::connect(addr, 1).unwrap();
        client.finish().unwrap();
    });
    idle.join().unwrap();
    let snapshot = sender.join().unwrap();
    let report = server.join().unwrap();
    assert_eq!(snapshot.accesses, 100);
    assert_eq!(snapshot.stats.activations, 100);
    assert_eq!(report.stats_served, 1);
    assert_eq!(report.snapshot, snapshot);
}

#[test]
fn out_of_range_records_error_the_connection_not_the_server() {
    // Both coordinates: bank 16 is out of range for the 16-bank geometry,
    // and row 4096 is out of range for the 4096-row banks (the
    // counter-cache scheme bounds-checks rows, so an unvalidated row
    // would panic the shared drain thread and hang every other
    // producer). The server must reject either at the connection.
    let spec = SchemeSpec::CounterCache {
        entries: 256,
        ways: 4,
        threshold: 64,
    };
    for bad_record in [(BANKS, 0u32), (0, ROWS)] {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut system = MemorySystem::new(geometry(), spec);
            serve(&listener, &mut system, &ServeOptions::default())
        });
        let client = std::thread::spawn(move || {
            let mut client = IngestClient::connect(addr, 0).unwrap();
            let _ = client.send(&[bad_record]);
            let _ = client.finish();
        });
        let err = server.join().unwrap().expect_err("bad record must error");
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidData,
            "{bad_record:?}"
        );
        assert!(err.to_string().contains("out of range"), "{err}");
        client.join().unwrap();
    }
}

#[test]
fn duplicate_producer_ids_are_rejected_at_the_handshake() {
    let spec = SchemeSpec::Sca {
        counters: 16,
        threshold: 64,
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut system = MemorySystem::new(geometry(), spec);
        serve(
            &listener,
            &mut system,
            &ServeOptions {
                producers: 2,
                ..Default::default()
            },
        )
    });
    // First claimant of id 0 handshakes fine; the second must be refused.
    let first = IngestClient::connect(addr, 0).expect("first claim succeeds");
    let second = std::thread::spawn(move || IngestClient::connect(addr, 0));
    let err = server.join().unwrap().expect_err("duplicate id must error");
    assert!(err.to_string().contains("twice"), "{err}");
    // The refused client sees either an InvalidData-free connect error or
    // a closed socket, never a successful session.
    drop(first);
    let _ = second.join().unwrap();
}
