//! Kill-and-resume differential suite for the checkpoint format
//! (`DESIGN.md §11`): for **every** scheme spec × shard count, checkpoint
//! a seeded workload at **every** epoch cut, restore the image into a
//! freshly built twin, run the rest of the trace on both — final
//! `SchemeStats` *and* `EngineFootprint` must be bit-identical. The
//! uninterrupted comparison run processes the trace with the same batch
//! split (`trace[..cut]`, then `trace[cut..]`), so the footprint
//! comparison pins high-water marks, slab directory capacities and lazy
//! materialization order, not just counter values.
//!
//! Covers all three execution paths of the determinism contract
//! (`DESIGN.md §7`): the flat [`BankEngine::process`] path, the pooled
//! [`BankEngine::process_sharded`] path, and the routed
//! [`MemorySystem`] per-channel path (itself pooled for `shards > 1`).

use cat_core::SchemeSpec;
use cat_engine::{BankEngine, MemGeometry, MemorySystem};

const BANKS: u32 = 16;
const ROWS: u32 = 4096;
const EPOCH: u64 = 1_500;
const TRACE: u64 = 9_000;

fn geometry() -> MemGeometry {
    MemGeometry {
        channels: 2,
        ranks_per_channel: 1,
        banks_per_rank: 8,
        rows_per_bank: ROWS,
        lines_per_row: 16,
        line_bytes: 64,
    }
}

/// Every scheme spec the engine can serve, including the no-mitigation
/// baseline — a checkpoint must round-trip all of them.
fn specs() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::None,
        SchemeSpec::pra(0.001),
        SchemeSpec::Sca {
            counters: 64,
            threshold: 512,
        },
        SchemeSpec::Prcat {
            counters: 64,
            levels: 11,
            threshold: 512,
        },
        SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 512,
        },
        SchemeSpec::CounterCache {
            entries: 128,
            ways: 4,
            threshold: 512,
        },
        SchemeSpec::SpaceSaving {
            counters: 64,
            threshold: 512,
        },
    ]
}

/// Deterministic hammered-plus-background trace (splitmix-style mixing,
/// same shape as the ingest loopback suite) — hot rows drive refreshes
/// and tree growth, the background tail spreads across all banks.
fn trace() -> Vec<(u32, u32)> {
    (0..TRACE)
        .map(|i| {
            let mut z = i
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x6a09_e667);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            let bank = (z % u64::from(BANKS)) as u32;
            let row = if i % 4 != 0 {
                1000 + bank
            } else {
                ((z >> 32) % u64::from(ROWS)) as u32
            };
            (bank, row)
        })
        .collect()
}

/// Every epoch cut of the trace, including its (aligned) end.
fn cuts() -> Vec<usize> {
    (1..=TRACE / EPOCH).map(|k| (k * EPOCH) as usize).collect()
}

fn fresh_system(spec: SchemeSpec, shards: usize) -> MemorySystem {
    MemorySystem::new(geometry(), spec)
        .with_epoch_length(EPOCH)
        .with_shards(shards)
}

#[test]
fn system_kill_and_resume_is_bit_identical_for_every_spec_and_shard_count() {
    let trace = trace();
    for spec in specs() {
        for shards in [1usize, 2, 4] {
            for cut in cuts() {
                // The "killed" session: run to the cut, publish an image.
                let mut original = fresh_system(spec, shards);
                original.process(&trace[..cut]);
                let image = original
                    .checkpoint()
                    .unwrap_or_else(|e| panic!("{spec} x{shards} cut {cut}: checkpoint: {e}"));

                // The resumed session: restore into a fresh twin.
                let mut resumed = fresh_system(spec, shards);
                resumed
                    .restore(&image)
                    .unwrap_or_else(|e| panic!("{spec} x{shards} cut {cut}: restore: {e}"));
                assert_eq!(resumed.accesses(), original.accesses());
                assert_eq!(resumed.epochs(), original.epochs());
                assert_eq!(
                    resumed.stats(),
                    original.stats(),
                    "{spec} x{shards} cut {cut}: stats diverge at the cut"
                );
                assert_eq!(
                    resumed.footprint(),
                    original.footprint(),
                    "{spec} x{shards} cut {cut}: footprint diverges at the cut"
                );

                // Both finish the trace with the same batch split; the
                // original doubles as the uninterrupted comparison run.
                if cut < trace.len() {
                    original.process(&trace[cut..]);
                    resumed.process(&trace[cut..]);
                }
                assert_eq!(
                    resumed.stats(),
                    original.stats(),
                    "{spec} x{shards} cut {cut}: stats diverge after resume"
                );
                assert_eq!(
                    resumed.footprint(),
                    original.footprint(),
                    "{spec} x{shards} cut {cut}: footprint diverges after resume"
                );
            }
        }
    }
}

#[test]
fn engine_kill_and_resume_is_bit_identical_on_flat_and_pooled_paths() {
    let trace = trace();
    for spec in specs() {
        for shards in [1usize, 4] {
            for cut in cuts() {
                let run = |engine: &mut BankEngine, batch: &[(u32, u32)]| {
                    if shards == 1 {
                        engine.process(batch)
                    } else {
                        engine.process_sharded(batch, shards)
                    }
                };
                let mut original = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(EPOCH);
                run(&mut original, &trace[..cut]);
                let image = original
                    .checkpoint()
                    .unwrap_or_else(|e| panic!("{spec} x{shards} cut {cut}: checkpoint: {e}"));

                let mut resumed = BankEngine::new(spec, BANKS, ROWS).with_epoch_length(EPOCH);
                resumed
                    .restore(&image)
                    .unwrap_or_else(|e| panic!("{spec} x{shards} cut {cut}: restore: {e}"));
                assert_eq!(resumed.stats(), original.stats());
                assert_eq!(resumed.footprint(), original.footprint());

                if cut < trace.len() {
                    run(&mut original, &trace[cut..]);
                    run(&mut resumed, &trace[cut..]);
                }
                assert_eq!(
                    resumed.stats(),
                    original.stats(),
                    "{spec} x{shards} cut {cut}: engine stats diverge after resume"
                );
                assert_eq!(
                    resumed.footprint(),
                    original.footprint(),
                    "{spec} x{shards} cut {cut}: engine footprint diverges after resume"
                );
            }
        }
    }
}

#[test]
fn images_restore_across_shard_counts() {
    // Shard count is an execution-strategy knob, not state (`DESIGN.md
    // §7`): an image taken from a 1-shard run must restore into a
    // 4-shard system (and vice versa) and still finish bit-identically.
    let trace = trace();
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 512,
    };
    let cut = 4_500;
    let mut narrow = fresh_system(spec, 1);
    narrow.process(&trace[..cut]);
    let image = narrow.checkpoint().unwrap();

    let mut wide = fresh_system(spec, 4);
    wide.restore(&image).unwrap();
    narrow.process(&trace[cut..]);
    wide.process(&trace[cut..]);
    // Stats only: scratch high-water marks (and so `accounting_bytes`)
    // legitimately depend on the execution strategy, so footprint
    // equality holds within a shard count, not across them.
    assert_eq!(wide.stats(), narrow.stats());
    assert_eq!(wide.accesses(), narrow.accesses());
    assert_eq!(wide.epochs(), narrow.epochs());
}
