//! Fleet differential for the router tier (`DESIGN.md §12`): a router
//! fronting N sliced, clockless backends over loopback TCP must produce
//! a merged snapshot **bit-identical** — stats *and* footprint — to a
//! single-host [`MemorySystem`] on the union geometry, for every backend
//! × producer combination, including after killing one backend and
//! resuming it from its checkpoint directory (`DESIGN.md §11`). The
//! fleet-layout validation at both handshakes (router → backend and
//! client → router) must refuse every misconfiguration with a typed
//! error, never a panic.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;

use cat_core::SchemeSpec;
use cat_engine::checkpoint::{resume_from_dir, CheckpointConfig};
use cat_engine::ingest::{deal, serve as serve_backend, IngestClient, ServeOptions};
use cat_engine::router::{serve as serve_fleet, IngestRouter, RouterOptions, RouterReport};
use cat_engine::wire::StatsSnapshot;
use cat_engine::{MemGeometry, MemorySystem, Partition};

const BANKS: u32 = 16;
const ROWS: u32 = 4096;
/// Records per dealt chunk — deliberately not a divisor of any trace
/// length, flush boundary, or epoch length used below.
const CHUNK: usize = 7_777;

fn geometry() -> MemGeometry {
    MemGeometry {
        channels: 2,
        ranks_per_channel: 1,
        banks_per_rank: 8,
        rows_per_bank: ROWS,
        lines_per_row: 16,
        line_bytes: 64,
    }
}

/// Deterministic hammered-plus-background trace across all banks
/// (splitmix-style mixing, same shape as the ingest loopback suite).
fn seeded_trace(n: u64, seed: u64) -> Vec<(u32, u32)> {
    (0..n)
        .map(|i| {
            let mut z = i
                .wrapping_add(seed.wrapping_mul(0x632b_e592_17f2_2b32))
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x6a09_e667);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            let bank = (z % u64::from(BANKS)) as u32;
            let row = if i % 4 != 0 {
                1000 + bank
            } else {
                ((z >> 32) % u64::from(ROWS)) as u32
            };
            (bank, row)
        })
        .collect()
}

fn bind() -> (TcpListener, SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    (listener, addr)
}

/// A fresh scratch directory under the target-adjacent temp root, removed
/// by the caller.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("catree-router-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One fleet session over loopback: each backend runs `ingest::serve` on
/// the [`MemorySystem`] handed in (clockless — the router owns the
/// clock), the router runs `router::serve` with `epoch_len`, and
/// `producers` client threads stream `trace` in dealt lanes. Backends
/// hand their systems back so a caller can run multi-session
/// kill-and-resume sequences; clients hand back the snapshots the router
/// served them.
fn fleet_session(
    partition: &Partition,
    systems: Vec<MemorySystem>,
    checkpoints: &[Option<CheckpointConfig>],
    trace: &[(u32, u32)],
    producers: usize,
    epoch_len: Option<u64>,
) -> (RouterReport, Vec<MemorySystem>, Vec<StatsSnapshot>) {
    let binds: Vec<_> = (0..systems.len()).map(|_| bind()).collect();
    let backend_addrs: Vec<SocketAddr> = binds.iter().map(|(_, a)| *a).collect();
    let (router_listener, router_addr) = bind();
    std::thread::scope(|scope| {
        let backends: Vec<_> = binds
            .into_iter()
            .zip(systems)
            .enumerate()
            .map(|(id, ((listener, _), mut system))| {
                let options = ServeOptions {
                    producers: 1,
                    checkpoint: checkpoints[id].clone(),
                    ..Default::default()
                };
                scope.spawn(move || {
                    serve_backend(&listener, &mut system, &options)
                        .unwrap_or_else(|e| panic!("backend {id}: {e}"));
                    system
                })
            })
            .collect();
        let router = scope.spawn(|| {
            serve_fleet(
                &router_listener,
                partition,
                &backend_addrs,
                &RouterOptions {
                    producers,
                    epoch_len,
                    ..Default::default()
                },
            )
            .expect("router serve")
        });
        let snapshots: Vec<StatsSnapshot> = {
            let clients: Vec<_> = deal(trace, producers, CHUNK)
                .into_iter()
                .enumerate()
                .map(|(id, lane)| {
                    scope.spawn(move || {
                        let mut client =
                            IngestClient::connect(router_addr, id as u32).expect("connect router");
                        // The fleet is invisible at the handshake: union
                        // geometry, full slice, the backends' spec.
                        assert_eq!(client.server_hello().geometry, geometry());
                        assert_eq!(client.server_hello().slice_start, 0);
                        assert_eq!(client.server_hello().slice_banks, BANKS);
                        assert_eq!(client.server_hello().epoch_len, epoch_len);
                        for batch in lane {
                            client.send(batch).expect("send records");
                        }
                        client.finish_with_stats().expect("stats snapshot")
                    })
                })
                .collect();
            clients.into_iter().map(|c| c.join().unwrap()).collect()
        };
        let report = router.join().unwrap();
        let systems = backends.into_iter().map(|b| b.join().unwrap()).collect();
        (report, systems, snapshots)
    })
}

/// Checks a merged fleet snapshot against the single-host reference:
/// stats, stream position, and the wire-travelling footprint fields.
fn assert_snapshot_matches(snapshot: &StatsSnapshot, reference: &MemorySystem, label: &str) {
    assert_eq!(
        snapshot.stats,
        reference.stats(),
        "{label}: aggregate stats"
    );
    assert_eq!(snapshot.accesses, reference.accesses(), "{label}: accesses");
    assert_eq!(snapshot.epochs, reference.epochs(), "{label}: epochs");
    let fp = reference.footprint();
    assert_eq!(snapshot.banks, fp.banks as u64, "{label}: banks");
    assert_eq!(
        snapshot.materialized_banks, fp.materialized_banks as u64,
        "{label}: materialized banks"
    );
    assert_eq!(
        snapshot.scheme_bytes, fp.scheme_bytes as u64,
        "{label}: scheme bytes"
    );
}

/// The fleet acceptance differential: {1, 2, 4} backends × {1, 2, 4}
/// producers over loopback, each fleet bit-identical to the single-host
/// run on the union geometry.
#[test]
fn fleet_matches_single_host_for_every_backend_and_producer_combo() {
    let spec = SchemeSpec::Sca {
        counters: 64,
        threshold: 512,
    };
    const EPOCH: u64 = 25_000;
    let trace = seeded_trace(200_003, 0);
    let mut reference = MemorySystem::new(geometry(), spec).with_epoch_length(EPOCH);
    reference.process(&trace);
    assert!(
        reference.stats().refresh_events > 0,
        "trace too tame, nothing to compare"
    );

    for backends in [1usize, 2, 4] {
        let partition = Partition::uniform(geometry(), backends as u32).unwrap();
        for producers in [1usize, 2, 4] {
            let systems = partition
                .slices()
                .iter()
                .map(|s| MemorySystem::for_slice(s, spec))
                .collect();
            let (report, _, snapshots) = fleet_session(
                &partition,
                systems,
                &vec![None; backends],
                &trace,
                producers,
                Some(EPOCH),
            );
            let label = format!("{backends} backends × {producers} producers");
            assert_snapshot_matches(&report.snapshot, &reference, &label);
            assert_eq!(report.per_backend.len(), backends, "{label}");
            assert_eq!(report.stats_served, producers, "{label}");
            // Every client saw the merged snapshot, not a per-slice one.
            for snap in &snapshots {
                assert_eq!(*snap, report.snapshot, "{label}: client snapshot");
            }
        }
    }
}

/// A tree scheme (splits/merges, deeper per-access state, per-bank byte
/// footprints that differ between hot and cold banks) through a fleet,
/// so the differential is not SCA-shaped by accident.
#[test]
fn fleet_matches_single_host_for_a_tree_scheme() {
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 512,
    };
    const EPOCH: u64 = 25_000;
    let trace = seeded_trace(120_000, 0xD2CA7);
    let mut reference = MemorySystem::new(geometry(), spec).with_epoch_length(EPOCH);
    reference.process(&trace);
    assert!(reference.stats().refresh_events > 0);

    let partition = Partition::uniform(geometry(), 2).unwrap();
    let systems = partition
        .slices()
        .iter()
        .map(|s| MemorySystem::for_slice(s, spec))
        .collect();
    let (report, _, _) = fleet_session(&partition, systems, &[None, None], &trace, 3, Some(EPOCH));
    assert_snapshot_matches(&report.snapshot, &reference, "drcat fleet");
}

/// The kill-and-resume acceptance case: a two-backend fleet streams a
/// trace prefix, one backend is "killed" (its in-memory system
/// discarded) and recovered from its checkpoint directory, the survivor
/// keeps its state, and a second session streams the rest. The final
/// merged snapshot must still be bit-identical to the uninterrupted
/// single-host run — both when the kill lands exactly on an epoch cut
/// and when it lands mid-epoch (image + trace-log replay, with the
/// router's clock re-phasing from the advertised resume positions).
#[test]
fn killed_backend_resumes_from_its_checkpoint_dir_and_the_differential_holds() {
    // Threshold low enough that the short (9 000-access) trace still
    // drives refreshes on both sides of the kill.
    let spec = SchemeSpec::Drcat {
        counters: 64,
        levels: 11,
        threshold: 32,
    };
    const EPOCH: u64 = 1_500;
    let trace = seeded_trace(9_000, 0xF1EE7);
    let mut reference = MemorySystem::new(geometry(), spec).with_epoch_length(EPOCH);
    reference.process(&trace);
    assert!(reference.stats().refresh_events > 0);

    for split in [6_000usize, 5_250] {
        let label = format!("split at {split}");
        let partition = Partition::uniform(geometry(), 2).unwrap();
        let dir = scratch_dir(&format!("resume-{split}"));
        let checkpoints = [None, Some(CheckpointConfig::new(&dir))];

        // Session 1: both backends fresh, stream the prefix.
        let systems = partition
            .slices()
            .iter()
            .map(|s| MemorySystem::for_slice(s, spec))
            .collect();
        let (report, mut systems, _) = fleet_session(
            &partition,
            systems,
            &checkpoints,
            &trace[..split],
            2,
            Some(EPOCH),
        );
        assert_eq!(report.snapshot.accesses, split as u64, "{label}");
        assert_eq!(report.snapshot.epochs, split as u64 / EPOCH, "{label}");

        // "Kill" backend 1: drop its system, recover a fresh twin from
        // the directory. The survivor's system carries over untouched.
        let dead = systems.pop().unwrap();
        let killed_at = (dead.accesses(), dead.epochs());
        drop(dead);
        let mut recovered = MemorySystem::for_slice(&partition.slices()[1], spec);
        let state = resume_from_dir(&mut recovered, &dir)
            .unwrap_or_else(|e| panic!("{label}: resume: {e}"));
        assert!(state.from_checkpoint, "{label}: no image was published");
        assert_eq!(
            (recovered.accesses(), recovered.epochs()),
            killed_at,
            "{label}: recovery missed the killed backend's position"
        );
        // A *clean* session end publishes a final image even mid-epoch,
        // so nothing needs replaying here; the hard-kill path (image +
        // trace-log tail replay) is exercised by the checkpoint suite
        // and the tier-1 fleet smoke, which kills a live process.
        assert_eq!(state.replayed, 0, "{label}: unexpected log tail");
        systems.push(recovered);

        // Session 2: the resumed fleet streams the tail; the router's
        // epoch clock re-phases from the handshake positions.
        let (report, _, _) = fleet_session(
            &partition,
            systems,
            &checkpoints,
            &trace[split..],
            2,
            Some(EPOCH),
        );
        assert_snapshot_matches(&report.snapshot, &reference, &label);
        std::fs::remove_dir_all(&dir).expect("scratch dir cleanup");
    }
}

/// A backend advertising a slice other than its fleet slot is refused at
/// the router's handshake with a typed error.
#[test]
fn router_refuses_a_backend_advertising_the_wrong_slice() {
    let spec = SchemeSpec::Sca {
        counters: 16,
        threshold: 64,
    };
    // The fleet expects one full-geometry backend; the backend serves
    // only the lower half of the bank space.
    let partition = Partition::uniform(geometry(), 1).unwrap();
    let (listener, addr) = bind();
    let backend = std::thread::spawn(move || {
        let half = *Partition::uniform(geometry(), 2)
            .unwrap()
            .slices()
            .first()
            .unwrap();
        let mut system = MemorySystem::for_slice(&half, spec);
        serve_backend(&listener, &mut system, &ServeOptions::default())
    });
    let err = IngestRouter::connect(&partition, &[addr], &RouterOptions::default())
        .expect_err("wrong slice must be refused");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("fleet slot"), "{err}");
    // The backend's session errors (or ends) once the router hangs up.
    let _ = backend.join().unwrap();
}

/// A backend firing its own epoch boundaries cannot join a fleet: the
/// router owns the clock.
#[test]
fn router_refuses_a_clocked_backend() {
    let spec = SchemeSpec::Sca {
        counters: 16,
        threshold: 64,
    };
    let partition = Partition::uniform(geometry(), 1).unwrap();
    let (listener, addr) = bind();
    let backend = std::thread::spawn(move || {
        let mut system = MemorySystem::new(geometry(), spec).with_epoch_length(1_000);
        serve_backend(&listener, &mut system, &ServeOptions::default())
    });
    let err = IngestRouter::connect(&partition, &[addr], &RouterOptions::default())
        .expect_err("clocked backend must be refused");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("clockless"), "{err}");
    let _ = backend.join().unwrap();
}

/// Backends resumed from checkpoints of different epoch cuts are an
/// inconsistent fleet; the mismatch is refused at connection time.
#[test]
fn router_refuses_backends_resumed_from_different_cuts() {
    let spec = SchemeSpec::Sca {
        counters: 16,
        threshold: 64,
    };
    let partition = Partition::uniform(geometry(), 2).unwrap();
    let binds: Vec<_> = (0..2).map(|_| bind()).collect();
    let addrs: Vec<SocketAddr> = binds.iter().map(|(_, a)| *a).collect();
    let backends: Vec<_> = binds
        .into_iter()
        .zip(partition.slices().to_vec())
        .enumerate()
        .map(|(id, ((listener, _), slice))| {
            std::thread::spawn(move || {
                let mut system = MemorySystem::for_slice(&slice, spec);
                if id == 1 {
                    // Backend 1 stands one epoch ahead of backend 0 — the
                    // shape of checkpoints taken at different cuts.
                    system.end_epoch();
                }
                serve_backend(&listener, &mut system, &ServeOptions::default())
            })
        })
        .collect();
    let err = IngestRouter::connect(&partition, &addrs, &RouterOptions::default())
        .expect_err("mismatched resume positions must be refused");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("same cut"), "{err}");
    for backend in backends {
        let _ = backend.join().unwrap();
    }
}

/// When the router fires its own epoch boundaries, a client-driven cut
/// is refused at the client's connection (same rule as a clocked `catd`).
#[test]
fn a_clocked_router_refuses_stream_epoch_cuts_at_the_connection() {
    let spec = SchemeSpec::Sca {
        counters: 16,
        threshold: 64,
    };
    let partition = Partition::uniform(geometry(), 1).unwrap();
    let (backend_listener, backend_addr) = bind();
    let backend = std::thread::spawn(move || {
        let mut system = MemorySystem::new(geometry(), spec);
        serve_backend(&backend_listener, &mut system, &ServeOptions::default())
    });
    let (router_listener, router_addr) = bind();
    let partition_for_router = partition.clone();
    let router = std::thread::spawn(move || {
        serve_fleet(
            &router_listener,
            &partition_for_router,
            &[backend_addr],
            &RouterOptions {
                epoch_len: Some(1_000),
                ..Default::default()
            },
        )
    });
    let client = std::thread::spawn(move || {
        let mut client = IngestClient::connect(router_addr, 0).expect("connect router");
        let _ = client.send_cut();
        let _ = client.finish();
    });
    let err = router
        .join()
        .unwrap()
        .expect_err("stream cut must be refused");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("epoch boundaries"), "{err}");
    client.join().unwrap();
    let _ = backend.join().unwrap();
}

/// The scatter stage refuses a manual cut when the router has a clock —
/// and a zero-record fleet session still finishes with exact accounting.
#[test]
fn a_clocked_ingest_router_refuses_manual_cuts() {
    let spec = SchemeSpec::Sca {
        counters: 16,
        threshold: 64,
    };
    let partition = Partition::uniform(geometry(), 1).unwrap();
    let (listener, addr) = bind();
    let backend = std::thread::spawn(move || {
        let mut system = MemorySystem::new(geometry(), spec);
        serve_backend(&listener, &mut system, &ServeOptions::default())
    });
    let mut router = IngestRouter::connect(
        &partition,
        &[addr],
        &RouterOptions {
            epoch_len: Some(500),
            ..Default::default()
        },
    )
    .expect("connect fleet");
    let err = router
        .cut()
        .expect_err("clocked router must refuse manual cuts");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("epoch boundaries"), "{err}");
    let report = router.finish_with_stats().expect("empty session finishes");
    assert_eq!(report.snapshot.accesses, 0);
    assert_eq!(report.snapshot.epochs, 0);
    let _ = backend.join().unwrap();
}

/// A sliced backend refuses records outside its slice at the connection
/// — the wire-level half of the `GeometrySlice` validation story.
#[test]
fn a_sliced_backend_refuses_out_of_slice_records_at_the_connection() {
    let spec = SchemeSpec::Sca {
        counters: 16,
        threshold: 64,
    };
    let partition = Partition::uniform(geometry(), 2).unwrap();
    let lower = partition.slices()[0];
    let (listener, addr) = bind();
    let backend = std::thread::spawn(move || {
        let mut system = MemorySystem::for_slice(&lower, spec);
        serve_backend(&listener, &mut system, &ServeOptions::default())
    });
    let client = std::thread::spawn(move || {
        let mut client = IngestClient::connect(addr, 0).expect("connect backend");
        // The handshake advertises the slice…
        assert_eq!(client.server_hello().slice_start, 0);
        assert_eq!(client.server_hello().slice_banks, BANKS / 2);
        // …and bank 8 (the first bank of the *other* slice) is refused.
        let _ = client.send(&[(BANKS / 2, 0)]);
        let _ = client.finish();
    });
    let err = backend
        .join()
        .unwrap()
        .expect_err("out-of-slice record must error");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("out of range"), "{err}");
    client.join().unwrap();
}

/// Fleet-layout errors that need no live backend: a backend list that
/// does not match the partition, and a zero-length epoch clock.
#[test]
fn fleet_configuration_errors_are_typed() {
    let partition = Partition::uniform(geometry(), 2).unwrap();
    let err = IngestRouter::connect(&partition, &["127.0.0.1:9"], &RouterOptions::default())
        .expect_err("one address for two slices");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("2-slice partition"), "{err}");

    let err = IngestRouter::connect(
        &partition,
        &["127.0.0.1:9", "127.0.0.1:9"],
        &RouterOptions {
            epoch_len: Some(0),
            ..Default::default()
        },
    )
    .expect_err("epoch length zero");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("clockless"), "{err}");
}
