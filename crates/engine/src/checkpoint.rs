//! Epoch-consistent checkpoint/restore of engine and system state
//! (`DESIGN.md §11`).
//!
//! A checkpoint is a versioned, length-prefixed little-endian image of the
//! *complete* mutable state behind [`BankEngine`] or [`MemorySystem`]:
//! every materialized scheme instance's counters, tree shape and PRNG
//! state (via the schemes' `save_state` word streams), the sparse slabs'
//! occupancy **and** their touch-order-dependent block-directory
//! capacities, the epoch position, and the scratch-buffer high-water
//! marks. Restoring an image into a freshly built engine of the same
//! configuration therefore reproduces not just bit-identical stats for
//! the rest of the run but a bit-identical [`crate::EngineFootprint`] —
//! the kill-and-resume differential suite asserts both.
//!
//! Checkpoints are taken **only at epoch cuts** (positions in the global
//! access stream that are multiples of the epoch length, vacuously any
//! inter-batch position when no epoch clock is configured), with the
//! staging buffer empty. Between batches the system owns all of its
//! banks — the pool's loan/reclaim protocol has completed — so a cut
//! image is consistent by construction, with no quiescing machinery.
//!
//! Decode is hardened like [`crate::wire`]: magic + version + scope are
//! checked first, every count is validated against the bytes actually
//! remaining *before* anything is allocated, capacities are bounded by
//! hard caps, and the image carries a trailing FNV-1a integrity hash so
//! torn or bit-flipped files surface as typed [`io::Error`]s instead of
//! panics or silently wrong state.
//!
//! The on-disk recovery protocol of the `catd` front-end pairs the
//! checkpoint image with a bounded **trace log**: every merged batch is
//! appended (and synced) to the log *before* it is processed, and taking
//! a checkpoint rotates the log. Crash recovery
//! ([`resume_from_dir`]) restores the newest image, then replays the
//! log tail past the checkpoint position — the rename-then-reset window
//! is covered by skipping the records the image already contains.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use cat_core::{StateError, StateReader};

use crate::ingest::{IngestConsumer, IngestEvent};
use crate::wire::{pack_record, unpack_record, MAX_SPEC_LEN};
use crate::{BankEngine, BatchOutcome, MemorySystem};

/// Checkpoint image magic, the first four bytes of every image
/// ("CAT Checkpoint").
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"CATC";

/// Checkpoint format version. Bump on any incompatible layout change;
/// images of another version are refused instead of misparsed.
///
/// Version 2 added the owned [`crate::GeometrySlice`] (start bank + bank
/// count) to the system section, so a fleet backend's image is pinned to
/// its slice and cannot be restored into a backend serving a different
/// partition.
pub const CHECKPOINT_VERSION: u16 = 2;

/// Hard cap on a checkpoint image/file size — bounds what [`resume_from_dir`]
/// will read into memory.
pub const MAX_CHECKPOINT_BYTES: u64 = 1 << 30;

/// Checkpoint image filename inside a checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// Trace-log filename inside a checkpoint directory.
pub const TRACE_LOG_FILE: &str = "trace.log";

/// Scope byte: the image captures one [`BankEngine`].
const SCOPE_ENGINE: u8 = 1;
/// Scope byte: the image captures a whole [`MemorySystem`].
const SCOPE_SYSTEM: u8 = 2;

/// Hard cap on one bank's scheme-state word count — bounds the per-bank
/// allocation a forged length prefix can force.
const MAX_STATE_WORDS: u64 = 1 << 22;

/// Hard cap on a saved scratch-capacity high-water mark, in elements —
/// bounds the `reserve_exact` a forged capacity field can force.
const MAX_SCRATCH_CAP: u64 = 1 << 24;

/// Temporary filename a checkpoint is written to before the atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// Trace-log magic ("CAT Log").
const LOG_MAGIC: [u8; 4] = *b"CATL";
/// Trace-log format version. Version 2 added the base epoch count to the
/// header and the in-stream cut marker word.
const LOG_VERSION: u16 = 2;
/// Log header bytes: magic + version + base access count + base epochs.
const LOG_HEADER_BYTES: u64 = 4 + 2 + 8 + 8;
/// In-stream epoch-cut marker: a word whose bank half is `u32::MAX`,
/// which no validated record can carry (banks are bounded by the
/// geometry, itself capped well below `u32::MAX`). Clockless systems
/// driven by a router's epoch clock persist each wire-delivered cut as
/// one marker word, so log replay reproduces the epoch boundaries at the
/// exact stream positions they fired.
const CUT_MARKER: u64 = u32::MAX as u64;
/// Records per [`MemorySystem::process`] call during log replay.
const REPLAY_CHUNK: usize = 1 << 16;

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn state_err(e: StateError) -> io::Error {
    let kind = match e {
        StateError::Unsupported(_) => io::ErrorKind::Unsupported,
        StateError::Exhausted | StateError::Invalid(_) => io::ErrorKind::InvalidData,
    };
    io::Error::new(kind, format!("scheme state: {e}"))
}

/// `true` when `accesses` sits on an epoch cut (vacuously true without an
/// epoch clock — any inter-batch position is consistent then).
fn aligned(accesses: u64, epoch_len: Option<u64>) -> bool {
    match epoch_len {
        None => true,
        Some(n) => accesses.is_multiple_of(n),
    }
}

// ---------------------------------------------------------------------------
// Integrity seal
// ---------------------------------------------------------------------------

/// FNV-1a 64 over `bytes` — an *integrity* hash (torn writes, bit rot,
/// truncation), not an authentication code.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the integrity hash of everything written so far.
fn seal(buf: &mut Vec<u8>) {
    let h = fnv1a(buf);
    buf.extend_from_slice(&h.to_le_bytes());
}

/// Verifies and strips the trailing integrity hash, returning the body.
fn verify_sealed(image: &[u8]) -> io::Result<&[u8]> {
    if image.len() < 8 {
        return Err(bad(format!("{}-byte checkpoint image", image.len())));
    }
    if image.len() as u64 > MAX_CHECKPOINT_BYTES {
        return Err(bad(format!(
            "{}-byte checkpoint image exceeds the {MAX_CHECKPOINT_BYTES}-byte cap",
            image.len()
        )));
    }
    let (body, tail) = image.split_at(image.len() - 8);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(tail);
    let stored = u64::from_le_bytes(stored);
    if fnv1a(body) != stored {
        return Err(bad("checkpoint integrity hash mismatch"));
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode primitives
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a checkpoint body. Every read validates against the bytes
/// actually remaining, so a forged count errors before it allocates.
struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        if n > self.buf.len() {
            return Err(bad(format!(
                "truncated checkpoint: {what} needs {n} bytes, {} remain",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> io::Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> io::Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> io::Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn finish(self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing bytes after the checkpoint body",
                self.buf.len()
            )))
        }
    }
}

fn put_header(buf: &mut Vec<u8>, scope: u8) {
    buf.extend_from_slice(&CHECKPOINT_MAGIC);
    put_u16(buf, CHECKPOINT_VERSION);
    buf.push(scope);
}

fn read_header(r: &mut ByteReader<'_>, want_scope: u8) -> io::Result<()> {
    let magic = r.take(4, "magic")?;
    if magic != CHECKPOINT_MAGIC {
        return Err(bad(format!("bad checkpoint magic {magic:02x?}")));
    }
    let version = r.u16("version")?;
    if version != CHECKPOINT_VERSION {
        return Err(bad(format!(
            "checkpoint version {version}, this build reads {CHECKPOINT_VERSION}"
        )));
    }
    let scope = r.u8("scope")?;
    if scope != want_scope {
        let describe = |s: u8| match s {
            SCOPE_ENGINE => "a BankEngine".to_string(),
            SCOPE_SYSTEM => "a MemorySystem".to_string(),
            other => format!("unknown scope {other}"),
        };
        return Err(bad(format!(
            "checkpoint captures {}, restore target is {}",
            describe(scope),
            describe(want_scope)
        )));
    }
    Ok(())
}

fn put_epoch_len(buf: &mut Vec<u8>, epoch_len: Option<u64>) {
    match epoch_len {
        Some(n) => {
            buf.push(1);
            put_u64(buf, n);
        }
        None => {
            buf.push(0);
            put_u64(buf, 0);
        }
    }
}

fn read_epoch_len(r: &mut ByteReader<'_>) -> io::Result<Option<u64>> {
    let flag = r.u8("epoch flag")?;
    let len = r.u64("epoch length")?;
    match (flag, len) {
        (0, 0) => Ok(None),
        (0, _) => Err(bad("epoch length set with a cleared epoch flag")),
        (1, 0) => Err(bad("zero epoch length with a set epoch flag")),
        (1, n) => Ok(Some(n)),
        (other, _) => Err(bad(format!("epoch flag {other} is neither 0 nor 1"))),
    }
}

// ---------------------------------------------------------------------------
// Engine section
// ---------------------------------------------------------------------------

/// Appends one engine's complete state. Layout (all little-endian):
///
/// ```text
/// u16 spec_len + spec string   canonical SchemeSpec form, validated on restore
/// u32 banks, rows, base        geometry, validated on restore
/// u8 flag + u64 epoch_len      epoch clock, validated on restore
/// u64 accesses, epochs
/// u64 act_block_cap            activation slab directory capacity (high-water)
/// u64 act_occupied             then that many (u64 bank, u64 count) ascending
/// u64 scheme_block_cap         scheme slab directory capacity (high-water)
/// u64 materialized             then per bank ascending:
///                                u64 bank, u64 nwords, nwords × u64 state
/// u64 × 4                      scratch capacities: act, seg_cursor,
///                                touched, row_scratch (high-water marks)
/// ```
fn encode_engine_section(e: &BankEngine, out: &mut Vec<u8>) -> io::Result<()> {
    let spec = e.banks.spec().to_string();
    if spec.len() > usize::from(MAX_SPEC_LEN) {
        return Err(bad(format!("spec string of {} bytes", spec.len())));
    }
    put_u16(out, spec.len() as u16);
    out.extend_from_slice(spec.as_bytes());
    put_u32(out, e.banks.capacity() as u32);
    put_u32(out, e.banks.rows());
    put_u32(out, e.banks.base());
    put_epoch_len(out, e.epoch_len);
    put_u64(out, e.accesses);
    put_u64(out, e.epochs);

    put_u64(out, e.activations.block_capacity() as u64);
    put_u64(out, e.activations.occupied() as u64);
    for (bank, &count) in e.activations.iter() {
        put_u64(out, bank as u64);
        put_u64(out, count);
    }

    put_u64(out, e.banks.block_capacity() as u64);
    put_u64(out, e.banks.materialized() as u64);
    let mut words: Vec<u64> = Vec::new();
    for (bank, scheme) in e.banks.iter() {
        words.clear();
        scheme.save_state(&mut words).map_err(state_err)?;
        if words.len() as u64 > MAX_STATE_WORDS {
            return Err(bad(format!(
                "bank {bank} scheme state of {} words exceeds the {MAX_STATE_WORDS}-word cap",
                words.len()
            )));
        }
        put_u64(out, bank as u64);
        put_u64(out, words.len() as u64);
        for &w in &words {
            put_u64(out, w);
        }
    }

    put_u64(out, e.act_scratch.capacity() as u64);
    put_u64(out, e.seg_cursor.capacity() as u64);
    put_u64(out, e.touched.capacity() as u64);
    put_u64(out, e.row_scratch.capacity() as u64);
    Ok(())
}

/// Reads a bank index that must be `< banks` and strictly above `prev`.
fn read_bank_index(
    r: &mut ByteReader<'_>,
    banks: usize,
    prev: Option<usize>,
    what: &str,
) -> io::Result<usize> {
    let bank = r.u64(what)?;
    if bank >= banks as u64 {
        return Err(bad(format!("{what} {bank} out of range for {banks} banks")));
    }
    let bank = bank as usize;
    if let Some(p) = prev {
        if bank <= p {
            return Err(bad(format!(
                "{what} {bank} not strictly ascending after {p}"
            )));
        }
    }
    Ok(bank)
}

/// Reads a saved scratch-capacity high-water mark, bounded by
/// [`MAX_SCRATCH_CAP`] so a forged field cannot force a huge allocation.
fn read_scratch_cap(r: &mut ByteReader<'_>, what: &str) -> io::Result<usize> {
    let cap = r.u64(what)?;
    if cap > MAX_SCRATCH_CAP {
        return Err(bad(format!(
            "{what} of {cap} exceeds the {MAX_SCRATCH_CAP}-element cap"
        )));
    }
    Ok(cap as usize)
}

/// Restores one engine section onto a freshly built engine of the same
/// configuration. Validates config identity and every structural
/// invariant; on error the target may be partially mutated and must be
/// discarded.
fn decode_engine_section(e: &mut BankEngine, r: &mut ByteReader<'_>) -> io::Result<()> {
    if e.accesses != 0
        || e.epochs != 0
        || e.activations.occupied() != 0
        || e.banks.materialized() != 0
    {
        return Err(bad("restore target is not freshly built"));
    }
    let spec_len = usize::from(r.u16("spec length")?);
    if spec_len > usize::from(MAX_SPEC_LEN) {
        return Err(bad(format!("spec string of {spec_len} bytes")));
    }
    let spec_bytes = r.take(spec_len, "spec string")?;
    let spec = std::str::from_utf8(spec_bytes).map_err(|e| bad(format!("spec not UTF-8: {e}")))?;
    let own = e.banks.spec().to_string();
    if spec != own {
        return Err(bad(format!(
            "checkpoint spec `{spec}` does not match engine spec `{own}`"
        )));
    }
    let banks = r.u32("bank count")? as usize;
    if banks != e.banks.capacity() {
        return Err(bad(format!(
            "checkpoint spans {banks} banks, engine has {}",
            e.banks.capacity()
        )));
    }
    let rows = r.u32("row count")?;
    if rows != e.banks.rows() {
        return Err(bad(format!(
            "checkpoint banks have {rows} rows, engine banks have {}",
            e.banks.rows()
        )));
    }
    let base = r.u32("bank base")?;
    if base != e.banks.base() {
        return Err(bad(format!(
            "checkpoint bank base {base}, engine bank base {}",
            e.banks.base()
        )));
    }
    let epoch_len = read_epoch_len(r)?;
    if epoch_len != e.epoch_len {
        return Err(bad(format!(
            "checkpoint epoch length {epoch_len:?}, engine configured with {:?}",
            e.epoch_len
        )));
    }
    let accesses = r.u64("access count")?;
    let epochs = r.u64("epoch count")?;
    if !aligned(accesses, epoch_len) {
        return Err(bad(format!(
            "checkpoint position {accesses} is not an epoch cut of {epoch_len:?}"
        )));
    }

    // Activation counters: reserve the saved directory high-water mark,
    // then re-insert in ascending bank order — that reproduces the slab's
    // heap layout bit-for-bit (packed payload capacities depend only on
    // the final entry count, the directory only on the reserved cap).
    // The directory holds at most ceil(banks/64) blocks, but Vec growth
    // (doubling, minimum first allocation) can leave its capacity up to
    // 2× that — or 8 for tiny slabs — so bound forged values there.
    let max_blocks = banks.div_ceil(64);
    let cap_bound = max_blocks.saturating_mul(2).max(8);
    let act_cap = r.u64("activation block capacity")? as usize;
    if act_cap > cap_bound {
        return Err(bad(format!(
            "activation directory capacity {act_cap} exceeds the {cap_bound}-block bound"
        )));
    }
    let occupied = r.u64("activation entry count")? as usize;
    if occupied > banks || occupied.saturating_mul(16) > r.remaining() {
        return Err(bad(format!(
            "{occupied} activation entries exceed the image"
        )));
    }
    e.activations.reserve_block_capacity(act_cap);
    let mut prev: Option<usize> = None;
    for _ in 0..occupied {
        let bank = read_bank_index(r, banks, prev, "activation bank")?;
        prev = Some(bank);
        let count = r.u64("activation count")?;
        if count == 0 {
            return Err(bad(format!("zero activation count for bank {bank}")));
        }
        e.activations.insert(bank, count);
    }

    // Scheme instances: same reserve-then-ascending-rebuild discipline;
    // each bank is materialized fresh from the (already validated) spec,
    // then its saved word stream is applied with full structural checks.
    let scheme_cap = r.u64("scheme block capacity")? as usize;
    if scheme_cap > cap_bound {
        return Err(bad(format!(
            "scheme directory capacity {scheme_cap} exceeds the {cap_bound}-block bound"
        )));
    }
    let materialized = r.u64("materialized bank count")? as usize;
    if materialized > banks || materialized.saturating_mul(16) > r.remaining() {
        return Err(bad(format!(
            "{materialized} scheme entries exceed the image"
        )));
    }
    e.banks.reserve_block_capacity(scheme_cap);
    let mut words: Vec<u64> = Vec::new();
    let mut prev: Option<usize> = None;
    for _ in 0..materialized {
        let bank = read_bank_index(r, banks, prev, "scheme bank")?;
        prev = Some(bank);
        let nwords = r.u64("scheme state length")?;
        if nwords > MAX_STATE_WORDS {
            return Err(bad(format!(
                "bank {bank} scheme state of {nwords} words exceeds the {MAX_STATE_WORDS}-word cap"
            )));
        }
        if nwords.saturating_mul(8) > r.remaining() as u64 {
            return Err(bad(format!(
                "bank {bank} scheme state of {nwords} words exceeds the image"
            )));
        }
        words.clear();
        for _ in 0..nwords {
            words.push(r.u64("scheme state word")?);
        }
        let scheme = e
            .banks
            .scheme_mut(bank)
            .ok_or_else(|| bad("scheme state recorded for a schemeless engine"))?;
        let mut sr = StateReader::new(&words);
        scheme.restore_state(&mut sr).map_err(state_err)?;
        sr.finish().map_err(state_err)?;
    }

    // Scratch high-water marks: the restored Vecs are empty, so
    // `reserve_exact` reproduces the saved capacities exactly; later
    // fills stay within them because the saved value was the original
    // run's high-water mark.
    let act_scratch = read_scratch_cap(r, "act_scratch capacity")?;
    e.act_scratch.reserve_exact(act_scratch);
    let seg_cursor = read_scratch_cap(r, "seg_cursor capacity")?;
    e.seg_cursor.reserve_exact(seg_cursor);
    let touched = read_scratch_cap(r, "touched capacity")?;
    e.touched.reserve_exact(touched);
    let row_scratch = read_scratch_cap(r, "row_scratch capacity")?;
    e.row_scratch.reserve_exact(row_scratch);

    e.accesses = accesses;
    e.epochs = epochs;
    Ok(())
}

// ---------------------------------------------------------------------------
// System section
// ---------------------------------------------------------------------------

/// Appends one system's complete state: geometry + owned slice + epoch
/// clock + counters, the system-level scratch high-water marks, then
/// every engine's section in slice order.
fn encode_system_section(s: &MemorySystem, out: &mut Vec<u8>) -> io::Result<()> {
    let g = s.geometry;
    for field in [
        g.channels,
        g.ranks_per_channel,
        g.banks_per_rank,
        g.rows_per_bank,
        g.lines_per_row,
        g.line_bytes,
    ] {
        put_u32(out, field);
    }
    put_u32(out, s.owned.start_bank());
    put_u32(out, s.owned.banks());
    put_epoch_len(out, s.epoch_len);
    put_u64(out, s.accesses);
    put_u64(out, s.epochs);
    put_u64(out, s.act_scratch.capacity() as u64);
    put_u64(out, s.staged.capacity() as u64);
    put_u32(out, s.engines.len() as u32);
    for engine in &s.engines {
        encode_engine_section(engine, out)?;
    }
    Ok(())
}

/// Restores one system section onto a freshly built system of the same
/// configuration. On error the target may be partially mutated and must
/// be discarded.
fn decode_system_section(s: &mut MemorySystem, r: &mut ByteReader<'_>) -> io::Result<()> {
    if s.accesses != 0 || s.epochs != 0 || !s.staged.is_empty() {
        return Err(bad("restore target is not freshly built"));
    }
    let mut fields = [0u32; 6];
    for f in &mut fields {
        *f = r.u32("geometry field")?;
    }
    let own = s.geometry;
    let saved = [
        own.channels,
        own.ranks_per_channel,
        own.banks_per_rank,
        own.rows_per_bank,
        own.lines_per_row,
        own.line_bytes,
    ];
    if fields != saved {
        return Err(bad(format!(
            "checkpoint geometry {fields:?} does not match system geometry {saved:?}"
        )));
    }
    let slice_start = r.u32("slice start bank")?;
    let slice_banks = r.u32("slice bank count")?;
    if slice_start != s.owned.start_bank() || slice_banks != s.owned.banks() {
        return Err(bad(format!(
            "checkpoint owns banks {slice_start}..{}, system owns {}",
            u64::from(slice_start) + u64::from(slice_banks),
            s.owned
        )));
    }
    let epoch_len = read_epoch_len(r)?;
    if epoch_len != s.epoch_len {
        return Err(bad(format!(
            "checkpoint epoch length {epoch_len:?}, system configured with {:?}",
            s.epoch_len
        )));
    }
    let accesses = r.u64("access count")?;
    let epochs = r.u64("epoch count")?;
    if !aligned(accesses, epoch_len) {
        return Err(bad(format!(
            "checkpoint position {accesses} is not an epoch cut of {epoch_len:?}"
        )));
    }
    let act_scratch = read_scratch_cap(r, "system act_scratch capacity")?;
    s.act_scratch.reserve_exact(act_scratch);
    let staged = read_scratch_cap(r, "staging buffer capacity")?;
    s.staged.reserve_exact(staged);
    let engines = r.u32("engine count")? as usize;
    if engines != s.engines.len() {
        return Err(bad(format!(
            "checkpoint has {engines} engines, system has {}",
            s.engines.len()
        )));
    }
    let mut engine_accesses = 0u64;
    for engine in &mut s.engines {
        decode_engine_section(engine, r)?;
        engine_accesses = engine_accesses.saturating_add(engine.accesses);
        if engine.epochs != epochs {
            return Err(bad(format!(
                "engine counted {} epochs, system counted {epochs}",
                engine.epochs
            )));
        }
    }
    if engine_accesses != accesses {
        return Err(bad(format!(
            "engines sum to {engine_accesses} accesses, system counted {accesses}"
        )));
    }
    s.accesses = accesses;
    s.epochs = epochs;
    Ok(())
}

impl BankEngine {
    /// Serializes this engine's complete state as a sealed checkpoint
    /// image (see the [module docs](self) for the format).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] if the engine is not at an epoch cut
    /// (with an epoch clock configured, `accesses` must be a multiple of
    /// the epoch length); [`io::ErrorKind::Unsupported`] if a bank holds a
    /// scheme without a state-capture contract (boxed external schemes).
    pub fn checkpoint(&self) -> io::Result<Vec<u8>> {
        if !aligned(self.accesses, self.epoch_len) {
            return Err(bad(format!(
                "checkpoint off the epoch cut: {} accesses with {:?}-access epochs",
                self.accesses, self.epoch_len
            )));
        }
        let mut out = Vec::new();
        put_header(&mut out, SCOPE_ENGINE);
        encode_engine_section(self, &mut out)?;
        seal(&mut out);
        Ok(out)
    }

    /// Restores a [`checkpoint`](Self::checkpoint) image onto this engine,
    /// which must be freshly built with the same spec, geometry and epoch
    /// configuration. After a successful restore the engine is bit-equal —
    /// stats, behaviour *and* [`crate::EngineFootprint`] — to the engine
    /// the image was taken from.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on a corrupted or truncated image, a
    /// configuration mismatch, or a non-fresh target. On error the engine
    /// may hold partial state and must be discarded.
    pub fn restore(&mut self, image: &[u8]) -> io::Result<()> {
        let body = verify_sealed(image)?;
        let mut r = ByteReader::new(body);
        read_header(&mut r, SCOPE_ENGINE)?;
        decode_engine_section(self, &mut r)?;
        r.finish()
    }
}

impl MemorySystem {
    /// Serializes this system's complete state as a sealed checkpoint
    /// image (see the [module docs](self) for the format).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] if accesses are still staged
    /// (call [`flush`](MemorySystem::flush) first) or the system is not at
    /// an epoch cut; [`io::ErrorKind::Unsupported`] for boxed external
    /// schemes.
    pub fn checkpoint(&self) -> io::Result<Vec<u8>> {
        if !self.staged.is_empty() {
            return Err(bad(format!(
                "{} staged accesses pending: flush() before checkpointing",
                self.staged.len()
            )));
        }
        if !aligned(self.accesses, self.epoch_len) {
            return Err(bad(format!(
                "checkpoint off the epoch cut: {} accesses with {:?}-access epochs",
                self.accesses, self.epoch_len
            )));
        }
        let mut out = Vec::new();
        put_header(&mut out, SCOPE_SYSTEM);
        encode_system_section(self, &mut out)?;
        seal(&mut out);
        Ok(out)
    }

    /// Restores a [`checkpoint`](Self::checkpoint) image onto this system,
    /// which must be freshly built with the same geometry, spec and epoch
    /// configuration. After a successful restore the system is bit-equal —
    /// stats, behaviour *and* footprint — to the system the image was
    /// taken from.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on a corrupted or truncated image, a
    /// configuration mismatch, or a non-fresh target. On error the system
    /// may hold partial state and must be discarded.
    pub fn restore(&mut self, image: &[u8]) -> io::Result<()> {
        let body = verify_sealed(image)?;
        let mut r = ByteReader::new(body);
        read_header(&mut r, SCOPE_SYSTEM)?;
        decode_system_section(self, &mut r)?;
        r.finish()
    }
}

// ---------------------------------------------------------------------------
// On-disk recovery protocol (checkpoint directory + trace log)
// ---------------------------------------------------------------------------

/// Configuration of the `catd` checkpointing front-end: where images and
/// the trace log live, and how often a periodic checkpoint is taken.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding [`CHECKPOINT_FILE`] and [`TRACE_LOG_FILE`]
    /// (created if absent).
    pub dir: PathBuf,
    /// Take a periodic checkpoint at every epoch cut whose epoch count is
    /// a multiple of this (≥ 1; meaningful only with an epoch clock —
    /// without one, only client-requested checkpoints fire).
    pub every_epochs: u64,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` at every epoch cut.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_epochs: 1,
        }
    }
}

/// What [`resume_from_dir`] reconstructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveredState {
    /// Accesses the system holds after recovery (image + replay).
    pub accesses: u64,
    /// Epoch boundaries the system has fired after recovery.
    pub epochs: u64,
    /// Whether a checkpoint image was found and restored.
    pub from_checkpoint: bool,
    /// Trace-log records replayed past the checkpoint position.
    pub replayed: u64,
}

/// Atomically publishes a checkpoint image into `dir`: write to a
/// temporary file, sync, rename over [`CHECKPOINT_FILE`]. A crash leaves
/// either the old image or the new one, never a torn file.
fn write_checkpoint_file(dir: &Path, image: &[u8]) -> io::Result<()> {
    let tmp = dir.join(CHECKPOINT_TMP);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(image)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(CHECKPOINT_FILE))
}

/// The append-only record log pairing a checkpoint image: `CATL` magic +
/// version + the global access position of the first record, then raw
/// packed records ([`pack_record`] layout). Batches are appended and
/// synced *before* they are processed, so after a crash the log always
/// covers everything the engine state could contain.
#[derive(Debug)]
pub(crate) struct TraceLog {
    file: fs::File,
    buf: Vec<u8>,
}

impl TraceLog {
    /// Opens `dir`'s trace log for appending, creating it (with
    /// `expected_end`/`expected_epochs` as its base) if absent. An
    /// existing log must line up: base + whole non-marker records ==
    /// `expected_end` (a torn trailing word from a crash is truncated
    /// away first; cut markers occupy a word but carry no access).
    pub(crate) fn open_for_append(
        dir: &Path,
        expected_end: u64,
        expected_epochs: u64,
    ) -> io::Result<TraceLog> {
        let path = dir.join(TRACE_LOG_FILE);
        let existing = match fs::OpenOptions::new().read(true).write(true).open(&path) {
            Ok(f) => Some(f),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let Some(mut file) = existing else {
            let mut log = TraceLog {
                file: fs::File::create(&path)?,
                buf: Vec::new(),
            };
            log.write_header(expected_end, expected_epochs)?;
            return Ok(log);
        };
        let mut header = [0u8; LOG_HEADER_BYTES as usize];
        file.read_exact(&mut header)
            .map_err(|e| bad(format!("trace log header: {e}")))?;
        if header[0..4] != LOG_MAGIC {
            return Err(bad(format!("bad trace log magic {:02x?}", &header[0..4])));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != LOG_VERSION {
            return Err(bad(format!(
                "trace log version {version}, this build reads {LOG_VERSION}"
            )));
        }
        let mut base = [0u8; 8];
        base.copy_from_slice(&header[6..14]);
        let base = u64::from_le_bytes(base);
        let len = file.metadata()?.len();
        let words = (len - LOG_HEADER_BYTES) / 8;
        // Drop a torn trailing word from a crash mid-append.
        let whole = LOG_HEADER_BYTES + words * 8;
        if whole != len {
            file.set_len(whole)?;
        }
        // Cut markers occupy words but carry no access, so the position
        // arithmetic counts only record words.
        file.seek(SeekFrom::Start(LOG_HEADER_BYTES))?;
        let mut records = 0u64;
        {
            let mut r = io::BufReader::new(&file);
            let mut rec = [0u8; 8];
            while let Some(word) = read_log_record(&mut r, &mut rec)? {
                if word != CUT_MARKER {
                    records += 1;
                }
            }
        }
        if base.saturating_add(records) != expected_end {
            return Err(bad(format!(
                "trace log covers accesses {base}..{}, system is at {expected_end}",
                base + records
            )));
        }
        file.seek(SeekFrom::End(0))?;
        Ok(TraceLog {
            file,
            buf: Vec::new(),
        })
    }

    fn write_header(&mut self, base: u64, base_epochs: u64) -> io::Result<()> {
        self.buf.clear();
        self.buf.extend_from_slice(&LOG_MAGIC);
        put_u16(&mut self.buf, LOG_VERSION);
        put_u64(&mut self.buf, base);
        put_u64(&mut self.buf, base_epochs);
        self.file.write_all(&self.buf)?;
        self.file.sync_data()
    }

    /// Appends one merged batch and syncs it to disk — called *before*
    /// the batch is processed, so the log never trails the engine state.
    pub(crate) fn append(&mut self, batch: &[(u32, u32)]) -> io::Result<()> {
        self.buf.clear();
        self.buf.reserve(batch.len() * 8);
        for &(bank, row) in batch {
            self.buf
                .extend_from_slice(&pack_record(bank, row).to_le_bytes());
        }
        self.file.write_all(&self.buf)?;
        self.file.sync_data()
    }

    /// Appends one epoch-cut marker and syncs it — called *before* the
    /// cut is applied, mirroring [`append`](Self::append)'s write-ahead
    /// discipline, so replay fires the boundary at the same position.
    pub(crate) fn append_cut(&mut self) -> io::Result<()> {
        self.file.write_all(&CUT_MARKER.to_le_bytes())?;
        self.file.sync_data()
    }

    /// Rotates the log after a checkpoint was published: truncate and
    /// restart at `base`/`base_epochs` (the checkpoint's position). Runs
    /// *after* the image rename, so a crash between the two leaves a log
    /// that starts before the image — recovery skips the overlap.
    pub(crate) fn reset(&mut self, base: u64, base_epochs: u64) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.write_header(base, base_epochs)
    }
}

/// Reads one packed record; `Ok(None)` at a clean end **or** a torn
/// trailing record (a crash mid-append truncates to whole records).
fn read_log_record(r: &mut impl Read, rec: &mut [u8; 8]) -> io::Result<Option<u64>> {
    let mut got = 0usize;
    while got < 8 {
        let n = r.read(&mut rec[got..])?;
        if n == 0 {
            return Ok(None);
        }
        got += n;
    }
    Ok(Some(u64::from_le_bytes(*rec)))
}

/// Replays the trace log tail past the system's current position; returns
/// the number of records replayed (0 if no log exists).
fn replay_log(system: &mut MemorySystem, path: &Path) -> io::Result<u64> {
    let file = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut r = io::BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| bad(format!("trace log header: {e}")))?;
    if magic != LOG_MAGIC {
        return Err(bad(format!("bad trace log magic {magic:02x?}")));
    }
    let mut v = [0u8; 2];
    r.read_exact(&mut v)
        .map_err(|e| bad(format!("trace log header: {e}")))?;
    let version = u16::from_le_bytes(v);
    if version != LOG_VERSION {
        return Err(bad(format!(
            "trace log version {version}, this build reads {LOG_VERSION}"
        )));
    }
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|e| bad(format!("trace log header: {e}")))?;
    let base = u64::from_le_bytes(b);
    r.read_exact(&mut b)
        .map_err(|e| bad(format!("trace log header: {e}")))?;
    let base_epochs = u64::from_le_bytes(b);
    if base > system.accesses() {
        return Err(bad(format!(
            "trace log starts at access {base}, after the checkpoint position {}",
            system.accesses()
        )));
    }
    if base_epochs > system.epochs() {
        return Err(bad(format!(
            "trace log starts at epoch {base_epochs}, after the checkpoint epoch {}",
            system.epochs()
        )));
    }
    // Records (and cut markers) below the checkpoint position are already
    // inside the image (the log is appended before processing and rotated
    // after the image rename, so an overlap — never a gap — is the crash
    // window).
    let mut skip = system.accesses() - base;
    let mut skip_cuts = system.epochs() - base_epochs;
    let owned = *system.slice();
    let rows = system.geometry().rows_per_bank;
    let mut chunk: Vec<(u32, u32)> = Vec::with_capacity(REPLAY_CHUNK);
    let mut replayed = 0u64;
    let mut rec = [0u8; 8];
    while let Some(packed) = read_log_record(&mut r, &mut rec)? {
        if packed == CUT_MARKER {
            if skip_cuts > 0 {
                skip_cuts -= 1;
                continue;
            }
            if system.epoch_length().is_some() {
                return Err(bad(
                    "cut marker in the trace log of a system with its own epoch clock",
                ));
            }
            if !chunk.is_empty() {
                system.process(&chunk);
                chunk.clear();
            }
            system.end_epoch();
            continue;
        }
        if skip > 0 {
            skip -= 1;
            continue;
        }
        let (bank, row) = unpack_record(packed);
        if !owned.contains(bank) || row >= rows {
            return Err(bad(format!(
                "trace log record (bank {bank}, row {row}) out of range for a \
                 system owning {owned} with {rows}-row banks"
            )));
        }
        chunk.push((bank, row));
        replayed += 1;
        if chunk.len() == REPLAY_CHUNK {
            system.process(&chunk);
            chunk.clear();
        }
    }
    if skip > 0 {
        return Err(bad(format!(
            "trace log ends {skip} records before the checkpoint position"
        )));
    }
    if !chunk.is_empty() {
        system.process(&chunk);
    }
    Ok(replayed)
}

/// Recovers a `catd` session from a checkpoint directory: restores the
/// newest image (if any) into `system` — which must be freshly built with
/// the session's configuration — then replays the trace-log tail past the
/// image's position. An empty or absent directory recovers nothing and
/// returns a zeroed [`RecoveredState`]; the session then starts fresh.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on a corrupted image or log, a
/// configuration mismatch, or a log that does not cover the image's
/// position. On error `system` may hold partial state and must be
/// discarded.
pub fn resume_from_dir(system: &mut MemorySystem, dir: &Path) -> io::Result<RecoveredState> {
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let mut from_checkpoint = false;
    match fs::metadata(&ckpt_path) {
        Ok(meta) => {
            let len = meta.len();
            if len > MAX_CHECKPOINT_BYTES {
                return Err(bad(format!(
                    "{len}-byte checkpoint file exceeds the {MAX_CHECKPOINT_BYTES}-byte cap"
                )));
            }
            let image = fs::read(&ckpt_path)?;
            system.restore(&image)?;
            from_checkpoint = true;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let replayed = replay_log(system, &dir.join(TRACE_LOG_FILE))?;
    Ok(RecoveredState {
        accesses: system.accesses(),
        epochs: system.epochs(),
        from_checkpoint,
        replayed,
    })
}

/// The checkpointing drain loop behind [`crate::ingest::serve`]: every
/// merged batch is logged (and synced) before it is processed, batches
/// are split at epoch cuts, stream-delivered cuts (a router's epoch
/// clock driving a clockless backend) are persisted as log markers and
/// applied, and at each cut a checkpoint is published when one is due
/// ([`CheckpointConfig::every_epochs`]) or a client requested one over
/// the wire (`requested`, consumed only at a cut so the image is always
/// cut-consistent). If the stream ends on a cut a final checkpoint is
/// taken; otherwise the log tail carries the remainder for
/// [`resume_from_dir`].
pub(crate) fn drain_with_checkpoints(
    system: &mut MemorySystem,
    consumer: &mut IngestConsumer,
    cfg: &CheckpointConfig,
    requested: &AtomicBool,
) -> io::Result<BatchOutcome> {
    if cfg.every_epochs == 0 {
        return Err(bad("checkpoint interval of zero epochs"));
    }
    fs::create_dir_all(&cfg.dir)?;
    let mut log = TraceLog::open_for_append(&cfg.dir, system.accesses(), system.epochs())?;
    let owned = *system.slice();
    let mut out = BatchOutcome::default();
    let mut batch: Vec<(u32, u32)> = Vec::new();
    let mut last_checkpoint: Option<(u64, u64)> = None;
    loop {
        batch.clear();
        match consumer.next_event_into(&mut batch) {
            None => break,
            Some(IngestEvent::EpochCut) => {
                if system.epoch_length().is_some() {
                    return Err(bad(
                        "stream epoch cut for a system with its own epoch clock",
                    ));
                }
                log.append_cut()?;
                system.end_epoch();
                out.epochs += 1;
                let asked = requested.swap(false, Ordering::SeqCst);
                let due = system.epochs().is_multiple_of(cfg.every_epochs);
                let position = (system.accesses(), system.epochs());
                if (asked || due) && last_checkpoint != Some(position) {
                    publish_checkpoint(system, cfg, &mut log)?;
                    last_checkpoint = Some(position);
                }
            }
            Some(IngestEvent::Records(_)) => {
                if let Some(&(bank, _)) = batch.iter().find(|&&(bank, _)| !owned.contains(bank)) {
                    return Err(bad(format!(
                        "global bank {bank} out of range for a system owning {owned}"
                    )));
                }
                log.append(&batch)?;
                let mut start = 0usize;
                while start < batch.len() {
                    let stop = match system.epoch_length() {
                        None => batch.len(),
                        Some(n) => {
                            let to_cut = n - (system.accesses() % n);
                            start + to_cut.min((batch.len() - start) as u64) as usize
                        }
                    };
                    out.merge(&system.process(&batch[start..stop]));
                    start = stop;
                    let at_cut = match system.epoch_length() {
                        None => start == batch.len(),
                        Some(n) => system.accesses().is_multiple_of(n),
                    };
                    if !at_cut {
                        continue;
                    }
                    let asked = requested.swap(false, Ordering::SeqCst);
                    let due = system.epoch_length().is_some()
                        && system.epochs() > 0
                        && system.epochs().is_multiple_of(cfg.every_epochs);
                    let position = (system.accesses(), system.epochs());
                    if (asked || due) && last_checkpoint != Some(position) {
                        publish_checkpoint(system, cfg, &mut log)?;
                        // The rotation truncated the log at the cut, which
                        // also dropped this batch's still-unprocessed tail —
                        // re-append it so the write-ahead invariant (the log
                        // covers every record past the image) holds before
                        // processing resumes. A crash inside this small
                        // window recovers consistently at the cut; the
                        // in-flight tail is lost with the process, like any
                        // record still in a socket buffer at kill time.
                        if start < batch.len() {
                            log.append(&batch[start..])?;
                        }
                        last_checkpoint = Some(position);
                    }
                }
            }
        }
    }
    if aligned(system.accesses(), system.epoch_length())
        && last_checkpoint != Some((system.accesses(), system.epochs()))
    {
        publish_checkpoint(system, cfg, &mut log)?;
    }
    Ok(out)
}

/// Publishes one checkpoint: image → tmp file → sync → rename, then log
/// rotation. Order matters — see [`TraceLog::reset`].
fn publish_checkpoint(
    system: &MemorySystem,
    cfg: &CheckpointConfig,
    log: &mut TraceLog,
) -> io::Result<()> {
    let image = system.checkpoint()?;
    write_checkpoint_file(&cfg.dir, &image)?;
    log.reset(system.accesses(), system.epochs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemGeometry;
    use cat_core::SchemeSpec;

    fn geometry() -> MemGeometry {
        MemGeometry {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 4096,
            lines_per_row: 16,
            line_bytes: 64,
        }
    }

    fn spec() -> SchemeSpec {
        SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 512,
        }
    }

    fn trace(n: u64) -> Vec<(u32, u32)> {
        (0..n)
            .map(|i| {
                let bank = (i % 16) as u32;
                let row = if i % 3 == 0 {
                    77
                } else {
                    (i.wrapping_mul(2_654_435_761) % 4096) as u32
                };
                (bank, row)
            })
            .collect()
    }

    fn fresh() -> MemorySystem {
        MemorySystem::new(geometry(), spec()).with_epoch_length(1000)
    }

    #[test]
    fn system_round_trip_is_bit_exact() {
        let trace = trace(7000);
        let mut original = fresh();
        original.process(&trace[..4000]);
        let image = original.checkpoint().unwrap();

        let mut restored = fresh();
        restored.restore(&image).unwrap();
        assert_eq!(restored.accesses(), original.accesses());
        assert_eq!(restored.epochs(), original.epochs());
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.footprint(), original.footprint());

        original.process(&trace[4000..]);
        restored.process(&trace[4000..]);
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.footprint(), original.footprint());
    }

    #[test]
    fn engine_round_trip_is_bit_exact() {
        let trace = trace(6000);
        let mut original = BankEngine::new(spec(), 16, 4096).with_epoch_length(1000);
        original.process(&trace[..3000]);
        let image = original.checkpoint().unwrap();

        let mut restored = BankEngine::new(spec(), 16, 4096).with_epoch_length(1000);
        restored.restore(&image).unwrap();
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.footprint(), original.footprint());

        original.process(&trace[3000..]);
        restored.process(&trace[3000..]);
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.footprint(), original.footprint());
    }

    #[test]
    fn checkpoint_refuses_misaligned_positions() {
        let trace = trace(1500);
        let mut system = fresh();
        system.process(&trace);
        let err = system.checkpoint().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("epoch cut"));

        let mut staged = fresh();
        staged.push_decoded(3, 7);
        let err = staged.checkpoint().unwrap_err();
        assert!(err.to_string().contains("staged"));
    }

    #[test]
    fn restore_refuses_mismatched_targets() {
        let trace = trace(2000);
        let mut original = fresh();
        original.process(&trace);
        let image = original.checkpoint().unwrap();

        // Non-fresh target.
        let mut used = fresh();
        used.process(&trace[..1000]);
        assert!(used
            .restore(&image)
            .unwrap_err()
            .to_string()
            .contains("fresh"));

        // Wrong spec.
        let mut other = MemorySystem::new(
            geometry(),
            SchemeSpec::Sca {
                counters: 64,
                threshold: 512,
            },
        )
        .with_epoch_length(1000);
        assert!(other
            .restore(&image)
            .unwrap_err()
            .to_string()
            .contains("spec"));

        // Wrong epoch clock.
        let mut clockless = MemorySystem::new(geometry(), spec());
        let err = clockless.restore(&image).unwrap_err();
        assert!(err.to_string().contains("epoch length"));

        // Wrong scope.
        let mut engine = BankEngine::new(spec(), 16, 4096).with_epoch_length(1000);
        let err = engine.restore(&image).unwrap_err();
        assert!(err.to_string().contains("MemorySystem"));
    }

    /// Deterministic LCG for the corruption sweeps (no external RNG and no
    /// wall-clock seeding in tests either).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            self.0
        }
    }

    #[test]
    fn truncated_images_never_restore() {
        let mut original = fresh();
        original.process(&trace(3000));
        let image = original.checkpoint().unwrap();
        // Every truncation length (stride keeps the sweep fast; 0..40 cover
        // the header byte-by-byte).
        let mut lengths: Vec<usize> = (0..40.min(image.len())).collect();
        lengths.extend((40..image.len()).step_by(41));
        for len in lengths {
            let mut target = fresh();
            let err = target.restore(&image[..len]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "length {len}");
        }
    }

    #[test]
    fn bit_flips_never_restore_and_resealed_flips_never_panic() {
        let mut original = fresh();
        original.process(&trace(3000));
        let image = original.checkpoint().unwrap();
        let mut rng = Lcg(0x5eed);
        for _ in 0..200 {
            let pos = (rng.next() as usize) % image.len();
            let bit = (rng.next() % 8) as u8;
            let mut corrupt = image.clone();
            corrupt[pos] ^= 1 << bit;

            // Without recomputing the seal, the integrity hash catches it.
            let mut target = fresh();
            let err = target.restore(&corrupt).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);

            // With the seal recomputed the structural validation must
            // still yield a typed error or a semantically-validated
            // restore — never a panic or a runaway allocation.
            if pos < corrupt.len() - 8 {
                let body_len = corrupt.len() - 8;
                let h = fnv1a(&corrupt[..body_len]).to_le_bytes();
                corrupt[body_len..].copy_from_slice(&h);
                let mut target = fresh();
                let _ = target.restore(&corrupt);
            }
        }
    }

    #[test]
    fn forged_fields_never_panic_or_overallocate() {
        let mut original = fresh();
        original.process(&trace(2000));
        let image = original.checkpoint().unwrap();
        // Forge every byte offset in the body to a u64::MAX field and
        // reseal. Count and capacity fields must be refused by a bounds
        // check (count vs remaining bytes, hard caps) before anything is
        // allocated; payload words (counter values) may legally restore —
        // either way, never a panic and never a runaway allocation.
        let body_len = image.len() - 8;
        for off in 0..body_len.saturating_sub(8) {
            let mut corrupt = image.clone();
            corrupt[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            let h = fnv1a(&corrupt[..body_len]).to_le_bytes();
            corrupt[body_len..].copy_from_slice(&h);
            let mut target = fresh();
            let _ = target.restore(&corrupt);
        }
    }

    #[test]
    fn forged_entry_counts_are_refused() {
        let mut original = fresh();
        original.process(&trace(2000));
        let image = original.checkpoint().unwrap();
        let body_len = image.len() - 8;
        // Walk a reader to the first channel's structural count fields so
        // the forged offsets stay correct if the layout ever shifts.
        let mut r = ByteReader::new(&image[..body_len]);
        read_header(&mut r, SCOPE_SYSTEM).unwrap();
        let sys_fixed = 6 * 4 + 8 + 9 + 8 + 8 + 8 + 8 + 4; // geometry..engine count
        r.take(sys_fixed, "system fields").unwrap();
        let spec_len = usize::from(r.u16("spec length").unwrap());
        let eng_fixed = spec_len + 12 + 9 + 16; // spec..epoch count
        r.take(eng_fixed, "engine fields").unwrap();
        let act_cap_off = body_len - r.remaining();
        let act_count_off = act_cap_off + 8;
        for off in [act_cap_off, act_count_off] {
            let mut corrupt = image.clone();
            corrupt[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            let h = fnv1a(&corrupt[..body_len]).to_le_bytes();
            corrupt[body_len..].copy_from_slice(&h);
            let mut target = fresh();
            let err = target.restore(&corrupt).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "offset {off}");
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("catree-checkpoint-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn trace_log_round_trips_with_rotation_and_torn_tail() {
        let dir = temp_dir("log");
        let trace = trace(5000);

        let mut log = TraceLog::open_for_append(&dir, 0, 0).unwrap();
        log.append(&trace[..2000]).unwrap();
        log.reset(1000, 1).unwrap(); // as if a checkpoint landed at access 1000
        log.append(&trace[1000..3000]).unwrap();
        drop(log);

        // Tear the final record, as a crash mid-append would.
        let path = dir.join(TRACE_LOG_FILE);
        let len = fs::metadata(&path).unwrap().len();
        let torn = fs::OpenOptions::new().write(true).open(&path).unwrap();
        torn.set_len(len - 3).unwrap();
        drop(torn);

        // Replay from a fresh system standing at access 1000 worth of
        // state — here zero state, so feed the first 1000 by hand.
        let mut reference = fresh();
        reference.process(&trace[..2999]); // torn tail dropped the 3000th
        let mut resumed = fresh();
        resumed.process(&trace[..1000]);
        let replayed = replay_log(&mut resumed, &path).unwrap();
        assert_eq!(replayed, 1999);
        assert_eq!(resumed.accesses(), 2999);
        assert_eq!(resumed.stats(), reference.stats());

        // Reopening for append after the torn tail truncates and lines up.
        let log = TraceLog::open_for_append(&dir, 2999, 2).unwrap();
        drop(log);
        let err = TraceLog::open_for_append(&dir, 1234, 1).unwrap_err();
        assert!(err.to_string().contains("covers"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_from_dir_recovers_image_plus_log_tail() {
        let dir = temp_dir("resume");
        let trace = trace(5500);

        // A "session" that checkpoints at access 3000 and logs to 5500,
        // then crashes (we just stop).
        let mut session = fresh();
        session.process(&trace[..3000]);
        write_checkpoint_file(&dir, &session.checkpoint().unwrap()).unwrap();
        let mut log = TraceLog::open_for_append(&dir, 3000, 3).unwrap();
        log.append(&trace[3000..5500]).unwrap();
        drop(log);
        session.process(&trace[3000..5500]);

        let mut resumed = fresh();
        let state = resume_from_dir(&mut resumed, &dir).unwrap();
        assert!(state.from_checkpoint);
        assert_eq!(state.replayed, 2500);
        assert_eq!(state.accesses, 5500);
        assert_eq!(resumed.stats(), session.stats());

        // An empty directory recovers nothing.
        let empty = temp_dir("resume-empty");
        let mut blank = fresh();
        let state = resume_from_dir(&mut blank, &empty).unwrap();
        assert_eq!(
            state,
            RecoveredState {
                accesses: 0,
                epochs: 0,
                from_checkpoint: false,
                replayed: 0
            }
        );
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&empty).unwrap();
    }
}
