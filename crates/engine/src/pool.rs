//! The persistent shard worker pool behind
//! [`BankEngine::process_sharded`](crate::BankEngine::process_sharded).
//!
//! The first sharded runner spawned `std::thread::scope` threads per
//! cache-sized sub-batch — measurably wrong once batches got large:
//! `BENCH_engine.json` showed 4 shards *losing* to 2 because a 20M-access
//! replay paid 80 spawn/join pairs. This pool spawns each shard's worker
//! thread **once per engine lifetime** and feeds it sub-batches over
//! channels instead.
//!
//! ## Ownership protocol
//!
//! Between public engine calls the engine owns every bank, so the
//! single-access path, stats accessors and iterators all work unchanged.
//! For the duration of one `process_sharded` call the banks are *loaned*
//! to the workers:
//!
//! 1. [`ShardPool::loan`] moves each shard's contiguous bank range into its
//!    worker (one `Vec` move per shard, not per access);
//! 2. for every sub-batch the engine scatters rows into a [`RunJob`] per
//!    shard and sends it; the worker replays it bank by bank and sends the
//!    buffer back for reuse (up to [`JOBS_IN_FLIGHT`] jobs pipeline, so the
//!    engine scatters sub-batch *k+1* while workers replay *k*);
//! 3. [`ShardPool::reclaim`] collects the banks back in shard order.
//!
//! Determinism is untouched: each bank is owned by exactly one worker,
//! each worker consumes its jobs in FIFO order, and epoch cut positions
//! are computed serially by the engine — so the replay each bank sees is
//! byte-for-byte the one the scoped-thread runner produced.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use cat_core::SchemeInstance;

/// Sub-batches pipelined per worker: 2 lets the engine scatter the next
/// job while the worker replays the current one; more would only add
/// memory.
const JOBS_IN_FLIGHT: usize = 2;

/// One shard's share of a sub-batch: each bank's activation subsequence,
/// concatenated, with per-bank epoch cut positions.
pub(crate) struct RunJob {
    /// Rows for every bank of the shard, bank-major, in stream order.
    pub rows: Vec<u32>,
    /// Rows per bank (`rows` segment lengths, one per bank in the shard).
    pub lens: Vec<usize>,
    /// Per bank: positions *within the bank's segment* where a global
    /// epoch boundary falls.
    pub cuts: Vec<Vec<usize>>,
}

impl RunJob {
    fn empty() -> Self {
        RunJob {
            rows: Vec::new(),
            lens: Vec::new(),
            cuts: Vec::new(),
        }
    }
}

enum ToWorker {
    /// Loan the shard's banks to the worker.
    Banks(Vec<Option<SchemeInstance>>),
    /// Replay one sub-batch.
    Run(RunJob),
    /// Return the loaned banks.
    Collect,
}

enum FromWorker {
    /// A processed job buffer, ready for reuse.
    Job(RunJob),
    /// The loaned banks, returned on `Collect`.
    Banks(Vec<Option<SchemeInstance>>),
}

struct Worker {
    tx: Option<Sender<ToWorker>>,
    rx: Receiver<FromWorker>,
    handle: Option<JoinHandle<()>>,
    /// Recycled job buffers not currently at the worker.
    free: Vec<RunJob>,
    /// Jobs sent but not yet returned.
    inflight: usize,
    /// Banks in this shard.
    banks: usize,
}

/// Long-lived shard worker threads plus the scatter scratch shared by all
/// sub-batches (see the module docs for the ownership protocol).
pub(crate) struct ShardPool {
    workers: Vec<Worker>,
    /// `bank → worker` lookup (avoids a division per scattered access).
    shard_of: Vec<u32>,
    /// Scatter scratch, all sized `nbanks`.
    pub counts: Vec<usize>,
    pub cursor: Vec<usize>,
    pub starts: Vec<usize>,
    pub epoch_cuts: Vec<Vec<usize>>,
}

impl ShardPool {
    /// Spawns `shards` workers covering `nbanks` banks in contiguous
    /// ranges (all but the last of size `ceil(nbanks / shards)`).
    pub fn new(shards: usize, nbanks: usize) -> Self {
        let chunk = nbanks.div_ceil(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut shard_of = vec![0u32; nbanks];
        let mut bank0 = 0usize;
        for w in 0..shards {
            let banks = chunk.min(nbanks - bank0);
            for s in &mut shard_of[bank0..bank0 + banks] {
                *s = w as u32;
            }
            bank0 += banks;
            let (tx, worker_rx) = channel::<ToWorker>();
            let (worker_tx, rx) = channel::<FromWorker>();
            let handle = std::thread::Builder::new()
                .name(format!("cat-shard-{w}"))
                .spawn(move || worker_loop(worker_rx, worker_tx))
                .expect("spawn shard worker");
            workers.push(Worker {
                tx: Some(tx),
                rx,
                handle: Some(handle),
                free: (0..JOBS_IN_FLIGHT).map(|_| RunJob::empty()).collect(),
                inflight: 0,
                banks,
            });
        }
        ShardPool {
            workers,
            shard_of,
            counts: vec![0; nbanks],
            cursor: vec![0; nbanks],
            starts: vec![0; nbanks],
            epoch_cuts: vec![Vec::new(); nbanks],
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Worker index owning `bank`.
    #[inline]
    pub fn shard_of(&self, bank: usize) -> usize {
        self.shard_of[bank] as usize
    }

    /// Banks owned by worker `w`.
    pub fn worker_banks(&self, w: usize) -> usize {
        self.workers[w].banks
    }

    /// Moves the engine's banks into the workers, one contiguous range
    /// each. `banks` is left empty.
    pub fn loan(&mut self, banks: &mut Vec<Option<SchemeInstance>>) {
        debug_assert_eq!(banks.len(), self.shard_of.len());
        let mut rest = std::mem::take(banks);
        for w in &mut self.workers {
            let tail = rest.split_off(w.banks.min(rest.len()));
            w.send(ToWorker::Banks(rest));
            rest = tail;
        }
        debug_assert!(rest.is_empty());
    }

    /// Waits for all outstanding jobs, then moves the banks back into
    /// `banks` in shard order.
    pub fn reclaim(&mut self, banks: &mut Vec<Option<SchemeInstance>>) {
        for w in &mut self.workers {
            w.send(ToWorker::Collect);
            loop {
                match w.recv() {
                    FromWorker::Job(job) => {
                        w.inflight -= 1;
                        w.free.push(job);
                    }
                    FromWorker::Banks(mut b) => {
                        banks.append(&mut b);
                        break;
                    }
                }
            }
            debug_assert_eq!(w.inflight, 0);
        }
    }

    /// A job buffer for worker `w`: recycled if one is free, otherwise
    /// blocks until the worker returns one (this is the pipeline's
    /// backpressure).
    pub fn acquire(&mut self, w: usize) -> RunJob {
        let worker = &mut self.workers[w];
        if let Some(job) = worker.free.pop() {
            return job;
        }
        match worker.recv() {
            FromWorker::Job(job) => {
                worker.inflight -= 1;
                job
            }
            FromWorker::Banks(_) => unreachable!("no Collect outstanding during a batch"),
        }
    }

    /// Queues one sub-batch on worker `w`.
    pub fn submit(&mut self, w: usize, job: RunJob) {
        let worker = &mut self.workers[w];
        worker.inflight += 1;
        worker.send(ToWorker::Run(job));
    }
}

impl Worker {
    fn send(&self, msg: ToWorker) {
        self.tx
            .as_ref()
            .expect("pool not shut down")
            .send(msg)
            .expect("shard worker panicked");
    }

    fn recv(&self) -> FromWorker {
        self.rx.recv().expect("shard worker panicked")
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's receive loop; join so no
        // thread outlives its engine.
        for w in &mut self.workers {
            w.tx = None;
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(rx: Receiver<ToWorker>, tx: Sender<FromWorker>) {
    let mut banks: Vec<Option<SchemeInstance>> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Banks(b) => banks = b,
            ToWorker::Run(job) => {
                run_job(&mut banks, &job);
                if tx.send(FromWorker::Job(job)).is_err() {
                    return;
                }
            }
            ToWorker::Collect => {
                if tx
                    .send(FromWorker::Banks(std::mem::take(&mut banks)))
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Replays one job, bank by bank: each bank's whole activation subsequence
/// runs through one monomorphic [`SchemeInstance::run`] loop, with that
/// bank's epoch ends fired at the recorded cut positions.
///
/// No per-activation accounting happens here — the schemes track their own
/// stats, and the engine diffs aggregate snapshots. Keeping the sink empty
/// lets the compiler drop the `Refreshes` return path from the inlined
/// loops entirely.
fn run_job(banks: &mut [Option<SchemeInstance>], job: &RunJob) {
    let mut offset = 0usize;
    for (i, bank) in banks.iter_mut().enumerate() {
        let len = job.lens[i];
        let rows = &job.rows[offset..offset + len];
        offset += len;
        let Some(scheme) = bank else { continue };
        let mut next = 0usize;
        for &cut in &job.cuts[i] {
            scheme.run(&rows[next..cut], |_| {});
            next = cut;
            scheme.on_epoch_end();
        }
        scheme.run(&rows[next..], |_| {});
    }
}
