//! The persistent shard worker pool behind
//! [`BankEngine::process_sharded`](crate::BankEngine::process_sharded).
//!
//! The first sharded runner spawned `std::thread::scope` threads per
//! cache-sized sub-batch — measurably wrong once batches got large:
//! `BENCH_engine.json` showed 4 shards *losing* to 2 because a 20M-access
//! replay paid 80 spawn/join pairs. This pool spawns each shard's worker
//! thread **once per engine lifetime** and feeds it sub-batches over
//! channels instead.
//!
//! ## Ownership protocol
//!
//! Between public engine calls the engine owns every bank, so the
//! single-access path, stats accessors and iterators all work unchanged.
//! For the duration of one `process_sharded` call the banks are *loaned*
//! to the workers:
//!
//! 1. [`ShardPool::loan_shard`] moves each shard's contiguous bank range —
//!    split off the engine's sparse storage as a standalone
//!    [`SparseBanks`] — into its worker (one move per shard, not per
//!    access; cost is O(materialized banks), see `DESIGN.md §10`);
//! 2. [`ShardPool::run_batch`] chunks the batch into cache-sized
//!    sub-batches; for each it scatters rows into a [`RunJob`] per shard
//!    and sends it; the worker replays it bank by bank — materializing a
//!    bank's scheme on the bank's first-ever rows — and sends the buffer
//!    back for reuse (up to [`JOBS_IN_FLIGHT`] jobs pipeline, so the
//!    engine scatters sub-batch *k+1* while workers replay *k*);
//! 3. [`ShardPool::reclaim_shard`] collects each shard's banks back and
//!    the engine absorbs them at the shard's offset.
//!
//! Epoch boundaries arrive as an explicit **cut list** (positions in the
//! batch where every bank's `on_epoch_end` fires — see
//! `crate::epoch_cuts`), translated during the scatter into per-bank
//! positions carried inside each [`RunJob`]. The workers fire the cuts
//! themselves, which is what lets a caller loan its banks once per batch
//! no matter how many epoch segments the batch spans (`DESIGN.md §7`).
//!
//! Determinism is untouched: each bank is owned by exactly one worker,
//! each worker consumes its jobs in FIFO order, and epoch cut positions
//! are computed serially by the engine — so the replay each bank sees is
//! byte-for-byte the one the scoped-thread runner produced. The pool knows
//! nothing about channels: `cat_engine::MemorySystem` runs one pool whose
//! shards span *all* channels' banks, so independent channels overlap on
//! the same workers.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::sparse::SparseBanks;

/// Sub-batches pipelined per worker: 2 lets the engine scatter the next
/// job while the worker replays the current one; more would only add
/// memory.
const JOBS_IN_FLIGHT: usize = 2;

/// One shard's share of a sub-batch: each bank's activation subsequence,
/// concatenated, with per-bank epoch cut positions.
pub(crate) struct RunJob {
    /// Rows for every bank of the shard, bank-major, in stream order.
    pub rows: Vec<u32>,
    /// Rows per bank (`rows` segment lengths, one per bank in the shard).
    pub lens: Vec<usize>,
    /// Per bank: positions *within the bank's segment* where a global
    /// epoch boundary falls.
    pub cuts: Vec<Vec<usize>>,
}

impl RunJob {
    fn empty() -> Self {
        RunJob {
            rows: Vec::new(),
            lens: Vec::new(),
            cuts: Vec::new(),
        }
    }
}

enum ToWorker {
    /// Loan the shard's banks to the worker.
    Banks(SparseBanks),
    /// Replay one sub-batch.
    Run(RunJob),
    /// Return the loaned banks.
    Collect,
}

enum FromWorker {
    /// A processed job buffer, ready for reuse.
    Job(RunJob),
    /// The loaned banks, returned on `Collect`.
    Banks(SparseBanks),
}

struct Worker {
    tx: Option<Sender<ToWorker>>,
    rx: Receiver<FromWorker>,
    handle: Option<JoinHandle<()>>,
    /// Recycled job buffers not currently at the worker.
    free: Vec<RunJob>,
    /// Jobs sent but not yet returned.
    inflight: usize,
    /// First bank of this shard.
    start: usize,
    /// Banks in this shard.
    banks: usize,
}

/// Accesses per cache-sized sub-batch: small enough that the partition
/// buffers stay cache-resident between the scatter and the replay — for
/// large batches this roughly halves the memory traffic of the sharded
/// path. Epoch state composes across sub-batches by construction.
const CHUNK_ACCESSES: usize = 1 << 20;

/// Long-lived shard worker threads plus the scatter scratch shared by all
/// sub-batches (see the module docs for the ownership protocol).
pub(crate) struct ShardPool {
    workers: Vec<Worker>,
    /// `bank → worker` lookup (avoids a division per scattered access).
    shard_of: Vec<u32>,
    /// Scatter scratch, all sized `nbanks`.
    counts: Vec<usize>,
    cursor: Vec<usize>,
    starts: Vec<usize>,
    epoch_cuts: Vec<Vec<usize>>,
}

impl ShardPool {
    /// Spawns `shards` workers covering `nbanks` banks in contiguous
    /// ranges (all but the last of size `ceil(nbanks / shards)`).
    pub fn new(shards: usize, nbanks: usize) -> Self {
        let chunk = nbanks.div_ceil(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut shard_of = vec![0u32; nbanks];
        let mut bank0 = 0usize;
        for w in 0..shards {
            let banks = chunk.min(nbanks - bank0);
            for s in &mut shard_of[bank0..bank0 + banks] {
                *s = w as u32;
            }
            bank0 += banks;
            let (tx, worker_rx) = channel::<ToWorker>();
            let (worker_tx, rx) = channel::<FromWorker>();
            let handle = std::thread::Builder::new()
                .name(format!("cat-shard-{w}"))
                .spawn(move || worker_loop(worker_rx, worker_tx))
                .expect("spawn shard worker");
            workers.push(Worker {
                tx: Some(tx),
                rx,
                handle: Some(handle),
                free: (0..JOBS_IN_FLIGHT).map(|_| RunJob::empty()).collect(),
                inflight: 0,
                start: bank0 - banks,
                banks,
            });
        }
        ShardPool {
            workers,
            shard_of,
            counts: vec![0; nbanks],
            cursor: vec![0; nbanks],
            starts: vec![0; nbanks],
            epoch_cuts: vec![Vec::new(); nbanks],
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Banks owned by worker `w`.
    fn worker_banks(&self, w: usize) -> usize {
        self.workers[w].banks
    }

    /// The contiguous bank range worker `w` owns.
    pub fn shard_range(&self, w: usize) -> std::ops::Range<usize> {
        let worker = &self.workers[w];
        worker.start..worker.start + worker.banks
    }

    /// Moves one shard's banks into its worker. The caller splits its
    /// sparse storage along [`shard_range`](Self::shard_range) boundaries
    /// (at system scope the range can straddle several channel engines —
    /// the [`MemorySystem`] assembles the carrier).
    pub fn loan_shard(&mut self, w: usize, banks: SparseBanks) {
        debug_assert!(banks.capacity() <= self.workers[w].banks);
        self.workers[w].send(ToWorker::Banks(banks));
    }

    /// Waits for worker `w`'s outstanding jobs, then moves its banks back
    /// out — the caller absorbs them at the shard's offset.
    pub fn reclaim_shard(&mut self, w: usize) -> SparseBanks {
        let worker = &mut self.workers[w];
        worker.send(ToWorker::Collect);
        loop {
            match worker.recv() {
                FromWorker::Job(job) => {
                    worker.inflight -= 1;
                    worker.free.push(job);
                }
                FromWorker::Banks(banks) => {
                    debug_assert_eq!(worker.inflight, 0);
                    return banks;
                }
            }
        }
    }

    /// A job buffer for worker `w`: recycled if one is free, otherwise
    /// blocks until the worker returns one (this is the pipeline's
    /// backpressure).
    fn acquire(&mut self, w: usize) -> RunJob {
        let worker = &mut self.workers[w];
        if let Some(job) = worker.free.pop() {
            return job;
        }
        match worker.recv() {
            FromWorker::Job(job) => {
                worker.inflight -= 1;
                job
            }
            FromWorker::Banks(_) => unreachable!("no Collect outstanding during a batch"),
        }
    }

    /// Queues one sub-batch on worker `w`.
    fn submit(&mut self, w: usize, job: RunJob) {
        let worker = &mut self.workers[w];
        worker.inflight += 1;
        worker.send(ToWorker::Run(job));
    }

    /// Replays a whole batch through the loaned banks: chunks it into
    /// cache-sized sub-batches, scatters each per bank, and pipelines the
    /// jobs to the workers. `cuts` are the epoch boundary positions inside
    /// `batch` (see `crate::epoch_cuts`; `0`, duplicates, and
    /// `batch.len()` are all legal). Per-chunk activation counts are folded
    /// into `activations` (one slot per bank).
    ///
    /// The banks must already be loaned ([`loan_shard`](Self::loan_shard));
    /// they stay with the workers afterwards — the enclosing batch call
    /// reclaims.
    pub fn run_batch(&mut self, batch: &[(u32, u32)], cuts: &[usize], activations: &mut [u64]) {
        if batch.is_empty() {
            // No rows to scatter, but boundary-only cut lists must still
            // fire every bank's on_epoch_end through the workers.
            if !cuts.is_empty() {
                self.run_chunk(&[], cuts, 0, activations);
            }
            return;
        }
        let mut cut_from = 0usize;
        let mut done = 0usize;
        for chunk in batch.chunks(CHUNK_ACCESSES) {
            let end = done + chunk.len();
            // Cuts on this chunk's (done, end] — a cut exactly at `done`
            // belongs to the previous chunk (it already fired there).
            let mut cut_to = cut_from;
            while cut_to < cuts.len() && cuts[cut_to] <= end {
                cut_to += 1;
            }
            self.run_chunk(chunk, &cuts[cut_from..cut_to], done, activations);
            cut_from = cut_to;
            done = end;
        }
    }

    /// One cache-sized sub-batch of [`run_batch`](Self::run_batch):
    /// per-bank counting-sort scatter with the chunk's cut positions
    /// (absolute in the enclosing batch, `base` = the chunk's offset)
    /// recorded per bank, then one [`RunJob`] submitted per worker.
    fn run_chunk(
        &mut self,
        chunk: &[(u32, u32)],
        cuts: &[usize],
        base: usize,
        activations: &mut [u64],
    ) {
        let nbanks = self.counts.len();
        let shards = self.shards();

        // Per-bank counts for this chunk, then per-worker job buffers with
        // exact segment sizes (acquiring a buffer blocks once the worker is
        // more than one job behind — that backpressure is the pipeline).
        self.counts.fill(0);
        for &(bank, _) in chunk {
            self.counts[bank as usize] += 1;
        }
        let mut jobs: Vec<RunJob> = Vec::with_capacity(shards);
        let mut bank0 = 0usize;
        for w in 0..shards {
            let mut job = self.acquire(w);
            let nb = self.worker_banks(w);
            job.lens.clear();
            job.lens.extend_from_slice(&self.counts[bank0..bank0 + nb]);
            let total: usize = job.lens.iter().sum();
            // No clear() first: the scatter writes every slot in [0..total)
            // exactly once (cursors cover sum(lens)), so stale contents of
            // the recycled buffer are never read and resize only zero-fills
            // genuine growth.
            job.rows.resize(total, 0);
            job.cuts.resize_with(nb, Vec::new);
            let mut acc = 0usize;
            for b in 0..nb {
                self.cursor[bank0 + b] = acc;
                self.starts[bank0 + b] = acc;
                acc += self.counts[bank0 + b];
            }
            bank0 += nb;
            jobs.push(job);
        }
        for bank_cuts in self.epoch_cuts.iter_mut() {
            bank_cuts.clear();
        }

        // Scatter in cut-delimited segments (no per-access epoch check),
        // recording for every bank at which local positions the global
        // epoch boundaries fall, so each bank replays exactly the
        // subsequence it saw — epochs included — in original order.
        {
            let shard_of = &self.shard_of;
            let cursor = &mut self.cursor;
            let starts = &self.starts;
            let epoch_cuts = &mut self.epoch_cuts;
            let mut slices: Vec<&mut [u32]> =
                jobs.iter_mut().map(|j| j.rows.as_mut_slice()).collect();
            let mut prev = 0usize;
            for &cut in cuts {
                for &(bank, row) in &chunk[prev..cut - base] {
                    let b = bank as usize;
                    slices[shard_of[b] as usize][cursor[b]] = row;
                    cursor[b] += 1;
                }
                for b in 0..nbanks {
                    epoch_cuts[b].push(cursor[b] - starts[b]);
                }
                prev = cut - base;
            }
            for &(bank, row) in &chunk[prev..] {
                let b = bank as usize;
                slices[shard_of[b] as usize][cursor[b]] = row;
                cursor[b] += 1;
            }
        }
        for (count, &c) in activations.iter_mut().zip(self.counts.iter()) {
            *count += c as u64;
        }

        let mut bank0 = 0usize;
        for (w, mut job) in jobs.into_iter().enumerate() {
            let nb = self.worker_banks(w);
            for (local, bank_cuts) in job.cuts.iter_mut().enumerate() {
                bank_cuts.clear();
                bank_cuts.extend_from_slice(&self.epoch_cuts[bank0 + local]);
            }
            bank0 += nb;
            self.submit(w, job);
        }
    }
}

impl Worker {
    fn send(&self, msg: ToWorker) {
        self.tx
            .as_ref()
            .expect("pool not shut down")
            .send(msg)
            .expect("shard worker panicked");
    }

    fn recv(&self) -> FromWorker {
        self.rx.recv().expect("shard worker panicked")
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's receive loop; join so no
        // thread outlives its engine.
        for w in &mut self.workers {
            w.tx = None;
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(rx: Receiver<ToWorker>, tx: Sender<FromWorker>) {
    let mut banks = SparseBanks::empty();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Banks(b) => banks = b,
            ToWorker::Run(job) => {
                run_job(&mut banks, &job);
                if tx.send(FromWorker::Job(job)).is_err() {
                    return;
                }
            }
            ToWorker::Collect => {
                let loaned = std::mem::replace(&mut banks, SparseBanks::empty());
                if tx.send(FromWorker::Banks(loaned)).is_err() {
                    return;
                }
            }
        }
    }
}

/// Replays one job, bank by bank: each bank's whole activation subsequence
/// runs through one monomorphic [`cat_core::SchemeInstance::run`] loop,
/// with that bank's epoch ends fired at the recorded cut positions.
///
/// A bank with rows in this job materializes its scheme on first-ever
/// touch, exactly as the sequential path would have at that bank's first
/// activation. A bank with no rows only needs its epoch boundaries, and
/// only if it is *already* materialized — on a fresh instance
/// `on_epoch_end` is a bit-exact no-op (fresh-idempotence, `DESIGN.md
/// §10`), so unmaterialized banks skip the boundary with no observable
/// difference.
///
/// No per-activation accounting happens here — the schemes track their own
/// stats, and the engine diffs aggregate snapshots. Keeping the sink empty
/// lets the compiler drop the `Refreshes` return path from the inlined
/// loops entirely.
fn run_job(banks: &mut SparseBanks, job: &RunJob) {
    let mut offset = 0usize;
    for (i, &len) in job.lens.iter().enumerate() {
        let rows = &job.rows[offset..offset + len];
        offset += len;
        let scheme = if len > 0 {
            banks.scheme_mut(i)
        } else {
            banks.materialized_mut(i)
        };
        let Some(scheme) = scheme else { continue };
        let mut next = 0usize;
        for &cut in &job.cuts[i] {
            scheme.run(&rows[next..cut], |_| {});
            next = cut;
            scheme.on_epoch_end();
        }
        scheme.run(&rows[next..], |_| {});
    }
}
