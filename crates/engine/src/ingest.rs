//! The multi-producer ingestion front-end: per-producer lock-free SPSC
//! lanes with a deterministic merge, and the TCP server loop (`catd`)
//! that feeds them from [`wire`]-framed socket connections.
//!
//! This is the layer that turns `cat-engine` from a library you call into
//! a service you stream at — the memory-controller deployment model the
//! paper (and ABACuS/CoMeT) evaluate trackers under — without giving up
//! the determinism contract of `DESIGN.md §7`: stats stay bit-identical
//! for any producer count, arrival interleaving, shard count, or
//! staging-flush boundary. How the merge guarantees that is `DESIGN.md
//! §8`.
//!
//! ## The SPSC lanes
//!
//! Each producer owns a **single-producer/single-consumer ring**: a
//! fixed-capacity slot array of packed records ([`wire::pack_record`] —
//! the same 8-byte layout the wire carries, so the server's decode is a
//! store, not a re-encode) plus a small ring of **batch descriptors**
//! (record counts). Producer and consumer each advance a monotonic
//! cursor with `SeqCst` atomics; no lock is ever taken on the record
//! path. The only mutexes in the module guard parked `Thread` handles,
//! and they are touched exclusively around an actual park/unpark on an
//! empty-to-nonempty or full-to-nonfull transition.
//!
//! A batch's descriptor is published **before** its records, and the
//! records then stream through the ring in free-space-sized chunks — so
//! a batch larger than the whole ring flows through it instead of
//! deadlocking, and the consumer can start merging a batch while its
//! producer is still writing it.
//!
//! ## The deterministic merge
//!
//! Each producer tags its record batches with a consecutive **sequence
//! number** (0, 1, 2, … per producer). The consumer emits batches in
//! ascending `(seq, producer)` order: sequence 0 of producer 0, sequence 0
//! of producer 1, …, sequence 1 of producer 0, and so on, waiting for a
//! lagging producer rather than reordering around it, and permanently
//! skipping producers that have finished. The merged stream is therefore a
//! pure function of *what each producer sent* — thread scheduling, arrival
//! interleaving, and ring capacity are all unobservable.
//!
//! A client that wants the merged stream to equal an original trace deals
//! it round-robin by contiguous chunk ([`deal`]): chunk `k` goes to
//! producer `k % P` as that producer's next batch. The `(seq, producer)`
//! merge inverts that deal for **every** producer count `P`, which is what
//! makes the producer count itself unobservable end to end.
//!
//! ## Backpressure
//!
//! **Ring-full blocks the producer, never the merge.** A producer whose
//! ring has no free slot parks in [`IngestProducer::send`] until the
//! consumer frees space; the consumer never skips or reorders to make
//! room. In [`serve`] the parked sender is that connection's reader
//! thread, so the kernel's TCP flow control pushes the stall back to the
//! remote client — a fast producer cannot balloon the server's memory,
//! and a slow consumer throttles every connection. The bound is per lane
//! (not global) because the merge may *need* the lagging producer's next
//! batch while every other lane is full: a global bound would deadlock
//! exactly there.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{JoinHandle, Thread};

use crate::checkpoint::{drain_with_checkpoints, CheckpointConfig};
use crate::wire::{self, Frame, FrameHeader, ServerHello, StatsSnapshot};
use crate::{BatchOutcome, GeometrySlice, MemorySystem};

/// Batch-descriptor flag bit marking an epoch-cut event instead of a
/// record batch (`DESIGN.md §12`). Record counts are bounded far below
/// bit 63 ([`wire::MAX_RECORDS_PER_FRAME`] per frame, ring capacities in
/// the millions), so the flag can never collide with a length.
const CUT_FLAG: u64 = 1 << 63;

/// One event of the merged ingestion stream, in deterministic
/// `(sequence, producer)` order: a record batch, or an epoch cut a
/// producer placed between its batches ([`IngestProducer::send_cut`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestEvent {
    /// A record batch; the records were appended to the caller's buffer
    /// (the count is what actually arrived — a producer dying mid-batch
    /// delivers the prefix).
    Records(usize),
    /// An epoch boundary at this exact position of the merged stream.
    EpochCut,
}

/// Stores a packed record into the pow2-masked ring slot at monotonic
/// position `pos`.
#[inline]
fn ring_store(ring: &[AtomicU64], mask: u64, pos: u64, value: u64) {
    // cat-lint: allow(atomic-order) -- payload slots are ordered by the SeqCst cursor publication around them (DESIGN.md §8)
    ring[(pos & mask) as usize].store(value, Ordering::Relaxed);
}

/// Loads the packed record at monotonic position `pos`.
#[inline]
fn ring_load(ring: &[AtomicU64], mask: u64, pos: u64) -> u64 {
    // cat-lint: allow(atomic-order) -- payload slots are ordered by the SeqCst cursor publication around them (DESIGN.md §8)
    ring[(pos & mask) as usize].load(Ordering::Relaxed)
}

/// Stores packed records into a *contiguous* run of ring slots — the
/// bulk counterpart of [`ring_store`], with no per-record masking or
/// bounds check (callers split their span at the ring's wrap point).
#[inline]
fn span_store(span: &[AtomicU64], values: impl Iterator<Item = u64>) {
    for (slot, value) in span.iter().zip(values) {
        // cat-lint: allow(atomic-order) -- payload slots are ordered by the SeqCst cursor publication around them (DESIGN.md §8)
        slot.store(value, Ordering::Relaxed);
    }
}

/// Unpacks a contiguous run of ring slots onto the end of `out` — a
/// slice-iterator extend, so the `Vec` reserves once and writes straight
/// through with no per-record masking or bounds check.
#[inline]
fn span_extend(span: &[AtomicU64], out: &mut Vec<(u32, u32)>) {
    out.extend(span.iter().map(|slot| {
        // cat-lint: allow(atomic-order) -- payload slots are ordered by the SeqCst cursor publication around them (DESIGN.md §8)
        wire::unpack_record(slot.load(Ordering::Relaxed))
    }));
}

/// One producer's SPSC lane. The producer thread owns `tail`/`batch_tail`
/// (it is the only writer), the consumer owns `head`/`batch_head`; every
/// cursor is a monotonic count, masked into its ring on access, so
/// full/empty tests are plain subtractions with no wraparound ambiguity.
struct Lane {
    /// Packed record slots ([`wire::pack_record`] layout); pow2 length.
    slots: Box<[AtomicU64]>,
    /// Index mask for `slots` (`slots.len() - 1`).
    slot_mask: u64,
    /// Logical record bound — exactly the capacity the queue was built
    /// with, which may be less than `slots.len()` (the pow2 rounding).
    capacity: u64,
    /// Records written (producer cursor).
    tail: AtomicU64,
    /// Records consumed (consumer cursor).
    head: AtomicU64,
    /// Record counts of begun batches, in sequence order; pow2 length.
    batches: Box<[AtomicU64]>,
    /// Index mask for `batches`.
    batch_mask: u64,
    /// Batches begun (producer cursor).
    batch_tail: AtomicU64,
    /// Batches fully merged (consumer cursor).
    batch_head: AtomicU64,
    /// The producer handle is gone; no further descriptors or records.
    finished: AtomicBool,
    /// The producer is parked (or committed to parking) on a full ring.
    producer_parked: AtomicBool,
    /// The parked producer's thread handle. Off the fast path: touched
    /// only around an actual park/unpark, never per record.
    parked_producer: Mutex<Option<Thread>>, // lock-order: parked_producer
}

impl Lane {
    /// Parks the producer until woken, with the lost-wakeup guard: the
    /// parked flag is raised first, `ready` is re-checked after, and only
    /// then does the thread park. `SeqCst` totally orders the flag raise
    /// against the waker's publication, so either the re-check sees the
    /// publication or the waker sees the flag (and the unpark permit
    /// covers the remaining park-vs-unpark race). Spurious returns are
    /// fine — every caller re-checks in a loop.
    fn park_producer(&self, ready: impl Fn() -> bool) {
        // Registry locks tolerate poison throughout: they hold no invariant
        // beyond their `Option`, and the `Drop` impls must be able to wake
        // waiters even while another thread unwinds.
        *self
            .parked_producer
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(std::thread::current());
        self.producer_parked.store(true, Ordering::SeqCst);
        if ready() {
            self.producer_parked.store(false, Ordering::SeqCst);
            return;
        }
        std::thread::park();
        self.producer_parked.store(false, Ordering::SeqCst);
    }

    /// Unparks the lane's producer if it is parked (or committing to
    /// park). Callers publish with a `SeqCst` store first; the cheap
    /// flag load keeps the un-contended fast path mutex-free.
    fn wake_producer(&self) {
        if self.producer_parked.load(Ordering::SeqCst)
            && self.producer_parked.swap(false, Ordering::SeqCst)
        {
            let waiter = self
                .parked_producer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(thread) = waiter {
                thread.unpark();
            }
        }
    }
}

struct Shared {
    lanes: Box<[Lane]>,
    /// The consumer is gone; further sends would wait forever.
    closed: AtomicBool,
    /// The consumer is parked (or committed to parking) on empty lanes.
    consumer_parked: AtomicBool,
    /// The parked consumer's thread handle (see `Lane::parked_producer`).
    parked_consumer: Mutex<Option<Thread>>, // lock-order: parked_consumer
}

impl Shared {
    /// Parks the consumer until a producer publishes; the mirror image of
    /// [`Lane::park_producer`], with the same lost-wakeup guard.
    fn park_consumer(&self, ready: impl Fn() -> bool) {
        *self
            .parked_consumer
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(std::thread::current());
        self.consumer_parked.store(true, Ordering::SeqCst);
        if ready() {
            self.consumer_parked.store(false, Ordering::SeqCst);
            return;
        }
        std::thread::park();
        self.consumer_parked.store(false, Ordering::SeqCst);
    }

    /// Unparks the consumer if it is parked (or committing to park); the
    /// mirror image of [`Lane::wake_producer`].
    fn wake_consumer(&self) {
        if self.consumer_parked.load(Ordering::SeqCst)
            && self.consumer_parked.swap(false, Ordering::SeqCst)
        {
            let waiter = self
                .parked_consumer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(thread) = waiter {
                thread.unpark();
            }
        }
    }
}

/// Error returned by [`IngestProducer::send`] once the consumer is gone:
/// with no merge left to drain the lane, the send would otherwise block
/// forever. In [`serve`] this surfaces as the connection's wire error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueClosed;

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ingest consumer dropped mid-stream")
    }
}

impl std::error::Error for QueueClosed {}

/// A bounded multi-producer ingestion queue — per-producer SPSC rings
/// with the deterministic `(sequence, producer)` merge described in the
/// [module docs](self).
///
/// ```
/// use cat_engine::ingest::IngestQueue;
///
/// let (mut producers, mut consumer) = IngestQueue::bounded(2, 1024);
/// let mut p1 = producers.pop().unwrap(); // producer 1
/// let mut p0 = producers.pop().unwrap(); // producer 0
/// // Arrival order is 1-before-0, but the merge is by (seq, producer):
/// p1.send(&[(1, 10)]).unwrap();
/// p1.send(&[(1, 11)]).unwrap();
/// p0.send(&[(0, 20)]).unwrap();
/// drop(p0); // finish
/// drop(p1);
/// assert_eq!(consumer.next_batch(), Some(vec![(0, 20)])); // seq 0, producer 0
/// assert_eq!(consumer.next_batch(), Some(vec![(1, 10)])); // seq 0, producer 1
/// assert_eq!(consumer.next_batch(), Some(vec![(1, 11)])); // seq 1, producer 1
/// assert_eq!(consumer.next_batch(), None);
/// ```
pub struct IngestQueue;

impl IngestQueue {
    /// Builds a queue of `producers` SPSC lanes, each bounded at
    /// `capacity` buffered records, returning the producer handles (index
    /// = producer id = merge tie-break order) and the single consumer.
    ///
    /// The slot ring is sized to the next power of two for mask indexing,
    /// but the *logical* bound stays exactly `capacity`. Batches larger
    /// than the capacity stream through the ring chunk by chunk.
    ///
    /// # Panics
    ///
    /// Panics if `producers` or `capacity` is zero.
    pub fn bounded(producers: usize, capacity: usize) -> (Vec<IngestProducer>, IngestConsumer) {
        assert!(producers >= 1, "at least one producer lane");
        assert!(capacity >= 1, "lanes must buffer records");
        let slots_len = capacity.next_power_of_two();
        // Descriptors gate batches, slots gate records: a handful of
        // in-flight batches per ring-full of records is plenty, and tiny
        // test queues still get enough to not serialise on descriptors.
        let batch_len = (slots_len / 8).clamp(8, 1024).next_power_of_two();
        let lanes: Box<[Lane]> = (0..producers)
            .map(|_| Lane {
                slots: (0..slots_len).map(|_| AtomicU64::new(0)).collect(),
                slot_mask: slots_len as u64 - 1,
                capacity: capacity as u64,
                tail: AtomicU64::new(0),
                head: AtomicU64::new(0),
                batches: (0..batch_len).map(|_| AtomicU64::new(0)).collect(),
                batch_mask: batch_len as u64 - 1,
                batch_tail: AtomicU64::new(0),
                batch_head: AtomicU64::new(0),
                finished: AtomicBool::new(false),
                producer_parked: AtomicBool::new(false),
                parked_producer: Mutex::new(None),
            })
            .collect();
        let shared = Arc::new(Shared {
            lanes,
            closed: AtomicBool::new(false),
            consumer_parked: AtomicBool::new(false),
            parked_consumer: Mutex::new(None),
        });
        let handles = (0..producers)
            .map(|id| IngestProducer {
                shared: Arc::clone(&shared),
                id,
                sent: 0,
            })
            .collect();
        (handles, IngestConsumer { shared, turn: 0 })
    }
}

/// One producer's handle: tags batches with consecutive sequence numbers
/// and parks when its ring is full. Dropping the handle finishes the
/// lane. Methods take `&mut self` to enforce the single-producer half of
/// the SPSC contract in the type system.
pub struct IngestProducer {
    shared: Arc<Shared>,
    id: usize,
    /// Batches begun so far — the next sequence number to assign.
    sent: u64,
}

impl IngestProducer {
    /// This producer's id — its tie-break rank in the merge.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Enqueues `records` as this producer's next batch and returns the
    /// sequence number it was tagged with (0, 1, 2, …). Parks while the
    /// ring is full; a batch larger than the whole capacity streams
    /// through the ring chunk by chunk rather than deadlocking.
    ///
    /// # Errors
    ///
    /// [`QueueClosed`] if the consumer has been dropped — with no merge
    /// left to drain the lane, the send would otherwise block forever.
    pub fn send(&mut self, records: &[(u32, u32)]) -> Result<u64, QueueClosed> {
        let seq = self.begin_batch(records.len())?;
        self.write_records(records)?;
        Ok(seq)
    }

    /// Publishes the descriptor of this producer's next batch — `len`
    /// records which MUST then be delivered via
    /// [`write_records`](Self::write_records) /
    /// [`write_packed`](Self::write_packed) — and returns its sequence
    /// number. Descriptor-first publication is what lets a batch larger
    /// than the ring stream through it, and lets the consumer start
    /// merging a batch while it is still being written.
    ///
    /// # Errors
    ///
    /// [`QueueClosed`] if the consumer has been dropped.
    pub fn begin_batch(&mut self, len: usize) -> Result<u64, QueueClosed> {
        self.publish_descriptor(len as u64)
    }

    /// Publishes an epoch-cut event at this position of the producer's
    /// stream ([`IngestEvent::EpochCut`] to the consumer) and returns the
    /// sequence number it consumed — cuts share the batch sequence space,
    /// which is what pins their position in the deterministic merge.
    ///
    /// # Errors
    ///
    /// [`QueueClosed`] if the consumer has been dropped.
    pub fn send_cut(&mut self) -> Result<u64, QueueClosed> {
        self.publish_descriptor(CUT_FLAG)
    }

    /// The descriptor-publication loop shared by [`begin_batch`]
    /// (`desc` = record count) and [`send_cut`] (`desc` = [`CUT_FLAG`]).
    ///
    /// [`begin_batch`]: Self::begin_batch
    /// [`send_cut`]: Self::send_cut
    fn publish_descriptor(&mut self, desc: u64) -> Result<u64, QueueClosed> {
        let lane = &self.shared.lanes[self.id];
        loop {
            if self.shared.closed.load(Ordering::SeqCst) {
                return Err(QueueClosed);
            }
            let tail = lane.batch_tail.load(Ordering::SeqCst);
            let head = lane.batch_head.load(Ordering::SeqCst);
            if tail - head < lane.batches.len() as u64 {
                ring_store(&lane.batches, lane.batch_mask, tail, desc);
                lane.batch_tail.store(tail + 1, Ordering::SeqCst);
                self.shared.wake_consumer();
                let seq = self.sent;
                self.sent += 1;
                return Ok(seq);
            }
            lane.park_producer(|| {
                self.shared.closed.load(Ordering::SeqCst)
                    || lane.batch_head.load(Ordering::SeqCst) != head
            });
        }
    }

    /// Streams `records` into the ring as (part of) the batch begun by
    /// the last [`begin_batch`](Self::begin_batch), packing them into the
    /// slot layout on the way.
    ///
    /// # Errors
    ///
    /// [`QueueClosed`] if the consumer has been dropped.
    pub fn write_records(&mut self, records: &[(u32, u32)]) -> Result<(), QueueClosed> {
        self.write_slots(records.len(), |span, off, take| {
            span_store(
                span,
                records[off..off + take]
                    .iter()
                    .map(|&(bank, row)| wire::pack_record(bank, row)),
            );
        })
    }

    /// Streams already-packed records ([`wire::pack_record`] layout —
    /// which is byte-identical to the wire payload, so the server's
    /// reader threads call this without any re-encoding).
    ///
    /// # Errors
    ///
    /// [`QueueClosed`] if the consumer has been dropped.
    pub fn write_packed(&mut self, packed: &[u64]) -> Result<(), QueueClosed> {
        self.write_slots(packed.len(), |span, off, take| {
            span_store(span, packed[off..off + take].iter().copied());
        })
    }

    /// The common ring-write loop: chunk `total` records by free space
    /// *and* the ring's wrap point (so every chunk is one contiguous slot
    /// span), parking on a full ring. `store(span, offset, take)` writes
    /// source records `offset..offset + take` into the slot span.
    fn write_slots(
        &self,
        total: usize,
        mut store: impl FnMut(&[AtomicU64], usize, usize),
    ) -> Result<(), QueueClosed> {
        let lane = &self.shared.lanes[self.id];
        let mut written = 0usize;
        while written < total {
            if self.shared.closed.load(Ordering::SeqCst) {
                return Err(QueueClosed);
            }
            let tail = lane.tail.load(Ordering::SeqCst);
            let head = lane.head.load(Ordering::SeqCst);
            let free = lane.capacity - (tail - head);
            if free == 0 {
                lane.park_producer(|| {
                    self.shared.closed.load(Ordering::SeqCst)
                        || lane.head.load(Ordering::SeqCst) != head
                });
                continue;
            }
            let start = (tail & lane.slot_mask) as usize;
            let take = (total - written)
                .min(free as usize)
                .min(lane.slots.len() - start);
            store(&lane.slots[start..start + take], written, take);
            lane.tail.store(tail + take as u64, Ordering::SeqCst);
            self.shared.wake_consumer();
            written += take;
        }
        Ok(())
    }

    /// Marks the lane finished (equivalent to dropping the handle): the
    /// merge skips this producer once its buffered batches drain.
    pub fn finish(self) {}
}

impl Drop for IngestProducer {
    fn drop(&mut self) {
        let lane = &self.shared.lanes[self.id];
        lane.finished.store(true, Ordering::SeqCst);
        self.shared.wake_consumer();
    }
}

/// The consuming end: emits batches in the deterministic merge order.
pub struct IngestConsumer {
    shared: Arc<Shared>,
    /// Producer whose next batch the merge emits ([module docs](self)).
    turn: usize,
}

impl IngestConsumer {
    /// Appends the next *record batch* in `(sequence, producer)` order to
    /// `out`, blocking until it is available; returns `false` once every
    /// producer has finished and drained. This is the record-only view of
    /// the stream: epoch-cut events are skipped. Event-aware drains
    /// (`MemorySystem::ingest`, the checkpointing loop) use
    /// [`next_event_into`](Self::next_event_into) instead.
    pub fn next_batch_into(&mut self, out: &mut Vec<(u32, u32)>) -> bool {
        loop {
            match self.next_event_into(out) {
                None => return false,
                Some(IngestEvent::Records(_)) => return true,
                Some(IngestEvent::EpochCut) => continue,
            }
        }
    }

    /// Appends the next event in `(sequence, producer)` order — a record
    /// batch appended to `out`, or an epoch cut — blocking until it is
    /// available; `None` once every producer has finished and drained.
    /// Waits for a lagging producer rather than reordering around it —
    /// that wait *is* the determinism.
    ///
    /// This is the chunk-amortized drain: [`MemorySystem::ingest`] hands
    /// it the staging buffer and whole batches are copied out of the ring
    /// with no intermediate `Vec` per batch.
    pub fn next_event_into(&mut self, out: &mut Vec<(u32, u32)>) -> Option<IngestEvent> {
        let lanes = self.shared.lanes.len();
        let mut skipped = 0;
        while skipped < lanes {
            let lane = &self.shared.lanes[self.turn];
            let head = lane.batch_head.load(Ordering::SeqCst);
            if lane.batch_tail.load(Ordering::SeqCst) != head {
                let desc = ring_load(&lane.batches, lane.batch_mask, head);
                let event = if desc & CUT_FLAG != 0 {
                    IngestEvent::EpochCut
                } else {
                    let before = out.len();
                    self.copy_batch(lane, desc, out);
                    IngestEvent::Records(out.len() - before)
                };
                lane.batch_head.store(head + 1, Ordering::SeqCst);
                lane.wake_producer();
                self.turn = (self.turn + 1) % lanes;
                return Some(event);
            }
            if lane.finished.load(Ordering::SeqCst) {
                // Re-check: a descriptor published just before the finish
                // flag must not be skipped.
                if lane.batch_tail.load(Ordering::SeqCst) != head {
                    continue;
                }
                self.turn = (self.turn + 1) % lanes;
                skipped += 1;
                continue;
            }
            // The lane is empty but live: wait for it — no reordering
            // around a lagging producer.
            self.shared.park_consumer(|| {
                lane.batch_tail.load(Ordering::SeqCst) != head
                    || lane.finished.load(Ordering::SeqCst)
            });
            skipped = 0;
        }
        None
    }

    /// Blocks until the next batch in `(sequence, producer)` order is
    /// available and returns it; `None` once every producer has finished
    /// and drained. Allocation-free callers use
    /// [`next_batch_into`](Self::next_batch_into) instead.
    pub fn next_batch(&mut self) -> Option<Vec<(u32, u32)>> {
        let mut out = Vec::new();
        self.next_batch_into(&mut out).then_some(out)
    }

    /// Copies one `len`-record batch out of `lane`'s slot ring into
    /// `out`, waiting for records the producer is still writing. If the
    /// producer vanishes mid-batch (a reader thread erroring out of its
    /// socket), the prefix that did arrive is delivered — the session is
    /// failing anyway, and a partial batch must not hang the merge.
    fn copy_batch(&self, lane: &Lane, len: u64, out: &mut Vec<(u32, u32)>) {
        let mut head = lane.head.load(Ordering::SeqCst);
        let mut remaining = len;
        while remaining > 0 {
            let tail = lane.tail.load(Ordering::SeqCst);
            let avail = (tail - head).min(remaining);
            if avail == 0 {
                if lane.finished.load(Ordering::SeqCst) && lane.tail.load(Ordering::SeqCst) == head
                {
                    return; // truncated batch: deliver the prefix
                }
                self.shared.park_consumer(|| {
                    lane.tail.load(Ordering::SeqCst) != head || lane.finished.load(Ordering::SeqCst)
                });
                continue;
            }
            // At most two contiguous spans (the ring's wrap point), each
            // a bulk slice extend.
            let start = (head & lane.slot_mask) as usize;
            let first = (avail as usize).min(lane.slots.len() - start);
            span_extend(&lane.slots[start..start + first], out);
            let wrapped = avail as usize - first;
            if wrapped > 0 {
                span_extend(&lane.slots[..wrapped], out);
            }
            head += avail;
            lane.head.store(head, Ordering::SeqCst);
            lane.wake_producer();
            remaining -= avail;
        }
    }
}

impl Drop for IngestConsumer {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        for lane in self.shared.lanes.iter() {
            lane.wake_producer();
        }
    }
}

/// Deals a trace into per-producer batch lists whose `(seq, producer)`
/// merge reconstructs `trace` exactly, for **any** producer count:
/// contiguous chunk `k` of `chunk` records becomes producer `k % producers`'s
/// next batch.
///
/// ```
/// let trace: Vec<(u32, u32)> = (0..10).map(|i| (i, i)).collect();
/// for producers in 1..=4 {
///     let per_producer = cat_engine::ingest::deal(&trace, producers, 3);
///     let mut merged = Vec::new();
///     let rounds = per_producer.iter().map(Vec::len).max().unwrap();
///     for seq in 0..rounds {
///         for lane in &per_producer {
///             if let Some(batch) = lane.get(seq) {
///                 merged.extend_from_slice(batch);
///             }
///         }
///     }
///     assert_eq!(merged, trace); // the merge inverts the deal
/// }
/// ```
///
/// # Panics
///
/// Panics if `producers` or `chunk` is zero.
pub fn deal(trace: &[(u32, u32)], producers: usize, chunk: usize) -> Vec<Vec<&[(u32, u32)]>> {
    assert!(producers >= 1, "at least one producer");
    assert!(chunk >= 1, "chunks must contain records");
    let mut out: Vec<Vec<&[(u32, u32)]>> = (0..producers).map(|_| Vec::new()).collect();
    for (k, part) in trace.chunks(chunk).enumerate() {
        out[k % producers].push(part);
    }
    out
}

/// Options for [`serve`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Connections to accept; ingestion ends when all of them finish.
    pub producers: usize,
    /// Per-connection ring bound, in records (the backpressure
    /// threshold — see the [module docs](self)).
    pub queue_capacity: usize,
    /// Checkpointing (`DESIGN.md §11`): when set, every merged batch is
    /// logged to the checkpoint directory before processing, images are
    /// published at epoch cuts, and clients may send
    /// [`Frame::Checkpoint`]. `None` serves without durability (and
    /// refuses `Checkpoint` frames).
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            producers: 1,
            queue_capacity: 1 << 16,
            checkpoint: None,
        }
    }
}

/// What one [`serve`] call did.
#[derive(Clone, Copy, Debug)]
pub struct ServeReport {
    /// Aggregate outcome of everything ingested this call.
    pub outcome: BatchOutcome,
    /// The post-ingestion snapshot (also what stats requesters were sent).
    pub snapshot: StatsSnapshot,
    /// Connections that requested (and were sent) the snapshot.
    pub stats_served: usize,
}

/// Records decoded per chunk by a [`serve`] reader thread: bounds each
/// connection's reusable frame buffers at 32 KiB and keeps a frame's
/// payload streaming through the lane instead of being materialised
/// whole.
const READ_CHUNK_RECORDS: usize = 4096;

/// Serves one ingestion session over TCP: accepts
/// [`producers`](ServeOptions::producers) connections, handshakes each
/// ([`wire`] hello exchange), then streams their record frames through the
/// deterministic [`IngestQueue`] merge into `system` until every
/// connection sends [`Frame::Finish`]. Connections that sent
/// [`Frame::StatsRequest`] receive a [`StatsSnapshot`] once ingestion
/// completes. This is the loop behind the `catd` example, reused verbatim
/// by the loopback differential tests.
///
/// Each reader thread decodes frames **zero-copy**: payload bytes land in
/// a per-connection reusable buffer, are reinterpreted as packed records
/// (the wire layout *is* the ring-slot layout — [`wire::pack_record`]),
/// validated, and stored straight into the lane. No `Vec<(u32, u32)>` is
/// ever materialised on the server's ingest path.
///
/// Record banks *and rows* are validated against the system geometry
/// **at the connection** — a malformed client gets its connection errored
/// instead of panicking the drain thread.
///
/// Backpressure: each connection's reader thread parks once its ring
/// lane is full, which stalls the socket via TCP flow control.
///
/// ```no_run
/// use std::net::TcpListener;
/// use cat_core::SchemeSpec;
/// use cat_engine::ingest::{serve, ServeOptions};
/// use cat_engine::{MemGeometry, MemorySystem};
///
/// let geometry = MemGeometry {
///     channels: 2,
///     ranks_per_channel: 1,
///     banks_per_rank: 8,
///     rows_per_bank: 4096,
///     lines_per_row: 16,
///     line_bytes: 64,
/// };
/// let spec: SchemeSpec = "sca:64:4096".parse().unwrap();
/// let mut system = MemorySystem::new(&geometry, spec).with_epoch_length(50_000);
/// let listener = TcpListener::bind("127.0.0.1:0").unwrap();
/// let report = serve(&listener, &mut system, &ServeOptions { producers: 2, ..Default::default() }).unwrap();
/// println!("ingested {} accesses", report.outcome.accesses);
/// ```
///
/// # Errors
///
/// Returns the first accept/handshake error, or the first connection's
/// protocol error (out-of-order sequence number, out-of-range bank or
/// row, malformed frame) after the drain completes. Ingested records are
/// already reflected in `system` either way.
pub fn serve(
    listener: &TcpListener,
    system: &mut MemorySystem,
    options: &ServeOptions,
) -> io::Result<ServeReport> {
    assert!(options.producers >= 1, "serve needs at least one producer");
    let hello = ServerHello {
        geometry: *system.geometry(),
        slice_start: system.slice().start_bank(),
        slice_banks: system.slice().banks(),
        spec: system.spec().to_string(),
        epoch_len: system.epoch_length(),
        accesses: system.accesses(),
        epochs: system.epochs(),
    };
    // Phase 1: accept and handshake every connection before spawning any
    // reader, so a failed handshake aborts cleanly with no thread blocked
    // on a queue nobody will drain.
    let connections = accept_producers(listener, options.producers, &hello)?;

    // Phase 2: one reader thread per connection, feeding its ring lane.
    let (producers, mut consumer) = IngestQueue::bounded(options.producers, options.queue_capacity);
    let owned = *system.slice();
    let cuts_allowed = system.epoch_length().is_none();
    // Set by any connection's Checkpoint frame, consumed by the drain at
    // the next epoch cut (so a client-requested image is still
    // cut-consistent). Handed to readers only when checkpointing is on —
    // a None makes the frame a typed refusal instead of a silent no-op.
    let checkpoint_requested = Arc::new(AtomicBool::new(false));
    let mut readers: Vec<JoinHandle<io::Result<(TcpStream, bool)>>> =
        Vec::with_capacity(options.producers);
    for (stream, producer) in connections.into_iter().zip(producers) {
        let requested = options
            .checkpoint
            .as_ref()
            .map(|_| Arc::clone(&checkpoint_requested));
        // A failed spawn (resource exhaustion) aborts the session as an
        // error; already-spawned readers see the queue close when `consumer`
        // drops below and error out of their sockets.
        readers.push(
            std::thread::Builder::new()
                .name(format!("catd-reader-{}", producer.id()))
                .spawn(move || read_connection(stream, producer, owned, cuts_allowed, requested))?,
        );
    }

    // Phase 3: drain the deterministic merge into the system — through
    // the logging/checkpointing loop when durability is configured.
    let outcome = match &options.checkpoint {
        None => system.ingest(&mut consumer),
        Some(cfg) => {
            match drain_with_checkpoints(system, &mut consumer, cfg, &checkpoint_requested) {
                Ok(outcome) => outcome,
                Err(e) => {
                    // A dead drain (disk full, corrupt log) must not leave
                    // readers parked on full lanes: close the queue, let
                    // them error out of their sockets, and report the
                    // drain's error — the session is already failing.
                    drop(consumer);
                    for reader in readers {
                        let _ = reader.join();
                    }
                    return Err(e);
                }
            }
        }
    };

    // Phase 4: join the readers and answer the stats requesters.
    let footprint = system.footprint();
    let snapshot = StatsSnapshot {
        accesses: system.accesses(),
        epochs: system.epochs(),
        stats: system.stats(),
        banks: footprint.banks as u64,
        materialized_banks: footprint.materialized_banks as u64,
        scheme_bytes: footprint.scheme_bytes as u64,
    };
    let mut stats_served = 0;
    let mut first_error = None;
    for reader in readers {
        match reader.join() {
            Ok(Ok((mut stream, wants_stats))) => {
                if wants_stats {
                    let sent =
                        wire::write_stats(&mut stream, &snapshot).and_then(|()| stream.flush());
                    match sent {
                        Ok(()) => stats_served += 1,
                        Err(e) => first_error = first_error.or(Some(e)),
                    }
                }
            }
            Ok(Err(e)) => first_error = first_error.or(Some(e)),
            // A panicking reader is a bug, but it must not take the serve
            // loop (and every other connection's stats reply) down with it.
            Err(_panic) => {
                first_error = first_error.or(Some(io::Error::other("ingest reader panicked")));
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(ServeReport {
            outcome,
            snapshot,
            stats_served,
        }),
    }
}

/// Accepts and handshakes exactly `producers` connections, returning the
/// streams in producer-id order. Each client *claims* its producer id
/// (merge tie-break rank) in its hello — lane assignment must follow the
/// client-side deal, not the racy TCP accept order — and a session's ids
/// must form a permutation of `0..producers`. Shared by [`serve`] and the
/// router tier ([`crate::router::serve`]).
pub(crate) fn accept_producers(
    listener: &TcpListener,
    producers: usize,
    hello: &ServerHello,
) -> io::Result<Vec<TcpStream>> {
    let mut connections: Vec<Option<TcpStream>> = (0..producers).map(|_| None).collect();
    for _ in 0..producers {
        let (mut stream, peer) = listener.accept()?;
        let id = wire::read_client_hello(&mut stream)? as usize;
        let slot = connections.get_mut(id).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{peer} claimed producer id {id}, session has {producers} producers"),
            )
        })?;
        if slot.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{peer} claimed producer id {id} twice"),
            ));
        }
        wire::write_server_hello(&mut stream, hello)?;
        *slot = Some(stream);
    }
    // Every slot is filled: exactly `producers` connections were accepted
    // and their ids form a permutation of `0..producers`.
    Ok(connections.into_iter().flatten().collect())
}

/// One connection's reader loop: frame headers → sequence check → chunked
/// zero-copy payload decode → bank/row validation against the served
/// slice → ring lane. Returns the stream (for the stats reply) and
/// whether the client requested stats. Dropping `producer` on any exit
/// finishes the lane, so the merge never waits on a dead connection (a
/// batch cut short by an error is delivered as its prefix — the session
/// is already failing). Out-of-slice banks and (when the system fires its
/// own epoch boundaries) stream epoch cuts are refused **here, at the
/// connection**: a misrouted client errors its own socket instead of
/// corrupting the shared drain.
pub(crate) fn read_connection(
    stream: TcpStream,
    mut producer: IngestProducer,
    owned: GeometrySlice,
    cuts_allowed: bool,
    checkpoint_requested: Option<Arc<AtomicBool>>,
) -> io::Result<(TcpStream, bool)> {
    let peer = producer.id();
    let rows = owned.geometry().rows_per_bank;
    let mut reader = BufReader::new(stream);
    let mut expected_seq = 0u64;
    let mut wants_stats = false;
    // Reused across every frame of the connection: the raw payload bytes
    // and their packed-u64 view. The packed view IS the ring-slot layout,
    // so decode is `read_exact` + `from_le_bytes` and nothing else.
    let mut payload = Vec::new();
    let mut packed = Vec::new();
    loop {
        match wire::read_frame_header(&mut reader)? {
            FrameHeader::Records { seq, count } => {
                if seq != expected_seq {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("producer {peer}: sequence {seq}, expected {expected_seq}"),
                    ));
                }
                expected_seq += 1;
                producer
                    .begin_batch(count as usize)
                    .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e))?;
                let mut remaining = count as usize;
                while remaining > 0 {
                    let take = remaining.min(READ_CHUNK_RECORDS);
                    wire::read_packed_records(&mut reader, &mut payload, &mut packed, take)?;
                    // Both coordinates are checked here, at the connection:
                    // the schemes downstream assert on out-of-range rows
                    // (e.g. the counter-cache bounds check), and a panic on
                    // the shared drain thread would take the whole session
                    // down instead of just this socket.
                    if let Some(&offending) = packed.iter().find(|&&p| {
                        let (bank, row) = wire::unpack_record(p);
                        !owned.contains(bank) || row >= rows
                    }) {
                        let (bank, row) = wire::unpack_record(offending);
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "producer {peer}: record (bank {bank}, row {row}) out of range \
                                 for a backend owning {owned} with {rows}-row banks"
                            ),
                        ));
                    }
                    producer
                        .write_packed(&packed)
                        .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e))?;
                    remaining -= take;
                }
            }
            FrameHeader::StatsRequest => wants_stats = true,
            FrameHeader::Finish => return Ok((reader.into_inner(), wants_stats)),
            FrameHeader::Checkpoint => match &checkpoint_requested {
                Some(flag) => flag.store(true, Ordering::SeqCst),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        format!(
                            "producer {peer}: checkpoint requested, but the server \
                             runs without a checkpoint directory"
                        ),
                    ));
                }
            },
            FrameHeader::Restore { len } => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!(
                        "producer {peer}: {len}-byte restore image refused mid-session \
                         — recover at startup via --resume"
                    ),
                ));
            }
            FrameHeader::EpochCut { seq } => {
                if seq != expected_seq {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("producer {peer}: sequence {seq}, expected {expected_seq}"),
                    ));
                }
                expected_seq += 1;
                if !cuts_allowed {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "producer {peer}: stream epoch cut, but the server fires its \
                             own epoch boundaries"
                        ),
                    ));
                }
                producer
                    .send_cut()
                    .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e))?;
            }
        }
    }
}

/// A client-side ingestion connection: handshakes on
/// [`connect`](Self::connect), streams record batches with automatic
/// sequence numbering and frame chunking, and can collect the server's
/// final [`StatsSnapshot`]. The `catd_loadgen` example and the loopback
/// differential tests drive [`serve`] through this.
pub struct IngestClient {
    writer: BufWriter<TcpStream>,
    hello: ServerHello,
    next_seq: u64,
    /// Reusable frame-encode buffer: after the first send at a given
    /// batch size, a send allocates nothing.
    frame: Vec<u8>,
}

impl IngestClient {
    /// Connects as producer `producer_id` (the connection's merge
    /// tie-break rank — the index of the [`deal`] lane it will stream)
    /// and performs the hello exchange.
    ///
    /// # Errors
    ///
    /// Connection errors, plus [`io::ErrorKind::InvalidData`] if the
    /// server speaks a different wire version.
    pub fn connect(addr: impl ToSocketAddrs, producer_id: u32) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        wire::write_client_hello(&mut stream, producer_id)?;
        let hello = wire::read_server_hello(&mut stream)?;
        Ok(IngestClient {
            writer: BufWriter::new(stream),
            hello,
            next_seq: 0,
            frame: Vec::new(),
        })
    }

    /// [`connect`](Self::connect) with bounded retry: up to `attempts`
    /// tries with an exponential backoff (10 ms doubling, capped at
    /// 500 ms) between them. This is what the loopback smokes and the
    /// router use — a freshly spawned server may not have bound its
    /// listener yet, and racing its first accept must not flake the run.
    ///
    /// # Errors
    ///
    /// The *last* attempt's error once the budget is exhausted.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        producer_id: u32,
        attempts: u32,
    ) -> io::Result<Self> {
        let mut delay = std::time::Duration::from_millis(10);
        let mut last = io::Error::other("zero connect attempts");
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(std::time::Duration::from_millis(500));
            }
            match Self::connect(&addr, producer_id) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// What the server announced in its handshake (geometry, scheme spec,
    /// epoch length) — generate traffic for *this*, not for an assumed
    /// configuration.
    pub fn server_hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Streams `records` as this connection's next batch(es), splitting
    /// slices above [`wire::MAX_RECORDS_PER_FRAME`] into consecutive
    /// frames. Frames are encoded into a buffer reused across sends.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (including a server-side protocol
    /// rejection surfacing as a broken pipe).
    pub fn send(&mut self, records: &[(u32, u32)]) -> io::Result<()> {
        let mut rest = records;
        loop {
            let take = rest.len().min(wire::MAX_RECORDS_PER_FRAME as usize);
            let (part, tail) = rest.split_at(take);
            wire::encode_records(&mut self.frame, self.next_seq, part)?;
            self.writer.write_all(&self.frame)?;
            self.next_seq += 1;
            if tail.is_empty() {
                return Ok(());
            }
            rest = tail;
        }
    }

    /// Sends [`Frame::EpochCut`] at the current position of this
    /// connection's stream (consuming a sequence number, like a record
    /// batch): an epoch boundary for a clockless backend driven by the
    /// sender's epoch clock (`DESIGN.md §12`). A server firing its own
    /// epoch boundaries refuses the frame.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_cut(&mut self) -> io::Result<()> {
        wire::write_frame(&mut self.writer, &Frame::EpochCut { seq: self.next_seq })?;
        self.next_seq += 1;
        Ok(())
    }

    /// Sends [`Frame::Checkpoint`]: ask a checkpointing server to publish
    /// an image at the next epoch cut. Flushes so the request is not
    /// stuck behind buffered records. A server running without
    /// checkpointing refuses the frame (this connection errors).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn request_checkpoint(&mut self) -> io::Result<()> {
        wire::write_frame(&mut self.writer, &Frame::Checkpoint)?;
        self.writer.flush()
    }

    /// Sends [`Frame::Finish`] and closes the connection without asking
    /// for stats.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn finish(mut self) -> io::Result<()> {
        wire::write_frame(&mut self.writer, &Frame::Finish)?;
        self.writer.flush()
    }

    /// Sends [`Frame::StatsRequest`] + [`Frame::Finish`], then blocks for
    /// the server's post-ingestion [`StatsSnapshot`] (which arrives only
    /// after **all** producers of the session finish).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn finish_with_stats(mut self) -> io::Result<StatsSnapshot> {
        wire::write_frame(&mut self.writer, &Frame::StatsRequest)?;
        wire::write_frame(&mut self.writer, &Frame::Finish)?;
        self.writer.flush()?;
        wire::read_stats(self.writer.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(tag: u32, len: usize) -> Vec<(u32, u32)> {
        (0..len as u32).map(|i| (tag, i)).collect()
    }

    #[test]
    fn merge_is_by_seq_then_producer_regardless_of_arrival() {
        let (mut handles, mut consumer) = IngestQueue::bounded(3, 1 << 20);
        let mut p2 = handles.pop().unwrap();
        let mut p1 = handles.pop().unwrap();
        let mut p0 = handles.pop().unwrap();
        // Adversarial arrival order: late producers first, interleaved.
        p2.send(&batch(20, 2)).unwrap();
        p1.send(&batch(10, 1)).unwrap();
        p1.send(&batch(11, 1)).unwrap();
        p0.send(&batch(0, 3)).unwrap();
        p2.send(&batch(21, 2)).unwrap();
        p0.send(&batch(1, 1)).unwrap();
        drop((p0, p1, p2));
        let tags: Vec<u32> = std::iter::from_fn(|| consumer.next_batch())
            .map(|b| b[0].0)
            .collect();
        assert_eq!(tags, [0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn merge_waits_for_the_lagging_producer() {
        let (mut handles, mut consumer) = IngestQueue::bounded(2, 1 << 20);
        let mut p1 = handles.pop().unwrap();
        let mut p0 = handles.pop().unwrap();
        p1.send(&batch(100, 1)).unwrap();
        // Producer 0 is slow: deliver its batch from another thread after
        // the consumer is already blocked waiting for it.
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            p0.send(&batch(50, 1)).unwrap();
            drop(p0);
        });
        drop(p1);
        assert_eq!(consumer.next_batch().unwrap()[0].0, 50, "p0 first");
        assert_eq!(consumer.next_batch().unwrap()[0].0, 100);
        assert_eq!(consumer.next_batch(), None);
        sender.join().unwrap();
    }

    #[test]
    fn finished_producers_are_skipped_permanently() {
        let (mut handles, mut consumer) = IngestQueue::bounded(3, 1 << 20);
        let mut p2 = handles.pop().unwrap();
        let p1 = handles.pop().unwrap();
        let mut p0 = handles.pop().unwrap();
        drop(p1); // producer 1 sends nothing at all
        p0.send(&batch(0, 1)).unwrap();
        p0.send(&batch(1, 1)).unwrap();
        p2.send(&batch(2, 1)).unwrap();
        drop((p0, p2));
        let tags: Vec<u32> = std::iter::from_fn(|| consumer.next_batch())
            .map(|b| b[0].0)
            .collect();
        assert_eq!(tags, [0, 2, 1]);
    }

    #[test]
    fn send_applies_per_lane_backpressure() {
        let (mut handles, mut consumer) = IngestQueue::bounded(1, 10);
        let mut p = handles.pop().unwrap();
        p.send(&batch(0, 10)).unwrap(); // ring now at capacity
        let blocked = std::thread::spawn(move || {
            p.send(&batch(1, 5)).unwrap(); // must park until the consumer drains
            drop(p);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!blocked.is_finished(), "send must block on a full ring");
        assert_eq!(consumer.next_batch().unwrap().len(), 10);
        blocked.join().unwrap();
        assert_eq!(consumer.next_batch().unwrap().len(), 5);
        assert_eq!(consumer.next_batch(), None);
    }

    #[test]
    fn a_batch_larger_than_the_ring_streams_through_it() {
        let (mut handles, mut consumer) = IngestQueue::bounded(1, 4);
        let mut p = handles.pop().unwrap();
        // 25× the ring capacity: the descriptor publishes first, then the
        // records stream through as the consumer frees slots.
        let sender = std::thread::spawn(move || {
            p.send(&batch(0, 100)).unwrap();
            drop(p);
        });
        assert_eq!(consumer.next_batch().unwrap(), batch(0, 100));
        sender.join().unwrap();
        assert_eq!(consumer.next_batch(), None);
    }

    #[test]
    fn wraparound_at_capacity_boundaries_preserves_contents() {
        // Pow2 and non-pow2 capacities: the slot ring is pow2-sized but
        // the logical bound is exact, so cursors sweep the seam between
        // mask wraparound and capacity-limited free space many times.
        for capacity in [8usize, 10] {
            let (mut handles, mut consumer) = IngestQueue::bounded(1, capacity);
            let mut p = handles.pop().unwrap();
            let expected: Vec<(u32, u32)> = (0..999u32).map(|i| (i % 16, i)).collect();
            let sender = std::thread::spawn({
                let expected = expected.clone();
                move || {
                    for chunk in expected.chunks(3) {
                        p.send(chunk).unwrap();
                    }
                }
            });
            let mut got = Vec::new();
            while consumer.next_batch_into(&mut got) {}
            sender.join().unwrap();
            assert_eq!(got, expected, "capacity {capacity}");
        }
    }

    #[test]
    fn the_streaming_writer_api_matches_send() {
        let (mut handles, mut consumer) = IngestQueue::bounded(1, 16);
        let mut p = handles.pop().unwrap();
        let packed: Vec<u64> = (0..40u32).map(|i| wire::pack_record(i % 4, i)).collect();
        let expected: Vec<(u32, u32)> = packed.iter().map(|&x| wire::unpack_record(x)).collect();
        let sender = std::thread::spawn(move || {
            assert_eq!(p.begin_batch(40).unwrap(), 0);
            p.write_packed(&packed[..25]).unwrap();
            p.write_packed(&packed[25..]).unwrap();
            assert_eq!(p.begin_batch(1).unwrap(), 1);
            p.write_records(&[(3, 9)]).unwrap();
        });
        assert_eq!(consumer.next_batch().unwrap(), expected);
        assert_eq!(consumer.next_batch(), Some(vec![(3, 9)]));
        sender.join().unwrap();
        assert_eq!(consumer.next_batch(), None);
    }

    #[test]
    fn a_producer_dying_mid_batch_delivers_the_prefix() {
        let (mut handles, mut consumer) = IngestQueue::bounded(1, 16);
        let mut p = handles.pop().unwrap();
        p.begin_batch(10).unwrap();
        p.write_records(&[(0, 1), (0, 2)]).unwrap();
        drop(p); // the reader thread errored out of its socket mid-frame
        assert_eq!(consumer.next_batch(), Some(vec![(0, 1), (0, 2)]));
        assert_eq!(consumer.next_batch(), None);
    }

    #[test]
    fn empty_batches_merge_as_empty() {
        let (mut handles, mut consumer) = IngestQueue::bounded(1, 4);
        let mut p = handles.pop().unwrap();
        p.send(&[]).unwrap();
        p.send(&[(1, 2)]).unwrap();
        drop(p);
        assert_eq!(consumer.next_batch(), Some(vec![]));
        assert_eq!(consumer.next_batch(), Some(vec![(1, 2)]));
        assert_eq!(consumer.next_batch(), None);
    }

    #[test]
    fn send_after_consumer_drop_errors() {
        let (mut handles, consumer) = IngestQueue::bounded(1, 4);
        let mut p = handles.pop().unwrap();
        drop(consumer);
        assert_eq!(p.send(&batch(0, 1)), Err(QueueClosed));
    }

    #[test]
    fn consumer_drop_unblocks_a_parked_producer() {
        let (mut handles, consumer) = IngestQueue::bounded(1, 4);
        let mut p = handles.pop().unwrap();
        p.send(&batch(0, 4)).unwrap(); // ring full
        let blocked = std::thread::spawn(move || p.send(&batch(1, 4)));
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!blocked.is_finished(), "send must park on a full ring");
        drop(consumer);
        assert_eq!(blocked.join().unwrap(), Err(QueueClosed));
    }

    #[test]
    fn deal_round_robin_covers_the_trace_for_any_producer_count() {
        let trace: Vec<(u32, u32)> = (0..1000u32).map(|i| (i % 16, i)).collect();
        for producers in [1usize, 2, 3, 4, 7] {
            for chunk in [1usize, 3, 333, 2000] {
                let dealt = deal(&trace, producers, chunk);
                assert_eq!(dealt.len(), producers);
                let rounds = dealt.iter().map(Vec::len).max().unwrap();
                let mut merged: Vec<(u32, u32)> = Vec::new();
                for seq in 0..rounds {
                    for lane in &dealt {
                        if let Some(part) = lane.get(seq) {
                            merged.extend_from_slice(part);
                        }
                    }
                }
                assert_eq!(merged, trace, "{producers} producers, chunk {chunk}");
            }
        }
    }
}
