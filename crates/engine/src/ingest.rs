//! The multi-producer ingestion front-end: a bounded queue with a
//! deterministic merge, and the TCP server loop (`catd`) that feeds it
//! from [`wire`]-framed socket connections.
//!
//! This is the layer that turns `cat-engine` from a library you call into
//! a service you stream at — the memory-controller deployment model the
//! paper (and ABACuS/CoMeT) evaluate trackers under — without giving up
//! the determinism contract of `DESIGN.md §7`: stats stay bit-identical
//! for any producer count, arrival interleaving, shard count, or
//! staging-flush boundary. How the merge guarantees that is `DESIGN.md
//! §8`.
//!
//! ## The deterministic merge
//!
//! Each producer tags its record batches with a consecutive **sequence
//! number** (0, 1, 2, … per producer). The consumer emits batches in
//! ascending `(seq, producer)` order: sequence 0 of producer 0, sequence 0
//! of producer 1, …, sequence 1 of producer 0, and so on, waiting for a
//! lagging producer rather than reordering around it, and permanently
//! skipping producers that have finished. The merged stream is therefore a
//! pure function of *what each producer sent* — thread scheduling, arrival
//! interleaving, and queue capacity are all unobservable.
//!
//! A client that wants the merged stream to equal an original trace deals
//! it round-robin by contiguous chunk ([`deal`]): chunk `k` goes to
//! producer `k % P` as that producer's next batch. The `(seq, producer)`
//! merge inverts that deal for **every** producer count `P`, which is what
//! makes the producer count itself unobservable end to end.
//!
//! ## Backpressure
//!
//! The queue bounds the records buffered **per producer lane**; a producer
//! whose lane is full blocks in [`IngestProducer::send`] until the
//! consumer drains it. In [`serve`] the blocked sender is that
//! connection's reader thread, so the kernel's TCP flow control pushes the
//! stall back to the remote client — a fast producer cannot balloon the
//! server's memory, and a slow consumer throttles every connection. The
//! bound is per lane (not global) because the merge may *need* the lagging
//! producer's next batch while every other lane is full: a global bound
//! would deadlock exactly there.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::wire::{self, Frame, ServerHello, StatsSnapshot};
use crate::{BatchOutcome, MemGeometry, MemorySystem};

/// One producer's lane in the queue.
struct Lane {
    /// Batches sent but not yet merged, in sequence order.
    batches: VecDeque<Vec<(u32, u32)>>,
    /// Records currently buffered in this lane.
    buffered: usize,
    /// Batches sent so far (the next sequence number to assign).
    sent: u64,
    /// No further batches will arrive.
    finished: bool,
}

struct State {
    lanes: Vec<Lane>,
    /// Per-lane record capacity ([`IngestQueue::bounded`]).
    capacity: usize,
    /// Producer whose next batch the merge emits ([`module docs`](self)).
    turn: usize,
    /// The consumer is gone; further sends would wait forever.
    closed: bool,
}

struct Shared {
    /// The queue's only mutex; both condvars reacquire it on wake, so no
    /// nested acquisition is possible (`DESIGN.md §9`, rule `lock-order`).
    state: Mutex<State>, // lock-order: state
    /// Signalled when a batch arrives or a producer finishes.
    ready: Condvar, // lock-order: ready
    /// Signalled when the consumer drains a lane (or goes away).
    space: Condvar, // lock-order: space
}

impl Shared {
    /// Locks the state, tolerating poison: the queue's invariants hold at
    /// every await point, and the `Drop` impls must be able to finish
    /// their lane / close the queue even while another thread unwinds.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Error returned by [`IngestProducer::send`] once the consumer is gone:
/// with no merge left to drain the lane, the send would otherwise block
/// forever. In [`serve`] this surfaces as the connection's wire error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueClosed;

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ingest consumer dropped mid-stream")
    }
}

impl std::error::Error for QueueClosed {}

/// A bounded multi-producer ingestion queue with the deterministic
/// `(sequence, producer)` merge described in the [module docs](self).
///
/// ```
/// use cat_engine::ingest::IngestQueue;
///
/// let (mut producers, mut consumer) = IngestQueue::bounded(2, 1024);
/// let p1 = producers.pop().unwrap(); // producer 1
/// let p0 = producers.pop().unwrap(); // producer 0
/// // Arrival order is 1-before-0, but the merge is by (seq, producer):
/// p1.send(vec![(1, 10)]).unwrap();
/// p1.send(vec![(1, 11)]).unwrap();
/// p0.send(vec![(0, 20)]).unwrap();
/// drop(p0); // finish
/// drop(p1);
/// assert_eq!(consumer.next_batch(), Some(vec![(0, 20)])); // seq 0, producer 0
/// assert_eq!(consumer.next_batch(), Some(vec![(1, 10)])); // seq 0, producer 1
/// assert_eq!(consumer.next_batch(), Some(vec![(1, 11)])); // seq 1, producer 1
/// assert_eq!(consumer.next_batch(), None);
/// ```
pub struct IngestQueue;

impl IngestQueue {
    /// Builds a queue for `producers` producer lanes, each bounded at
    /// `capacity` buffered records, returning the producer handles (index
    /// = producer id = merge tie-break order) and the single consumer.
    ///
    /// # Panics
    ///
    /// Panics if `producers` or `capacity` is zero.
    pub fn bounded(producers: usize, capacity: usize) -> (Vec<IngestProducer>, IngestConsumer) {
        assert!(producers >= 1, "at least one producer lane");
        assert!(capacity >= 1, "lanes must buffer records");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                lanes: (0..producers)
                    .map(|_| Lane {
                        batches: VecDeque::new(),
                        buffered: 0,
                        sent: 0,
                        finished: false,
                    })
                    .collect(),
                capacity,
                turn: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        let handles = (0..producers)
            .map(|id| IngestProducer {
                shared: Arc::clone(&shared),
                id,
            })
            .collect();
        (handles, IngestConsumer { shared })
    }
}

/// One producer's handle: tags batches with consecutive sequence numbers
/// and blocks when its lane is full. Dropping the handle finishes the
/// lane.
pub struct IngestProducer {
    shared: Arc<Shared>,
    id: usize,
}

impl IngestProducer {
    /// This producer's id — its tie-break rank in the merge.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Enqueues `records` as this producer's next batch and returns the
    /// sequence number it was tagged with (0, 1, 2, …). Blocks while the
    /// lane holds `capacity` or more records (a batch larger than the
    /// whole capacity is admitted alone into an empty lane rather than
    /// deadlocking).
    ///
    /// # Errors
    ///
    /// [`QueueClosed`] if the consumer has been dropped — with no merge
    /// left to drain the lane, the send would otherwise block forever.
    pub fn send(&self, records: Vec<(u32, u32)>) -> Result<u64, QueueClosed> {
        let mut state = self.shared.lock_state();
        while !state.closed
            && state.lanes[self.id].buffered > 0
            && state.lanes[self.id].buffered + records.len() > state.capacity
        {
            state = self
                .shared
                .space
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.closed {
            return Err(QueueClosed);
        }
        let lane = &mut state.lanes[self.id];
        let seq = lane.sent;
        lane.sent += 1;
        lane.buffered += records.len();
        lane.batches.push_back(records);
        self.shared.ready.notify_one();
        Ok(seq)
    }

    /// Marks the lane finished (equivalent to dropping the handle): the
    /// merge skips this producer once its buffered batches drain.
    pub fn finish(self) {}
}

impl Drop for IngestProducer {
    fn drop(&mut self) {
        let mut state = self.shared.lock_state();
        state.lanes[self.id].finished = true;
        self.shared.ready.notify_one();
    }
}

/// The consuming end: emits batches in the deterministic merge order.
pub struct IngestConsumer {
    shared: Arc<Shared>,
}

impl IngestConsumer {
    /// Blocks until the next batch in `(sequence, producer)` order is
    /// available and returns it; `None` once every producer has finished
    /// and drained. Waits for a lagging producer rather than reordering
    /// around it — that wait *is* the determinism.
    pub fn next_batch(&mut self) -> Option<Vec<(u32, u32)>> {
        let mut state = self.shared.lock_state();
        loop {
            let lanes = state.lanes.len();
            let mut skipped = 0;
            while skipped < lanes {
                let turn = state.turn;
                let lane = &mut state.lanes[turn];
                if let Some(batch) = lane.batches.pop_front() {
                    lane.buffered -= batch.len();
                    state.turn = (turn + 1) % lanes;
                    self.shared.space.notify_all();
                    return Some(batch);
                }
                if !lane.finished {
                    break; // must wait for this lane — no reordering
                }
                state.turn = (turn + 1) % lanes;
                skipped += 1;
            }
            if skipped == lanes {
                return None; // every lane finished and empty
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for IngestConsumer {
    fn drop(&mut self) {
        let mut state = self.shared.lock_state();
        state.closed = true;
        self.shared.space.notify_all();
    }
}

/// Deals a trace into per-producer batch lists whose `(seq, producer)`
/// merge reconstructs `trace` exactly, for **any** producer count:
/// contiguous chunk `k` of `chunk` records becomes producer `k % producers`'s
/// next batch.
///
/// ```
/// let trace: Vec<(u32, u32)> = (0..10).map(|i| (i, i)).collect();
/// for producers in 1..=4 {
///     let per_producer = cat_engine::ingest::deal(&trace, producers, 3);
///     let mut merged = Vec::new();
///     let rounds = per_producer.iter().map(Vec::len).max().unwrap();
///     for seq in 0..rounds {
///         for lane in &per_producer {
///             if let Some(batch) = lane.get(seq) {
///                 merged.extend_from_slice(batch);
///             }
///         }
///     }
///     assert_eq!(merged, trace); // the merge inverts the deal
/// }
/// ```
///
/// # Panics
///
/// Panics if `producers` or `chunk` is zero.
pub fn deal(trace: &[(u32, u32)], producers: usize, chunk: usize) -> Vec<Vec<&[(u32, u32)]>> {
    assert!(producers >= 1, "at least one producer");
    assert!(chunk >= 1, "chunks must contain records");
    let mut out: Vec<Vec<&[(u32, u32)]>> = (0..producers).map(|_| Vec::new()).collect();
    for (k, part) in trace.chunks(chunk).enumerate() {
        out[k % producers].push(part);
    }
    out
}

/// Options for [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Connections to accept; ingestion ends when all of them finish.
    pub producers: usize,
    /// Per-connection ingestion-queue bound, in records (the backpressure
    /// threshold — see the [module docs](self)).
    pub queue_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            producers: 1,
            queue_capacity: 1 << 16,
        }
    }
}

/// What one [`serve`] call did.
#[derive(Clone, Copy, Debug)]
pub struct ServeReport {
    /// Aggregate outcome of everything ingested this call.
    pub outcome: BatchOutcome,
    /// The post-ingestion snapshot (also what stats requesters were sent).
    pub snapshot: StatsSnapshot,
    /// Connections that requested (and were sent) the snapshot.
    pub stats_served: usize,
}

/// Serves one ingestion session over TCP: accepts
/// [`producers`](ServeOptions::producers) connections, handshakes each
/// ([`wire`] hello exchange), then streams their record frames through the
/// deterministic [`IngestQueue`] merge into `system` until every
/// connection sends [`Frame::Finish`]. Connections that sent
/// [`Frame::StatsRequest`] receive a [`StatsSnapshot`] once ingestion
/// completes. This is the loop behind the `catd` example, reused verbatim
/// by the loopback differential tests.
///
/// Record banks *and rows* are validated against the system geometry
/// **at the connection** — a malformed client gets its connection errored
/// instead of panicking the drain thread.
///
/// Backpressure: each connection's reader thread blocks once its queue
/// lane is full, which stalls the socket via TCP flow control.
///
/// ```no_run
/// use std::net::TcpListener;
/// use cat_core::SchemeSpec;
/// use cat_engine::ingest::{serve, ServeOptions};
/// use cat_engine::{MemGeometry, MemorySystem};
///
/// let geometry = MemGeometry {
///     channels: 2,
///     ranks_per_channel: 1,
///     banks_per_rank: 8,
///     rows_per_bank: 4096,
///     lines_per_row: 16,
///     line_bytes: 64,
/// };
/// let spec: SchemeSpec = "sca:64:4096".parse().unwrap();
/// let mut system = MemorySystem::new(&geometry, spec).with_epoch_length(50_000);
/// let listener = TcpListener::bind("127.0.0.1:0").unwrap();
/// let report = serve(&listener, &mut system, &ServeOptions { producers: 2, ..Default::default() }).unwrap();
/// println!("ingested {} accesses", report.outcome.accesses);
/// ```
///
/// # Errors
///
/// Returns the first accept/handshake error, or the first connection's
/// protocol error (out-of-order sequence number, out-of-range bank or
/// row, malformed frame) after the drain completes. Ingested records are
/// already reflected in `system` either way.
pub fn serve(
    listener: &TcpListener,
    system: &mut MemorySystem,
    options: &ServeOptions,
) -> io::Result<ServeReport> {
    assert!(options.producers >= 1, "serve needs at least one producer");
    let hello = ServerHello {
        geometry: *system.geometry(),
        spec: system.spec().to_string(),
        epoch_len: system.epoch_length(),
    };
    // Phase 1: accept and handshake every connection before spawning any
    // reader, so a failed handshake aborts cleanly with no thread blocked
    // on a queue nobody will drain. Each client *claims* its producer id
    // (merge tie-break rank) in its hello — lane assignment must follow
    // the client-side deal, not the racy TCP accept order — and a
    // session's ids must form a permutation of `0..producers`.
    let mut connections: Vec<Option<TcpStream>> = (0..options.producers).map(|_| None).collect();
    for _ in 0..options.producers {
        let (mut stream, peer) = listener.accept()?;
        let id = wire::read_client_hello(&mut stream)? as usize;
        let slot = connections.get_mut(id).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{peer} claimed producer id {id}, session has {} producers",
                    options.producers
                ),
            )
        })?;
        if slot.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{peer} claimed producer id {id} twice"),
            ));
        }
        wire::write_server_hello(&mut stream, &hello)?;
        *slot = Some(stream);
    }

    // Phase 2: one reader thread per connection, feeding its queue lane.
    let (producers, mut consumer) = IngestQueue::bounded(options.producers, options.queue_capacity);
    let geometry = *system.geometry();
    let mut readers: Vec<JoinHandle<io::Result<(TcpStream, bool)>>> =
        Vec::with_capacity(options.producers);
    for (stream, producer) in connections.into_iter().zip(producers) {
        // Infallible: phase 1 accepted exactly `producers` connections whose
        // ids form a permutation of `0..producers`, so every slot is filled.
        // cat-lint: allow(panic-path) -- unreachable by the permutation check above, not peer-reachable
        let stream = stream.expect("every slot filled by the permutation check");
        // A failed spawn (resource exhaustion) aborts the session as an
        // error; already-spawned readers see the queue close when `consumer`
        // drops below and error out of their sockets.
        readers.push(
            std::thread::Builder::new()
                .name(format!("catd-reader-{}", producer.id()))
                .spawn(move || read_connection(stream, producer, geometry))?,
        );
    }

    // Phase 3: drain the deterministic merge into the system.
    let outcome = system.ingest(&mut consumer);

    // Phase 4: join the readers and answer the stats requesters.
    let snapshot = StatsSnapshot {
        accesses: system.accesses(),
        epochs: system.epochs(),
        stats: system.stats(),
    };
    let mut stats_served = 0;
    let mut first_error = None;
    for reader in readers {
        match reader.join() {
            Ok(Ok((mut stream, wants_stats))) => {
                if wants_stats {
                    let sent =
                        wire::write_stats(&mut stream, &snapshot).and_then(|()| stream.flush());
                    match sent {
                        Ok(()) => stats_served += 1,
                        Err(e) => first_error = first_error.or(Some(e)),
                    }
                }
            }
            Ok(Err(e)) => first_error = first_error.or(Some(e)),
            // A panicking reader is a bug, but it must not take the serve
            // loop (and every other connection's stats reply) down with it.
            Err(_panic) => {
                first_error = first_error.or(Some(io::Error::other("ingest reader panicked")));
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(ServeReport {
            outcome,
            snapshot,
            stats_served,
        }),
    }
}

/// One connection's reader loop: frames → sequence check → bank/row
/// validation → queue lane. Returns the stream (for the stats reply) and
/// whether the client requested stats. Dropping `producer` on any exit
/// finishes the lane, so the merge never waits on a dead connection.
fn read_connection(
    stream: TcpStream,
    producer: IngestProducer,
    geometry: MemGeometry,
) -> io::Result<(TcpStream, bool)> {
    let peer = producer.id();
    let total_banks = geometry.total_banks();
    let rows = geometry.rows_per_bank;
    let mut reader = BufReader::new(stream);
    let mut expected_seq = 0u64;
    let mut wants_stats = false;
    loop {
        match wire::read_frame(&mut reader)? {
            Frame::Records { seq, records } => {
                if seq != expected_seq {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("producer {peer}: sequence {seq}, expected {expected_seq}"),
                    ));
                }
                expected_seq += 1;
                // Both coordinates are checked here, at the connection:
                // the schemes downstream assert on out-of-range rows
                // (e.g. the counter-cache bounds check), and a panic on
                // the shared drain thread would take the whole session
                // down instead of just this socket.
                if let Some(&(bank, row)) = records
                    .iter()
                    .find(|&&(bank, row)| bank >= total_banks || row >= rows)
                {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "producer {peer}: record (bank {bank}, row {row}) out of range \
                             for a {total_banks}-bank × {rows}-row system"
                        ),
                    ));
                }
                producer
                    .send(records)
                    .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e))?;
            }
            Frame::StatsRequest => wants_stats = true,
            Frame::Finish => return Ok((reader.into_inner(), wants_stats)),
        }
    }
}

/// A client-side ingestion connection: handshakes on
/// [`connect`](Self::connect), streams record batches with automatic
/// sequence numbering and frame chunking, and can collect the server's
/// final [`StatsSnapshot`]. The `catd_loadgen` example and the loopback
/// differential tests drive [`serve`] through this.
pub struct IngestClient {
    writer: BufWriter<TcpStream>,
    hello: ServerHello,
    next_seq: u64,
}

impl IngestClient {
    /// Connects as producer `producer_id` (the connection's merge
    /// tie-break rank — the index of the [`deal`] lane it will stream)
    /// and performs the hello exchange.
    ///
    /// # Errors
    ///
    /// Connection errors, plus [`io::ErrorKind::InvalidData`] if the
    /// server speaks a different wire version.
    pub fn connect(addr: impl ToSocketAddrs, producer_id: u32) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        wire::write_client_hello(&mut stream, producer_id)?;
        let hello = wire::read_server_hello(&mut stream)?;
        Ok(IngestClient {
            writer: BufWriter::new(stream),
            hello,
            next_seq: 0,
        })
    }

    /// What the server announced in its handshake (geometry, scheme spec,
    /// epoch length) — generate traffic for *this*, not for an assumed
    /// configuration.
    pub fn server_hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Streams `records` as this connection's next batch(es), splitting
    /// slices above [`wire::MAX_RECORDS_PER_FRAME`] into consecutive
    /// frames.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (including a server-side protocol
    /// rejection surfacing as a broken pipe).
    pub fn send(&mut self, records: &[(u32, u32)]) -> io::Result<()> {
        let mut rest = records;
        loop {
            let take = rest.len().min(wire::MAX_RECORDS_PER_FRAME as usize);
            let (part, tail) = rest.split_at(take);
            wire::write_records(&mut self.writer, self.next_seq, part)?;
            self.next_seq += 1;
            if tail.is_empty() {
                return Ok(());
            }
            rest = tail;
        }
    }

    /// Sends [`Frame::Finish`] and closes the connection without asking
    /// for stats.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn finish(mut self) -> io::Result<()> {
        wire::write_frame(&mut self.writer, &Frame::Finish)?;
        self.writer.flush()
    }

    /// Sends [`Frame::StatsRequest`] + [`Frame::Finish`], then blocks for
    /// the server's post-ingestion [`StatsSnapshot`] (which arrives only
    /// after **all** producers of the session finish).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn finish_with_stats(mut self) -> io::Result<StatsSnapshot> {
        wire::write_frame(&mut self.writer, &Frame::StatsRequest)?;
        wire::write_frame(&mut self.writer, &Frame::Finish)?;
        self.writer.flush()?;
        wire::read_stats(self.writer.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(tag: u32, len: usize) -> Vec<(u32, u32)> {
        (0..len as u32).map(|i| (tag, i)).collect()
    }

    #[test]
    fn merge_is_by_seq_then_producer_regardless_of_arrival() {
        let (mut handles, mut consumer) = IngestQueue::bounded(3, 1 << 20);
        let p2 = handles.pop().unwrap();
        let p1 = handles.pop().unwrap();
        let p0 = handles.pop().unwrap();
        // Adversarial arrival order: late producers first, interleaved.
        p2.send(batch(20, 2)).unwrap();
        p1.send(batch(10, 1)).unwrap();
        p1.send(batch(11, 1)).unwrap();
        p0.send(batch(0, 3)).unwrap();
        p2.send(batch(21, 2)).unwrap();
        p0.send(batch(1, 1)).unwrap();
        drop((p0, p1, p2));
        let tags: Vec<u32> = std::iter::from_fn(|| consumer.next_batch())
            .map(|b| b[0].0)
            .collect();
        assert_eq!(tags, [0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn merge_waits_for_the_lagging_producer() {
        let (mut handles, mut consumer) = IngestQueue::bounded(2, 1 << 20);
        let p1 = handles.pop().unwrap();
        let p0 = handles.pop().unwrap();
        p1.send(batch(100, 1)).unwrap();
        // Producer 0 is slow: deliver its batch from another thread after
        // the consumer is already blocked waiting for it.
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            p0.send(batch(50, 1)).unwrap();
            drop(p0);
        });
        drop(p1);
        assert_eq!(consumer.next_batch().unwrap()[0].0, 50, "p0 first");
        assert_eq!(consumer.next_batch().unwrap()[0].0, 100);
        assert_eq!(consumer.next_batch(), None);
        sender.join().unwrap();
    }

    #[test]
    fn finished_producers_are_skipped_permanently() {
        let (mut handles, mut consumer) = IngestQueue::bounded(3, 1 << 20);
        let p2 = handles.pop().unwrap();
        let p1 = handles.pop().unwrap();
        let p0 = handles.pop().unwrap();
        drop(p1); // producer 1 sends nothing at all
        p0.send(batch(0, 1)).unwrap();
        p0.send(batch(1, 1)).unwrap();
        p2.send(batch(2, 1)).unwrap();
        drop((p0, p2));
        let tags: Vec<u32> = std::iter::from_fn(|| consumer.next_batch())
            .map(|b| b[0].0)
            .collect();
        assert_eq!(tags, [0, 2, 1]);
    }

    #[test]
    fn send_applies_per_lane_backpressure() {
        let (mut handles, mut consumer) = IngestQueue::bounded(1, 10);
        let p = handles.pop().unwrap();
        p.send(batch(0, 10)).unwrap(); // lane now at capacity
        let blocked = std::thread::spawn(move || {
            p.send(batch(1, 5)).unwrap(); // must block until the consumer drains
            drop(p);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!blocked.is_finished(), "send must block on a full lane");
        assert_eq!(consumer.next_batch().unwrap().len(), 10);
        blocked.join().unwrap();
        assert_eq!(consumer.next_batch().unwrap().len(), 5);
        assert_eq!(consumer.next_batch(), None);
    }

    #[test]
    fn oversized_batch_is_admitted_into_an_empty_lane() {
        let (mut handles, mut consumer) = IngestQueue::bounded(1, 4);
        let p = handles.pop().unwrap();
        p.send(batch(0, 100)).unwrap(); // larger than the whole capacity: no deadlock
        drop(p);
        assert_eq!(consumer.next_batch().unwrap().len(), 100);
        assert_eq!(consumer.next_batch(), None);
    }

    #[test]
    fn send_after_consumer_drop_errors() {
        let (mut handles, consumer) = IngestQueue::bounded(1, 4);
        let p = handles.pop().unwrap();
        drop(consumer);
        assert_eq!(p.send(batch(0, 1)), Err(QueueClosed));
    }

    #[test]
    fn deal_round_robin_covers_the_trace_for_any_producer_count() {
        let trace: Vec<(u32, u32)> = (0..1000u32).map(|i| (i % 16, i)).collect();
        for producers in [1usize, 2, 3, 4, 7] {
            for chunk in [1usize, 3, 333, 2000] {
                let dealt = deal(&trace, producers, chunk);
                assert_eq!(dealt.len(), producers);
                let rounds = dealt.iter().map(Vec::len).max().unwrap();
                let mut merged: Vec<(u32, u32)> = Vec::new();
                for seq in 0..rounds {
                    for lane in &dealt {
                        if let Some(part) = lane.get(seq) {
                            merged.extend_from_slice(part);
                        }
                    }
                }
                assert_eq!(merged, trace, "{producers} producers, chunk {chunk}");
            }
        }
    }
}
