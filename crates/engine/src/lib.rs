//! # cat-engine — the sharded, statically-dispatched multi-bank engine
//!
//! Every consumer of the mitigation schemes drives the same per-bank state
//! machines: one scheme instance per DRAM bank, an `on_activation` per `ACT`,
//! an `on_epoch_end` at every auto-refresh epoch boundary, and a stats merge
//! at the end. [`BankEngine`] is the single implementation of that loop; the
//! functional simulator, the timed simulator and the CMRPO replay harness all
//! sit on top of it.
//!
//! Schemes are held as [`SchemeInstance`] values (enum static dispatch, no
//! per-activation virtual call) built from a [`SchemeSpec`].
//!
//! ## Determinism contract
//!
//! [`BankEngine::process_sharded`] partitions **banks** (never per-bank
//! order) into contiguous shards and replays each shard's banks on its own
//! thread, bank by bank. Because
//!
//! 1. every scheme instance is per-bank state touched by exactly one shard,
//! 2. each bank replays its own activations in original stream order
//!    (schemes never observe other banks' activations, so the inter-bank
//!    interleaving is immaterial),
//! 3. epoch boundaries are positions in the *global* access stream, applied
//!    to each bank at the same point of its own activation subsequence
//!    regardless of sharding, and
//! 4. PRA draws from a per-bank PRNG seeded from `(base seed, bank index)`,
//!
//! the resulting [`SchemeStats`] — aggregated in bank order — are
//! **bit-identical for every shard count**, including the unsharded
//! [`BankEngine::process`] path. The equivalence is asserted for every
//! [`SchemeSpec`] variant by `tests/equivalence.rs`.
//!
//! ## Batching rationale
//!
//! The engine consumes pre-decoded `(bank, row)` batches instead of single
//! accesses: decoding addresses and driving schemes have very different
//! costs, and batching keeps the scheme-driving inner loop free of iterator
//! and dispatch overhead (and is what makes bank-sharding possible at all —
//! a shard must be able to scan ahead in the stream). Single-access callers
//! (the cycle-based timing simulator) use [`BankEngine::activate`] instead.
//!
//! ```
//! use cat_engine::BankEngine;
//! use cat_core::SchemeSpec;
//!
//! let spec = SchemeSpec::Sca { counters: 64, threshold: 1024 };
//! let mut engine = BankEngine::new(spec, 4, 65_536).with_epoch_length(10_000);
//! let batch: Vec<(u16, u32)> = (0..20_000).map(|i| ((i % 4) as u16, 7)).collect();
//! engine.process(&batch);
//! let report = engine.report();
//! assert_eq!(report.accesses, 20_000);
//! assert_eq!(report.epochs, 2);
//! assert!(report.scheme_stats.refresh_events > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cat_core::{Refreshes, RowId, SchemeInstance, SchemeSpec, SchemeStats};

/// Aggregate outcome of one [`BankEngine::process`] batch, computed by
/// differencing O(banks) stats snapshots around the batch — the
/// per-activation loops carry no accounting at all.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Accesses processed in this batch.
    pub accesses: u64,
    /// Mitigation refresh commands the batch triggered.
    pub refresh_events: u64,
    /// Victim rows covered by those refreshes.
    pub refreshed_rows: u64,
    /// Epoch boundaries crossed during the batch.
    pub epochs: u64,
}

/// Snapshot of an engine's accumulated state, shaped like the reports the
/// simulator layers expose.
#[derive(Clone, Debug, Default)]
pub struct EngineReport {
    /// Accesses processed.
    pub accesses: u64,
    /// Epochs processed.
    pub epochs: u64,
    /// Row activations per bank (counted whether or not a scheme is
    /// attached).
    pub activations_per_bank: Vec<u64>,
    /// Scheme statistics aggregated across banks (in bank order).
    pub scheme_stats: SchemeStats,
    /// Per-bank scheme statistics (empty when the spec is
    /// [`SchemeSpec::None`]).
    pub per_bank_stats: Vec<SchemeStats>,
}

/// A multi-bank mitigation engine: one [`SchemeInstance`] shard per bank,
/// batched activation processing with epoch accounting, and a deterministic
/// bank-sharded multi-threaded runner.
pub struct BankEngine {
    banks: Vec<Option<SchemeInstance>>,
    activations: Vec<u64>,
    accesses: u64,
    epochs: u64,
    /// Accesses per auto-refresh epoch; `None` disables access-count epoch
    /// accounting (the timed simulator fires epochs by cycle count instead).
    epoch_len: Option<u64>,
}

impl BankEngine {
    /// Creates an engine for `banks` banks of `rows_per_bank` rows each,
    /// instantiating `spec` per bank (PRA banks get distinct deterministic
    /// seeds).
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid for the bank geometry.
    pub fn new(spec: SchemeSpec, banks: u32, rows_per_bank: u32) -> Self {
        BankEngine {
            banks: (0..banks)
                .map(|b| spec.build_instance(rows_per_bank, b))
                .collect(),
            activations: vec![0; banks as usize],
            accesses: 0,
            epochs: 0,
            epoch_len: None,
        }
    }

    /// Enables access-count epoch accounting: every `accesses_per_epoch`
    /// processed accesses, every bank receives an `on_epoch_end`.
    ///
    /// # Panics
    ///
    /// Panics if `accesses_per_epoch` is zero.
    pub fn with_epoch_length(mut self, accesses_per_epoch: u64) -> Self {
        assert!(accesses_per_epoch > 0, "epoch must contain accesses");
        self.epoch_len = Some(accesses_per_epoch);
        self
    }

    /// Number of banks (with or without an attached scheme).
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Accesses processed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Epoch boundaries processed so far (batched and manual).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Row activations observed per bank.
    pub fn activations_per_bank(&self) -> &[u64] {
        &self.activations
    }

    /// Drives one activation through bank `bank` and returns the refreshes
    /// the scheme requests. Fires no epoch boundaries — the single-access
    /// callers (the timing simulator) own their epoch clock and call
    /// [`end_epoch`](Self::end_epoch) themselves. The access still counts
    /// toward [`accesses`](Self::accesses), which is also the phase
    /// reference for [`process`](Self::process)'s access-count epochs, so
    /// don't mix `activate` with an epoch-length-configured batched engine.
    #[inline]
    pub fn activate(&mut self, bank: usize, row: u32) -> Refreshes {
        self.activations[bank] += 1;
        self.accesses += 1;
        match &mut self.banks[bank] {
            Some(scheme) => scheme.on_activation(RowId(row)),
            None => Refreshes::none(),
        }
    }

    /// Signals an auto-refresh epoch boundary to every bank.
    pub fn end_epoch(&mut self) {
        self.epochs += 1;
        for s in self.banks.iter_mut().flatten() {
            s.on_epoch_end();
        }
    }

    /// Running totals of (refresh events, refreshed rows) across banks.
    /// Cheap (O(banks)); differencing two snapshots gives a batch's outcome
    /// without putting any accounting in the per-activation loop.
    fn refresh_totals(&self) -> (u64, u64) {
        let mut events = 0u64;
        let mut rows = 0u64;
        for s in self.banks.iter().flatten() {
            let stats = s.stats();
            events += stats.refresh_events;
            rows += stats.refreshed_rows;
        }
        (events, rows)
    }

    /// Processes a batch of `(bank, row)` activations in order, firing epoch
    /// boundaries (if configured) at the right global positions, and returns
    /// the incrementally-aggregated outcome of the batch.
    pub fn process(&mut self, batch: &[(u16, u32)]) -> BatchOutcome {
        let mut out = BatchOutcome {
            accesses: batch.len() as u64,
            ..BatchOutcome::default()
        };
        let (events_before, rows_before) = self.refresh_totals();
        // Countdown to the next boundary instead of a per-access modulo.
        let mut until_epoch = self
            .epoch_len
            .map(|len| len - self.accesses % len)
            .unwrap_or(u64::MAX);
        for &(bank, row) in batch {
            self.activate(bank as usize, row);
            until_epoch -= 1;
            if until_epoch == 0 {
                self.end_epoch();
                out.epochs += 1;
                until_epoch = self.epoch_len.expect("countdown only runs with epochs on");
            }
        }
        let (events, rows) = self.refresh_totals();
        out.refresh_events = events - events_before;
        out.refreshed_rows = rows - rows_before;
        out
    }

    /// Processes a batch like [`process`](Self::process), but partitioned
    /// per bank and replayed bank-by-bank on `shards` scoped threads (each
    /// thread owns a contiguous range of banks). Results are bit-identical
    /// to the sequential path for every shard count (see the crate-level
    /// determinism contract).
    ///
    /// Beyond the thread-level parallelism, the per-bank replay is also the
    /// fastest sequential path: each bank's activations run through one
    /// monomorphic [`SchemeInstance::run`] loop (no per-access dispatch)
    /// with that bank's counter state hot in cache.
    ///
    /// `shards` is clamped to `1..=bank_count`.
    pub fn process_sharded(&mut self, batch: &[(u16, u32)], shards: usize) -> BatchOutcome {
        // Work in sub-batches small enough that the partition buffer stays
        // cache-resident between the scatter and the replay — for large
        // batches this roughly halves the memory traffic of the sharded
        // path. Epoch state composes across sub-batches by construction.
        const CHUNK_ACCESSES: usize = 1 << 20;
        let (events_before, rows_before) = self.refresh_totals();
        let nbanks = self.banks.len().max(1);
        let mut scratch = ShardScratch {
            counts: vec![0; nbanks],
            starts: vec![0; nbanks + 1],
            cursor: vec![0; nbanks],
            flat: vec![0; batch.len().min(CHUNK_ACCESSES)],
            epoch_cuts: vec![Vec::new(); nbanks],
        };
        let mut epochs = 0u64;
        for chunk in batch.chunks(CHUNK_ACCESSES) {
            epochs += self.sharded_chunk(chunk, shards, &mut scratch);
        }
        let (events, rows) = self.refresh_totals();
        BatchOutcome {
            accesses: batch.len() as u64,
            epochs,
            refresh_events: events - events_before,
            refreshed_rows: rows - rows_before,
        }
    }

    /// One cache-sized sub-batch of [`process_sharded`](Self::process_sharded);
    /// returns the number of epoch boundaries crossed.
    fn sharded_chunk(
        &mut self,
        batch: &[(u16, u32)],
        shards: usize,
        scratch: &mut ShardScratch,
    ) -> u64 {
        let nbanks = self.banks.len().max(1);
        let shards = shards.clamp(1, nbanks);
        let chunk = nbanks.div_ceil(shards);

        // Partition the stream per bank into one flat counting-sort buffer
        // (exact sizes, no reallocation), recording for every bank at which
        // local positions the global epoch boundaries fall, so each bank
        // replays exactly the subsequence it saw — epochs included — in
        // original order.
        let ShardScratch {
            counts,
            starts,
            cursor,
            flat,
            epoch_cuts,
        } = scratch;
        counts.fill(0);
        for &(bank, _) in batch {
            counts[bank as usize] += 1;
        }
        for b in 0..nbanks {
            starts[b + 1] = starts[b] + counts[b];
        }
        cursor.copy_from_slice(&starts[..nbanks]);
        let flat = &mut flat[..batch.len()];
        for cuts in epoch_cuts.iter_mut() {
            cuts.clear();
        }
        // Scatter in epoch-delimited segments (no per-access epoch check).
        let mut epochs_in_batch = 0u64;
        let mut done = 0usize;
        let mut until_epoch = self
            .epoch_len
            .map(|len| len - self.accesses % len)
            .unwrap_or(u64::MAX);
        while done < batch.len() {
            let remaining = batch.len() - done;
            let seg = remaining.min(usize::try_from(until_epoch).unwrap_or(usize::MAX));
            for &(bank, row) in &batch[done..done + seg] {
                let b = bank as usize;
                flat[cursor[b]] = row;
                cursor[b] += 1;
            }
            done += seg;
            if seg as u64 == until_epoch {
                epochs_in_batch += 1;
                until_epoch = self
                    .epoch_len
                    .expect("boundaries only occur with epochs on");
                for (cuts, (&cur, &start)) in
                    epoch_cuts.iter_mut().zip(cursor.iter().zip(starts.iter()))
                {
                    cuts.push(cur - start);
                }
            } else {
                until_epoch -= seg as u64;
            }
        }
        for (count, &c) in self.activations.iter_mut().zip(counts.iter()) {
            *count += c as u64;
        }

        let bank_rows: Vec<&[u32]> = (0..nbanks)
            .map(|b| &flat[starts[b]..starts[b + 1]])
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .banks
                .chunks_mut(chunk)
                .zip(bank_rows.chunks(chunk).zip(epoch_cuts.chunks(chunk)))
                .map(|(banks, (rows, cuts))| scope.spawn(move || run_shard(banks, rows, cuts)))
                .collect();
            for h in handles {
                h.join().expect("shard panicked");
            }
        });
        self.accesses += batch.len() as u64;
        self.epochs += epochs_in_batch;
        epochs_in_batch
    }

    /// Scheme statistics aggregated across banks, in bank order.
    pub fn stats(&self) -> SchemeStats {
        let mut total = SchemeStats::default();
        for s in self.banks.iter().flatten() {
            total.merge(s.stats());
        }
        total
    }

    /// Per-bank scheme statistics (banks without a scheme are skipped, so
    /// this is empty for [`SchemeSpec::None`]).
    pub fn per_bank_stats(&self) -> Vec<SchemeStats> {
        self.banks.iter().flatten().map(|s| *s.stats()).collect()
    }

    /// The attached scheme instances (banks without a scheme are skipped).
    pub fn schemes(&self) -> impl Iterator<Item = &SchemeInstance> {
        self.banks.iter().flatten()
    }

    /// Snapshot of everything the simulator layers report.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            accesses: self.accesses,
            epochs: self.epochs,
            activations_per_bank: self.activations.clone(),
            scheme_stats: self.stats(),
            per_bank_stats: self.per_bank_stats(),
        }
    }
}

/// Reusable partition buffers for [`BankEngine::process_sharded`] (one
/// allocation per call, not per cache-sized sub-batch).
struct ShardScratch {
    counts: Vec<usize>,
    starts: Vec<usize>,
    cursor: Vec<usize>,
    flat: Vec<u32>,
    epoch_cuts: Vec<Vec<usize>>,
}

/// Replays one shard's banks, bank by bank: each bank's whole activation
/// subsequence runs through one monomorphic [`SchemeInstance::run`] loop,
/// with that bank's epoch ends fired at the recorded cut positions.
///
/// No per-activation accounting happens here — the schemes track their own
/// [`SchemeStats`], and the caller diffs aggregate snapshots. Keeping the
/// sink empty lets the compiler drop the `Refreshes` return path from the
/// inlined loops entirely.
fn run_shard(banks: &mut [Option<SchemeInstance>], rows: &[&[u32]], epoch_cuts: &[Vec<usize>]) {
    for (scheme, (bank_rows, cuts)) in banks.iter_mut().zip(rows.iter().zip(epoch_cuts)) {
        let Some(scheme) = scheme else { continue };
        let mut next = 0usize;
        for &cut in cuts {
            scheme.run(&bank_rows[next..cut], |_| {});
            next = cut;
            scheme.on_epoch_end();
        }
        scheme.run(&bank_rows[next..], |_| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64, banks: u16) -> Vec<(u16, u32)> {
        // Deterministic hot/cold mix across all banks.
        (0..n)
            .map(|i| {
                let bank = (i % u64::from(banks)) as u16;
                let row = if i % 3 == 0 {
                    99
                } else {
                    (i.wrapping_mul(2_654_435_761) % 4096) as u32
                };
                (bank, row)
            })
            .collect()
    }

    #[test]
    fn epoch_accounting_fires_at_global_positions() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 1 << 20,
        };
        let mut engine = BankEngine::new(spec, 4, 4096).with_epoch_length(1_000);
        let out = engine.process(&batch(2_500, 4));
        assert_eq!(out.epochs, 2);
        assert_eq!(engine.epochs(), 2);
        // The boundary state carries across process calls.
        let out = engine.process(&batch(500, 4));
        assert_eq!(out.epochs, 1);
        assert_eq!(engine.accesses(), 3_000);
    }

    #[test]
    fn none_spec_counts_activations_only() {
        let mut engine = BankEngine::new(SchemeSpec::None, 4, 4096).with_epoch_length(100);
        engine.process(&batch(400, 4));
        assert_eq!(engine.activations_per_bank(), &[100, 100, 100, 100]);
        assert!(engine.per_bank_stats().is_empty());
        assert_eq!(engine.stats(), SchemeStats::default());
        assert_eq!(engine.epochs(), 4);
    }

    #[test]
    fn batch_outcome_matches_scheme_stats_delta() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let mut engine = BankEngine::new(spec, 4, 4096);
        let out = engine.process(&batch(10_000, 4));
        let stats = engine.stats();
        assert_eq!(out.refresh_events, stats.refresh_events);
        assert_eq!(out.refreshed_rows, stats.refreshed_rows);
        assert!(out.refresh_events > 0);
    }

    #[test]
    fn sharded_equals_sequential_here_too() {
        // The exhaustive per-spec sweep lives in tests/equivalence.rs; this
        // is the quick in-crate smoke check.
        let spec = SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 256,
        };
        let trace = batch(50_000, 8);
        let mut seq = BankEngine::new(spec, 8, 4096).with_epoch_length(7_000);
        seq.process(&trace);
        for shards in [1, 2, 4, 8, 64] {
            let mut sharded = BankEngine::new(spec, 8, 4096).with_epoch_length(7_000);
            sharded.process_sharded(&trace, shards);
            assert_eq!(sharded.stats(), seq.stats(), "{shards} shards");
            assert_eq!(sharded.per_bank_stats(), seq.per_bank_stats());
            assert_eq!(sharded.activations_per_bank(), seq.activations_per_bank());
            assert_eq!(sharded.epochs(), seq.epochs());
            assert_eq!(sharded.accesses(), seq.accesses());
        }
        assert!(seq.stats().refresh_events > 0);
    }

    #[test]
    fn activate_drives_single_accesses() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 4,
        };
        let mut engine = BankEngine::new(spec, 2, 4096);
        let mut rows = 0u64;
        for _ in 0..16 {
            rows += engine.activate(1, 123).total_rows();
        }
        engine.end_epoch();
        assert!(rows > 0, "threshold 4 must fire within 16 activations");
        assert_eq!(engine.activations_per_bank(), &[0, 16]);
        assert_eq!(engine.epochs(), 1);
        let report = engine.report();
        assert_eq!(report.accesses, 16);
        assert_eq!(report.per_bank_stats.len(), 2);
    }

    #[test]
    #[should_panic(expected = "epoch must contain accesses")]
    fn zero_epoch_length_rejected() {
        let _ = BankEngine::new(SchemeSpec::None, 1, 4096).with_epoch_length(0);
    }
}
