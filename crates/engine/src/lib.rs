//! # cat-engine — the sharded, statically-dispatched multi-bank engine
//!
//! Every consumer of the mitigation schemes drives the same per-bank state
//! machines: one scheme instance per DRAM bank, an `on_activation` per `ACT`,
//! an `on_epoch_end` at every auto-refresh epoch boundary, and a stats merge
//! at the end. [`BankEngine`] is the single implementation of that loop; the
//! functional simulator, the timed simulator and the CMRPO replay harness all
//! sit on top of it. [`MemorySystem`] adds the system-level front-end —
//! physical-address decode ([`AddressMapping`]) routing into per-channel
//! `BankEngine`s, plus streaming `push(addr)` ingestion — so no consumer
//! hand-rolls channel/rank/bank math or its own batching buffer.
//!
//! Schemes are held as [`SchemeInstance`] values (enum static dispatch, no
//! per-activation virtual call) built from a [`SchemeSpec`].
//!
//! ## The three execution paths
//!
//! Every batch reaches the banks through one of three paths, all
//! bit-identical by the determinism contract below:
//!
//! * **flat** — [`BankEngine::process`]: one engine over all banks,
//!   sequential in the calling thread. The reference semantics.
//! * **routed** — [`MemorySystem::process`] with one shard (the default):
//!   the batch is scattered once into per-channel sub-batches, the epoch
//!   boundary positions are recorded per channel as *cut lists*, and each
//!   channel engine replays its whole sub-batch in one
//!   [`BankEngine::process_with_cuts`] call — banks are visited once per
//!   batch, never once per epoch segment.
//! * **pooled** — [`BankEngine::process_sharded`] or
//!   [`MemorySystem::with_shards`]: banks are partitioned into contiguous
//!   shards and replayed bank-by-bank on a persistent worker pool. At
//!   system scope the pool is **shared across channels** (shards span the
//!   global bank range), so independent channels overlap on the same
//!   worker threads; the banks are loaned to the pool once per batch and
//!   the workers fire the epoch cuts themselves.
//!
//! Single-access callers with their own epoch clock (the cycle-based
//! timing simulator) use [`BankEngine::activate`] /
//! [`MemorySystem::activate_global`] plus `end_epoch` instead; streaming
//! callers stage accesses through [`MemorySystem::push`] and get the
//! routed/pooled path on every flush. Remote producers stream
//! [`wire`]-framed record batches over a socket into the [`ingest`]
//! layer's deterministic multi-producer merge (the `catd` server), which
//! feeds the same staging buffer — producer count and arrival
//! interleaving are as unobservable as the shard count (`DESIGN.md §8`).
//!
//! ## Determinism contract
//!
//! Spelled out with the invariants in `DESIGN.md §7`; the short form:
//!
//! [`BankEngine::process_sharded`] partitions **banks** (never per-bank
//! order) into contiguous shards and replays each shard's banks on its own
//! long-lived worker thread, bank by bank. Because
//!
//! 1. every scheme instance is per-bank state touched by exactly one shard,
//! 2. each bank replays its own activations in original stream order
//!    (schemes never observe other banks' activations, so the inter-bank
//!    interleaving is immaterial),
//! 3. epoch boundaries are positions in the *global* access stream, applied
//!    to each bank at the same point of its own activation subsequence
//!    regardless of sharding, and
//! 4. PRA draws from a per-bank PRNG seeded from `(base seed, bank index)`,
//!    where the bank index is the engine's
//!    [`bank base`](BankEngine::with_bank_base) plus the local index — so a
//!    bank keeps its seed no matter which channel engine it lands in,
//!
//! the resulting [`SchemeStats`] — aggregated in bank order — are
//! **bit-identical for every shard count**, including the unsharded
//! [`BankEngine::process`] path and the [`MemorySystem`] per-channel
//! routing. The equivalence is asserted for every [`SchemeSpec`] variant by
//! `tests/equivalence.rs`.
//!
//! ## Batching rationale
//!
//! The engine consumes pre-decoded `(bank, row)` batches instead of single
//! accesses: decoding addresses and driving schemes have very different
//! costs, and batching keeps the scheme-driving inner loop free of iterator
//! and dispatch overhead (and is what makes bank-sharding possible at all —
//! a shard must be able to scan ahead in the stream). Single-access callers
//! (the cycle-based timing simulator) use [`BankEngine::activate`] instead.
//! Bank ids are full `u32`s: the decode front-end never narrows them, so
//! geometries beyond 65 536 banks route correctly.
//!
//! ## Worker pool
//!
//! Sharded processing runs on a persistent pool of shard threads (see
//! [`pool`](self)) spawned once per engine lifetime and fed sub-batches
//! over channels — the first implementation spawned scoped threads per
//! cache-sized sub-batch, which cost enough that 4 shards lost to 2 on
//! multi-million-access replays.
//!
//! ```
//! use cat_engine::BankEngine;
//! use cat_core::SchemeSpec;
//!
//! let spec = SchemeSpec::Sca { counters: 64, threshold: 1024 };
//! let mut engine = BankEngine::new(spec, 4, 65_536).with_epoch_length(10_000);
//! let batch: Vec<(u32, u32)> = (0..20_000).map(|i| (i % 4, 7)).collect();
//! engine.process(&batch);
//! let report = engine.report();
//! assert_eq!(report.accesses, 20_000);
//! assert_eq!(report.epochs, 2);
//! assert!(report.scheme_stats.refresh_events > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
pub mod checkpoint;
pub mod ingest;
mod pool;
pub mod router;
mod sparse;
mod system;
pub mod wire;

pub use address::{
    AddressMapping, GeometryError, GeometrySlice, Location, MemGeometry, Partition, PartitionError,
    SliceError,
};
pub use system::MemorySystem;

use cat_core::{Refreshes, RowId, SchemeInstance, SchemeSpec, SchemeStats, SparseSlab};
use pool::ShardPool;
use sparse::SparseBanks;

/// Computes the epoch **cut positions** inside a batch of `len` accesses:
/// a cut at position `c` means "after the batch's first `c` accesses, a
/// global epoch boundary falls" (`on_epoch_end` fires there). Positions are
/// strictly increasing, in `1..=len`; `cuts` is cleared first.
///
/// This is *the* epoch-phase arithmetic — the flat batched path, the
/// sharded scatter and the [`MemorySystem`] router all derive their cut
/// lists here, so the paths cannot drift apart (their bit-identical
/// equivalence depends on agreeing about boundary positions, see
/// `DESIGN.md §7`).
pub(crate) fn epoch_cuts(
    len: usize,
    accesses_so_far: u64,
    epoch_len: Option<u64>,
    cuts: &mut Vec<usize>,
) {
    cuts.clear();
    let Some(l) = epoch_len else { return };
    let mut next = l - accesses_so_far % l;
    while next <= len as u64 {
        cuts.push(next as usize); // next <= len, so the cast is exact
        next += l;
    }
}

/// Walks `len` accesses as segments delimited by `cuts` (positions as in
/// [`epoch_cuts`], but duplicates and `0` are allowed — they denote empty
/// segments whose boundary still fires). `f` is called in order with each
/// segment's index range and whether it ends on a boundary.
pub(crate) fn for_each_segment(
    len: usize,
    cuts: &[usize],
    mut f: impl FnMut(std::ops::Range<usize>, bool),
) {
    let mut prev = 0usize;
    for &cut in cuts {
        f(prev..cut, true);
        prev = cut;
    }
    if prev < len {
        f(prev..len, false);
    }
}

/// Panics unless `cuts` is a valid cut list for a batch of `len` accesses:
/// nondecreasing positions, none beyond `len`.
pub(crate) fn validate_cuts(cuts: &[usize], len: usize) {
    let mut prev = 0usize;
    for &cut in cuts {
        assert!(
            cut >= prev,
            "epoch cuts must be nondecreasing: {cut} after {prev}"
        );
        assert!(cut <= len, "epoch cut {cut} beyond batch of {len} accesses");
        prev = cut;
    }
}

/// Aggregate outcome of one [`BankEngine::process`] batch, computed by
/// differencing O(banks) stats snapshots around the batch — the
/// per-activation loops carry no accounting at all.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Accesses processed in this batch.
    pub accesses: u64,
    /// Mitigation refresh commands the batch triggered.
    pub refresh_events: u64,
    /// Victim rows covered by those refreshes.
    pub refreshed_rows: u64,
    /// Epoch boundaries crossed during the batch.
    pub epochs: u64,
}

impl BatchOutcome {
    /// Accumulates another batch's outcome into this one (every field is a
    /// count, so aggregation is plain addition). The streaming front-end
    /// uses this to report all automatic flushes in one
    /// [`MemorySystem::flush`] outcome.
    pub fn merge(&mut self, other: &BatchOutcome) {
        self.accesses += other.accesses;
        self.refresh_events += other.refresh_events;
        self.refreshed_rows += other.refreshed_rows;
        self.epochs += other.epochs;
    }
}

/// Resident-memory snapshot of an engine's sparse bank storage
/// (`DESIGN.md §10`): how many banks exist, how many were ever touched,
/// and what the touched ones cost in bytes. Cold banks cost nothing, so
/// `materialized_banks / banks` *is* the workload's bank-sparsity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineFootprint {
    /// Banks the engine spans (with or without an attached scheme).
    pub banks: usize,
    /// Banks whose scheme instance has been built (touched at least once).
    pub materialized_banks: usize,
    /// Resident bytes of materialized scheme/tree state — the sum of
    /// per-bank instance footprints. Purely per-bank, so it is invariant
    /// under the engine split and sums exactly across the slices of a
    /// partition (`DESIGN.md §12`); this is the footprint field a fleet
    /// merge reports bit-identically to a single host.
    pub scheme_bytes: usize,
    /// Resident bytes of everything execution-strategy-dependent: the
    /// sparse containers' own block storage, per-bank activation
    /// counters, and the pooled path's scatter scratch. Depends on the
    /// engine split and shard count, so it stays out of the wire
    /// snapshot.
    pub accounting_bytes: usize,
}

impl EngineFootprint {
    /// Total resident bytes of live engine state.
    pub fn resident_bytes(&self) -> usize {
        self.scheme_bytes + self.accounting_bytes
    }

    /// Accumulates another engine's footprint (the [`MemorySystem`] sums
    /// its per-channel engines this way).
    pub fn merge(&mut self, other: &EngineFootprint) {
        self.banks += other.banks;
        self.materialized_banks += other.materialized_banks;
        self.scheme_bytes += other.scheme_bytes;
        self.accounting_bytes += other.accounting_bytes;
    }
}

/// Snapshot of an engine's accumulated state, shaped like the reports the
/// simulator layers expose.
#[derive(Clone, Debug, Default)]
pub struct EngineReport {
    /// Accesses processed.
    pub accesses: u64,
    /// Epochs processed.
    pub epochs: u64,
    /// Row activations per bank (counted whether or not a scheme is
    /// attached).
    pub activations_per_bank: Vec<u64>,
    /// Scheme statistics aggregated across banks (in bank order).
    pub scheme_stats: SchemeStats,
    /// Per-bank scheme statistics (empty when the spec is
    /// [`SchemeSpec::None`]).
    pub per_bank_stats: Vec<SchemeStats>,
    /// Resident-memory snapshot of the sparse bank storage.
    pub footprint: EngineFootprint,
}

impl EngineReport {
    /// Merges the report of the **next** slice (ascending slice-id order,
    /// `DESIGN.md §12`) into this one: counters add, per-bank vectors
    /// concatenate (the slice order *is* the global bank order), and
    /// epochs take the maximum — every slice observes every system-wide
    /// boundary, so well-formed slice reports agree on the epoch count
    /// and `max` keeps the merge associative with `Default` as identity.
    pub fn merge(&mut self, other: &EngineReport) {
        self.accesses += other.accesses;
        self.epochs = self.epochs.max(other.epochs);
        self.activations_per_bank
            .extend_from_slice(&other.activations_per_bank);
        self.scheme_stats.merge(&other.scheme_stats);
        self.per_bank_stats.extend_from_slice(&other.per_bank_stats);
        self.footprint.merge(&other.footprint);
    }
}

/// A multi-bank mitigation engine: one [`SchemeInstance`] per bank,
/// batched activation processing with epoch accounting, and a deterministic
/// bank-sharded runner on a persistent worker pool.
///
/// Bank storage is **sparse and lazily materialized** (`DESIGN.md §10`): a
/// bank's scheme instance is built from the spec on the bank's first
/// activation, so construction is O(1) in the bank count and an engine over
/// millions of banks only pays for the banks the workload touches.
pub struct BankEngine {
    pub(crate) banks: SparseBanks,
    /// Per-bank row-activation counters, sparse like the scheme storage
    /// (an absent entry is a bank that was never activated).
    pub(crate) activations: SparseSlab<u64>,
    /// Dense scatter scratch loaned to the pooled path's counting sort,
    /// allocated lazily on the first sharded batch; the flat batch path
    /// reuses it as its per-segment bank counts.
    pub(crate) act_scratch: Vec<u64>,
    /// Counting-sort cursors for the flat batch path's per-segment
    /// scatter, allocated lazily on the first flat batch. Scratch like
    /// `act_scratch`: dense by design, but written only at touched banks.
    pub(crate) seg_cursor: Vec<u32>,
    /// Banks touched in the current flat segment, in first-touch order —
    /// lets the scatter reset only what it dirtied (O(touched), not
    /// O(banks)).
    pub(crate) touched: Vec<u32>,
    /// Row scatter buffer of the flat batch path (one slot per access of
    /// the current segment).
    pub(crate) row_scratch: Vec<u32>,
    pub(crate) accesses: u64,
    pub(crate) epochs: u64,
    /// Accesses per auto-refresh epoch; `None` disables access-count epoch
    /// accounting (the timed simulator fires epochs by cycle count instead).
    pub(crate) epoch_len: Option<u64>,
    /// Persistent shard workers, spawned lazily on the first sharded batch
    /// and kept for the engine's lifetime (rebuilt only if the shard count
    /// changes).
    pool: Option<ShardPool>,
}

impl BankEngine {
    /// Creates an engine for `banks` banks of `rows_per_bank` rows each.
    /// `spec` is instantiated per bank **on the bank's first activation**
    /// (PRA banks get distinct deterministic seeds from their global bank
    /// index), so construction is O(1) in `banks`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid for the bank geometry.
    pub fn new(spec: SchemeSpec, banks: u32, rows_per_bank: u32) -> Self {
        Self::with_bank_base(spec, banks, rows_per_bank, 0)
    }

    /// Like [`new`](Self::new), but bank `b` is instantiated as bank index
    /// `bank_base + b`. [`MemorySystem`] builds its per-channel engines
    /// with the channel's first global bank as the base, so every bank
    /// keeps the PRA seed it would have in one system-wide engine — that
    /// is what keeps per-channel routing bit-identical to the flat path.
    pub fn with_bank_base(
        spec: SchemeSpec,
        banks: u32,
        rows_per_bank: u32,
        bank_base: u32,
    ) -> Self {
        // Banks materialize lazily, so probe-build one instance up front:
        // an invalid spec/geometry still fails at construction, not at an
        // arbitrary later first touch.
        drop(spec.build_instance(rows_per_bank, bank_base));
        BankEngine {
            banks: SparseBanks::new(spec, banks, rows_per_bank, bank_base),
            activations: SparseSlab::new(banks as usize),
            act_scratch: Vec::new(),
            seg_cursor: Vec::new(),
            touched: Vec::new(),
            row_scratch: Vec::new(),
            accesses: 0,
            epochs: 0,
            epoch_len: None,
            pool: None,
        }
    }

    /// Enables access-count epoch accounting: every `accesses_per_epoch`
    /// processed accesses, every bank receives an `on_epoch_end`.
    ///
    /// # Panics
    ///
    /// Panics if `accesses_per_epoch` is zero.
    pub fn with_epoch_length(mut self, accesses_per_epoch: u64) -> Self {
        assert!(accesses_per_epoch > 0, "epoch must contain accesses");
        self.epoch_len = Some(accesses_per_epoch);
        self
    }

    /// Number of banks (with or without an attached scheme).
    pub fn bank_count(&self) -> usize {
        self.banks.capacity()
    }

    /// Accesses processed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Epoch boundaries processed so far (batched and manual).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Row activations observed per bank, materialized densely (banks that
    /// were never activated report `0`).
    pub fn activations_per_bank(&self) -> Vec<u64> {
        let mut dense = vec![0u64; self.banks.capacity()];
        for (bank, &count) in self.activations.iter() {
            dense[bank] = count;
        }
        dense
    }

    /// Drives one activation through bank `bank` and returns the refreshes
    /// the scheme requests. Fires no epoch boundaries — the single-access
    /// callers (the timing simulator) own their epoch clock and call
    /// [`end_epoch`](Self::end_epoch) themselves.
    ///
    /// # Panics
    ///
    /// Panics if the engine was configured with
    /// [`with_epoch_length`](Self::with_epoch_length): the access would
    /// advance the batched epoch phase without ever firing a boundary,
    /// silently corrupting every later [`process`](Self::process) call.
    /// Single-access and access-count-epoch driving cannot be mixed.
    #[inline]
    pub fn activate(&mut self, bank: usize, row: u32) -> Refreshes {
        assert!(
            self.epoch_len.is_none(),
            "BankEngine::activate cannot be mixed with access-count epoch accounting \
             (with_epoch_length): the access would shift the batched epoch phase. \
             Drive epochs from your own clock via end_epoch() instead."
        );
        self.activate_unchecked(bank, row)
    }

    /// The shared single-activation path; batched callers manage the epoch
    /// phase themselves.
    #[inline]
    fn activate_unchecked(&mut self, bank: usize, row: u32) -> Refreshes {
        *self.activations.get_or_insert_with(bank, u64::default) += 1;
        self.accesses += 1;
        match self.banks.scheme_mut(bank) {
            Some(scheme) => scheme.on_activation(RowId(row)),
            None => Refreshes::none(),
        }
    }

    /// Signals an auto-refresh epoch boundary to every bank — the manual
    /// epoch clock for single-access and cut-list callers.
    ///
    /// # Panics
    ///
    /// Panics if the engine was configured with
    /// [`with_epoch_length`](Self::with_epoch_length): the automatic clock
    /// keeps firing at its own access-count positions regardless, so a
    /// manual boundary would silently interleave two epoch clocks (the
    /// same mixing every other entry point rejects).
    pub fn end_epoch(&mut self) {
        assert!(
            self.epoch_len.is_none(),
            "BankEngine::end_epoch cannot be mixed with access-count epoch accounting \
             (with_epoch_length): the automatic boundaries would keep firing at their \
             own positions alongside the manual one"
        );
        self.fire_epoch();
    }

    /// The unguarded boundary used by the batch paths when the engine's
    /// own access-count clock (or a caller's cut list) fires. Only
    /// materialized banks are visited: an unmaterialized bank is fresh,
    /// and `on_epoch_end` on a fresh instance is a bit-exact no-op
    /// (fresh-idempotence, `DESIGN.md §10`).
    fn fire_epoch(&mut self) {
        self.epochs += 1;
        for (_, s) in self.banks.iter_mut() {
            s.on_epoch_end();
        }
    }

    /// Running totals of (refresh events, refreshed rows) across banks.
    /// Cheap (O(materialized banks)); differencing two snapshots gives a
    /// batch's outcome without putting any accounting in the
    /// per-activation loop.
    pub(crate) fn refresh_totals(&self) -> (u64, u64) {
        let mut events = 0u64;
        let mut rows = 0u64;
        for (_, s) in self.banks.iter() {
            let stats = s.stats();
            events += stats.refresh_events;
            rows += stats.refreshed_rows;
        }
        (events, rows)
    }

    /// Processes a batch of `(bank, row)` activations in order, firing epoch
    /// boundaries (if configured) at the right global positions, and returns
    /// the incrementally-aggregated outcome of the batch.
    ///
    /// ```
    /// use cat_core::SchemeSpec;
    /// use cat_engine::BankEngine;
    ///
    /// let spec = SchemeSpec::Sca { counters: 16, threshold: 64 };
    /// let mut engine = BankEngine::new(spec, 4, 4096).with_epoch_length(600);
    /// let batch: Vec<(u32, u32)> = (0..1_000).map(|i| (i % 4, 7)).collect();
    /// let out = engine.process(&batch);
    /// assert_eq!((out.accesses, out.epochs), (1_000, 1));
    /// assert!(out.refresh_events > 0);
    /// ```
    pub fn process(&mut self, batch: &[(u32, u32)]) -> BatchOutcome {
        let mut cuts = Vec::new();
        epoch_cuts(batch.len(), self.accesses, self.epoch_len, &mut cuts);
        self.run_with_cuts(batch, &cuts)
    }

    /// Processes a batch like [`process`](Self::process), but with the
    /// epoch boundaries dictated by the caller instead of the engine's own
    /// access counter: `cuts[i]` fires `on_epoch_end` on every bank after
    /// the batch's first `cuts[i]` accesses. Positions must be
    /// nondecreasing and at most `batch.len()`; `0` and duplicates are
    /// allowed (boundaries before the first access / back-to-back empty
    /// epochs). This is the entry point [`MemorySystem`] routes each
    /// channel's whole batch through, so a channel's banks are visited once
    /// per batch rather than once per epoch segment (`DESIGN.md §7`).
    ///
    /// ```
    /// use cat_core::SchemeSpec;
    /// use cat_engine::BankEngine;
    ///
    /// let spec = SchemeSpec::Sca { counters: 16, threshold: 64 };
    /// let mut external = BankEngine::new(spec, 4, 4096);
    /// let mut internal = BankEngine::new(spec, 4, 4096).with_epoch_length(600);
    /// let batch: Vec<(u32, u32)> = (0..1_000).map(|i| (i % 4, 7)).collect();
    /// external.process_with_cuts(&batch, &[600]);
    /// internal.process(&batch);
    /// assert_eq!(external.stats(), internal.stats());
    /// assert_eq!(external.epochs(), 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the engine was configured with
    /// [`with_epoch_length`](Self::with_epoch_length) (two epoch clocks
    /// cannot be mixed) or if `cuts` is not a valid cut list.
    pub fn process_with_cuts(&mut self, batch: &[(u32, u32)], cuts: &[usize]) -> BatchOutcome {
        assert!(
            self.epoch_len.is_none(),
            "BankEngine::process_with_cuts cannot be mixed with access-count epoch \
             accounting (with_epoch_length): the engine would fire each boundary twice"
        );
        validate_cuts(cuts, batch.len());
        self.run_with_cuts(batch, cuts)
    }

    /// The shared sequential core of [`process`](Self::process) and
    /// [`process_with_cuts`](Self::process_with_cuts): per segment, a
    /// counting-sort scatter of the accesses by bank, then each touched
    /// bank replays its whole subsequence through one monomorphic
    /// [`SchemeInstance::run`] loop — the same replay shape the shard
    /// workers use, minus the threads. Schemes never observe other banks'
    /// activations (the determinism contract, `DESIGN.md §7`), so the
    /// replay is bit-identical to interleaved per-access dispatch while
    /// paying the bank lookup once per touched bank per segment instead
    /// of twice per access.
    fn run_with_cuts(&mut self, batch: &[(u32, u32)], cuts: &[usize]) -> BatchOutcome {
        let (events_before, rows_before) = self.refresh_totals();
        let nbanks = self.banks.capacity();
        if self.act_scratch.len() < nbanks {
            self.act_scratch.resize(nbanks, 0);
        }
        if self.seg_cursor.len() < nbanks {
            self.seg_cursor.resize(nbanks, 0);
        }
        let mut touched = std::mem::take(&mut self.touched);
        let mut rows_buf = std::mem::take(&mut self.row_scratch);
        for_each_segment(batch.len(), cuts, |range, on_boundary| {
            let seg = &batch[range];
            // Pass 1: per-bank counts, recording each bank at its first
            // touch so the scratch resets in O(touched), not O(banks).
            for &(bank, _) in seg {
                let b = bank as usize;
                if self.act_scratch[b] == 0 {
                    touched.push(bank);
                }
                self.act_scratch[b] += 1;
            }
            // Prefix offsets in first-touch order (replay order across
            // banks is unobservable: every bank sees only its own rows).
            let mut acc = 0u32;
            for &bank in &touched {
                let b = bank as usize;
                self.seg_cursor[b] = acc;
                acc += self.act_scratch[b] as u32;
            }
            // Pass 2: scatter. Every slot in [0..seg.len()) is written
            // exactly once (cursors cover sum(counts)), so stale contents
            // of the recycled buffer are never read and resize only
            // zero-fills genuine growth.
            rows_buf.resize(seg.len(), 0);
            for &(bank, row) in seg {
                let c = &mut self.seg_cursor[bank as usize];
                rows_buf[*c as usize] = row;
                *c += 1;
            }
            // Replay each touched bank's subsequence, fold its count into
            // the sparse activation accounting, and reset its scratch.
            let mut start = 0usize;
            for &bank in &touched {
                let b = bank as usize;
                let count = self.act_scratch[b];
                let end = start + count as usize;
                if let Some(scheme) = self.banks.scheme_mut(b) {
                    scheme.run(&rows_buf[start..end], |_| {});
                }
                *self.activations.get_or_insert_with(b, u64::default) += count;
                self.act_scratch[b] = 0;
                start = end;
            }
            touched.clear();
            if on_boundary {
                self.fire_epoch();
            }
        });
        self.touched = touched;
        self.row_scratch = rows_buf;
        self.accesses += batch.len() as u64;
        let (events, rows) = self.refresh_totals();
        BatchOutcome {
            accesses: batch.len() as u64,
            epochs: cuts.len() as u64,
            refresh_events: events - events_before,
            refreshed_rows: rows - rows_before,
        }
    }

    /// Processes a batch like [`process`](Self::process), but partitioned
    /// per bank and replayed bank-by-bank on `shards` persistent worker
    /// threads (each owns a contiguous range of banks; threads are spawned
    /// once and fed sub-batches over channels). Results are bit-identical
    /// to the sequential path for every shard count (see the crate-level
    /// determinism contract).
    ///
    /// Beyond the thread-level parallelism, the per-bank replay is also the
    /// fastest sequential path: each bank's activations run through one
    /// monomorphic [`SchemeInstance::run`] loop (no per-access dispatch)
    /// with that bank's counter state hot in cache.
    ///
    /// `shards` is clamped to `1..=bank_count`; changing the count between
    /// calls rebuilds the pool (the only time threads respawn).
    ///
    /// ```
    /// use cat_core::SchemeSpec;
    /// use cat_engine::BankEngine;
    ///
    /// let spec = SchemeSpec::Drcat { counters: 64, levels: 11, threshold: 256 };
    /// let batch: Vec<(u32, u32)> = (0..40_000).map(|i| (i % 8, i / 13 % 4096)).collect();
    /// let mut flat = BankEngine::new(spec, 8, 4096).with_epoch_length(9_000);
    /// let mut sharded = BankEngine::new(spec, 8, 4096).with_epoch_length(9_000);
    /// flat.process(&batch);
    /// sharded.process_sharded(&batch, 4);
    /// assert_eq!(sharded.stats(), flat.stats()); // bit-identical, any shard count
    /// ```
    pub fn process_sharded(&mut self, batch: &[(u32, u32)], shards: usize) -> BatchOutcome {
        let mut cuts = Vec::new();
        epoch_cuts(batch.len(), self.accesses, self.epoch_len, &mut cuts);
        self.run_sharded(batch, &cuts, shards)
    }

    /// [`process_sharded`](Self::process_sharded) with caller-dictated
    /// epoch boundaries — the sharded counterpart of
    /// [`process_with_cuts`](Self::process_with_cuts). The banks are loaned
    /// to the worker pool **once for the whole batch**; the workers fire
    /// each bank's `on_epoch_end`s at the recorded positions of its own
    /// subsequence, so small epochs no longer drain the pool pipeline per
    /// segment (`DESIGN.md §7`).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`process_with_cuts`](Self::process_with_cuts).
    pub fn process_sharded_with_cuts(
        &mut self,
        batch: &[(u32, u32)],
        cuts: &[usize],
        shards: usize,
    ) -> BatchOutcome {
        assert!(
            self.epoch_len.is_none(),
            "BankEngine::process_sharded_with_cuts cannot be mixed with access-count \
             epoch accounting (with_epoch_length): the engine would fire each boundary twice"
        );
        validate_cuts(cuts, batch.len());
        self.run_sharded(batch, cuts, shards)
    }

    /// The shared pool-backed core of the sharded entry points: ensures the
    /// pool, loans the banks once, replays the whole batch (the pool chunks
    /// it into cache-sized sub-batches internally), reclaims.
    fn run_sharded(&mut self, batch: &[(u32, u32)], cuts: &[usize], shards: usize) -> BatchOutcome {
        let (events_before, rows_before) = self.refresh_totals();
        let nbanks = self.banks.capacity().max(1);
        let shards = shards.clamp(1, nbanks);
        if self.pool.as_ref().map(ShardPool::shards) != Some(shards) {
            self.pool = Some(ShardPool::new(shards, nbanks));
        }
        let mut pool = self.pool.take().expect("pool just ensured");
        for w in 0..pool.shards() {
            let range = pool.shard_range(w);
            let range =
                range.start.min(self.banks.capacity())..range.end.min(self.banks.capacity());
            pool.loan_shard(w, self.banks.take_range(range));
        }
        if self.act_scratch.len() < nbanks {
            self.act_scratch.resize(nbanks, 0);
        }
        self.act_scratch[..nbanks].fill(0);
        pool.run_batch(batch, cuts, &mut self.act_scratch[..nbanks]);
        for w in 0..pool.shards() {
            let start = pool.shard_range(w).start.min(self.banks.capacity());
            self.banks.absorb(start, pool.reclaim_shard(w));
        }
        self.pool = Some(pool);
        for (bank, &count) in self.act_scratch[..nbanks].iter().enumerate() {
            if count > 0 {
                *self.activations.get_or_insert_with(bank, u64::default) += count;
            }
        }
        self.accesses += batch.len() as u64;
        self.epochs += cuts.len() as u64;
        let (events, rows) = self.refresh_totals();
        BatchOutcome {
            accesses: batch.len() as u64,
            epochs: cuts.len() as u64,
            refresh_events: events - events_before,
            refreshed_rows: rows - rows_before,
        }
    }

    /// Hands the per-bank scheme storage to [`MemorySystem`]'s shared pool
    /// for the duration of one batch (the system-level counterpart of the
    /// loan/reclaim protocol in [`pool`](self)).
    pub(crate) fn banks_mut(&mut self) -> &mut SparseBanks {
        &mut self.banks
    }

    /// Folds the per-bank activation counts and epoch count of one
    /// system-pooled batch into this engine's accounting ([`MemorySystem`]
    /// drives the banks directly through the shared pool, bypassing the
    /// per-engine batch paths).
    pub(crate) fn absorb_pooled_batch(&mut self, counts: &[u64], epochs: u64) {
        debug_assert_eq!(counts.len(), self.banks.capacity());
        let mut total = 0u64;
        for (bank, &count) in counts.iter().enumerate() {
            if count > 0 {
                *self.activations.get_or_insert_with(bank, u64::default) += count;
                total += count;
            }
        }
        self.accesses += total;
        self.epochs += epochs;
    }

    /// Scheme statistics aggregated across banks, in ascending bank order.
    /// Unmaterialized banks contribute nothing (their stats are all-zero
    /// by fresh-idempotence), so only materialized banks are walked.
    pub fn stats(&self) -> SchemeStats {
        let mut total = SchemeStats::default();
        for (_, s) in self.banks.iter() {
            total.merge(s.stats());
        }
        total
    }

    /// Per-bank scheme statistics: one entry per bank in bank order, with
    /// all-zero stats synthesized for banks that were never touched (empty
    /// for [`SchemeSpec::None`], which attaches no schemes at all).
    pub fn per_bank_stats(&self) -> Vec<SchemeStats> {
        if !self.banks.has_scheme() {
            return Vec::new();
        }
        let mut stats = vec![SchemeStats::default(); self.banks.capacity()];
        for (bank, s) in self.banks.iter() {
            stats[bank] = *s.stats();
        }
        stats
    }

    /// The materialized scheme instances, in ascending bank order (banks
    /// never touched have no instance yet and are skipped).
    pub fn schemes(&self) -> impl Iterator<Item = &SchemeInstance> {
        self.banks.iter().map(|(_, s)| s)
    }

    /// Resident-memory snapshot of the engine's sparse bank storage.
    pub fn footprint(&self) -> EngineFootprint {
        EngineFootprint {
            banks: self.banks.capacity(),
            materialized_banks: self.banks.materialized(),
            scheme_bytes: self.banks.scheme_bytes(),
            accounting_bytes: self.banks.container_bytes()
                + self.activations.heap_bytes()
                + self.act_scratch.capacity() * std::mem::size_of::<u64>()
                + self.seg_cursor.capacity() * std::mem::size_of::<u32>()
                + self.touched.capacity() * std::mem::size_of::<u32>()
                + self.row_scratch.capacity() * std::mem::size_of::<u32>(),
        }
    }

    /// Snapshot of everything the simulator layers report.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            accesses: self.accesses,
            epochs: self.epochs,
            activations_per_bank: self.activations_per_bank(),
            scheme_stats: self.stats(),
            per_bank_stats: self.per_bank_stats(),
            footprint: self.footprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64, banks: u32) -> Vec<(u32, u32)> {
        // Deterministic hot/cold mix across all banks.
        (0..n)
            .map(|i| {
                let bank = (i % u64::from(banks)) as u32;
                let row = if i % 3 == 0 {
                    99
                } else {
                    (i.wrapping_mul(2_654_435_761) % 4096) as u32
                };
                (bank, row)
            })
            .collect()
    }

    #[test]
    fn epoch_accounting_fires_at_global_positions() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 1 << 20,
        };
        let mut engine = BankEngine::new(spec, 4, 4096).with_epoch_length(1_000);
        let out = engine.process(&batch(2_500, 4));
        assert_eq!(out.epochs, 2);
        assert_eq!(engine.epochs(), 2);
        // The boundary state carries across process calls.
        let out = engine.process(&batch(500, 4));
        assert_eq!(out.epochs, 1);
        assert_eq!(engine.accesses(), 3_000);
    }

    #[test]
    fn none_spec_counts_activations_only() {
        let mut engine = BankEngine::new(SchemeSpec::None, 4, 4096).with_epoch_length(100);
        engine.process(&batch(400, 4));
        assert_eq!(engine.activations_per_bank(), &[100, 100, 100, 100]);
        assert!(engine.per_bank_stats().is_empty());
        assert_eq!(engine.stats(), SchemeStats::default());
        assert_eq!(engine.epochs(), 4);
    }

    #[test]
    fn batch_outcome_matches_scheme_stats_delta() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let mut engine = BankEngine::new(spec, 4, 4096);
        let out = engine.process(&batch(10_000, 4));
        let stats = engine.stats();
        assert_eq!(out.refresh_events, stats.refresh_events);
        assert_eq!(out.refreshed_rows, stats.refreshed_rows);
        assert!(out.refresh_events > 0);
    }

    #[test]
    fn sharded_equals_sequential_here_too() {
        // The exhaustive per-spec sweep lives in tests/equivalence.rs; this
        // is the quick in-crate smoke check.
        let spec = SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 256,
        };
        let trace = batch(50_000, 8);
        let mut seq = BankEngine::new(spec, 8, 4096).with_epoch_length(7_000);
        seq.process(&trace);
        for shards in [1, 2, 4, 8, 64] {
            let mut sharded = BankEngine::new(spec, 8, 4096).with_epoch_length(7_000);
            sharded.process_sharded(&trace, shards);
            assert_eq!(sharded.stats(), seq.stats(), "{shards} shards");
            assert_eq!(sharded.per_bank_stats(), seq.per_bank_stats());
            assert_eq!(sharded.activations_per_bank(), seq.activations_per_bank());
            assert_eq!(sharded.epochs(), seq.epochs());
            assert_eq!(sharded.accesses(), seq.accesses());
        }
        assert!(seq.stats().refresh_events > 0);
    }

    #[test]
    fn pool_survives_shard_count_changes() {
        // The persistent pool is rebuilt when the shard count changes and
        // keeps producing sequential-identical results either way.
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 128,
        };
        let trace = batch(30_000, 8);
        let mut seq = BankEngine::new(spec, 8, 4096).with_epoch_length(4_000);
        seq.process(&trace);
        let mut pooled = BankEngine::new(spec, 8, 4096).with_epoch_length(4_000);
        for (chunk, shards) in trace.chunks(10_000).zip([2usize, 4, 2]) {
            pooled.process_sharded(chunk, shards);
        }
        assert_eq!(pooled.stats(), seq.stats());
        assert_eq!(pooled.epochs(), seq.epochs());
        assert_eq!(pooled.activations_per_bank(), seq.activations_per_bank());
    }

    #[test]
    fn activate_drives_single_accesses() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 4,
        };
        let mut engine = BankEngine::new(spec, 2, 4096);
        let mut rows = 0u64;
        for _ in 0..16 {
            rows += engine.activate(1, 123).total_rows();
        }
        engine.end_epoch();
        assert!(rows > 0, "threshold 4 must fire within 16 activations");
        assert_eq!(engine.activations_per_bank(), &[0, 16]);
        assert_eq!(engine.epochs(), 1);
        let report = engine.report();
        assert_eq!(report.accesses, 16);
        assert_eq!(report.per_bank_stats.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot be mixed with access-count epoch accounting")]
    fn activate_on_epoch_configured_engine_is_rejected() {
        // Mixing the single-access path into a batched engine used to be a
        // doc caveat that silently shifted every later epoch boundary.
        let mut engine = BankEngine::new(SchemeSpec::None, 2, 4096).with_epoch_length(1_000);
        let _ = engine.activate(0, 1);
    }

    #[test]
    #[should_panic(expected = "epoch must contain accesses")]
    fn zero_epoch_length_rejected() {
        let _ = BankEngine::new(SchemeSpec::None, 1, 4096).with_epoch_length(0);
    }

    #[test]
    #[should_panic(expected = "end_epoch cannot be mixed")]
    fn manual_epoch_on_epoch_configured_engine_is_rejected() {
        // The automatic clock would keep firing at its own positions, so a
        // manual boundary silently interleaves two epoch clocks.
        let mut engine = BankEngine::new(SchemeSpec::None, 2, 4096).with_epoch_length(1_000);
        engine.end_epoch();
    }
}
