//! [`MemorySystem`] — the system-level front-end over per-channel
//! [`BankEngine`]s.
//!
//! ABACuS and CoMeT evaluate mitigation trackers as *memory-system*
//! components sitting behind a channel/rank/bank decode, and every consumer
//! in this repo used to hand-roll exactly that layer: decode an address,
//! flatten it to a global bank id, feed an engine. `MemorySystem` owns that
//! path — [`AddressMapping`] decode, per-channel routing, global epoch
//! accounting, streaming ingestion — behind the same batched
//! `process`/report API as [`BankEngine`], at whole-system scope.
//!
//! ## Batch datapath
//!
//! Every batch (explicit via [`MemorySystem::process`], or an internal
//! flush of the staging buffer behind [`MemorySystem::push`]) takes the
//! **cut-aware** path: the epoch boundary positions inside the batch are
//! computed once up front (`crate::epoch_cuts`), and the whole batch is
//! then handed over in one piece —
//!
//! * **routed** (`shards == 1`): one stable scatter into per-channel
//!   sub-batches, each channel's cut positions recorded along the way, then
//!   one [`BankEngine::process_with_cuts`] call per channel — each
//!   channel's banks are visited once per batch, never once per epoch
//!   segment;
//! * **pooled** (`shards > 1`): every channel's banks are loaned to **one
//!   shared worker pool** whose shards span all channels, the batch is
//!   scattered by global bank, and the workers fire the epoch cuts
//!   themselves — independent channels proceed concurrently on the same
//!   `shards` threads.
//!
//! ## Equivalence
//!
//! Routing through per-channel engines — serial, pooled, or streaming — is
//! bit-identical to one system-wide engine (asserted by
//! `tests/equivalence.rs`; the invariants are spelled out in
//! `DESIGN.md §7`):
//!
//! * the global bank order is channel-major, so per-channel engines with a
//!   [bank base](BankEngine::with_bank_base) hold exactly the banks (and
//!   PRA seeds) of the flat engine's contiguous ranges;
//! * per-bank access order is preserved by the stable scatter;
//! * epoch boundaries are positions in the *system-wide* access stream:
//!   the cut list is computed once per batch and every bank receives
//!   `on_epoch_end` at the same point of its own subsequence, whichever
//!   path replays it.

use cat_core::{Refreshes, SchemeInstance, SchemeSpec, SchemeStats};

use crate::ingest::{IngestConsumer, IngestEvent};
use crate::pool::ShardPool;
use crate::sparse::SparseBanks;
use crate::{
    epoch_cuts, AddressMapping, BankEngine, BatchOutcome, EngineFootprint, EngineReport,
    GeometrySlice, MemGeometry, Partition,
};

/// A whole memory system: address decode, per-channel [`BankEngine`]s,
/// global epoch accounting, streaming ingestion, and an optional shared
/// worker pool overlapping the channels.
///
/// ```
/// use cat_core::SchemeSpec;
/// use cat_engine::{MemGeometry, MemorySystem};
///
/// let geometry = MemGeometry {
///     channels: 2,
///     ranks_per_channel: 1,
///     banks_per_rank: 8,
///     rows_per_bank: 4096,
///     lines_per_row: 256,
///     line_bytes: 64,
/// };
/// let spec = SchemeSpec::Sca { counters: 64, threshold: 256 };
/// let mut system = MemorySystem::new(&geometry, spec).with_epoch_length(10_000);
/// // Route decoded (global bank, row) pairs — or raw addresses via decode().
/// let batch: Vec<(u32, u32)> = (0..20_000).map(|i| (i % 16, 7)).collect();
/// let out = system.process(&batch);
/// assert_eq!(out.epochs, 2);
/// assert!(system.stats().refresh_events > 0);
/// ```
pub struct MemorySystem {
    pub(crate) geometry: MemGeometry,
    /// The spec every bank was instantiated from (announced to ingestion
    /// clients in the wire handshake).
    pub(crate) spec: SchemeSpec,
    mapping: AddressMapping,
    /// The bank range this system owns: the full geometry by default, a
    /// proper sub-range for a fleet backend built by
    /// [`for_slice`](Self::for_slice). Every record is validated against
    /// it at the push.
    pub(crate) owned: GeometrySlice,
    /// One engine per slice of the owned range, in ascending bank order
    /// (per-channel by default — the N-slices-in-one-process case of the
    /// partitioned datapath, `DESIGN.md §12`).
    pub(crate) engines: Vec<BankEngine>,
    /// The slice each engine owns, parallel to `engines`.
    engine_slices: Vec<GeometrySlice>,
    /// `log2(slice size)` when every engine slice spans the same bank
    /// count — the routed scatter is then a shift/mask, not a search.
    uniform_shift: Option<u32>,
    pub(crate) epoch_len: Option<u64>,
    pub(crate) accesses: u64,
    pub(crate) epochs: u64,
    shards: usize,
    /// Shared worker pool for the pooled path (spawned lazily on the first
    /// `shards > 1` batch; its shards span all channels' banks).
    pool: Option<ShardPool>,
    /// Per-channel scatter buffers, reused across batches (routed path).
    route: Vec<Vec<(u32, u32)>>,
    /// Per-channel epoch cut positions, parallel to `route`.
    route_cuts: Vec<Vec<usize>>,
    /// Global cut-position scratch, reused across batches.
    cut_scratch: Vec<usize>,
    /// Rebase scratch of the pooled path for slice-owning systems: the
    /// shared pool scatters by owned-range offset, so a nonzero slice
    /// base rebases the batch once per run (empty and unused otherwise).
    pool_rebase: Vec<(u32, u32)>,
    /// Per-batch activation counts for the pooled path (one slot per
    /// global bank), folded back into the channel engines after each
    /// batch. Allocated lazily on the first pooled batch, so a system
    /// that never shards — the huge-geometry configurations — pays
    /// nothing for it.
    pub(crate) act_scratch: Vec<u64>,
    /// Streaming staging buffer (decoded, not yet processed accesses).
    pub(crate) staged: Vec<(u32, u32)>,
    /// Staging capacity at which `push` flushes automatically.
    stream_capacity: usize,
    /// Outcomes of automatic flushes since the last explicit `flush()`.
    staged_outcome: BatchOutcome,
}

impl MemorySystem {
    /// Default [streaming](Self::push) staging capacity, in accesses
    /// (overridable via
    /// [`with_stream_capacity`](Self::with_stream_capacity)): large enough
    /// to amortise the per-batch routing work, small enough to stay
    /// cache-resident.
    pub const DEFAULT_STREAM_CAPACITY: usize = 8192;

    /// Builds a system for `geometry`, instantiating `spec` on every bank.
    /// The engines are laid out per channel — the default partition; see
    /// [`partitioned`](Self::partitioned) for an explicit slice layout and
    /// [`for_slice`](Self::for_slice) for a fleet backend owning a
    /// sub-range.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`MemGeometry::validate`] or `spec` is
    /// invalid for the bank geometry.
    pub fn new(geometry: impl Into<MemGeometry>, spec: SchemeSpec) -> Self {
        let geometry = geometry.into();
        // AddressMapping::new rejects invalid geometries (hard, named
        // panic), so the slice constructions below cannot fail.
        let _ = AddressMapping::new(geometry);
        // cat-lint: allow(panic-path) -- construction-time: geometry was just validated above, not peer-reachable
        let owned = GeometrySlice::full(geometry).expect("geometry validated above");
        Self::build(owned, Self::engine_split(&owned), spec)
    }

    /// Builds a system whose engines follow an explicit [`Partition`] —
    /// the N-slices-in-one-process case of the partitioned datapath. With
    /// [`Partition::per_channel`] this is exactly [`new`](Self::new); any
    /// other valid partition is bit-identical for stats by the `§7`
    /// contract, and is the reference a `catd` fleet with the same slice
    /// layout must match *including footprints* (`DESIGN.md §12`).
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid for the bank geometry.
    pub fn partitioned(partition: &Partition, spec: SchemeSpec) -> Self {
        let geometry = *partition.geometry();
        let _ = AddressMapping::new(geometry);
        // cat-lint: allow(panic-path) -- construction-time: a Partition is validated at its own construction, not peer-reachable
        let owned = GeometrySlice::full(geometry).expect("partition geometry is validated");
        Self::build(owned, partition.slices().to_vec(), spec)
    }

    /// Builds a fleet-backend system owning only `slice` of the geometry:
    /// pushes outside the slice are rejected, stats and footprints cover
    /// the slice's banks only, and every bank keeps its **global** index
    /// (PRA seed, checkpoint identity). The slice is split into
    /// per-channel engines where it spans whole channels, or served by a
    /// single engine when it sits inside one channel.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid for the bank geometry.
    pub fn for_slice(slice: &GeometrySlice, spec: SchemeSpec) -> Self {
        Self::build(*slice, Self::engine_split(slice), spec)
    }

    /// Splits an owned range at channel boundaries: slices no larger than
    /// a channel stay whole (alignment keeps them inside one channel),
    /// larger slices cover whole channels and get one engine each.
    fn engine_split(owned: &GeometrySlice) -> Vec<GeometrySlice> {
        let geometry = *owned.geometry();
        let bpc = geometry.banks_per_channel();
        if owned.banks() <= bpc {
            return vec![*owned];
        }
        (0..owned.banks() / bpc)
            .map(|i| {
                let start = owned.start_bank() + i * bpc;
                // cat-lint: allow(panic-path) -- construction-time: channel sub-ranges of a valid slice are valid slices, not peer-reachable
                GeometrySlice::new(geometry, start, bpc).expect("channel sub-slice is aligned")
            })
            .collect()
    }

    /// The shared constructor core: one engine per slice, each seeded
    /// with its slice's first **global** bank as the bank base.
    fn build(owned: GeometrySlice, engine_slices: Vec<GeometrySlice>, spec: SchemeSpec) -> Self {
        let geometry = *owned.geometry();
        let mapping = AddressMapping::new(geometry);
        let engines: Vec<BankEngine> = engine_slices
            .iter()
            .map(|s| {
                BankEngine::with_bank_base(spec, s.banks(), geometry.rows_per_bank, s.start_bank())
            })
            .collect();
        let size = engine_slices[0].banks();
        let uniform_shift = engine_slices
            .iter()
            .all(|s| s.banks() == size)
            .then(|| size.trailing_zeros());
        let route = engine_slices.iter().map(|_| Vec::new()).collect();
        let route_cuts = engine_slices.iter().map(|_| Vec::new()).collect();
        MemorySystem {
            geometry,
            spec,
            mapping,
            owned,
            engines,
            engine_slices,
            uniform_shift,
            epoch_len: None,
            accesses: 0,
            epochs: 0,
            shards: 1,
            pool: None,
            route,
            route_cuts,
            cut_scratch: Vec::new(),
            pool_rebase: Vec::new(),
            act_scratch: Vec::new(),
            staged: Vec::new(),
            stream_capacity: Self::DEFAULT_STREAM_CAPACITY,
            staged_outcome: BatchOutcome::default(),
        }
    }

    /// Enables access-count epoch accounting: every `accesses_per_epoch`
    /// *system-wide* accesses, every bank receives an `on_epoch_end`.
    ///
    /// # Panics
    ///
    /// Panics if `accesses_per_epoch` is zero.
    pub fn with_epoch_length(mut self, accesses_per_epoch: u64) -> Self {
        assert!(accesses_per_epoch > 0, "epoch must contain accesses");
        self.epoch_len = Some(accesses_per_epoch);
        self
    }

    /// Runs batches on `shards` persistent worker threads **shared by all
    /// channels** (1 = sequential in the calling thread, the default).
    /// Results are bit-identical for every shard count.
    ///
    /// The pool's shards partition the *global* bank range, so independent
    /// channels overlap on the same workers instead of running serially —
    /// `shards` threads total serve the whole system, and a batch loans
    /// every channel's banks to the pool exactly once however many epoch
    /// segments it spans (`DESIGN.md §7`).
    ///
    /// ```
    /// use cat_core::SchemeSpec;
    /// use cat_engine::{MemGeometry, MemorySystem};
    ///
    /// let geometry = MemGeometry {
    ///     channels: 2,
    ///     ranks_per_channel: 1,
    ///     banks_per_rank: 8,
    ///     rows_per_bank: 4096,
    ///     lines_per_row: 16,
    ///     line_bytes: 64,
    /// };
    /// let spec = SchemeSpec::Sca { counters: 16, threshold: 64 };
    /// let batch: Vec<(u32, u32)> = (0..40_000).map(|i| (i % 16, 9)).collect();
    /// let mut serial = MemorySystem::new(&geometry, spec).with_epoch_length(700);
    /// let mut pooled = MemorySystem::new(&geometry, spec)
    ///     .with_epoch_length(700)
    ///     .with_shards(4);
    /// serial.process(&batch);
    /// pooled.process(&batch);
    /// assert_eq!(pooled.stats(), serial.stats()); // bit-identical
    /// ```
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the staging capacity of the [streaming](Self::push) front-end:
    /// `push` flushes automatically once this many accesses are staged.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_stream_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "staging buffer must hold accesses");
        self.stream_capacity = capacity;
        self
    }

    /// The system geometry.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// The scheme spec every bank was instantiated from.
    pub fn spec(&self) -> SchemeSpec {
        self.spec
    }

    /// Accesses per automatic epoch, if
    /// [`with_epoch_length`](Self::with_epoch_length) was configured.
    pub fn epoch_length(&self) -> Option<u64> {
        self.epoch_len
    }

    /// The address mapping (for callers that need full [`crate::Location`]
    /// decode, e.g. the timing simulator's channel queues).
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Banks this system owns (the whole geometry unless it was built
    /// [`for_slice`](Self::for_slice)).
    pub fn bank_count(&self) -> usize {
        self.owned.banks() as usize
    }

    /// The bank range this system owns — the full geometry by default, a
    /// proper sub-range for a fleet backend. Advertised to ingestion
    /// clients in the wire handshake, which refuses out-of-slice banks at
    /// the connection.
    pub fn slice(&self) -> &GeometrySlice {
        &self.owned
    }

    /// The slice each engine owns, in ascending bank (= engine) order.
    pub fn engine_slices(&self) -> &[GeometrySlice] {
        &self.engine_slices
    }

    /// System-wide accesses processed so far (staged accesses count once
    /// they flush).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Epoch boundaries processed so far (batched and manual).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Decodes a physical byte address to `(global bank, row)` — the batch
    /// entry format of [`process`](Self::process).
    #[inline]
    pub fn decode(&self, addr: u64) -> (u32, u32) {
        self.mapping.decode_bank_row(addr)
    }

    /// Stages one physical-address activation on the streaming front-end;
    /// the staging buffer flushes through the cut-aware batch path
    /// whenever it reaches the [stream
    /// capacity](Self::with_stream_capacity). Call
    /// [`flush`](Self::flush) after the last push — staged accesses are
    /// invisible to the stats accessors (and are discarded on drop) until
    /// they flush.
    ///
    /// ```
    /// use cat_core::SchemeSpec;
    /// use cat_engine::{MemGeometry, MemorySystem};
    ///
    /// let geometry = MemGeometry {
    ///     channels: 2,
    ///     ranks_per_channel: 1,
    ///     banks_per_rank: 8,
    ///     rows_per_bank: 4096,
    ///     lines_per_row: 16,
    ///     line_bytes: 64,
    /// };
    /// let spec = SchemeSpec::Sca { counters: 16, threshold: 64 };
    /// let mut system = MemorySystem::new(&geometry, spec).with_epoch_length(500);
    /// for i in 0..2_000u64 {
    ///     system.push((i % 1024) << 14);
    /// }
    /// let out = system.flush();
    /// assert_eq!(out.accesses, 2_000);
    /// assert_eq!(out.epochs, 4);
    /// assert_eq!(system.accesses(), 2_000);
    /// ```
    #[inline]
    pub fn push(&mut self, addr: u64) {
        let (bank, row) = self.decode(addr);
        self.push_decoded(bank, row);
    }

    /// [`push`](Self::push) for a pre-decoded `(global bank, row)`
    /// activation (callers that decode once and replay many times).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is outside the [owned slice](Self::slice) — at
    /// the offending call, not at the (arbitrarily later) flush that
    /// would otherwise trip over it deep inside the scatter.
    #[inline]
    pub fn push_decoded(&mut self, bank: u32, row: u32) {
        assert!(
            self.owned.contains(bank),
            "global bank {bank} out of range for a system owning {}",
            self.owned
        );
        self.staged.push((bank, row));
        if self.staged.len() >= self.stream_capacity {
            self.flush_staged();
        }
    }

    /// Stages every address of `addrs` in order (see [`push`](Self::push)).
    pub fn push_iter(&mut self, addrs: impl IntoIterator<Item = u64>) {
        for addr in addrs {
            self.push(addr);
        }
    }

    /// Accesses currently staged and not yet processed.
    pub fn pending(&self) -> usize {
        self.staged.len()
    }

    /// Drains a multi-producer ingestion merge to completion: every batch
    /// the consumer emits is appended straight to the staging buffer in
    /// merge order ([`IngestConsumer::next_batch_into`] — no intermediate
    /// `Vec` per batch), flushing through the cut-aware batch path once
    /// the stage reaches the [stream
    /// capacity](Self::with_stream_capacity). The flush boundary is
    /// batch-granular, which the §7 contract makes unobservable. Returns
    /// the aggregate outcome of everything pushed since the last explicit
    /// [`flush`](Self::flush), exactly like `flush` itself.
    ///
    /// Blocks until every producer has finished — the deterministic merge
    /// waits for lagging producers rather than reordering around them
    /// (`DESIGN.md §8`). The TCP front-end ([`crate::ingest::serve`])
    /// drives this from its accept loop.
    ///
    /// # Panics
    ///
    /// Panics if a batch contains an out-of-range bank, like
    /// [`push_decoded`](Self::push_decoded) (the TCP server validates
    /// records at the connection, before they reach the queue), or if an
    /// epoch-cut event arrives while the system runs its own access-count
    /// epoch clock (the wire handshake refuses that mix up front).
    pub fn ingest(&mut self, consumer: &mut IngestConsumer) -> BatchOutcome {
        let owned = self.owned;
        loop {
            let before = self.staged.len();
            match consumer.next_event_into(&mut self.staged) {
                None => break,
                Some(IngestEvent::EpochCut) => {
                    // A router-driven system-wide boundary: everything
                    // staged ahead of it flushes first (end_epoch does
                    // that), then every bank sees on_epoch_end — exactly
                    // where the single-host epoch clock would fire it.
                    self.end_epoch();
                    self.staged_outcome.epochs += 1;
                }
                Some(IngestEvent::Records(_)) => {
                    // The push_decoded bank check, hoisted out of the hot
                    // loop (an `all` scan vectorizes; the offending bank
                    // is only located on the failure arm): fail at the
                    // ingest, not deep inside a later scatter.
                    let fresh = &self.staged[before..];
                    assert!(
                        fresh.iter().all(|&(bank, _)| owned.contains(bank)),
                        "global bank {} out of range for a system owning {owned}",
                        fresh
                            .iter()
                            .map(|&(bank, _)| bank)
                            .find(|&bank| !owned.contains(bank))
                            .unwrap_or(u32::MAX)
                    );
                    if self.staged.len() >= self.stream_capacity {
                        self.flush_staged();
                    }
                }
            }
        }
        self.flush()
    }

    /// Flushes the staging buffer and returns the aggregate
    /// [`BatchOutcome`] of **everything pushed since the last `flush`**
    /// (automatic capacity flushes included).
    pub fn flush(&mut self) -> BatchOutcome {
        self.flush_staged();
        std::mem::take(&mut self.staged_outcome)
    }

    /// Runs the staged accesses through the batch path, accumulating the
    /// outcome for the next explicit [`flush`](Self::flush).
    fn flush_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.staged);
        let out = self.process_batch(&staged);
        self.staged = staged;
        self.staged.clear();
        self.staged_outcome.merge(&out);
    }

    /// Processes a batch of `(global bank, row)` activations in order
    /// through the cut-aware batch path (see the module docs): epoch
    /// boundaries (if configured) fire at the right system-wide positions,
    /// each channel's banks are visited once per batch, and with
    /// [`with_shards`](Self::with_shards) the channels overlap on the
    /// shared pool.
    ///
    /// Any [staged](Self::push) accesses are flushed first so the stream
    /// order is preserved (their outcome stays accumulated for the next
    /// [`flush`](Self::flush); the returned outcome covers only `batch`).
    pub fn process(&mut self, batch: &[(u32, u32)]) -> BatchOutcome {
        self.flush_staged();
        self.process_batch(batch)
    }

    /// Decodes and processes a batch of physical addresses (see
    /// [`process`](Self::process)).
    pub fn process_addrs(&mut self, addrs: &[u64]) -> BatchOutcome {
        let batch: Vec<(u32, u32)> = addrs.iter().map(|&a| self.decode(a)).collect();
        self.process(&batch)
    }

    /// The cut-aware batch core: computes the global cut list once, then
    /// dispatches to the routed (serial) or pooled path.
    fn process_batch(&mut self, batch: &[(u32, u32)]) -> BatchOutcome {
        let mut cuts = std::mem::take(&mut self.cut_scratch);
        epoch_cuts(batch.len(), self.accesses, self.epoch_len, &mut cuts);
        let mut out = BatchOutcome {
            accesses: batch.len() as u64,
            epochs: cuts.len() as u64,
            ..BatchOutcome::default()
        };
        if self.shards > 1 {
            self.pooled_batch(batch, &cuts, &mut out);
        } else {
            self.routed_batch(batch, &cuts, &mut out);
        }
        self.accesses += batch.len() as u64;
        self.epochs += cuts.len() as u64;
        self.cut_scratch = cuts;
        out
    }

    /// Serial path: one stable scatter of the whole batch into per-slice
    /// sub-batches (recording each slice's cut positions), then one
    /// cut-aware engine call per slice.
    fn routed_batch(&mut self, batch: &[(u32, u32)], cuts: &[usize], out: &mut BatchOutcome) {
        for buf in self.route.iter_mut() {
            buf.clear();
        }
        for buf in self.route_cuts.iter_mut() {
            buf.clear();
        }
        {
            let route = &mut self.route;
            let route_cuts = &mut self.route_cuts;
            let base = self.owned.start_bank();
            match self.uniform_shift {
                // Uniform slice sizes (every built-in layout): the
                // per-record slice split is a shift/mask, not a search —
                // slices are pow2-sized and naturally aligned
                // (GeometrySlice::new), so `bank & mask` *is* the
                // engine-local bank index.
                Some(shift) => {
                    let mask = (1u32 << shift) - 1;
                    crate::for_each_segment(batch.len(), cuts, |range, on_boundary| {
                        for &(bank, row) in &batch[range] {
                            route[((bank - base) >> shift) as usize].push((bank & mask, row));
                        }
                        if on_boundary {
                            for (s, s_cuts) in route_cuts.iter_mut().enumerate() {
                                s_cuts.push(route[s].len());
                            }
                        }
                    });
                }
                // Mixed slice sizes: binary-search the owning slice.
                None => {
                    let slices = &self.engine_slices;
                    crate::for_each_segment(batch.len(), cuts, |range, on_boundary| {
                        for &(bank, row) in &batch[range] {
                            let s = slices.partition_point(|sl| sl.end_bank() <= bank);
                            route[s].push((bank - slices[s].start_bank(), row));
                        }
                        if on_boundary {
                            for (s, s_cuts) in route_cuts.iter_mut().enumerate() {
                                s_cuts.push(route[s].len());
                            }
                        }
                    });
                }
            }
        }
        for (s, engine) in self.engines.iter_mut().enumerate() {
            if self.route[s].is_empty() && cuts.is_empty() {
                continue; // nothing to replay, no boundary to fire
            }
            let o = engine.process_with_cuts(&self.route[s], &self.route_cuts[s]);
            out.refresh_events += o.refresh_events;
            out.refreshed_rows += o.refreshed_rows;
        }
    }

    /// Pooled path: every slice's banks are loaned to the shared pool
    /// once, the whole batch is scattered by bank, and the workers replay
    /// it — epoch cuts included — with independent slices overlapping on
    /// the same shard threads.
    fn pooled_batch(&mut self, batch: &[(u32, u32)], cuts: &[usize], out: &mut BatchOutcome) {
        let nbanks = self.bank_count().max(1);
        let shards = self.shards.clamp(1, nbanks);
        if self.pool.as_ref().map(ShardPool::shards) != Some(shards) {
            self.pool = Some(ShardPool::new(shards, nbanks));
        }
        // cat-lint: allow(panic-path) -- infallible: the pool is (re)built two lines above, not peer-reachable
        let mut pool = self.pool.take().expect("pool just ensured");
        let (events_before, rows_before) = self.refresh_totals();

        // The pool partitions the *owned* range by offset; a slice-owning
        // system rebases the batch's global banks once up front (the
        // full-range case is base 0 and passes the batch straight
        // through).
        let base = self.owned.start_bank();
        let batch: &[(u32, u32)] = if base == 0 {
            batch
        } else {
            self.pool_rebase.clear();
            self.pool_rebase
                .extend(batch.iter().map(|&(bank, row)| (bank - base, row)));
            &self.pool_rebase
        };

        // Loan each shard a carrier assembled — in bank order — from the
        // slice ranges the shard straddles. Splitting and re-absorbing
        // costs O(materialized banks), not O(banks) (`DESIGN.md §10`),
        // and a scheme built by a worker keeps its global bank index: the
        // carrier's base is the shard's first **global** bank.
        let rows_per_bank = self.geometry.rows_per_bank;
        let slices = &self.engine_slices;
        for w in 0..pool.shards() {
            let range = pool.shard_range(w);
            let mut carrier = SparseBanks::new(
                self.spec,
                (range.end - range.start) as u32,
                rows_per_bank,
                base + range.start as u32,
            );
            for (s, engine) in self.engines.iter_mut().enumerate() {
                let e_lo = (slices[s].start_bank() - base) as usize;
                let e_hi = (slices[s].end_bank() - base) as usize;
                let g_lo = range.start.max(e_lo);
                let g_hi = range.end.min(e_hi);
                if g_lo >= g_hi {
                    continue;
                }
                let sub = engine.banks_mut().take_range(g_lo - e_lo..g_hi - e_lo);
                carrier.absorb(g_lo - range.start, sub);
            }
            pool.loan_shard(w, carrier);
        }
        if self.act_scratch.len() < nbanks {
            self.act_scratch.resize(nbanks, 0);
        }
        self.act_scratch[..nbanks].fill(0);
        pool.run_batch(batch, cuts, &mut self.act_scratch[..nbanks]);

        // Reclaim each shard's carrier, hand every slice its banks back,
        // and fold the batch into each engine's accounting.
        for w in 0..pool.shards() {
            let range = pool.shard_range(w);
            let mut carrier = pool.reclaim_shard(w);
            for (s, engine) in self.engines.iter_mut().enumerate() {
                let e_lo = (slices[s].start_bank() - base) as usize;
                let e_hi = (slices[s].end_bank() - base) as usize;
                let g_lo = range.start.max(e_lo);
                let g_hi = range.end.min(e_hi);
                if g_lo >= g_hi {
                    continue;
                }
                let sub = carrier.take_range(g_lo - range.start..g_hi - range.start);
                engine.banks_mut().absorb(g_lo - e_lo, sub);
            }
        }
        for (s, engine) in self.engines.iter_mut().enumerate() {
            let e_lo = (slices[s].start_bank() - base) as usize;
            let e_hi = (slices[s].end_bank() - base) as usize;
            engine.absorb_pooled_batch(&self.act_scratch[e_lo..e_hi], cuts.len() as u64);
        }
        self.pool = Some(pool);

        let (events, rows) = self.refresh_totals();
        out.refresh_events += events - events_before;
        out.refreshed_rows += rows - rows_before;
    }

    /// Running (refresh events, refreshed rows) totals across slices.
    fn refresh_totals(&self) -> (u64, u64) {
        self.engines
            .iter()
            .map(BankEngine::refresh_totals)
            .fold((0, 0), |(e, r), (ce, cr)| (e + ce, r + cr))
    }

    /// Routes a global bank to `(engine index, engine-local bank)`.
    #[inline]
    fn route_engine(&self, bank: u32) -> (usize, u32) {
        match self.uniform_shift {
            Some(shift) => {
                let idx = ((bank - self.owned.start_bank()) >> shift) as usize;
                (idx, bank & ((1u32 << shift) - 1))
            }
            None => {
                let idx = self.engine_slices.partition_point(|s| s.end_bank() <= bank);
                (idx, bank - self.engine_slices[idx].start_bank())
            }
        }
    }

    /// Drives one activation through global bank `bank` and returns the
    /// refreshes the scheme requests. Fires no epoch boundaries — see
    /// [`BankEngine::activate`]. Any [staged](Self::push) accesses are
    /// flushed first so the stream order is preserved.
    ///
    /// # Panics
    ///
    /// Panics if the system was configured with
    /// [`with_epoch_length`](Self::with_epoch_length) (single accesses and
    /// access-count epochs cannot be mixed) or `bank` is out of range.
    #[inline]
    pub fn activate_global(&mut self, bank: u32, row: u32) -> Refreshes {
        assert!(
            self.epoch_len.is_none(),
            "MemorySystem::activate_global/activate_in_channel cannot be mixed with \
             access-count epoch accounting (with_epoch_length): the access would shift \
             the batched epoch phase. Drive epochs from your own clock via end_epoch() \
             instead."
        );
        if !self.staged.is_empty() {
            self.flush_staged();
        }
        assert!(
            self.owned.contains(bank),
            "global bank {bank} out of range for a system owning {}",
            self.owned
        );
        self.accesses += 1;
        let (idx, local) = self.route_engine(bank);
        self.engines[idx].activate(local as usize, row)
    }

    /// [`activate_global`](Self::activate_global) addressed as
    /// `(channel, bank-in-channel)` — the coordinates the per-channel
    /// memory controllers use.
    #[inline]
    pub fn activate_in_channel(&mut self, channel: usize, bank: usize, row: u32) -> Refreshes {
        let bpc = self.geometry.banks_per_channel();
        self.activate_global(channel as u32 * bpc + bank as u32, row)
    }

    /// Signals an auto-refresh epoch boundary to every bank of every
    /// channel. Any [staged](Self::push) accesses are flushed first so the
    /// boundary lands after them in the stream, exactly where the caller
    /// issued it.
    ///
    /// # Panics
    ///
    /// Panics if the system was configured with
    /// [`with_epoch_length`](Self::with_epoch_length): the automatic clock
    /// keeps firing at its own access-count positions regardless, so a
    /// manual boundary would silently interleave two epoch clocks (the
    /// same mixing every other entry point rejects).
    pub fn end_epoch(&mut self) {
        assert!(
            self.epoch_len.is_none(),
            "MemorySystem::end_epoch cannot be mixed with access-count epoch accounting \
             (with_epoch_length): the automatic boundaries would keep firing at their \
             own positions alongside the manual one"
        );
        self.flush_staged();
        self.epochs += 1;
        for engine in &mut self.engines {
            engine.end_epoch();
        }
    }

    /// Scheme statistics aggregated across all owned banks, in global
    /// bank order.
    pub fn stats(&self) -> SchemeStats {
        let mut total = SchemeStats::default();
        for engine in &self.engines {
            total.merge(&engine.stats());
        }
        total
    }

    /// Per-bank scheme statistics of the owned banks in global bank order
    /// (banks without a scheme are skipped).
    pub fn per_bank_stats(&self) -> Vec<SchemeStats> {
        self.engines
            .iter()
            .flat_map(BankEngine::per_bank_stats)
            .collect()
    }

    /// Row activations observed per owned bank, in global bank order.
    pub fn activations_per_bank(&self) -> Vec<u64> {
        self.engines
            .iter()
            .flat_map(BankEngine::activations_per_bank)
            .collect()
    }

    /// The attached scheme instances in global bank order (banks without a
    /// scheme are skipped).
    pub fn schemes(&self) -> impl Iterator<Item = &SchemeInstance> {
        self.engines.iter().flat_map(BankEngine::schemes)
    }

    /// The per-slice engines, in ascending bank order (diagnostics) —
    /// per-channel unless the system was built over another partition.
    pub fn engines(&self) -> &[BankEngine] {
        &self.engines
    }

    /// Resident-memory snapshot across every slice's sparse bank
    /// storage, plus the system's own pooled-path scatter scratch.
    pub fn footprint(&self) -> EngineFootprint {
        let mut total = EngineFootprint::default();
        for engine in &self.engines {
            total.merge(&engine.footprint());
        }
        total.accounting_bytes += self.act_scratch.capacity() * std::mem::size_of::<u64>();
        total
    }

    /// Snapshot of everything the simulator layers report, at system scope.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            accesses: self.accesses,
            epochs: self.epochs,
            activations_per_bank: self.activations_per_bank(),
            scheme_stats: self.stats(),
            per_bank_stats: self.per_bank_stats(),
            footprint: self.footprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> MemGeometry {
        MemGeometry {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 4096,
            lines_per_row: 16,
            line_bytes: 64,
        }
    }

    fn batch(n: u64) -> Vec<(u32, u32)> {
        (0..n)
            .map(|i| {
                let bank = (i % 16) as u32;
                let row = if i % 3 == 0 {
                    99
                } else {
                    (i.wrapping_mul(2_654_435_761) % 4096) as u32
                };
                (bank, row)
            })
            .collect()
    }

    #[test]
    fn routes_match_flat_engine() {
        // The exhaustive per-spec sweep lives in tests/equivalence.rs.
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let trace = batch(40_000);
        let mut flat = BankEngine::new(spec, 16, 4096).with_epoch_length(9_000);
        flat.process(&trace);
        for shards in [1usize, 4] {
            let mut system = MemorySystem::new(geometry(), spec)
                .with_epoch_length(9_000)
                .with_shards(shards);
            system.process(&trace);
            assert_eq!(system.stats(), flat.stats(), "{shards} shards");
            assert_eq!(system.per_bank_stats(), flat.per_bank_stats());
            assert_eq!(system.activations_per_bank(), flat.activations_per_bank());
            assert_eq!(system.epochs(), flat.epochs());
            assert_eq!(system.accesses(), flat.accesses());
        }
        assert!(flat.stats().refresh_events > 0);
    }

    #[test]
    fn small_epochs_loan_once_and_stay_identical() {
        // Epoch length far below the batch size: the cut-aware path must
        // fire every boundary inside one loan and still match the flat
        // engine bit for bit.
        let spec = SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 128,
        };
        let trace = batch(30_000);
        let mut flat = BankEngine::new(spec, 16, 4096).with_epoch_length(97);
        flat.process(&trace);
        for shards in [1usize, 3, 8] {
            let mut system = MemorySystem::new(geometry(), spec)
                .with_epoch_length(97)
                .with_shards(shards);
            system.process(&trace);
            assert_eq!(system.stats(), flat.stats(), "{shards} shards");
            assert_eq!(system.per_bank_stats(), flat.per_bank_stats());
            assert_eq!(system.epochs(), flat.epochs());
        }
        assert_eq!(flat.epochs(), 30_000 / 97);
    }

    #[test]
    fn decode_and_addr_batches_route_by_address() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None);
        let addr = system.mapping().encode_line(1, 0, 3, 42, 0);
        assert_eq!(system.decode(addr), (11, 42));
        system.process_addrs(&[addr, addr, addr]);
        assert_eq!(system.activations_per_bank()[11], 3);
        assert_eq!(system.accesses(), 3);
    }

    #[test]
    fn streaming_push_matches_batched_process() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let trace = batch(20_000);
        let mut batched = MemorySystem::new(geometry(), spec).with_epoch_length(777);
        batched.process(&trace);
        for capacity in [64usize, 1_000, 50_000] {
            let mut streamed = MemorySystem::new(geometry(), spec)
                .with_epoch_length(777)
                .with_stream_capacity(capacity);
            for &(bank, row) in &trace {
                streamed.push_decoded(bank, row);
            }
            let out = streamed.flush();
            assert_eq!(out.accesses, 20_000, "capacity {capacity}");
            assert_eq!(out.epochs, 20_000 / 777);
            assert_eq!(streamed.stats(), batched.stats(), "capacity {capacity}");
            assert_eq!(streamed.per_bank_stats(), batched.per_bank_stats());
            assert_eq!(streamed.epochs(), batched.epochs());
            assert_eq!(streamed.pending(), 0);
        }
    }

    #[test]
    fn push_stages_until_capacity_then_flushes() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None).with_stream_capacity(100);
        for (bank, row) in batch(99) {
            system.push_decoded(bank, row);
        }
        assert_eq!(system.pending(), 99);
        assert_eq!(system.accesses(), 0, "staged accesses are not processed");
        system.push_decoded(0, 1);
        assert_eq!(system.pending(), 0, "capacity flush");
        assert_eq!(system.accesses(), 100);
        let out = system.flush();
        assert_eq!(out.accesses, 100, "flush reports the auto-flushed batch");
        assert_eq!(system.flush().accesses, 0, "outcome is consumed");
    }

    #[test]
    fn push_iter_decodes_like_process_addrs() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 16,
        };
        let mut a = MemorySystem::new(geometry(), spec);
        let mut b = MemorySystem::new(geometry(), spec);
        let addrs: Vec<u64> = (0..5_000u64)
            .map(|i| {
                a.mapping()
                    .encode_line((i % 2) as u32, 0, (i % 8) as u32, 1234, 0)
            })
            .collect();
        a.process_addrs(&addrs);
        b.push_iter(addrs.iter().copied());
        b.flush();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.activations_per_bank(), b.activations_per_bank());
    }

    #[test]
    fn process_flushes_staged_accesses_first() {
        // Order: 100 pushed accesses must reach the banks before the
        // processed batch, exactly as if both had gone through one stream.
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let trace = batch(10_000);
        let mut reference = MemorySystem::new(geometry(), spec).with_epoch_length(333);
        reference.process(&trace);
        let mut mixed = MemorySystem::new(geometry(), spec)
            .with_epoch_length(333)
            .with_stream_capacity(1 << 20);
        for &(bank, row) in &trace[..100] {
            mixed.push_decoded(bank, row);
        }
        let out = mixed.process(&trace[100..]);
        assert_eq!(out.accesses, 9_900);
        assert_eq!(mixed.flush().accesses, 100);
        assert_eq!(mixed.stats(), reference.stats());
        assert_eq!(mixed.epochs(), reference.epochs());
    }

    #[test]
    fn single_access_path_reaches_the_right_channel() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 4,
        };
        let mut system = MemorySystem::new(geometry(), spec);
        let mut rows = 0u64;
        for _ in 0..16 {
            rows += system.activate_in_channel(1, 2, 123).total_rows();
        }
        system.end_epoch();
        assert!(rows > 0);
        assert_eq!(system.activations_per_bank()[10], 16);
        assert_eq!(system.epochs(), 1);
        assert_eq!(system.report().accesses, 16);
    }

    #[test]
    fn end_epoch_flushes_staged_accesses_first() {
        // A manually-clocked boundary must land after everything pushed
        // before it: SCA counters reset on epoch end, so if the boundary
        // fired first, the staged hammering would survive the reset and
        // trigger a refresh the reference order does not produce.
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let mut reference = MemorySystem::new(geometry(), spec);
        for _ in 0..60 {
            let _ = reference.activate_global(3, 50);
        }
        reference.end_epoch();
        for _ in 0..60 {
            let _ = reference.activate_global(3, 50);
        }
        let mut streamed = MemorySystem::new(geometry(), spec).with_stream_capacity(1 << 20);
        for _ in 0..60 {
            streamed.push_decoded(3, 50);
        }
        streamed.end_epoch();
        assert_eq!(streamed.pending(), 0, "end_epoch must flush the stage");
        for _ in 0..60 {
            streamed.push_decoded(3, 50);
        }
        streamed.flush();
        assert_eq!(streamed.stats(), reference.stats());
        assert_eq!(streamed.epochs(), 1);
        assert_eq!(streamed.stats().refresh_events, 0, "reset must intervene");
    }

    #[test]
    fn activate_flushes_staged_accesses_first() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 4,
        };
        let mut system = MemorySystem::new(geometry(), spec).with_stream_capacity(1 << 20);
        system.push_decoded(3, 50);
        system.push_decoded(3, 50);
        let _ = system.activate_global(3, 50);
        assert_eq!(system.pending(), 0);
        assert_eq!(system.activations_per_bank()[3], 3);
        assert_eq!(system.accesses(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot be mixed with access-count epoch accounting")]
    fn activate_on_epoch_configured_system_is_rejected() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None).with_epoch_length(100);
        let _ = system.activate_global(0, 1);
    }

    #[test]
    #[should_panic(expected = "global bank 16 out of range")]
    fn push_of_out_of_range_bank_fails_at_the_push() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None);
        system.push_decoded(16, 0);
    }

    #[test]
    #[should_panic(expected = "end_epoch cannot be mixed")]
    fn manual_epoch_on_epoch_configured_system_is_rejected() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None).with_epoch_length(100);
        system.end_epoch();
    }

    #[test]
    fn flush_of_an_empty_stage_is_a_no_op() {
        // flush() with nothing staged: default outcome, no accesses
        // counted, no epoch fired, and the scheme state untouched — also
        // repeatedly, and interleaved with real flushes.
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let mut system = MemorySystem::new(geometry(), spec).with_epoch_length(100);
        assert_eq!(system.flush(), BatchOutcome::default());
        assert_eq!(system.flush(), BatchOutcome::default());
        assert_eq!(system.accesses(), 0);
        assert_eq!(system.epochs(), 0);
        assert_eq!(system.stats(), MemorySystem::new(geometry(), spec).stats());

        system.push_decoded(3, 50);
        let out = system.flush();
        assert_eq!(out.accesses, 1);
        assert_eq!(
            system.flush(),
            BatchOutcome::default(),
            "stage is empty again"
        );
        assert_eq!(system.accesses(), 1);
    }

    #[test]
    fn stream_capacity_one_matches_one_big_batch() {
        // The degenerate staging capacity — every push is its own flush —
        // must still be bit-identical to processing the whole trace in one
        // batch (the determinism contract's flush-boundary invariant at
        // its extreme).
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let trace = batch(5_000);
        let mut batched = MemorySystem::new(geometry(), spec).with_epoch_length(777);
        batched.process(&trace);
        let mut streamed = MemorySystem::new(geometry(), spec)
            .with_epoch_length(777)
            .with_stream_capacity(1);
        for &(bank, row) in &trace {
            streamed.push_decoded(bank, row);
            assert_eq!(streamed.pending(), 0, "capacity 1 flushes every push");
        }
        let out = streamed.flush();
        assert_eq!(out.accesses, 5_000, "auto-flushes accumulate the outcome");
        assert_eq!(out.epochs, 5_000 / 777);
        assert_eq!(streamed.stats(), batched.stats());
        assert_eq!(streamed.per_bank_stats(), batched.per_bank_stats());
        assert_eq!(streamed.epochs(), batched.epochs());
        assert_eq!(streamed.accesses(), batched.accesses());
    }

    #[test]
    fn epochs_fire_at_system_wide_positions_across_batches() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None).with_epoch_length(3_000);
        let trace = batch(10_000);
        let mut epochs = 0;
        for chunk in trace.chunks(1_700) {
            epochs += system.process(chunk).epochs;
        }
        assert_eq!(epochs, 3);
        assert_eq!(system.epochs(), 3);
        assert_eq!(system.accesses(), 10_000);
    }
}
