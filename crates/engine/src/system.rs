//! [`MemorySystem`] — the system-level front-end over per-channel
//! [`BankEngine`]s.
//!
//! ABACuS and CoMeT evaluate mitigation trackers as *memory-system*
//! components sitting behind a channel/rank/bank decode, and every consumer
//! in this repo used to hand-roll exactly that layer: decode an address,
//! flatten it to a global bank id, feed an engine. `MemorySystem` owns that
//! path — [`AddressMapping`] decode, per-channel routing, global epoch
//! accounting — behind the same batched `process`/report API as
//! [`BankEngine`], at whole-system scope.
//!
//! ## Equivalence
//!
//! Routing through per-channel engines is bit-identical to one system-wide
//! engine (asserted by `tests/equivalence.rs`):
//!
//! * the global bank order is channel-major, so per-channel engines with a
//!   [bank base](BankEngine::with_bank_base) hold exactly the banks (and
//!   PRA seeds) of the flat engine's contiguous ranges;
//! * per-bank access order is preserved by the stable scatter;
//! * epoch boundaries are positions in the *system-wide* access stream:
//!   batches are segmented at global boundaries and every channel engine
//!   receives `on_epoch_end` at the same point of its own subsequence.

use cat_core::{Refreshes, SchemeInstance, SchemeSpec, SchemeStats};

use crate::{AddressMapping, BankEngine, BatchOutcome, EngineReport, MemGeometry};

/// A whole memory system: address decode, per-channel [`BankEngine`]s,
/// global epoch accounting, and optional pool-backed sharding.
///
/// ```
/// use cat_core::SchemeSpec;
/// use cat_engine::{MemGeometry, MemorySystem};
///
/// let geometry = MemGeometry {
///     channels: 2,
///     ranks_per_channel: 1,
///     banks_per_rank: 8,
///     rows_per_bank: 4096,
///     lines_per_row: 256,
///     line_bytes: 64,
/// };
/// let spec = SchemeSpec::Sca { counters: 64, threshold: 256 };
/// let mut system = MemorySystem::new(&geometry, spec).with_epoch_length(10_000);
/// // Route decoded (global bank, row) pairs — or raw addresses via decode().
/// let batch: Vec<(u32, u32)> = (0..20_000).map(|i| (i % 16, 7)).collect();
/// let out = system.process(&batch);
/// assert_eq!(out.epochs, 2);
/// assert!(system.stats().refresh_events > 0);
/// ```
pub struct MemorySystem {
    geometry: MemGeometry,
    mapping: AddressMapping,
    channels: Vec<BankEngine>,
    banks_per_channel: u32,
    epoch_len: Option<u64>,
    accesses: u64,
    epochs: u64,
    shards: usize,
    /// Per-channel scatter buffers, reused across batches.
    route: Vec<Vec<(u32, u32)>>,
}

impl MemorySystem {
    /// Builds a system for `geometry`, instantiating `spec` on every bank
    /// (channel engines are seeded with their global bank base).
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`MemGeometry::validate`] or `spec` is
    /// invalid for the bank geometry.
    pub fn new(geometry: impl Into<MemGeometry>, spec: SchemeSpec) -> Self {
        let geometry = geometry.into();
        let mapping = AddressMapping::new(geometry);
        let banks_per_channel = geometry.banks_per_channel();
        let channels: Vec<BankEngine> = (0..geometry.channels)
            .map(|c| {
                BankEngine::with_bank_base(
                    spec,
                    banks_per_channel,
                    geometry.rows_per_bank,
                    c * banks_per_channel,
                )
            })
            .collect();
        let route = (0..geometry.channels).map(|_| Vec::new()).collect();
        MemorySystem {
            geometry,
            mapping,
            channels,
            banks_per_channel,
            epoch_len: None,
            accesses: 0,
            epochs: 0,
            shards: 1,
            route,
        }
    }

    /// Enables access-count epoch accounting: every `accesses_per_epoch`
    /// *system-wide* accesses, every bank receives an `on_epoch_end`.
    ///
    /// # Panics
    ///
    /// Panics if `accesses_per_epoch` is zero.
    pub fn with_epoch_length(mut self, accesses_per_epoch: u64) -> Self {
        assert!(accesses_per_epoch > 0, "epoch must contain accesses");
        self.epoch_len = Some(accesses_per_epoch);
        self
    }

    /// Runs each channel's banks on `shards` persistent worker threads per
    /// channel (1 = sequential in the calling thread, the default).
    /// Results are bit-identical for every shard count.
    ///
    /// Channels are processed serially per epoch segment, each parallel
    /// internally — so `shards` is also the effective system-wide
    /// parallelism, but every channel engine keeps its *own* pool
    /// (`channels × shards` threads total, all but one channel's parked on
    /// an empty queue at any moment). A pool shared across channels — and
    /// overlapping the channels themselves — is future work tracked in the
    /// ROADMAP.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        self.shards = shards;
        self
    }

    /// The system geometry.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// The address mapping (for callers that need full [`crate::Location`]
    /// decode, e.g. the timing simulator's channel queues).
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Total banks across all channels.
    pub fn bank_count(&self) -> usize {
        self.channels.iter().map(BankEngine::bank_count).sum()
    }

    /// System-wide accesses processed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Epoch boundaries processed so far (batched and manual).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Decodes a physical byte address to `(global bank, row)` — the batch
    /// entry format of [`process`](Self::process).
    #[inline]
    pub fn decode(&self, addr: u64) -> (u32, u32) {
        self.mapping.decode_bank_row(addr)
    }

    /// Processes a batch of `(global bank, row)` activations in order:
    /// routes each to its channel engine and fires epoch boundaries (if
    /// configured) at the right system-wide positions (the segmentation is
    /// shared with the engine's sharded path — see
    /// `for_each_epoch_segment`).
    pub fn process(&mut self, batch: &[(u32, u32)]) -> BatchOutcome {
        let mut out = BatchOutcome {
            accesses: batch.len() as u64,
            ..BatchOutcome::default()
        };
        let channels = &mut self.channels;
        let route = &mut self.route;
        let banks_per_channel = self.banks_per_channel;
        let shards = self.shards;
        let epochs = crate::for_each_epoch_segment(
            batch.len(),
            self.accesses,
            self.epoch_len,
            |range, on_boundary| {
                for buf in route.iter_mut() {
                    buf.clear();
                }
                for &(bank, row) in &batch[range] {
                    let ch = (bank / banks_per_channel) as usize;
                    route[ch].push((bank % banks_per_channel, row));
                }
                for (ch, engine) in channels.iter_mut().enumerate() {
                    let sub = &route[ch];
                    if sub.is_empty() {
                        continue; // skip the per-batch pool/snapshot overhead
                    }
                    let o = if shards > 1 {
                        engine.process_sharded(sub, shards)
                    } else {
                        engine.process(sub)
                    };
                    out.refresh_events += o.refresh_events;
                    out.refreshed_rows += o.refreshed_rows;
                }
                if on_boundary {
                    for engine in channels.iter_mut() {
                        engine.end_epoch();
                    }
                }
            },
        );
        self.accesses += batch.len() as u64;
        self.epochs += epochs;
        out.epochs = epochs;
        out
    }

    /// Decodes and processes a batch of physical addresses (see
    /// [`process`](Self::process)).
    pub fn process_addrs(&mut self, addrs: &[u64]) -> BatchOutcome {
        let batch: Vec<(u32, u32)> = addrs.iter().map(|&a| self.decode(a)).collect();
        self.process(&batch)
    }

    /// Drives one activation through global bank `bank` and returns the
    /// refreshes the scheme requests. Fires no epoch boundaries — see
    /// [`BankEngine::activate`].
    ///
    /// # Panics
    ///
    /// Panics if the system was configured with
    /// [`with_epoch_length`](Self::with_epoch_length) (single accesses and
    /// access-count epochs cannot be mixed) or `bank` is out of range.
    #[inline]
    pub fn activate_global(&mut self, bank: u32, row: u32) -> Refreshes {
        assert!(
            self.epoch_len.is_none(),
            "MemorySystem::activate_global/activate_in_channel cannot be mixed with \
             access-count epoch accounting (with_epoch_length): the access would shift \
             the batched epoch phase. Drive epochs from your own clock via end_epoch() \
             instead."
        );
        self.accesses += 1;
        let ch = (bank / self.banks_per_channel) as usize;
        self.channels[ch].activate((bank % self.banks_per_channel) as usize, row)
    }

    /// [`activate_global`](Self::activate_global) addressed as
    /// `(channel, bank-in-channel)` — the coordinates the per-channel
    /// memory controllers use.
    #[inline]
    pub fn activate_in_channel(&mut self, channel: usize, bank: usize, row: u32) -> Refreshes {
        self.activate_global(channel as u32 * self.banks_per_channel + bank as u32, row)
    }

    /// Signals an auto-refresh epoch boundary to every bank of every
    /// channel.
    pub fn end_epoch(&mut self) {
        self.epochs += 1;
        for engine in &mut self.channels {
            engine.end_epoch();
        }
    }

    /// Scheme statistics aggregated across all banks, in global bank order.
    pub fn stats(&self) -> SchemeStats {
        let mut total = SchemeStats::default();
        for engine in &self.channels {
            total.merge(&engine.stats());
        }
        total
    }

    /// Per-bank scheme statistics in global bank order (banks without a
    /// scheme are skipped).
    pub fn per_bank_stats(&self) -> Vec<SchemeStats> {
        self.channels
            .iter()
            .flat_map(BankEngine::per_bank_stats)
            .collect()
    }

    /// Row activations observed per bank, in global bank order.
    pub fn activations_per_bank(&self) -> Vec<u64> {
        self.channels
            .iter()
            .flat_map(|e| e.activations_per_bank().iter().copied())
            .collect()
    }

    /// The attached scheme instances in global bank order (banks without a
    /// scheme are skipped).
    pub fn schemes(&self) -> impl Iterator<Item = &SchemeInstance> {
        self.channels.iter().flat_map(BankEngine::schemes)
    }

    /// The per-channel engines, in channel order (diagnostics).
    pub fn channel_engines(&self) -> &[BankEngine] {
        &self.channels
    }

    /// Snapshot of everything the simulator layers report, at system scope.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            accesses: self.accesses,
            epochs: self.epochs,
            activations_per_bank: self.activations_per_bank(),
            scheme_stats: self.stats(),
            per_bank_stats: self.per_bank_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> MemGeometry {
        MemGeometry {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 4096,
            lines_per_row: 16,
            line_bytes: 64,
        }
    }

    fn batch(n: u64) -> Vec<(u32, u32)> {
        (0..n)
            .map(|i| {
                let bank = (i % 16) as u32;
                let row = if i % 3 == 0 {
                    99
                } else {
                    (i.wrapping_mul(2_654_435_761) % 4096) as u32
                };
                (bank, row)
            })
            .collect()
    }

    #[test]
    fn routes_match_flat_engine() {
        // The exhaustive per-spec sweep lives in tests/equivalence.rs.
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let trace = batch(40_000);
        let mut flat = BankEngine::new(spec, 16, 4096).with_epoch_length(9_000);
        flat.process(&trace);
        for shards in [1usize, 4] {
            let mut system = MemorySystem::new(geometry(), spec)
                .with_epoch_length(9_000)
                .with_shards(shards);
            system.process(&trace);
            assert_eq!(system.stats(), flat.stats(), "{shards} shards");
            assert_eq!(system.per_bank_stats(), flat.per_bank_stats());
            assert_eq!(system.activations_per_bank(), flat.activations_per_bank());
            assert_eq!(system.epochs(), flat.epochs());
            assert_eq!(system.accesses(), flat.accesses());
        }
        assert!(flat.stats().refresh_events > 0);
    }

    #[test]
    fn decode_and_addr_batches_route_by_address() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None);
        let addr = system.mapping().encode_line(1, 0, 3, 42, 0);
        assert_eq!(system.decode(addr), (11, 42));
        system.process_addrs(&[addr, addr, addr]);
        assert_eq!(system.activations_per_bank()[11], 3);
        assert_eq!(system.accesses(), 3);
    }

    #[test]
    fn single_access_path_reaches_the_right_channel() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 4,
        };
        let mut system = MemorySystem::new(geometry(), spec);
        let mut rows = 0u64;
        for _ in 0..16 {
            rows += system.activate_in_channel(1, 2, 123).total_rows();
        }
        system.end_epoch();
        assert!(rows > 0);
        assert_eq!(system.activations_per_bank()[10], 16);
        assert_eq!(system.epochs(), 1);
        assert_eq!(system.report().accesses, 16);
    }

    #[test]
    #[should_panic(expected = "cannot be mixed with access-count epoch accounting")]
    fn activate_on_epoch_configured_system_is_rejected() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None).with_epoch_length(100);
        let _ = system.activate_global(0, 1);
    }

    #[test]
    fn epochs_fire_at_system_wide_positions_across_batches() {
        let mut system = MemorySystem::new(geometry(), SchemeSpec::None).with_epoch_length(3_000);
        let trace = batch(10_000);
        let mut epochs = 0;
        for chunk in trace.chunks(1_700) {
            epochs += system.process(chunk).epochs;
        }
        assert_eq!(epochs, 3);
        assert_eq!(system.epochs(), 3);
        assert_eq!(system.accesses(), 10_000);
    }
}
