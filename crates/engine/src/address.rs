//! Physical-address ↔ DRAM-location mapping.
//!
//! USIMM's default policy — and the paper's Table I — orders the fields
//! `rw:rk:bk:ch:col:offset` from most to least significant bit. The field
//! *widths* derive from the geometry counts, so the same policy covers the
//! paper's 2-channel and 4-channel systems (§VIII-B) as well as arbitrary
//! power-of-two geometries (the multi-channel front-end is
//! [`crate::MemorySystem`]).
//!
//! This module used to live in `cat-sim`; it moved down into `cat-engine`
//! so the engine can own the whole decode-to-scheme path without depending
//! on the simulator. `cat-sim` re-exports these types and converts its
//! `SystemConfig` into a [`MemGeometry`].

use std::fmt;

/// The DRAM geometry an address mapping (and a [`crate::MemorySystem`])
/// is built over. Every field must be a nonzero power of two — see
/// [`MemGeometry::validate`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemGeometry {
    /// Number of memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Cache lines per row.
    pub lines_per_row: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
}

/// A geometry field that is not a nonzero power of two.
///
/// The bit-field address mapping aliases silently on non-power-of-two
/// counts (e.g. `banks_per_rank: 6` decodes two different addresses to the
/// same bank), so constructors hard-error instead.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GeometryError {
    field: &'static str,
    value: u32,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory geometry field `{}` must be a nonzero power of two, got {} \
             (a bit-field address map would silently alias)",
            self.field, self.value
        )
    }
}

impl std::error::Error for GeometryError {}

impl MemGeometry {
    /// Checks that every field is a nonzero power of two (the bit-field
    /// mapping is only injective under that condition).
    pub fn validate(&self) -> Result<(), GeometryError> {
        let fields = [
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("banks_per_rank", self.banks_per_rank),
            ("rows_per_bank", self.rows_per_bank),
            ("lines_per_row", self.lines_per_row),
            ("line_bytes", self.line_bytes),
        ];
        for (field, value) in fields {
            if !value.is_power_of_two() {
                return Err(GeometryError { field, value });
            }
        }
        Ok(())
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Banks per channel.
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// Flat bank index of a decoded location across the whole system
    /// (`channel · ranks · banks + rank · banks + bank`).
    pub fn global_bank(&self, loc: &Location) -> u32 {
        (loc.channel * self.ranks_per_channel + loc.rank) * self.banks_per_rank + loc.bank
    }
}

impl From<&MemGeometry> for MemGeometry {
    fn from(g: &MemGeometry) -> Self {
        *g
    }
}

/// A decoded DRAM location.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Cache-line column within the row.
    pub col: u32,
}

impl Location {
    /// Flat bank index across the whole system
    /// (`channel · ranks · banks + rank · banks + bank`).
    pub fn global_bank(&self, geometry: impl Into<MemGeometry>) -> u32 {
        geometry.into().global_bank(self)
    }
}

/// Bit-field description of an address mapping.
///
/// ```
/// use cat_engine::{AddressMapping, MemGeometry};
/// let geometry = MemGeometry {
///     channels: 2,
///     ranks_per_channel: 1,
///     banks_per_rank: 8,
///     rows_per_bank: 65_536,
///     lines_per_row: 256,
///     line_bytes: 64,
/// };
/// let map = AddressMapping::new(&geometry);
/// let loc = map.decode(map.encode_line(1, 0, 3, 1_234, 17));
/// assert_eq!((loc.channel, loc.bank, loc.row, loc.col), (1, 3, 1_234, 17));
/// assert_eq!(map.decode_bank_row(map.encode_line(1, 0, 3, 9, 0)), (11, 9));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AddressMapping {
    offset_bits: u32,
    col_bits: u32,
    ch_bits: u32,
    bk_bits: u32,
    rk_bits: u32,
    row_mask: u32,
    geometry: MemGeometry,
}

fn bits_for(n: u32) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

impl AddressMapping {
    /// Builds the mapping for a memory geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`MemGeometry::validate`] — a release
    /// build must never decode through an aliasing map.
    pub fn new(geometry: impl Into<MemGeometry>) -> Self {
        let g = geometry.into();
        if let Err(e) = g.validate() {
            panic!("invalid memory geometry: {e}");
        }
        AddressMapping {
            offset_bits: bits_for(g.line_bytes),
            col_bits: bits_for(g.lines_per_row),
            ch_bits: bits_for(g.channels),
            bk_bits: bits_for(g.banks_per_rank),
            rk_bits: bits_for(g.ranks_per_channel),
            row_mask: g.rows_per_bank - 1,
            geometry: g,
        }
    }

    /// The geometry this mapping was built for.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// Decodes a byte address into its DRAM location.
    pub fn decode(&self, addr: u64) -> Location {
        let mut a = addr >> self.offset_bits;
        let col = (a & ((1 << self.col_bits) - 1)) as u32;
        a >>= self.col_bits;
        let channel = (a & ((1 << self.ch_bits) - 1)) as u32;
        a >>= self.ch_bits;
        let bank = (a & ((1 << self.bk_bits) - 1)) as u32;
        a >>= self.bk_bits;
        let rank = if self.rk_bits == 0 {
            0
        } else {
            (a & ((1 << self.rk_bits) - 1)) as u32
        };
        a >>= self.rk_bits;
        let row = (a as u32) & self.row_mask;
        Location {
            channel,
            rank,
            bank,
            row,
            col,
        }
    }

    /// Flat bank index of a decoded location (delegates to
    /// [`MemGeometry::global_bank`] — the formula lives there, once).
    pub fn global_bank(&self, loc: &Location) -> u32 {
        self.geometry.global_bank(loc)
    }

    /// Decodes a byte address straight to `(global bank, row)` — the form
    /// the engines consume. This is the whole decode front-end of the
    /// batched paths, so bank ids are full `u32`s end to end (no narrowing
    /// cast anywhere between here and the per-bank schemes).
    pub fn decode_bank_row(&self, addr: u64) -> (u32, u32) {
        let loc = self.decode(addr);
        (self.global_bank(&loc), loc.row)
    }

    /// Composes the byte address of a cache line at the given location —
    /// the inverse of [`decode`](Self::decode); used by the workload
    /// generators.
    pub fn encode_line(&self, channel: u32, rank: u32, bank: u32, row: u32, col: u32) -> u64 {
        let mut a = u64::from(row & self.row_mask);
        a = (a << self.rk_bits) | u64::from(rank);
        a = (a << self.bk_bits) | u64::from(bank);
        a = (a << self.ch_bits) | u64::from(channel);
        a = (a << self.col_bits) | u64::from(col);
        a << self.offset_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> MemGeometry {
        MemGeometry {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 65_536,
            lines_per_row: 256,
            line_bytes: 64,
        }
    }

    #[test]
    fn round_trip() {
        let map = AddressMapping::new(geometry());
        for (ch, bank, row, col) in [(0, 0, 0, 0), (1, 7, 65_535, 255), (0, 3, 40_000, 100)] {
            let addr = map.encode_line(ch, 0, bank, row, col);
            let loc = map.decode(addr);
            assert_eq!(
                (loc.channel, loc.rank, loc.bank, loc.row, loc.col),
                (ch, 0, bank, row, col)
            );
        }
    }

    #[test]
    fn wide_geometry_round_trips_past_u16_banks() {
        // 8 × 4 × 4096 = 131_072 banks: global ids overflow u16 and must
        // survive the whole decode path unclipped.
        let g = MemGeometry {
            channels: 8,
            ranks_per_channel: 4,
            banks_per_rank: 4096,
            rows_per_bank: 16,
            lines_per_row: 2,
            line_bytes: 64,
        };
        let map = AddressMapping::new(g);
        assert_eq!(g.total_banks(), 131_072);
        for global in [0u32, 65_535, 65_536, 70_001, 131_071] {
            let bank = global % g.banks_per_rank;
            let rank = (global / g.banks_per_rank) % g.ranks_per_channel;
            let channel = global / g.banks_per_channel();
            let addr = map.encode_line(channel, rank, bank, 5, 1);
            assert_eq!(map.decode_bank_row(addr), (global, 5));
            assert_eq!(map.decode(addr).global_bank(g), global);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero power of two")]
    fn non_power_of_two_banks_hard_error() {
        // This must fail in release builds too — it used to be only a
        // debug_assert, silently aliasing the map in --release.
        let g = MemGeometry {
            banks_per_rank: 6,
            ..geometry()
        };
        let _ = AddressMapping::new(g);
    }

    #[test]
    #[should_panic(expected = "nonzero power of two")]
    fn zero_field_hard_error() {
        let g = MemGeometry {
            channels: 0,
            ..geometry()
        };
        let _ = AddressMapping::new(g);
    }

    #[test]
    fn geometry_error_names_the_field() {
        let g = MemGeometry {
            rows_per_bank: 100,
            ..geometry()
        };
        let e = g.validate().unwrap_err();
        assert!(e.to_string().contains("rows_per_bank"));
        assert!(e.to_string().contains("100"));
    }
}
