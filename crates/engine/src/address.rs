//! Physical-address ↔ DRAM-location mapping.
//!
//! USIMM's default policy — and the paper's Table I — orders the fields
//! `rw:rk:bk:ch:col:offset` from most to least significant bit. The field
//! *widths* derive from the geometry counts, so the same policy covers the
//! paper's 2-channel and 4-channel systems (§VIII-B) as well as arbitrary
//! power-of-two geometries (the multi-channel front-end is
//! [`crate::MemorySystem`]).
//!
//! This module used to live in `cat-sim`; it moved down into `cat-engine`
//! so the engine can own the whole decode-to-scheme path without depending
//! on the simulator. `cat-sim` re-exports these types and converts its
//! `SystemConfig` into a [`MemGeometry`].

use std::fmt;

/// The DRAM geometry an address mapping (and a [`crate::MemorySystem`])
/// is built over. Every field must be a nonzero power of two — see
/// [`MemGeometry::validate`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemGeometry {
    /// Number of memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Cache lines per row.
    pub lines_per_row: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
}

/// A geometry field that is not a nonzero power of two.
///
/// The bit-field address mapping aliases silently on non-power-of-two
/// counts (e.g. `banks_per_rank: 6` decodes two different addresses to the
/// same bank), so constructors hard-error instead.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GeometryError {
    field: &'static str,
    value: u32,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory geometry field `{}` must be a nonzero power of two, got {} \
             (a bit-field address map would silently alias)",
            self.field, self.value
        )
    }
}

impl std::error::Error for GeometryError {}

impl MemGeometry {
    /// Checks that every field is a nonzero power of two (the bit-field
    /// mapping is only injective under that condition).
    pub fn validate(&self) -> Result<(), GeometryError> {
        let fields = [
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("banks_per_rank", self.banks_per_rank),
            ("rows_per_bank", self.rows_per_bank),
            ("lines_per_row", self.lines_per_row),
            ("line_bytes", self.line_bytes),
        ];
        for (field, value) in fields {
            if !value.is_power_of_two() {
                return Err(GeometryError { field, value });
            }
        }
        Ok(())
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Banks per channel.
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// Flat bank index of a decoded location across the whole system
    /// (`channel · ranks · banks + rank · banks + bank`).
    pub fn global_bank(&self, loc: &Location) -> u32 {
        (loc.channel * self.ranks_per_channel + loc.rank) * self.banks_per_rank + loc.bank
    }
}

impl From<&MemGeometry> for MemGeometry {
    fn from(g: &MemGeometry) -> Self {
        *g
    }
}

/// A decoded DRAM location.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Cache-line column within the row.
    pub col: u32,
}

impl Location {
    /// Flat bank index across the whole system
    /// (`channel · ranks · banks + rank · banks + bank`).
    pub fn global_bank(&self, geometry: impl Into<MemGeometry>) -> u32 {
        geometry.into().global_bank(self)
    }
}

/// Bit-field description of an address mapping.
///
/// ```
/// use cat_engine::{AddressMapping, MemGeometry};
/// let geometry = MemGeometry {
///     channels: 2,
///     ranks_per_channel: 1,
///     banks_per_rank: 8,
///     rows_per_bank: 65_536,
///     lines_per_row: 256,
///     line_bytes: 64,
/// };
/// let map = AddressMapping::new(&geometry);
/// let loc = map.decode(map.encode_line(1, 0, 3, 1_234, 17));
/// assert_eq!((loc.channel, loc.bank, loc.row, loc.col), (1, 3, 1_234, 17));
/// assert_eq!(map.decode_bank_row(map.encode_line(1, 0, 3, 9, 0)), (11, 9));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AddressMapping {
    offset_bits: u32,
    col_bits: u32,
    ch_bits: u32,
    bk_bits: u32,
    rk_bits: u32,
    row_mask: u32,
    geometry: MemGeometry,
}

fn bits_for(n: u32) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

impl AddressMapping {
    /// Builds the mapping for a memory geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`MemGeometry::validate`] — a release
    /// build must never decode through an aliasing map.
    pub fn new(geometry: impl Into<MemGeometry>) -> Self {
        let g = geometry.into();
        if let Err(e) = g.validate() {
            panic!("invalid memory geometry: {e}");
        }
        AddressMapping {
            offset_bits: bits_for(g.line_bytes),
            col_bits: bits_for(g.lines_per_row),
            ch_bits: bits_for(g.channels),
            bk_bits: bits_for(g.banks_per_rank),
            rk_bits: bits_for(g.ranks_per_channel),
            row_mask: g.rows_per_bank - 1,
            geometry: g,
        }
    }

    /// The geometry this mapping was built for.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// Decodes a byte address into its DRAM location.
    pub fn decode(&self, addr: u64) -> Location {
        let mut a = addr >> self.offset_bits;
        let col = (a & ((1 << self.col_bits) - 1)) as u32;
        a >>= self.col_bits;
        let channel = (a & ((1 << self.ch_bits) - 1)) as u32;
        a >>= self.ch_bits;
        let bank = (a & ((1 << self.bk_bits) - 1)) as u32;
        a >>= self.bk_bits;
        let rank = if self.rk_bits == 0 {
            0
        } else {
            (a & ((1 << self.rk_bits) - 1)) as u32
        };
        a >>= self.rk_bits;
        let row = (a as u32) & self.row_mask;
        Location {
            channel,
            rank,
            bank,
            row,
            col,
        }
    }

    /// Flat bank index of a decoded location (delegates to
    /// [`MemGeometry::global_bank`] — the formula lives there, once).
    pub fn global_bank(&self, loc: &Location) -> u32 {
        self.geometry.global_bank(loc)
    }

    /// Decodes a byte address straight to `(global bank, row)` — the form
    /// the engines consume. This is the whole decode front-end of the
    /// batched paths, so bank ids are full `u32`s end to end (no narrowing
    /// cast anywhere between here and the per-bank schemes).
    pub fn decode_bank_row(&self, addr: u64) -> (u32, u32) {
        let loc = self.decode(addr);
        (self.global_bank(&loc), loc.row)
    }

    /// Composes the byte address of a cache line at the given location —
    /// the inverse of [`decode`](Self::decode); used by the workload
    /// generators.
    pub fn encode_line(&self, channel: u32, rank: u32, bank: u32, row: u32, col: u32) -> u64 {
        let mut a = u64::from(row & self.row_mask);
        a = (a << self.rk_bits) | u64::from(rank);
        a = (a << self.bk_bits) | u64::from(bank);
        a = (a << self.ch_bits) | u64::from(channel);
        a = (a << self.col_bits) | u64::from(col);
        a << self.offset_bits
    }
}

/// A validated sub-range of a [`MemGeometry`]'s global bank space — the
/// unit of datapath partitioning (`DESIGN.md §12`).
///
/// A slice owns the contiguous global banks `start_bank ..
/// start_bank + banks`. Because the global bank order is channel-major,
/// a slice is "by channel, or by bank range within a channel" exactly
/// when it is power-of-two sized and naturally aligned — which
/// [`GeometrySlice::new`] enforces — so a slice is always either a whole
/// number of channels or a sub-range of one channel, never a misaligned
/// straddle.
///
/// Slices carry **global** bank indices end to end: a bank keeps the
/// index (and therefore the PRA seed and the checkpoint-image identity)
/// it has in the unsliced system, which is what makes per-slice engines
/// bit-identical to one flat engine (`DESIGN.md §7`) and checkpoint
/// images portable between fleet layouts.
///
/// ```
/// use cat_engine::{GeometrySlice, MemGeometry};
/// let g = MemGeometry {
///     channels: 2,
///     ranks_per_channel: 1,
///     banks_per_rank: 8,
///     rows_per_bank: 4096,
///     lines_per_row: 16,
///     line_bytes: 64,
/// };
/// let s = GeometrySlice::new(&g, 8, 8).unwrap(); // channel 1
/// assert!(s.contains(11) && !s.contains(3));
/// assert_eq!((s.start_bank(), s.banks()), (8, 8));
/// assert!(GeometrySlice::new(&g, 4, 8).is_err()); // misaligned straddle
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct GeometrySlice {
    geometry: MemGeometry,
    start_bank: u32,
    banks: u32,
}

/// Why a [`GeometrySlice`] could not be built. Slicing mistakes are
/// configuration errors reachable from remote fleet peers, so they are
/// typed values, never panics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SliceError {
    /// The underlying geometry itself is invalid.
    Geometry(GeometryError),
    /// The slice spans zero banks.
    Empty,
    /// The bank count is not a power of two (the slice would straddle
    /// the bit-field decode boundaries and alias across channels).
    NotPowerOfTwo {
        /// The offending bank count.
        banks: u32,
    },
    /// `start_bank` is not a multiple of the slice size, so the slice
    /// straddles a natural boundary (part of two channels without
    /// covering either).
    Misaligned {
        /// First global bank of the slice.
        start_bank: u32,
        /// Banks the slice spans.
        banks: u32,
    },
    /// The slice reaches past the geometry's last bank.
    OutOfRange {
        /// First global bank of the slice.
        start_bank: u32,
        /// Banks the slice spans.
        banks: u32,
        /// Banks the geometry actually has.
        total_banks: u32,
    },
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SliceError::Geometry(e) => write!(f, "slice over an invalid geometry: {e}"),
            SliceError::Empty => write!(f, "geometry slice must span at least one bank"),
            SliceError::NotPowerOfTwo { banks } => write!(
                f,
                "geometry slice must span a power-of-two bank count, got {banks}"
            ),
            SliceError::Misaligned { start_bank, banks } => write!(
                f,
                "geometry slice of {banks} banks must start at a multiple of its size, \
                 got start bank {start_bank}"
            ),
            SliceError::OutOfRange {
                start_bank,
                banks,
                total_banks,
            } => write!(
                f,
                "geometry slice {start_bank}..{} reaches past the {total_banks}-bank geometry",
                start_bank as u64 + banks as u64
            ),
        }
    }
}

impl std::error::Error for SliceError {}

impl From<GeometryError> for SliceError {
    fn from(e: GeometryError) -> Self {
        SliceError::Geometry(e)
    }
}

impl GeometrySlice {
    /// Builds the slice `start_bank .. start_bank + banks` of `geometry`,
    /// validating the power-of-two size, natural alignment and range
    /// invariants documented on the type.
    pub fn new(
        geometry: impl Into<MemGeometry>,
        start_bank: u32,
        banks: u32,
    ) -> Result<Self, SliceError> {
        let geometry = geometry.into();
        geometry.validate()?;
        if banks == 0 {
            return Err(SliceError::Empty);
        }
        if !banks.is_power_of_two() {
            return Err(SliceError::NotPowerOfTwo { banks });
        }
        if !start_bank.is_multiple_of(banks) {
            return Err(SliceError::Misaligned { start_bank, banks });
        }
        let total_banks = geometry.total_banks();
        if u64::from(start_bank) + u64::from(banks) > u64::from(total_banks) {
            return Err(SliceError::OutOfRange {
                start_bank,
                banks,
                total_banks,
            });
        }
        Ok(GeometrySlice {
            geometry,
            start_bank,
            banks,
        })
    }

    /// The slice covering the whole geometry — what an unpartitioned
    /// system owns, and what a backend serving no `--slice` advertises.
    pub fn full(geometry: impl Into<MemGeometry>) -> Result<Self, SliceError> {
        let geometry = geometry.into();
        Self::new(geometry, 0, geometry.total_banks())
    }

    /// The slice owning exactly channel `channel` of `geometry`.
    pub fn channel(geometry: impl Into<MemGeometry>, channel: u32) -> Result<Self, SliceError> {
        let geometry = geometry.into();
        let bpc = geometry.banks_per_channel();
        Self::new(geometry, channel * bpc, bpc)
    }

    /// The geometry this slice partitions.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// First global bank of the slice.
    pub fn start_bank(&self) -> u32 {
        self.start_bank
    }

    /// Banks the slice spans.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// One past the last global bank of the slice.
    pub fn end_bank(&self) -> u32 {
        self.start_bank + self.banks
    }

    /// Whether the slice covers the whole geometry.
    pub fn is_full(&self) -> bool {
        self.start_bank == 0 && self.banks == self.geometry.total_banks()
    }

    /// Whether global bank `bank` falls inside the slice.
    #[inline]
    pub fn contains(&self, bank: u32) -> bool {
        bank.wrapping_sub(self.start_bank) < self.banks
    }
}

impl fmt::Display for GeometrySlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "banks {}..{} of {}",
            self.start_bank,
            self.end_bank(),
            self.geometry.total_banks()
        )
    }
}

/// An exact, ordered cover of a geometry's bank space by disjoint
/// [`GeometrySlice`]s — the partition the datapath routes over. The
/// position of a slice in the partition is its **slice id**; every
/// order-sensitive merge (stats, per-bank vectors, footprints) is fixed
/// by it (`DESIGN.md §12`).
///
/// ```
/// use cat_engine::{MemGeometry, Partition};
/// let g = MemGeometry {
///     channels: 2,
///     ranks_per_channel: 1,
///     banks_per_rank: 8,
///     rows_per_bank: 4096,
///     lines_per_row: 16,
///     line_bytes: 64,
/// };
/// let p = Partition::uniform(&g, 4).unwrap();
/// assert_eq!(p.len(), 4);
/// assert_eq!(p.route(0), 0);
/// assert_eq!(p.route(13), 3);
/// assert_eq!(Partition::per_channel(&g).unwrap().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    slices: Vec<GeometrySlice>,
    /// `log2(slice size)` when every slice spans the same bank count —
    /// the routed hot path is then a shift instead of a binary search.
    uniform_shift: Option<u32>,
}

/// Why a set of slices is not a valid [`Partition`]. Like
/// [`SliceError`], these are reachable from remote fleet configuration,
/// so they are typed values, never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// One of the member slices is itself invalid.
    Slice(SliceError),
    /// The partition has no slices at all.
    Empty,
    /// Two slices were built over different geometries.
    GeometryMismatch {
        /// Index of the first slice over a different geometry.
        slice: usize,
    },
    /// Slice `slice` overlaps its predecessor (or the slices are not in
    /// ascending bank order — the slice id order *is* the bank order).
    Overlap {
        /// Index of the overlapping slice.
        slice: usize,
    },
    /// The cover has a hole before slice `slice` (or after the last
    /// slice, in which case `slice` is the partition length).
    Gap {
        /// Index of the slice after the hole.
        slice: usize,
        /// First global bank the cover is missing.
        missing_bank: u32,
    },
    /// A uniform split into `slices` parts does not divide the
    /// geometry's `total_banks` into power-of-two slices.
    UnevenSplit {
        /// Requested slice count.
        slices: u32,
        /// Banks that would have to be divided.
        total_banks: u32,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Slice(e) => write!(f, "invalid partition member: {e}"),
            PartitionError::Empty => write!(f, "partition must contain at least one slice"),
            PartitionError::GeometryMismatch { slice } => write!(
                f,
                "partition slice {slice} was built over a different geometry"
            ),
            PartitionError::Overlap { slice } => write!(
                f,
                "partition slice {slice} overlaps its predecessor (slices must be \
                 disjoint and in ascending bank order)"
            ),
            PartitionError::Gap {
                slice,
                missing_bank,
            } => write!(
                f,
                "partition does not cover bank {missing_bank} (hole before slice {slice})"
            ),
            PartitionError::UnevenSplit {
                slices,
                total_banks,
            } => write!(
                f,
                "cannot split {total_banks} banks into {slices} power-of-two slices"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<SliceError> for PartitionError {
    fn from(e: SliceError) -> Self {
        PartitionError::Slice(e)
    }
}

impl Partition {
    /// Builds a partition from slices already in ascending bank order,
    /// validating that they share one geometry and cover its bank space
    /// exactly — no overlap, no gap.
    pub fn from_slices(slices: Vec<GeometrySlice>) -> Result<Self, PartitionError> {
        let Some(first) = slices.first() else {
            return Err(PartitionError::Empty);
        };
        let geometry = first.geometry;
        let mut expected = 0u32;
        for (i, s) in slices.iter().enumerate() {
            if s.geometry != geometry {
                return Err(PartitionError::GeometryMismatch { slice: i });
            }
            if s.start_bank < expected {
                return Err(PartitionError::Overlap { slice: i });
            }
            if s.start_bank > expected {
                return Err(PartitionError::Gap {
                    slice: i,
                    missing_bank: expected,
                });
            }
            expected = s.end_bank();
        }
        if expected != geometry.total_banks() {
            return Err(PartitionError::Gap {
                slice: slices.len(),
                missing_bank: expected,
            });
        }
        let size = slices[0].banks;
        let uniform_shift = slices
            .iter()
            .all(|s| s.banks == size)
            .then(|| bits_for(size));
        Ok(Partition {
            slices,
            uniform_shift,
        })
    }

    /// The partition with one slice per channel — the layout the
    /// unpartitioned [`crate::MemorySystem`] has always used.
    pub fn per_channel(geometry: impl Into<MemGeometry>) -> Result<Self, PartitionError> {
        let geometry = geometry.into();
        let slices = (0..geometry.channels)
            .map(|c| GeometrySlice::channel(geometry, c))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_slices(slices)
    }

    /// Splits the geometry into `slices` equal slices (`slices` must be
    /// a power of two no larger than the bank count, so every slice is a
    /// power-of-two aligned range).
    pub fn uniform(geometry: impl Into<MemGeometry>, slices: u32) -> Result<Self, PartitionError> {
        let geometry = geometry.into();
        geometry.validate().map_err(SliceError::from)?;
        let total_banks = geometry.total_banks();
        if slices == 0 || !slices.is_power_of_two() || slices > total_banks {
            return Err(PartitionError::UnevenSplit {
                slices,
                total_banks,
            });
        }
        let size = total_banks / slices;
        let members = (0..slices)
            .map(|i| GeometrySlice::new(geometry, i * size, size))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_slices(members)
    }

    /// The geometry this partition covers.
    pub fn geometry(&self) -> &MemGeometry {
        self.slices[0].geometry()
    }

    /// The member slices, in slice-id (= ascending bank) order.
    pub fn slices(&self) -> &[GeometrySlice] {
        &self.slices
    }

    /// Number of slices.
    #[allow(clippy::len_without_is_empty)] // a partition is never empty
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Routes a global bank to the id of the slice that owns it — the
    /// decode hook of the partitioned datapath. Uniform partitions route
    /// with a shift; mixed slice sizes fall back to a binary search over
    /// the slice starts.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is outside the geometry (the partition covers
    /// the bank space exactly, so every in-range bank routes).
    #[inline]
    pub fn route(&self, bank: u32) -> usize {
        assert!(
            bank < self.geometry().total_banks(),
            "bank {bank} outside the partitioned geometry"
        );
        match self.uniform_shift {
            Some(shift) => (bank >> shift) as usize,
            None => self.slices.partition_point(|s| s.end_bank() <= bank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> MemGeometry {
        MemGeometry {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 65_536,
            lines_per_row: 256,
            line_bytes: 64,
        }
    }

    #[test]
    fn round_trip() {
        let map = AddressMapping::new(geometry());
        for (ch, bank, row, col) in [(0, 0, 0, 0), (1, 7, 65_535, 255), (0, 3, 40_000, 100)] {
            let addr = map.encode_line(ch, 0, bank, row, col);
            let loc = map.decode(addr);
            assert_eq!(
                (loc.channel, loc.rank, loc.bank, loc.row, loc.col),
                (ch, 0, bank, row, col)
            );
        }
    }

    #[test]
    fn wide_geometry_round_trips_past_u16_banks() {
        // 8 × 4 × 4096 = 131_072 banks: global ids overflow u16 and must
        // survive the whole decode path unclipped.
        let g = MemGeometry {
            channels: 8,
            ranks_per_channel: 4,
            banks_per_rank: 4096,
            rows_per_bank: 16,
            lines_per_row: 2,
            line_bytes: 64,
        };
        let map = AddressMapping::new(g);
        assert_eq!(g.total_banks(), 131_072);
        for global in [0u32, 65_535, 65_536, 70_001, 131_071] {
            let bank = global % g.banks_per_rank;
            let rank = (global / g.banks_per_rank) % g.ranks_per_channel;
            let channel = global / g.banks_per_channel();
            let addr = map.encode_line(channel, rank, bank, 5, 1);
            assert_eq!(map.decode_bank_row(addr), (global, 5));
            assert_eq!(map.decode(addr).global_bank(g), global);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero power of two")]
    fn non_power_of_two_banks_hard_error() {
        // This must fail in release builds too — it used to be only a
        // debug_assert, silently aliasing the map in --release.
        let g = MemGeometry {
            banks_per_rank: 6,
            ..geometry()
        };
        let _ = AddressMapping::new(g);
    }

    #[test]
    #[should_panic(expected = "nonzero power of two")]
    fn zero_field_hard_error() {
        let g = MemGeometry {
            channels: 0,
            ..geometry()
        };
        let _ = AddressMapping::new(g);
    }

    #[test]
    fn geometry_error_names_the_field() {
        let g = MemGeometry {
            rows_per_bank: 100,
            ..geometry()
        };
        let e = g.validate().unwrap_err();
        assert!(e.to_string().contains("rows_per_bank"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn slice_validation_hard_errors_are_typed() {
        let g = geometry(); // 16 banks, 8 per channel
        assert!(GeometrySlice::new(g, 0, 16).unwrap().is_full());
        assert_eq!(GeometrySlice::channel(g, 1).unwrap().start_bank(), 8);
        assert_eq!(GeometrySlice::new(g, 0, 0).unwrap_err(), SliceError::Empty);
        assert_eq!(
            GeometrySlice::new(g, 0, 6).unwrap_err(),
            SliceError::NotPowerOfTwo { banks: 6 }
        );
        assert_eq!(
            GeometrySlice::new(g, 4, 8).unwrap_err(),
            SliceError::Misaligned {
                start_bank: 4,
                banks: 8
            }
        );
        assert_eq!(
            GeometrySlice::new(g, 16, 8).unwrap_err(),
            SliceError::OutOfRange {
                start_bank: 16,
                banks: 8,
                total_banks: 16
            }
        );
        let bad = MemGeometry { channels: 3, ..g };
        assert!(matches!(
            GeometrySlice::full(bad).unwrap_err(),
            SliceError::Geometry(_)
        ));
    }

    #[test]
    fn slice_contains_and_display() {
        let g = geometry();
        let s = GeometrySlice::new(g, 8, 4).unwrap();
        assert!(s.contains(8) && s.contains(11));
        assert!(!s.contains(7) && !s.contains(12));
        assert_eq!(s.end_bank(), 12);
        assert_eq!(s.to_string(), "banks 8..12 of 16");
    }

    #[test]
    fn partition_covers_route_and_rejects_bad_covers() {
        let g = geometry();
        let p = Partition::uniform(g, 4).unwrap();
        for bank in 0..16 {
            let id = p.route(bank);
            assert!(p.slices()[id].contains(bank));
            assert_eq!(id, (bank / 4) as usize);
        }
        // Mixed slice sizes are a legal cover; routing falls back to the
        // binary search and still lands on the owner.
        let mixed = Partition::from_slices(vec![
            GeometrySlice::new(g, 0, 4).unwrap(),
            GeometrySlice::new(g, 4, 4).unwrap(),
            GeometrySlice::new(g, 8, 8).unwrap(),
        ])
        .unwrap();
        for bank in 0..16 {
            assert!(mixed.slices()[mixed.route(bank)].contains(bank));
        }

        assert_eq!(
            Partition::from_slices(Vec::new()).unwrap_err(),
            PartitionError::Empty
        );
        // Overlapping slices.
        assert_eq!(
            Partition::from_slices(vec![
                GeometrySlice::new(g, 0, 8).unwrap(),
                GeometrySlice::new(g, 4, 4).unwrap(),
            ])
            .unwrap_err(),
            PartitionError::Overlap { slice: 1 }
        );
        // Gapped cover in the middle…
        assert_eq!(
            Partition::from_slices(vec![
                GeometrySlice::new(g, 0, 4).unwrap(),
                GeometrySlice::new(g, 8, 8).unwrap(),
            ])
            .unwrap_err(),
            PartitionError::Gap {
                slice: 1,
                missing_bank: 4
            }
        );
        // …and at the end.
        assert_eq!(
            Partition::from_slices(vec![GeometrySlice::new(g, 0, 8).unwrap()]).unwrap_err(),
            PartitionError::Gap {
                slice: 1,
                missing_bank: 8
            }
        );
        // Two geometries cannot share a partition.
        let other = MemGeometry { channels: 4, ..g };
        assert_eq!(
            Partition::from_slices(vec![
                GeometrySlice::channel(g, 0).unwrap(),
                GeometrySlice::channel(other, 1).unwrap(),
            ])
            .unwrap_err(),
            PartitionError::GeometryMismatch { slice: 1 }
        );
        // Uniform splits must divide into power-of-two slices.
        assert_eq!(
            Partition::uniform(g, 3).unwrap_err(),
            PartitionError::UnevenSplit {
                slices: 3,
                total_banks: 16
            }
        );
        assert_eq!(
            Partition::uniform(g, 32).unwrap_err(),
            PartitionError::UnevenSplit {
                slices: 32,
                total_banks: 16
            }
        );
    }

    #[test]
    fn per_channel_partition_matches_channel_slices() {
        let g = geometry();
        let p = Partition::per_channel(g).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.slices()[1], GeometrySlice::channel(g, 1).unwrap());
        assert_eq!(p.route(7), 0);
        assert_eq!(p.route(8), 1);
        // per-channel ≡ uniform(channels) on any valid geometry.
        assert_eq!(p, Partition::uniform(g, 2).unwrap());
    }
}
