//! The fleet router: one process fronting N sliced `catd` backends
//! (`DESIGN.md §12`).
//!
//! [`IngestRouter`] consumes a merged client record stream and re-deals
//! it by [`Partition::route`]: each record goes to the backend owning its
//! global bank, buffered and flushed as wire frames over **one producer
//! connection per backend** — so every backend sees a single, gapless
//! sequence space and its `(seq, producer)` merge degenerates to FIFO.
//! Per-backend sub-streams preserve the merged stream's relative record
//! order, which is all the determinism contract needs: a backend's slice
//! engines never observe banks outside the slice, so dropping the other
//! slices' records from the stream is unobservable to them (`DESIGN.md
//! §7`).
//!
//! The router owns the **epoch clock**. Backends run clockless (their
//! handshake must advertise no epoch length) and receive
//! [`wire::Frame::EpochCut`] at every global epoch boundary — either
//! counted off by the router's own `epoch_len` or forwarded from the
//! client stream. Every backend gets every cut, at the exact record
//! position the single-host system would have cut, so per-backend epoch
//! counters agree and per-epoch accounting stays bit-identical.
//!
//! At session end the router gathers every backend's
//! [`StatsSnapshot`] and merges them **in slice-id order**: counters sum
//! (`max_depth_touched` takes the max), footprints sum, epochs must
//! agree. Slices partition the bank space, so the merge over any slicing
//! equals the unpartitioned totals exactly — associativity of the merge
//! is what makes the fleet ≡ single-host differential hold bit for bit.
//!
//! [`serve`] wraps all of that in the `catd`-shaped TCP loop: accept N
//! client producers, advertise the **union** geometry, drain the
//! deterministic merge through the router, reply the merged snapshot to
//! stats requesters. The `catd_router` example is this function behind a
//! command line.

use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::thread::JoinHandle;

use crate::ingest::{accept_producers, read_connection, IngestClient, IngestEvent, IngestQueue};
use crate::wire::{self, ServerHello, StatsSnapshot};
use crate::{GeometrySlice, Partition};

use cat_core::SchemeStats;

/// Options for [`IngestRouter::connect`] and [`serve`].
#[derive(Clone, Debug)]
pub struct RouterOptions {
    /// Client connections [`serve`] accepts; the session ends when all of
    /// them finish. (Ignored by [`IngestRouter::connect`].)
    pub producers: usize,
    /// Per-client ring bound, in records (see [`crate::ingest`]).
    /// (Ignored by [`IngestRouter::connect`].)
    pub queue_capacity: usize,
    /// The router's epoch clock: `Some(n)` cuts every backend after every
    /// `n` records of the merged stream (and refuses client cuts); `None`
    /// runs clockless and forwards client [`wire::Frame::EpochCut`]s.
    pub epoch_len: Option<u64>,
    /// Connection attempts per backend ([`IngestClient::connect_with_retry`]):
    /// a fleet usually starts all at once, so the router must tolerate
    /// backends that have not bound their listeners yet.
    pub connect_attempts: u32,
    /// Records buffered per backend before a flush becomes a wire frame.
    pub flush_records: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            producers: 1,
            queue_capacity: 1 << 16,
            epoch_len: None,
            connect_attempts: 30,
            flush_records: 8192,
        }
    }
}

/// What one router session did.
#[derive(Clone, Debug)]
pub struct RouterReport {
    /// The merged fleet snapshot (also what stats requesters were sent):
    /// bit-identical to a single-host [`crate::MemorySystem`] run on the
    /// union geometry over the same merged stream.
    pub snapshot: StatsSnapshot,
    /// Each backend's own snapshot, in slice-id order.
    pub per_backend: Vec<StatsSnapshot>,
    /// Client connections that requested (and were sent) the snapshot.
    pub stats_served: usize,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Splits a record stream across the backends of a [`Partition`] — the
/// fleet scatter stage described in the [module docs](self). Drive it
/// with [`scatter`](Self::scatter) (+ [`cut`](Self::cut) when clockless),
/// then [`finish_with_stats`](Self::finish_with_stats) to gather and
/// merge the fleet's snapshots.
pub struct IngestRouter {
    partition: Partition,
    backends: Vec<IngestClient>,
    /// Per-backend scatter buffers, flushed at `flush_records`, epoch
    /// cuts, and session end.
    pending: Vec<Vec<(u32, u32)>>,
    flush_records: usize,
    epoch_len: Option<u64>,
    /// Records until the next clock-driven cut (meaningful only with
    /// `epoch_len: Some`; kept ≥ 1 between calls).
    until_cut: u64,
    accesses: u64,
    epochs: u64,
    /// Fleet position when the session opened (summed/agreed from the
    /// backend handshakes): `0` for a fresh fleet, the recovered position
    /// when backends were killed and resumed (`DESIGN.md §11`/`§12`).
    start_accesses: u64,
    start_epochs: u64,
    spec: String,
}

impl std::fmt::Debug for IngestRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestRouter")
            .field("slices", &self.partition.len())
            .field("spec", &self.spec)
            .field("epoch_len", &self.epoch_len)
            .field("accesses", &self.accesses)
            .field("epochs", &self.epochs)
            .field("start_accesses", &self.start_accesses)
            .field("start_epochs", &self.start_epochs)
            .finish_non_exhaustive()
    }
}

impl IngestRouter {
    /// Connects one producer link to each backend (with bounded retry —
    /// [`RouterOptions::connect_attempts`]) and validates every handshake
    /// against the partition: backend `i` must advertise the partition's
    /// geometry, exactly slice `i`, the same scheme spec as its peers,
    /// and **no epoch clock of its own** (the router owns the clock).
    ///
    /// # Errors
    ///
    /// Connection errors once the retry budget is exhausted, and
    /// [`io::ErrorKind::InvalidData`] for a backend-count/partition
    /// mismatch or any handshake that contradicts the fleet layout.
    pub fn connect<A: ToSocketAddrs>(
        partition: &Partition,
        backends: &[A],
        options: &RouterOptions,
    ) -> io::Result<Self> {
        if backends.len() != partition.len() {
            return Err(bad(format!(
                "{} backend address(es) for a {}-slice partition",
                backends.len(),
                partition.len()
            )));
        }
        if options.epoch_len == Some(0) {
            return Err(bad("epoch length 0: use None to run clockless".into()));
        }
        let mut clients = Vec::with_capacity(backends.len());
        let mut spec: Option<String> = None;
        let mut start_accesses = 0u64;
        let mut start_epochs: Option<u64> = None;
        for (id, (addr, slice)) in backends.iter().zip(partition.slices()).enumerate() {
            // The router is each backend's only producer: producer id 0,
            // one gapless sequence space per backend.
            let client = IngestClient::connect_with_retry(addr, 0, options.connect_attempts)
                .map_err(|e| io::Error::new(e.kind(), format!("backend {id}: {e}")))?;
            let hello = client.server_hello();
            if hello.geometry != *partition.geometry() {
                return Err(bad(format!(
                    "backend {id}: serves {:?}, the fleet partition covers {:?}",
                    hello.geometry,
                    partition.geometry()
                )));
            }
            if hello.slice_start != slice.start_bank() || hello.slice_banks != slice.banks() {
                return Err(bad(format!(
                    "backend {id}: owns banks {}..{}, fleet slot {id} is {slice}",
                    hello.slice_start,
                    hello.slice_start + hello.slice_banks
                )));
            }
            if let Some(n) = hello.epoch_len {
                return Err(bad(format!(
                    "backend {id}: fires its own epoch boundaries (length {n}); fleet \
                     backends must run clockless — the router owns the epoch clock"
                )));
            }
            match &spec {
                None => spec = Some(hello.spec.clone()),
                Some(first) if *first != hello.spec => {
                    return Err(bad(format!(
                        "backend {id}: serves spec {:?}, backend 0 serves {first:?}",
                        hello.spec
                    )));
                }
                Some(_) => {}
            }
            // Every global cut reaches every backend, so a consistent
            // fleet — fresh or resumed — agrees on its epoch counter; the
            // access counters are per-slice and sum to the global stream
            // position, which phases the router's epoch clock below.
            match start_epochs {
                None => start_epochs = Some(hello.epochs),
                Some(first) if first != hello.epochs => {
                    return Err(bad(format!(
                        "backend {id}: resumed at epoch {}, backend 0 at epoch {first} — \
                         the fleet's checkpoints are not from the same cut",
                        hello.epochs
                    )));
                }
                Some(_) => {}
            }
            start_accesses += hello.accesses;
            clients.push(client);
        }
        let spec = spec.ok_or_else(|| bad("a partition has at least one slice".into()))?;
        let start_epochs = start_epochs.unwrap_or(0);
        Ok(IngestRouter {
            pending: (0..partition.len()).map(|_| Vec::new()).collect(),
            partition: partition.clone(),
            backends: clients,
            flush_records: options.flush_records.max(1),
            epoch_len: options.epoch_len,
            // A resumed fleet may sit mid-epoch (a replayed trace-log
            // tail): the first clock-driven cut completes the epoch in
            // progress, exactly where the single host would have cut.
            until_cut: match options.epoch_len {
                Some(len) => len - (start_accesses % len),
                None => u64::MAX,
            },
            accesses: 0,
            epochs: 0,
            start_accesses,
            start_epochs,
            spec,
        })
    }

    /// The scheme spec every backend serves (validated identical at
    /// connection time).
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The router's epoch clock ([`RouterOptions::epoch_len`]).
    pub fn epoch_len(&self) -> Option<u64> {
        self.epoch_len
    }

    /// Records scattered this session.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Epoch cuts sent to the fleet this session.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The fleet's global stream position: what the backends held when
    /// the session opened (their handshakes) plus what this session
    /// scattered.
    pub fn fleet_accesses(&self) -> u64 {
        self.start_accesses + self.accesses
    }

    /// The fleet's epoch counter (session-opening value plus this
    /// session's cuts).
    pub fn fleet_epochs(&self) -> u64 {
        self.start_epochs + self.epochs
    }

    /// Routes `records` (global `(bank, row)` pairs, in merged-stream
    /// order) to the backends owning their banks. With an epoch clock,
    /// every backend is cut at the exact record position the single-host
    /// system would have fired its boundary — mid-slice when the boundary
    /// lands inside `records`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] for a bank outside the partitioned
    /// geometry (the stream is corrupt; nothing further is routed), or
    /// any backend socket error.
    pub fn scatter(&mut self, records: &[(u32, u32)]) -> io::Result<()> {
        let total_banks = self.partition.geometry().total_banks();
        let mut rest = records;
        while !rest.is_empty() {
            let take = (self.until_cut.min(rest.len() as u64)) as usize;
            let (part, tail) = rest.split_at(take);
            for &(bank, row) in part {
                if bank >= total_banks {
                    return Err(bad(format!(
                        "record (bank {bank}, row {row}) outside the {total_banks}-bank \
                         partitioned geometry"
                    )));
                }
                let id = self.partition.route(bank);
                self.pending[id].push((bank, row));
                if self.pending[id].len() >= self.flush_records {
                    self.backends[id].send(&self.pending[id])?;
                    self.pending[id].clear();
                }
            }
            self.accesses += take as u64;
            if self.epoch_len.is_some() {
                self.until_cut -= take as u64;
                if self.until_cut == 0 {
                    self.cut_fleet()?;
                    self.until_cut = self.epoch_len.unwrap_or(u64::MAX);
                }
            }
            rest = tail;
        }
        Ok(())
    }

    /// Places an epoch boundary at the current position of the merged
    /// stream — the forwarding path for client-driven cuts when the
    /// router runs clockless.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] if the router has its own epoch
    /// clock (positions would drift from the clock's), or any backend
    /// socket error.
    pub fn cut(&mut self) -> io::Result<()> {
        if self.epoch_len.is_some() {
            return Err(bad(
                "stream epoch cut, but the router fires its own epoch boundaries".into(),
            ));
        }
        self.cut_fleet()
    }

    /// Flushes every scatter buffer, then sends [`wire::Frame::EpochCut`]
    /// to **every** backend: each slice cuts at the same global stream
    /// position, keeping per-epoch accounting aligned across the fleet.
    fn cut_fleet(&mut self) -> io::Result<()> {
        for id in 0..self.backends.len() {
            if !self.pending[id].is_empty() {
                self.backends[id].send(&self.pending[id])?;
                self.pending[id].clear();
            }
            self.backends[id].send_cut()?;
        }
        self.epochs += 1;
        Ok(())
    }

    /// Flushes the scatter buffers, finishes every backend session with a
    /// stats request, and merges the fleet's snapshots in slice-id order
    /// (see the [module docs](self) for why the merge is exact).
    ///
    /// # Errors
    ///
    /// Backend socket errors, and [`io::ErrorKind::InvalidData`] if the
    /// fleet's accounting disagrees with the router's (lost records, or a
    /// backend whose epoch count drifted from the shared clock).
    pub fn finish_with_stats(mut self) -> io::Result<RouterReport> {
        for id in 0..self.backends.len() {
            if !self.pending[id].is_empty() {
                self.backends[id].send(&self.pending[id])?;
                self.pending[id].clear();
            }
        }
        let mut per_backend = Vec::with_capacity(self.backends.len());
        for (id, client) in self.backends.into_iter().enumerate() {
            let snap = client
                .finish_with_stats()
                .map_err(|e| io::Error::new(e.kind(), format!("backend {id}: {e}")))?;
            per_backend.push(snap);
        }
        let fleet_epochs = self.start_epochs + self.epochs;
        let mut merged = StatsSnapshot {
            accesses: 0,
            epochs: fleet_epochs,
            stats: SchemeStats::default(),
            banks: 0,
            materialized_banks: 0,
            scheme_bytes: 0,
        };
        for (id, snap) in per_backend.iter().enumerate() {
            if snap.epochs != fleet_epochs {
                return Err(bad(format!(
                    "backend {id}: reports {} epochs, the fleet clock stands at {fleet_epochs}",
                    snap.epochs
                )));
            }
            merged.accesses += snap.accesses;
            merged.stats.merge(&snap.stats);
            merged.banks += snap.banks;
            merged.materialized_banks += snap.materialized_banks;
            merged.scheme_bytes += snap.scheme_bytes;
        }
        if merged.accesses != self.start_accesses + self.accesses {
            return Err(bad(format!(
                "fleet reports {} accesses, the router accounts for {} \
                 ({} at session open + {} scattered)",
                merged.accesses,
                self.start_accesses + self.accesses,
                self.start_accesses,
                self.accesses
            )));
        }
        Ok(RouterReport {
            snapshot: merged,
            per_backend,
            stats_served: 0,
        })
    }
}

/// Serves one fleet session over TCP: connects to the `backends` (one
/// per partition slice), then accepts
/// [`producers`](RouterOptions::producers) client connections exactly
/// like [`crate::ingest::serve`] — advertising the **union** geometry,
/// the backends' scheme spec, and the router's epoch clock — and drains
/// the deterministic client merge through an [`IngestRouter`]. Clients
/// cannot tell a fleet from a single host: same wire handshake, same
/// validation, and a bit-identical final snapshot.
///
/// # Errors
///
/// Backend connection/handshake errors ([`IngestRouter::connect`]),
/// accept/handshake errors, the first client connection's protocol
/// error, or a fleet accounting mismatch at session end.
pub fn serve<A: ToSocketAddrs>(
    listener: &TcpListener,
    partition: &Partition,
    backends: &[A],
    options: &RouterOptions,
) -> io::Result<RouterReport> {
    if options.producers < 1 {
        return Err(bad("serve needs at least one producer".into()));
    }
    // Backends first: a misconfigured fleet must fail before any client
    // is accepted (and a slow-starting backend is awaited here, not
    // mid-stream).
    let mut router = IngestRouter::connect(partition, backends, options)?;
    let geometry = *partition.geometry();
    let owned = GeometrySlice::full(geometry).map_err(|e| bad(e.to_string()))?;
    let hello = ServerHello {
        geometry,
        slice_start: 0,
        slice_banks: geometry.total_banks(),
        spec: router.spec().to_string(),
        epoch_len: options.epoch_len,
        accesses: router.fleet_accesses(),
        epochs: router.fleet_epochs(),
    };
    let connections = accept_producers(listener, options.producers, &hello)?;

    // One reader per client, exactly as in `ingest::serve`: the same
    // validation at the connection, the same deterministic merge. Client
    // cuts are admitted only when the router runs clockless; the router
    // never checkpoints itself (backends do), so `Checkpoint` frames are
    // refused with a typed error.
    let (producers, mut consumer) = IngestQueue::bounded(options.producers, options.queue_capacity);
    let cuts_allowed = options.epoch_len.is_none();
    let mut readers: Vec<JoinHandle<io::Result<(std::net::TcpStream, bool)>>> =
        Vec::with_capacity(options.producers);
    for (stream, producer) in connections.into_iter().zip(producers) {
        readers.push(
            std::thread::Builder::new()
                .name(format!("catd-router-reader-{}", producer.id()))
                .spawn(move || read_connection(stream, producer, owned, cuts_allowed, None))?,
        );
    }

    // Drain the merge through the scatter stage. A dead backend must not
    // leave readers parked on full lanes: close the queue, join, report.
    let mut staged = Vec::new();
    loop {
        let step = match consumer.next_event_into(&mut staged) {
            None => break,
            Some(IngestEvent::Records(_)) => {
                let routed = router.scatter(&staged);
                staged.clear();
                routed
            }
            Some(IngestEvent::EpochCut) => router.cut(),
        };
        if let Err(e) = step {
            drop(consumer);
            for reader in readers {
                let _ = reader.join();
            }
            return Err(e);
        }
    }

    // The merge drained: every reader has returned. Join them, gather the
    // fleet, and answer the stats requesters with the *merged* snapshot.
    let mut streams = Vec::new();
    let mut first_error = None;
    for reader in readers {
        match reader.join() {
            Ok(Ok(done)) => streams.push(done),
            Ok(Err(e)) => first_error = first_error.or(Some(e)),
            Err(_panic) => {
                first_error = first_error.or(Some(io::Error::other("ingest reader panicked")));
            }
        }
    }
    let mut report = match router.finish_with_stats() {
        Ok(report) => report,
        Err(e) => return Err(first_error.unwrap_or(e)),
    };
    for (mut stream, wants_stats) in streams {
        if wants_stats {
            let sent = wire::write_stats(&mut stream, &report.snapshot)
                .and_then(|()| io::Write::flush(&mut stream));
            match sent {
                Ok(()) => report.stats_served += 1,
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}
