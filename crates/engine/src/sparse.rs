//! Lazily-materialized per-bank scheme storage — **the** sparse accessor
//! module (`DESIGN.md §10`).
//!
//! [`SparseBanks`] wraps a [`SparseSlab`] of [`SchemeInstance`]s plus the
//! recipe to build one: the [`SchemeSpec`], the per-bank row count and
//! the engine's bank base. A bank's scheme is built on the bank's *first
//! touch*, from the spec and the bank's deterministic global index — the
//! same pure function [`BankEngine::with_bank_base`] used to call for
//! every bank eagerly — so instantiation order cannot leak into results
//! and an engine over a million banks constructs in O(1).
//!
//! Lazy materialization preserves the determinism contract (`DESIGN.md
//! §7`) because every scheme's `on_epoch_end` is *fresh-idempotent*: on a
//! freshly built instance it is a bit-exact no-op (locked by
//! `cat-core/tests/fresh_idempotence.rs`). A bank first touched in epoch
//! `k` therefore equals an eagerly-built bank that sat through `k`
//! boundaries, and untouched banks can skip boundaries entirely.
//!
//! Every other module in this crate goes through these accessors;
//! `cat-lint`'s `dense-banks` rule refuses direct dense indexing of bank
//! storage anywhere else under `crates/engine/src`.
//!
//! [`BankEngine::with_bank_base`]: crate::BankEngine::with_bank_base

use cat_core::{SchemeInstance, SchemeSpec, SparseSlab};

/// Sparse, lazily-materialized map from local bank index to the bank's
/// [`SchemeInstance`] (see the module docs).
pub(crate) struct SparseBanks {
    spec: SchemeSpec,
    rows: u32,
    /// Global index of local bank 0 — the PRA seed derivation input.
    base: u32,
    slab: SparseSlab<SchemeInstance>,
}

impl SparseBanks {
    /// Storage for `banks` banks of `rows` rows each, local bank `b`
    /// carrying global index `base + b`. O(1): nothing is built yet.
    pub(crate) fn new(spec: SchemeSpec, banks: u32, rows: u32, base: u32) -> Self {
        SparseBanks {
            spec,
            rows,
            base,
            slab: SparseSlab::new(banks as usize),
        }
    }

    /// The placeholder a pool worker holds between loans.
    pub(crate) fn empty() -> Self {
        Self::new(SchemeSpec::None, 0, 8, 0)
    }

    /// Number of banks this storage spans (materialized or not).
    pub(crate) fn capacity(&self) -> usize {
        self.slab.capacity()
    }

    /// Number of banks whose scheme instance has been materialized.
    pub(crate) fn materialized(&self) -> usize {
        self.slab.occupied()
    }

    /// The spec every bank is instantiated from (recorded in checkpoints
    /// for validation).
    pub(crate) fn spec(&self) -> SchemeSpec {
        self.spec
    }

    /// Rows per bank (the spec instantiation input, recorded in
    /// checkpoints for validation).
    pub(crate) fn rows(&self) -> u32 {
        self.rows
    }

    /// Global index of local bank 0 (see the struct docs).
    pub(crate) fn base(&self) -> u32 {
        self.base
    }

    /// Allocated block-directory capacity of the underlying slab — the
    /// touch-order-dependent part of
    /// [`container_bytes`](Self::container_bytes) that checkpoints
    /// record as a high-water mark.
    pub(crate) fn block_capacity(&self) -> usize {
        self.slab.block_capacity()
    }

    /// Pre-grows the slab's block directory (checkpoint restore: reserve
    /// first, then materialize in ascending bank order, so the restored
    /// footprint is bit-equal to the saved one).
    pub(crate) fn reserve_block_capacity(&mut self, cap: usize) {
        self.slab.reserve_block_capacity(cap);
    }

    /// `true` when the spec attaches a scheme to banks at all.
    pub(crate) fn has_scheme(&self) -> bool {
        !matches!(self.spec, SchemeSpec::None)
    }

    /// The scheme of `bank`, materializing it on first touch. `None` only
    /// for [`SchemeSpec::None`]. Per-activation path: the materialized
    /// case is a single slab pass (`SparseSlab::get_or_insert_with`).
    #[inline]
    pub(crate) fn scheme_mut(&mut self, bank: usize) -> Option<&mut SchemeInstance> {
        if !self.has_scheme() {
            return None;
        }
        let (spec, rows, base) = (self.spec, self.rows, self.base);
        Some(self.slab.get_or_insert_with(bank, || {
            spec.build_instance(rows, base + bank as u32)
                .expect("has_scheme() holds: every non-None spec builds")
        }))
    }

    /// The scheme of `bank` only if already materialized — epoch
    /// boundaries use this: an unmaterialized bank is fresh, and
    /// `on_epoch_end` on fresh is a no-op (fresh-idempotence), so it can
    /// skip the boundary without observable difference.
    pub(crate) fn materialized_mut(&mut self, bank: usize) -> Option<&mut SchemeInstance> {
        self.slab.get_mut(bank)
    }

    /// Materialized schemes in ascending bank order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, &SchemeInstance)> {
        self.slab.iter()
    }

    /// Mutable materialized schemes in ascending bank order.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut SchemeInstance)> {
        self.slab.iter_mut()
    }

    /// Splits off the banks in `range` as a standalone `SparseBanks`
    /// (local index 0 = this storage's `range.start`, global indices
    /// preserved) — the loan half of the pool's ownership protocol. Cost
    /// is O(materialized in range), not O(range).
    pub(crate) fn take_range(&mut self, range: std::ops::Range<usize>) -> SparseBanks {
        let mut sub = SparseBanks::new(
            self.spec,
            (range.end - range.start) as u32,
            self.rows,
            self.base + range.start as u32,
        );
        for (bank, instance) in self.slab.drain_range(range.clone()) {
            sub.slab.insert(bank - range.start, instance);
        }
        sub
    }

    /// Merges a loaned-out range back in at `offset` — the reclaim half
    /// of the pool protocol. Ascending inserts, so re-absorbing a shard
    /// is amortized O(materialized in shard).
    pub(crate) fn absorb(&mut self, offset: usize, mut sub: SparseBanks) {
        let span = sub.capacity();
        for (bank, instance) in sub.slab.drain_range(0..span) {
            self.slab.insert(offset + bank, instance);
        }
    }

    /// Resident bytes of the materialized schemes themselves: the sum of
    /// per-instance footprints, with **no** container overhead. Purely
    /// per-bank, so it is invariant under any engine split and sums
    /// exactly across the slices of a partition (`DESIGN.md §12`) — the
    /// property the fleet's merged footprint relies on.
    pub(crate) fn scheme_bytes(&self) -> usize {
        self.iter()
            .map(|(_, instance)| instance.footprint_bytes())
            .sum()
    }

    /// Resident bytes of the slab's own block storage: directory plus
    /// slot vectors, minus the occupied slots' instance payload (already
    /// counted by [`scheme_bytes`](Self::scheme_bytes) — slot capacity is
    /// always at least the occupied count, so this never underflows).
    /// Depends on the engine split and touch order — accounting
    /// overhead, not scheme state.
    pub(crate) fn container_bytes(&self) -> usize {
        self.slab.heap_bytes() - self.materialized() * std::mem::size_of::<SchemeInstance>()
    }
}
