//! The versioned binary wire format of the socket/queue ingestion
//! front-end (`DESIGN.md §8`).
//!
//! Everything here is hand-rolled little-endian framing over
//! `std::io::{Read, Write}` — the workspace builds offline, so there is no
//! serde, no protobuf, no async runtime. The format is deliberately dumb:
//! fixed-width integers, one-byte frame tags, length-prefixed payloads with
//! hard caps, and an explicit version number in the handshake so the format
//! can evolve without silently misparsing old peers.
//!
//! ## Session layout
//!
//! ```text
//! client                                server (catd)
//!   │  ClientHello {magic, version,        │
//!   │    producer id}                      │
//!   ├──────────────────────────────────────►
//!   │  ServerHello {magic, version,        │
//!   │    geometry, spec, epoch_len}        │
//!   ◄──────────────────────────────────────┤
//!   │  Frame::Records {seq, (bank,row)*}   │  any number, seq = 0,1,2,…
//!   ├──────────────────────────────────────►
//!   │  Frame::Checkpoint    (optional)     │  any number, any time
//!   ├──────────────────────────────────────►
//!   │  Frame::StatsRequest  (optional)     │
//!   ├──────────────────────────────────────►
//!   │  Frame::Finish                       │
//!   ├──────────────────────────────────────►
//!   │  StatsSnapshot (iff requested;       │
//!   │    sent after ALL producers finish)  │
//!   ◄──────────────────────────────────────┤
//! ```
//!
//! Each producer numbers its `Records` frames consecutively from zero; the
//! server verifies the sequence and feeds the frames to the deterministic
//! merge in [`crate::ingest`]. Malformed input is reported as
//! [`std::io::Error`] with [`std::io::ErrorKind::InvalidData`] — a protocol
//! violation and a truncated stream are both connection-fatal.
//!
//! Version 2 adds the checkpointing frames (`DESIGN.md §11`):
//! [`Frame::Checkpoint`] asks a checkpointing server to publish an image
//! at the next epoch cut (a no-op tagged byte; servers without
//! `--checkpoint-dir` refuse it), and [`Frame::Restore`] carries a
//! checkpoint image inline — defined for symmetry and tooling, but `catd`
//! refuses it mid-session: recovery happens at startup via `--resume`,
//! never on a live system.
//!
//! Version 3 adds the partitioned datapath (`DESIGN.md §12`): the
//! [`ServerHello`] advertises the bank slice the backend owns
//! (`slice_start`/`slice_banks`, so a router or client can refuse a
//! misrouted connection before streaming) and the served system's stream
//! position (`accesses`/`epochs` — nonzero for a `--resume`d backend, so
//! a router can phase its epoch clock and keep accounting exact across
//! a fleet member's kill-and-resume), [`Frame::EpochCut`] carries a
//! router's epoch clock to clockless backends in the producer's sequence
//! space, and the [`StatsSnapshot`] carries the state-footprint counters
//! so a fleet's merged snapshot can be checked bit-identically against a
//! single-host run.

use std::io::{self, Read, Write};

use cat_core::SchemeStats;

use crate::MemGeometry;

/// Protocol magic, first bytes of both hello messages ("CAT wire").
pub const MAGIC: [u8; 4] = *b"CATW";

/// Wire format version. Bump on any incompatible change; peers with a
/// different version refuse the handshake instead of misparsing frames.
/// Version 2 added the [`Frame::Checkpoint`] and [`Frame::Restore`]
/// kinds; version 3 added the [`ServerHello`] slice fields,
/// [`Frame::EpochCut`], and the [`StatsSnapshot`] footprint counters.
pub const VERSION: u16 = 3;

/// Hard cap on records per [`Frame::Records`] — bounds the allocation a
/// malformed (or malicious) length prefix can force on the receiver.
pub const MAX_RECORDS_PER_FRAME: u32 = 1 << 20;

/// Hard cap on the spec string length in a [`ServerHello`].
pub const MAX_SPEC_LEN: u16 = 1024;

/// Hard cap on the image carried by a [`Frame::Restore`] — bounds the
/// allocation a forged length prefix can force on the receiver.
pub const MAX_RESTORE_BYTES: u32 = 1 << 26;

/// Bytes of one `(bank, row)` record on the wire. A record's 8 wire bytes
/// read as one little-endian `u64` **are** its [`pack_record`] value —
/// the invariant behind the server's zero-copy decode path, which turns
/// payload bytes into ring slots with a single `u64::from_le_bytes` each.
pub const RECORD_BYTES: usize = 8;

/// Packs a record into its 8-byte little-endian wire layout: `bank` in
/// the low 32 bits, `row` in the high 32 (i.e. `bank` then `row`, each
/// u32 LE, on the wire). This is also the slot format of the ingestion
/// rings in [`crate::ingest`].
#[inline]
#[must_use]
pub fn pack_record(bank: u32, row: u32) -> u64 {
    u64::from(bank) | (u64::from(row) << 32)
}

/// Inverse of [`pack_record`].
#[inline]
#[must_use]
pub fn unpack_record(packed: u64) -> (u32, u32) {
    (packed as u32, (packed >> 32) as u32)
}

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn write_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_magic_version<R: Read>(r: &mut R, who: &str) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad(format!("{who}: bad magic {magic:02x?}")));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(bad(format!(
            "{who}: wire version {version}, this peer speaks {VERSION}"
        )));
    }
    Ok(())
}

/// Writes the client's opening handshake: magic + version + the
/// **producer id** this connection claims (its tie-break rank in the
/// deterministic merge, `DESIGN.md §8`). The id is chosen by the client —
/// the side that dealt the trace — because TCP accept order is racy: lane
/// assignment must follow the deal, not connection timing. A session's
/// ids must form a permutation of `0..producers`; the server rejects
/// duplicates and out-of-range claims.
pub fn write_client_hello<W: Write>(w: &mut W, producer_id: u32) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    write_u16(w, VERSION)?;
    write_u32(w, producer_id)
}

/// Reads and validates a client hello, returning the claimed producer id.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on a magic or version mismatch; I/O
/// errors pass through.
pub fn read_client_hello<R: Read>(r: &mut R) -> io::Result<u32> {
    read_magic_version(r, "client hello")?;
    read_u32(r)
}

/// The server's half of the handshake: what the [`crate::MemorySystem`]
/// behind the socket is configured as, so clients can verify they generate
/// traffic for the right machine (and reconstruct a local reference run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerHello {
    /// The served system's DRAM geometry — always the **full** union
    /// geometry, even when this backend owns only a slice of it.
    pub geometry: MemGeometry,
    /// First global bank this backend owns ([`crate::GeometrySlice`]).
    /// `0` with `slice_banks == geometry.total_banks()` is the
    /// unpartitioned single-host case.
    pub slice_start: u32,
    /// Global banks this backend owns, starting at `slice_start`.
    pub slice_banks: u32,
    /// The scheme spec in its canonical string form (`sca:64:32768`, …).
    pub spec: String,
    /// Accesses per epoch; `None` when the server fires no automatic
    /// epoch boundaries.
    pub epoch_len: Option<u64>,
    /// Accesses already inside the served system when the session opened —
    /// `0` for a fresh system, the recovered position for a `--resume`d
    /// backend. A fleet router reads this to phase its epoch clock and to
    /// do exact end-of-session accounting across resumed backends.
    pub accesses: u64,
    /// Epoch boundaries already processed when the session opened (the
    /// counterpart of `accesses` for the epoch counter).
    pub epochs: u64,
}

/// Writes the server's handshake reply.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] if the spec string exceeds
/// [`MAX_SPEC_LEN`]; I/O errors pass through.
pub fn write_server_hello<W: Write>(w: &mut W, hello: &ServerHello) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    write_u16(w, VERSION)?;
    let g = &hello.geometry;
    for field in [
        g.channels,
        g.ranks_per_channel,
        g.banks_per_rank,
        g.rows_per_bank,
        g.lines_per_row,
        g.line_bytes,
    ] {
        write_u32(w, field)?;
    }
    write_u32(w, hello.slice_start)?;
    write_u32(w, hello.slice_banks)?;
    let spec = hello.spec.as_bytes();
    if spec.len() > usize::from(MAX_SPEC_LEN) {
        return Err(bad(format!("spec string of {} bytes", spec.len())));
    }
    write_u16(w, spec.len() as u16)?;
    w.write_all(spec)?;
    write_u64(w, hello.epoch_len.unwrap_or(0))?;
    write_u64(w, hello.accesses)?;
    write_u64(w, hello.epochs)
}

/// Reads and validates a server hello (an epoch length of `0` decodes as
/// `None` — no automatic epoch accounting).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on magic/version mismatch or an
/// oversized or non-UTF-8 spec string; I/O errors pass through.
pub fn read_server_hello<R: Read>(r: &mut R) -> io::Result<ServerHello> {
    read_magic_version(r, "server hello")?;
    let mut fields = [0u32; 6];
    for f in &mut fields {
        *f = read_u32(r)?;
    }
    let geometry = MemGeometry {
        channels: fields[0],
        ranks_per_channel: fields[1],
        banks_per_rank: fields[2],
        rows_per_bank: fields[3],
        lines_per_row: fields[4],
        line_bytes: fields[5],
    };
    let slice_start = read_u32(r)?;
    let slice_banks = read_u32(r)?;
    let len = read_u16(r)?;
    if len > MAX_SPEC_LEN {
        return Err(bad(format!("spec string of {len} bytes")));
    }
    let mut spec = vec![0u8; usize::from(len)];
    r.read_exact(&mut spec)?;
    let spec = String::from_utf8(spec).map_err(|e| bad(format!("spec not UTF-8: {e}")))?;
    let epoch_len = match read_u64(r)? {
        0 => None,
        n => Some(n),
    };
    let accesses = read_u64(r)?;
    let epochs = read_u64(r)?;
    Ok(ServerHello {
        geometry,
        slice_start,
        slice_banks,
        spec,
        epoch_len,
        accesses,
        epochs,
    })
}

/// One client → server frame after the handshake.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A batch of `(global bank, row)` activations in stream order, tagged
    /// with this producer's consecutive sequence number (the key of the
    /// deterministic merge — `DESIGN.md §8`).
    Records {
        /// Producer-local sequence number: 0 for the first frame, then +1.
        seq: u64,
        /// The activations, in the order the producer observed them.
        records: Vec<(u32, u32)>,
    },
    /// Ask the server to send a [`StatsSnapshot`] once ingestion completes
    /// (i.e. after *every* producer has finished).
    StatsRequest,
    /// This producer is done; no further frames follow on this connection.
    Finish,
    /// Ask a checkpointing server to publish a checkpoint image at the
    /// next epoch cut (`DESIGN.md §11`). Servers without checkpointing
    /// configured refuse the frame (connection-fatal).
    Checkpoint,
    /// A checkpoint image, inline. `catd` refuses this mid-session
    /// (recovery happens at startup via `--resume`); the frame exists so
    /// offline tooling can ship images over the same framing.
    Restore {
        /// The sealed checkpoint image (≤ [`MAX_RESTORE_BYTES`]).
        image: Vec<u8>,
    },
    /// An epoch boundary in the producer's record stream (`DESIGN.md
    /// §12`): the router owns the fleet's epoch clock and delivers each
    /// cut to every backend at the exact stream position it fired, so
    /// clockless backends count epochs bit-identically to a single host.
    /// Shares the producer's sequence space with `Records` so its
    /// position survives the deterministic merge. Servers that fire their
    /// own epoch boundaries refuse the frame (connection-fatal).
    EpochCut {
        /// Producer-local sequence number, shared with `Records` frames.
        seq: u64,
    },
}

const TAG_RECORDS: u8 = 0x01;
const TAG_STATS_REQUEST: u8 = 0x02;
const TAG_FINISH: u8 = 0x03;
const TAG_CHECKPOINT: u8 = 0x04;
const TAG_RESTORE: u8 = 0x05;
const TAG_EPOCH_CUT: u8 = 0x06;

/// Writes a [`Frame::Records`] directly from a slice (no intermediate
/// `Vec`) — the form the streaming clients use.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] if `records` exceeds
/// [`MAX_RECORDS_PER_FRAME`]; I/O errors pass through.
pub fn write_records<W: Write>(w: &mut W, seq: u64, records: &[(u32, u32)]) -> io::Result<()> {
    if records.len() > MAX_RECORDS_PER_FRAME as usize {
        return Err(bad(format!("{}-record frame", records.len())));
    }
    w.write_all(&[TAG_RECORDS])?;
    write_u64(w, seq)?;
    write_u32(w, records.len() as u32)?;
    for &(bank, row) in records {
        write_u64(w, pack_record(bank, row))?;
    }
    Ok(())
}

/// Encodes a [`Frame::Records`] into `buf` (cleared first) — the
/// buffer-reusing counterpart of [`write_records`] for clients that stream
/// many frames over one connection: after the first call at a given batch
/// size, encoding allocates nothing.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] if `records` exceeds
/// [`MAX_RECORDS_PER_FRAME`].
pub fn encode_records(buf: &mut Vec<u8>, seq: u64, records: &[(u32, u32)]) -> io::Result<()> {
    if records.len() > MAX_RECORDS_PER_FRAME as usize {
        return Err(bad(format!("{}-record frame", records.len())));
    }
    buf.clear();
    buf.reserve(1 + 8 + 4 + records.len() * RECORD_BYTES);
    buf.push(TAG_RECORDS);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for &(bank, row) in records {
        buf.extend_from_slice(&pack_record(bank, row).to_le_bytes());
    }
    Ok(())
}

/// Writes one frame.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] if a `Records` frame exceeds
/// [`MAX_RECORDS_PER_FRAME`] or a `Restore` image exceeds
/// [`MAX_RESTORE_BYTES`]; I/O errors pass through.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    match frame {
        Frame::Records { seq, records } => write_records(w, *seq, records),
        Frame::StatsRequest => w.write_all(&[TAG_STATS_REQUEST]),
        Frame::Finish => w.write_all(&[TAG_FINISH]),
        Frame::Checkpoint => w.write_all(&[TAG_CHECKPOINT]),
        Frame::Restore { image } => {
            if image.len() > MAX_RESTORE_BYTES as usize {
                return Err(bad(format!("{}-byte restore image", image.len())));
            }
            w.write_all(&[TAG_RESTORE])?;
            write_u32(w, image.len() as u32)?;
            w.write_all(image)
        }
        Frame::EpochCut { seq } => {
            w.write_all(&[TAG_EPOCH_CUT])?;
            write_u64(w, *seq)
        }
    }
}

/// The header of one post-handshake frame, with a `Records` payload left
/// **unread** on the stream. This is the zero-copy server's entry point:
/// it reads the header, then pulls the payload in ring-sized chunks with
/// [`read_packed_records`] instead of materialising a `Vec<(u32, u32)>`
/// per frame like [`read_frame`] does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameHeader {
    /// A [`Frame::Records`] header; `count` records follow on the stream.
    Records {
        /// Producer-local sequence number: 0 for the first frame, then +1.
        seq: u64,
        /// Records in the unread payload (≤ [`MAX_RECORDS_PER_FRAME`]).
        count: u32,
    },
    /// A [`Frame::StatsRequest`] (no payload).
    StatsRequest,
    /// A [`Frame::Finish`] (no payload).
    Finish,
    /// A [`Frame::Checkpoint`] (no payload).
    Checkpoint,
    /// A [`Frame::Restore`] header; `len` image bytes follow on the
    /// stream (≤ [`MAX_RESTORE_BYTES`]).
    Restore {
        /// Bytes in the unread image payload.
        len: u32,
    },
    /// A [`Frame::EpochCut`] (no payload beyond the sequence number).
    EpochCut {
        /// Producer-local sequence number, shared with `Records` frames.
        seq: u64,
    },
}

/// Reads one frame header, validating the record count against
/// [`MAX_RECORDS_PER_FRAME`] **before** anything is allocated.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on an unknown tag or an oversized record
/// count; I/O errors (including `UnexpectedEof` on truncation) pass
/// through.
pub fn read_frame_header<R: Read>(r: &mut R) -> io::Result<FrameHeader> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_RECORDS => {
            let seq = read_u64(r)?;
            let count = read_u32(r)?;
            if count > MAX_RECORDS_PER_FRAME {
                return Err(bad(format!("{count}-record frame")));
            }
            Ok(FrameHeader::Records { seq, count })
        }
        TAG_STATS_REQUEST => Ok(FrameHeader::StatsRequest),
        TAG_FINISH => Ok(FrameHeader::Finish),
        TAG_CHECKPOINT => Ok(FrameHeader::Checkpoint),
        TAG_RESTORE => {
            let len = read_u32(r)?;
            if len > MAX_RESTORE_BYTES {
                return Err(bad(format!("{len}-byte restore image")));
            }
            Ok(FrameHeader::Restore { len })
        }
        TAG_EPOCH_CUT => {
            let seq = read_u64(r)?;
            Ok(FrameHeader::EpochCut { seq })
        }
        other => Err(bad(format!("unknown frame tag {other:#04x}"))),
    }
}

/// Reads exactly `count` records of a `Records` payload into `packed`
/// (cleared first), going through the reusable byte buffer `buf`: one
/// `read_exact` into recycled storage, then one `u64::from_le_bytes` per
/// record — no per-record parsing and, after the first call at a given
/// chunk size, no allocation. Callers may split one frame's payload
/// across several calls (the server reads ring-sized chunks).
///
/// # Errors
///
/// I/O errors pass through (`UnexpectedEof` on a truncated payload).
pub fn read_packed_records<R: Read>(
    r: &mut R,
    buf: &mut Vec<u8>,
    packed: &mut Vec<u64>,
    count: usize,
) -> io::Result<()> {
    buf.resize(count * RECORD_BYTES, 0);
    r.read_exact(buf)?;
    packed.clear();
    packed.extend(buf.chunks_exact(RECORD_BYTES).map(|chunk| {
        let mut bytes = [0u8; RECORD_BYTES];
        bytes.copy_from_slice(chunk);
        u64::from_le_bytes(bytes)
    }));
    Ok(())
}

/// Reads one frame.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on an unknown tag or an oversized record
/// count; I/O errors (including `UnexpectedEof` on a truncated frame) pass
/// through.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    match read_frame_header(r)? {
        FrameHeader::Records { seq, count } => {
            let mut buf = Vec::new();
            let mut packed = Vec::new();
            read_packed_records(r, &mut buf, &mut packed, count as usize)?;
            Ok(Frame::Records {
                seq,
                records: packed.iter().map(|&p| unpack_record(p)).collect(),
            })
        }
        FrameHeader::StatsRequest => Ok(Frame::StatsRequest),
        FrameHeader::Finish => Ok(Frame::Finish),
        FrameHeader::Checkpoint => Ok(Frame::Checkpoint),
        FrameHeader::Restore { len } => {
            let mut image = vec![0u8; len as usize];
            r.read_exact(&mut image)?;
            Ok(Frame::Restore { image })
        }
        FrameHeader::EpochCut { seq } => Ok(Frame::EpochCut { seq }),
    }
}

/// The server's reply to a [`Frame::StatsRequest`]: the system-wide state
/// after every producer finished and the staging buffer flushed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Accesses processed, system-wide.
    pub accesses: u64,
    /// Epoch boundaries fired, system-wide.
    pub epochs: u64,
    /// Scheme statistics aggregated across all banks.
    pub stats: SchemeStats,
    /// Banks the system owns ([`crate::EngineFootprint::banks`]).
    pub banks: u64,
    /// Banks with a materialized scheme instance
    /// ([`crate::EngineFootprint::materialized_banks`]).
    pub materialized_banks: u64,
    /// Bytes of materialized scheme state
    /// ([`crate::EngineFootprint::scheme_bytes`]). The drive-style-
    /// dependent accounting scratch is deliberately **not** on the wire:
    /// the state footprint is what the determinism contract makes
    /// bit-identical across partitionings.
    pub scheme_bytes: u64,
}

/// Writes a stats snapshot. The counters go out in
/// [`SchemeStats::FIELDS`] order — the same name-checked encode table the
/// checkpoint format uses, so a new `SchemeStats` field extends both wire
/// paths (and their tests) in one place instead of silently dropping off
/// a hand-maintained positional list.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_stats<W: Write>(w: &mut W, snap: &StatsSnapshot) -> io::Result<()> {
    write_u64(w, snap.accesses)?;
    write_u64(w, snap.epochs)?;
    for field in SchemeStats::FIELDS {
        write_u64(w, (field.get)(&snap.stats))?;
    }
    write_u64(w, snap.banks)?;
    write_u64(w, snap.materialized_banks)?;
    write_u64(w, snap.scheme_bytes)
}

/// Reads a stats snapshot (see [`write_stats`] for the field order).
///
/// # Errors
///
/// Propagates I/O errors from the reader.
pub fn read_stats<R: Read>(r: &mut R) -> io::Result<StatsSnapshot> {
    let accesses = read_u64(r)?;
    let epochs = read_u64(r)?;
    let mut stats = SchemeStats::default();
    for field in SchemeStats::FIELDS {
        (field.set)(&mut stats, read_u64(r)?);
    }
    let banks = read_u64(r)?;
    let materialized_banks = read_u64(r)?;
    let scheme_bytes = read_u64(r)?;
    Ok(StatsSnapshot {
        accesses,
        epochs,
        stats,
        banks,
        materialized_banks,
        scheme_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> MemGeometry {
        MemGeometry {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 4096,
            lines_per_row: 16,
            line_bytes: 64,
        }
    }

    #[test]
    fn hellos_round_trip() {
        let mut buf = Vec::new();
        write_client_hello(&mut buf, 7).unwrap();
        assert_eq!(read_client_hello(&mut buf.as_slice()).unwrap(), 7);

        for epoch_len in [None, Some(50_000)] {
            for (slice_start, slice_banks) in [(0, 16), (8, 8)] {
                let hello = ServerHello {
                    geometry: geometry(),
                    slice_start,
                    slice_banks,
                    spec: "drcat:64:11:32768".into(),
                    epoch_len,
                    accesses: 110_000,
                    epochs: 2,
                };
                let mut buf = Vec::new();
                write_server_hello(&mut buf, &hello).unwrap();
                assert_eq!(read_server_hello(&mut buf.as_slice()).unwrap(), hello);
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_refused() {
        let err = read_client_hello(&mut b"NOPE\x01\x00".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad magic"));

        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&(VERSION + 1).to_le_bytes());
        let err = read_client_hello(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            Frame::Records {
                seq: 0,
                records: vec![(0, 1), (15, 4095), (u32::MAX, u32::MAX)],
            },
            Frame::Records {
                seq: u64::MAX,
                records: Vec::new(),
            },
            Frame::StatsRequest,
            Frame::Finish,
            Frame::Checkpoint,
            Frame::Restore {
                image: vec![0xCA, 0x7C, 0x00, 0xFF],
            },
            Frame::Restore { image: Vec::new() },
            Frame::EpochCut { seq: 17 },
            Frame::EpochCut { seq: u64::MAX },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = buf.as_slice();
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn oversized_and_unknown_frames_are_refused() {
        // A forged length prefix must not force a giant allocation.
        let mut buf = Vec::new();
        buf.push(0x01);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let err = read_frame(&mut [0x7f_u8].as_slice()).unwrap_err();
        assert!(err.to_string().contains("unknown frame tag"));

        let oversized = Frame::Records {
            seq: 0,
            records: vec![(0, 0); MAX_RECORDS_PER_FRAME as usize + 1],
        };
        assert!(write_frame(&mut Vec::new(), &oversized).is_err());

        // Same for a forged Restore length prefix and an oversized image.
        let mut buf = Vec::new();
        buf.push(0x05);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("restore image"));

        let oversized = Frame::Restore {
            image: vec![0; MAX_RESTORE_BYTES as usize + 1],
        };
        assert!(write_frame(&mut Vec::new(), &oversized).is_err());
    }

    #[test]
    fn version_one_peers_are_refused() {
        // A v1 hello, byte for byte — the frame kinds added in v2 make the
        // formats incompatible, so the handshake must refuse it.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_client_hello(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 1"));
    }

    #[test]
    fn packed_records_match_the_wire_byte_layout() {
        // pack_record IS the little-endian wire encoding of (bank, row) —
        // the invariant behind the server's zero-copy decode.
        let records = [(3u32, 0x1234_5678u32), (u32::MAX, 0)];
        let mut buf = Vec::new();
        write_records(&mut buf, 9, &records).unwrap();
        let payload = &buf[1 + 8 + 4..];
        assert_eq!(payload.len(), records.len() * RECORD_BYTES);
        for (chunk, &(bank, row)) in payload.chunks(RECORD_BYTES).zip(&records) {
            let mut bytes = [0u8; RECORD_BYTES];
            bytes.copy_from_slice(chunk);
            assert_eq!(u64::from_le_bytes(bytes), pack_record(bank, row));
            assert_eq!(unpack_record(pack_record(bank, row)), (bank, row));
        }
    }

    #[test]
    fn header_then_chunked_payload_reads_equal_read_frame() {
        let mut buf = Vec::new();
        write_records(&mut buf, 5, &[(1, 2), (3, 4), (5, 6)]).unwrap();
        write_frame(&mut buf, &Frame::Finish).unwrap();
        let mut r = buf.as_slice();
        let header = read_frame_header(&mut r).unwrap();
        assert_eq!(header, FrameHeader::Records { seq: 5, count: 3 });
        // Split the payload across two chunked reads, like the server does.
        let (mut bytes, mut packed) = (Vec::new(), Vec::new());
        read_packed_records(&mut r, &mut bytes, &mut packed, 2).unwrap();
        assert_eq!(packed, [pack_record(1, 2), pack_record(3, 4)]);
        read_packed_records(&mut r, &mut bytes, &mut packed, 1).unwrap();
        assert_eq!(packed, [pack_record(5, 6)]);
        assert_eq!(read_frame_header(&mut r).unwrap(), FrameHeader::Finish);
        assert!(r.is_empty());
    }

    #[test]
    fn encode_records_matches_write_records() {
        let records: Vec<(u32, u32)> = (0..100u32).map(|i| (i, i * 31)).collect();
        let mut streamed = Vec::new();
        write_records(&mut streamed, 42, &records).unwrap();
        let mut encoded = vec![0xFF; 3]; // stale content must be cleared
        encode_records(&mut encoded, 42, &records).unwrap();
        assert_eq!(encoded, streamed);

        let oversized = vec![(0u32, 0u32); MAX_RECORDS_PER_FRAME as usize + 1];
        assert!(encode_records(&mut encoded, 0, &oversized).is_err());
    }

    #[test]
    fn truncated_frames_report_eof() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Records {
                seq: 3,
                records: vec![(1, 2), (3, 4)],
            },
        )
        .unwrap();
        let err = read_frame(&mut buf[..buf.len() - 1].as_ref()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn snapshot_round_trip() {
        // Every SchemeStats field must survive the wire — the encode table
        // is SchemeStats::FIELDS, whose own coverage test pins it to the
        // struct definition, so a new field cannot silently drop off.
        let stats = SchemeStats {
            activations: 1,
            refresh_events: 2,
            refreshed_rows: 3,
            sram_reads: 4,
            sram_writes: 5,
            prng_bits: 6,
            splits: 7,
            merges: 8,
            reconfigurations: 9,
            cache_misses: 10,
            dram_counter_transfers: 11,
            max_depth_touched: 12,
        };
        let snap = StatsSnapshot {
            accesses: 1 << 40,
            epochs: 77,
            stats,
            banks: 16,
            materialized_banks: 13,
            scheme_bytes: 1 << 20,
        };
        let mut buf = Vec::new();
        write_stats(&mut buf, &snap).unwrap();
        assert_eq!(read_stats(&mut buf.as_slice()).unwrap(), snap);
        assert_eq!(buf.len(), (5 + SchemeStats::FIELDS.len()) * 8);
    }
}
