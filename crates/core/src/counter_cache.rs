//! The per-row-counter + counter-cache baseline (Kim, Nair, Qureshi —
//! CAL 2015; reference \[26\] of the paper).
//!
//! One counter per DRAM row lives in a reserved DRAM region; a small
//! set-associative on-chip cache holds the recently used counters. Counting
//! is exact per row (so only the two neighbours of an aggressor are ever
//! refreshed), but every cache miss costs a DRAM read + write-back, which is
//! what makes the approach expensive (§III-B, Fig. 2).

use crate::scheme::{HardwareProfile, MitigationScheme, Refreshes, SchemeKind};
use crate::state::{StateError, StateReader};
use crate::{ConfigError, RowId, RowRange, SchemeStats};

/// Geometry of the on-chip counter cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CounterCacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CounterCacheConfig {
    /// A cache holding `entries` counters with the given associativity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `entries` is not a power of two or not
    /// divisible by `ways`.
    pub fn with_entries(entries: usize, ways: usize) -> Result<Self, ConfigError> {
        if !entries.is_power_of_two() || ways == 0 || !entries.is_multiple_of(ways) {
            return Err(ConfigError::CountersInvalid(entries));
        }
        Ok(CounterCacheConfig {
            sets: entries / ways,
            ways,
        })
    }

    /// Total counter entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct Way {
    row: u32,
    valid: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// Per-row activation counters backed by DRAM with an on-chip cache.
///
/// ```
/// use cat_core::{CounterCache, CounterCacheConfig, MitigationScheme, RowId};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let cache = CounterCacheConfig::with_entries(1024, 8)?;
/// let mut cc = CounterCache::new(65_536, cache, 32_768)?;
/// for _ in 0..32_768 {
///     cc.on_activation(RowId(9));
/// }
/// // Exact per-row tracking refreshes only the two victims.
/// assert_eq!(cc.stats().refreshed_rows, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CounterCache {
    rows: u32,
    refresh_threshold: u32,
    /// Backing store: the "reserved DRAM area" with one counter per row.
    /// Deliberately dense: exact per-row counting makes every activation
    /// index this array, so the O(1) direct index is the scheme's hot
    /// path. Sparsity lives at bank granularity instead — an engine never
    /// builds a `CounterCache` for an untouched bank (`DESIGN.md §10`).
    backing: Vec<u32>,
    cache: Vec<Way>,
    config: CounterCacheConfig,
    tick: u64,
    stats: SchemeStats,
}

impl CounterCache {
    /// Creates the baseline for a bank of `rows` rows.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid row counts or thresholds.
    pub fn new(
        rows: u32,
        cache: CounterCacheConfig,
        refresh_threshold: u32,
    ) -> Result<Self, ConfigError> {
        if !rows.is_power_of_two() || rows < 8 {
            return Err(ConfigError::RowsNotPowerOfTwo(rows));
        }
        if refresh_threshold < 2 {
            return Err(ConfigError::ThresholdTooSmall(refresh_threshold));
        }
        Ok(CounterCache {
            rows,
            refresh_threshold,
            backing: vec![0; rows as usize],
            cache: vec![Way::default(); cache.entries()],
            config: cache,
            tick: 0,
            stats: SchemeStats::default(),
        })
    }

    /// Cache geometry.
    pub fn cache_config(&self) -> CounterCacheConfig {
        self.config
    }

    /// Resident heap bytes of the scheme's state (per-row backing store
    /// plus the on-chip cache model).
    pub fn heap_bytes(&self) -> usize {
        self.backing.capacity() * std::mem::size_of::<u32>()
            + self.cache.capacity() * std::mem::size_of::<Way>()
    }

    /// Appends the scheme's mutable state for checkpointing: stats, the LRU
    /// tick, the non-zero backing counters (sparse pairs — the reserved
    /// DRAM area is mostly zero), and every cache way verbatim.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.stats.save_state(out);
        out.push(self.tick);
        let nonzero = self.backing.iter().filter(|&&v| v != 0).count();
        out.push(nonzero as u64);
        for (row, &v) in self.backing.iter().enumerate() {
            if v != 0 {
                out.push(row as u64 | u64::from(v) << 32);
            }
        }
        out.push(self.cache.len() as u64);
        for way in &self.cache {
            out.push(u64::from(way.row) | u64::from(way.valid) << 32);
            out.push(way.lru);
        }
    }

    /// Restores state captured by [`CounterCache::save_state`] onto a
    /// freshly built instance of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] when a backing pair is out of range, out of
    /// order, or at/above the refresh threshold; when the cache geometry
    /// does not match; or when an LRU stamp exceeds the tick.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.stats.restore_state(r)?;
        self.tick = r.next_word()?;
        let nonzero = r.next_word()? as usize;
        if nonzero > self.backing.len() {
            return Err(StateError::Invalid("counter-cache backing pair count"));
        }
        self.backing.fill(0);
        let mut prev: Option<u32> = None;
        for _ in 0..nonzero {
            let w = r.next_word()?;
            let row = w as u32;
            let value = (w >> 32) as u32;
            if prev.is_some_and(|p| row <= p) {
                return Err(StateError::Invalid("counter-cache backing pairs unordered"));
            }
            prev = Some(row);
            let Some(slot) = self.backing.get_mut(row as usize) else {
                return Err(StateError::Invalid(
                    "counter-cache backing row out of range",
                ));
            };
            if value == 0 || value >= self.refresh_threshold {
                return Err(StateError::Invalid("counter-cache backing value"));
            }
            *slot = value;
        }
        if r.next_word()? != self.cache.len() as u64 {
            return Err(StateError::Invalid("counter-cache way count"));
        }
        for way in &mut self.cache {
            let w = r.next_word()?;
            if w >> 33 != 0 {
                return Err(StateError::Invalid("counter-cache way stray bits"));
            }
            let row = w as u32;
            let valid = (w >> 32) & 1 == 1;
            let lru = r.next_word()?;
            if valid && row >= self.rows {
                return Err(StateError::Invalid("counter-cache way row out of range"));
            }
            if lru > self.tick {
                return Err(StateError::Invalid("counter-cache LRU beyond tick"));
            }
            *way = Way { row, valid, lru };
        }
        Ok(())
    }

    /// Touches `row` in the cache; returns `true` on a hit.
    fn access_cache(&mut self, row: u32) -> bool {
        self.tick += 1;
        let set = (row as usize) & (self.config.sets - 1);
        let base = set * self.config.ways;
        let ways = &mut self.cache[base..base + self.config.ways];
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.row == row) {
            way.lru = self.tick;
            return true;
        }
        // Miss: evict LRU (write-back) and fill.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("ways > 0");
        if victim.valid {
            // Write the evicted counter back to the reserved DRAM area.
            self.stats.dram_counter_transfers += 1;
        }
        // Fetch the counter for `row` from DRAM.
        self.stats.dram_counter_transfers += 1;
        self.stats.cache_misses += 1;
        victim.row = row;
        victim.valid = true;
        victim.lru = self.tick;
        false
    }
}

impl MitigationScheme for CounterCache {
    fn on_activation(&mut self, row: RowId) -> Refreshes {
        assert!(row.0 < self.rows, "row {row} out of range");
        self.stats.activations += 1;
        self.stats.sram_reads += 1;
        self.stats.sram_writes += 1;
        self.access_cache(row.0);
        let c = &mut self.backing[row.0 as usize];
        *c += 1;
        if *c >= self.refresh_threshold {
            *c = 0;
            self.stats.refresh_events += 1;
            let below = row.0.checked_sub(1).map(|r| RowRange::new(r, r));
            let above = (row.0 + 1 < self.rows).then(|| RowRange::new(row.0 + 1, row.0 + 1));
            let refreshes = match (below, above) {
                (Some(b), Some(a)) => Refreshes::pair(b, a),
                (Some(b), None) => Refreshes::one(b),
                (None, Some(a)) => Refreshes::one(a),
                (None, None) => Refreshes::none(),
            };
            self.stats.refreshed_rows += refreshes.total_rows();
            refreshes
        } else {
            Refreshes::none()
        }
    }

    fn on_epoch_end(&mut self) {
        self.backing.fill(0);
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn hardware(&self) -> HardwareProfile {
        HardwareProfile {
            kind: SchemeKind::CounterCache,
            counters: self.config.entries(),
            counter_bits: 32 - (self.refresh_threshold - 1).leading_zeros(),
            max_levels: 1,
            prng_bits_per_activation: 0,
            refresh_threshold: self.refresh_threshold,
        }
    }

    fn rows(&self) -> u32 {
        self.rows
    }

    fn name(&self) -> String {
        format!("CC_{}", self.config.entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CounterCache {
        CounterCache::new(1024, CounterCacheConfig::with_entries(16, 4).unwrap(), 8).unwrap()
    }

    #[test]
    fn exact_per_row_counting() {
        let mut cc = small();
        for _ in 0..7 {
            assert!(cc.on_activation(RowId(100)).is_empty());
        }
        let r: Vec<RowRange> = cc.on_activation(RowId(100)).into_iter().collect();
        assert_eq!(r, vec![RowRange::new(99, 99), RowRange::new(101, 101)]);
    }

    #[test]
    fn eviction_does_not_lose_counts() {
        let mut cc = small();
        // Touch row 0 seven times, thrash the cache, then return.
        for _ in 0..7 {
            cc.on_activation(RowId(0));
        }
        for i in 0..512u32 {
            cc.on_activation(RowId(1 + i));
        }
        // Counter for row 0 survived in the DRAM backing store.
        assert!(!cc.on_activation(RowId(0)).is_empty());
    }

    #[test]
    fn misses_are_counted() {
        let mut cc = small();
        for i in 0..64u32 {
            cc.on_activation(RowId(i * 16));
        }
        assert!(cc.stats().cache_misses >= 48, "16-entry cache must miss");
        assert!(cc.stats().dram_counter_transfers >= cc.stats().cache_misses);
    }

    #[test]
    fn repeated_access_hits_cache() {
        let mut cc = small();
        cc.on_activation(RowId(5));
        let misses = cc.stats().cache_misses;
        for _ in 0..6 {
            cc.on_activation(RowId(5));
        }
        assert_eq!(cc.stats().cache_misses, misses, "no further misses");
    }

    #[test]
    fn epoch_reset_clears_backing() {
        let mut cc = small();
        for _ in 0..7 {
            cc.on_activation(RowId(9));
        }
        cc.on_epoch_end();
        for _ in 0..7 {
            assert!(cc.on_activation(RowId(9)).is_empty());
        }
    }

    #[test]
    fn config_validation() {
        assert!(CounterCacheConfig::with_entries(48, 4).is_err());
        assert!(CounterCacheConfig::with_entries(64, 0).is_err());
        assert!(
            CounterCache::new(1000, CounterCacheConfig::with_entries(16, 4).unwrap(), 8).is_err()
        );
        let cfg = CounterCacheConfig::with_entries(64, 4).unwrap();
        assert_eq!(cfg.entries(), 64);
        assert_eq!(cfg.sets, 16);
    }
}
