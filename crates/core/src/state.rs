//! Scheme-state capture for epoch-consistent checkpoints.
//!
//! Every mitigation scheme serializes its complete mutable state as a flat
//! stream of `u64` words via `save_state`, and rebuilds it with
//! `restore_state` on a freshly constructed instance of the *same*
//! configuration (configuration identity is the caller's responsibility —
//! `cat-engine`'s checkpoint format validates spec and geometry before any
//! scheme state is touched). Restore validates every value it applies:
//! lengths must match the configuration, indices must be in range, and
//! derived counts must be consistent, so a corrupted word stream yields a
//! typed [`StateError`] rather than a silently wrong scheme.

use std::fmt;

/// Error raised while restoring scheme state from checkpoint words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// The word stream ended before the state was fully read.
    Exhausted,
    /// A value was out of range or inconsistent; the message names it.
    Invalid(&'static str),
    /// The scheme cannot capture or restore state (boxed external schemes).
    Unsupported(&'static str),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Exhausted => write!(f, "state word stream exhausted"),
            StateError::Invalid(what) => write!(f, "invalid state: {what}"),
            StateError::Unsupported(what) => write!(f, "state capture unsupported: {what}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Cursor over the flat word stream produced by the schemes' `save_state`.
#[derive(Debug)]
pub struct StateReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a word slice for reading.
    pub fn new(words: &'a [u64]) -> Self {
        StateReader { words, pos: 0 }
    }

    /// Words not yet consumed.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// Reads the next word. (Named `next_word`, not `next`, so the reader
    /// is never confused with an `Iterator` — reads here are fallible.)
    pub fn next_word(&mut self) -> Result<u64, StateError> {
        match self.words.get(self.pos) {
            Some(&w) => {
                self.pos += 1;
                Ok(w)
            }
            None => Err(StateError::Exhausted),
        }
    }

    /// Reads a word that must fit in `u32`.
    pub fn next_u32(&mut self) -> Result<u32, StateError> {
        u32::try_from(self.next_word()?).map_err(|_| StateError::Invalid("word exceeds u32 range"))
    }

    /// Reads a word that must fit in `u16`.
    pub fn next_u16(&mut self) -> Result<u16, StateError> {
        u16::try_from(self.next_word()?).map_err(|_| StateError::Invalid("word exceeds u16 range"))
    }

    /// Reads a word that must fit in `u8`.
    pub fn next_u8(&mut self) -> Result<u8, StateError> {
        u8::try_from(self.next_word()?).map_err(|_| StateError::Invalid("word exceeds u8 range"))
    }

    /// Reads a word that must be exactly 0 or 1.
    pub fn next_bool(&mut self) -> Result<bool, StateError> {
        match self.next_word()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StateError::Invalid("boolean word is neither 0 nor 1")),
        }
    }

    /// Requires that every word was consumed — trailing words mean the
    /// stream does not match the scheme that is reading it.
    pub fn finish(self) -> Result<(), StateError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StateError::Invalid("trailing state words"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_walks_and_finishes() {
        let words = [7u64, 1, 0, u64::from(u32::MAX)];
        let mut r = StateReader::new(&words);
        assert_eq!(r.next_word().unwrap(), 7);
        assert!(r.next_bool().unwrap());
        assert!(!r.next_bool().unwrap());
        assert_eq!(r.next_u32().unwrap(), u32::MAX);
        assert_eq!(r.remaining(), 0);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn reader_rejects_out_of_range_and_trailing() {
        let words = [u64::from(u32::MAX) + 1, 2, 5];
        let mut r = StateReader::new(&words);
        assert_eq!(
            r.next_u32().unwrap_err(),
            StateError::Invalid("word exceeds u32 range")
        );
        assert!(matches!(r.next_bool().unwrap_err(), StateError::Invalid(_)));
        assert!(matches!(r.finish().unwrap_err(), StateError::Invalid(_)));
        let mut empty = StateReader::new(&[]);
        assert_eq!(empty.next_word().unwrap_err(), StateError::Exhausted);
    }

    #[test]
    fn errors_display() {
        assert!(StateError::Exhausted.to_string().contains("exhausted"));
        assert!(StateError::Invalid("x").to_string().contains('x'));
        assert!(StateError::Unsupported("y").to_string().contains('y'));
    }
}
