//! Row addressing newtypes shared by every mitigation scheme.

use std::fmt;

/// Index of a DRAM row inside one bank.
///
/// Rows are numbered `0..N` where `N` is the number of rows per bank
/// (`65_536` in the paper's dual-core configuration, `131_072` in the
/// quad-core one).
///
/// ```
/// use cat_core::RowId;
/// let row = RowId(42);
/// assert_eq!(row.0, 42);
/// assert!(row < RowId(43));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u32);

impl fmt::Debug for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowId({})", self.0)
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for RowId {
    fn from(v: u32) -> Self {
        RowId(v)
    }
}

impl From<RowId> for u32 {
    fn from(v: RowId) -> Self {
        v.0
    }
}

/// An inclusive range of rows `[lo, hi]` inside one bank.
///
/// Mitigation refreshes operate on ranges: when a counter covering the group
/// `[lo, hi]` saturates, the scheme asks the memory controller to refresh
/// `[lo − 1, hi + 1]` (clamped to the bank) so that every potential victim
/// of any aggressor inside the group is restored.
///
/// ```
/// use cat_core::RowRange;
/// let r = RowRange::new(10, 20);
/// assert_eq!(r.len(), 11);
/// assert!(r.contains(15));
/// assert_eq!(r.expand_victims(64), RowRange::new(9, 21));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RowRange {
    lo: u32,
    hi: u32,
}

impl RowRange {
    /// Creates the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "RowRange requires lo <= hi (got {lo} > {hi})");
        RowRange { lo, hi }
    }

    /// Range holding a single row.
    pub fn single(row: RowId) -> Self {
        RowRange {
            lo: row.0,
            hi: row.0,
        }
    }

    /// Lowest row of the range.
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Highest row of the range (inclusive).
    pub fn hi(&self) -> u32 {
        self.hi
    }

    /// Number of rows in the range.
    pub fn len(&self) -> u64 {
        u64::from(self.hi - self.lo) + 1
    }

    /// `true` only for the impossible empty range; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does the range contain `row`?
    pub fn contains(&self, row: u32) -> bool {
        self.lo <= row && row <= self.hi
    }

    /// Expands the range by one row on each side — the two potential victim
    /// rows adjacent to a group — clamping to the bank of `rows` rows.
    pub fn expand_victims(&self, rows: u32) -> RowRange {
        RowRange {
            lo: self.lo.saturating_sub(1),
            hi: (self.hi + 1).min(rows - 1),
        }
    }

    /// Iterates over the rows of the range.
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        (self.lo..=self.hi).map(RowId)
    }
}

impl fmt::Display for RowRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_row_range() {
        let r = RowRange::single(RowId(7));
        assert_eq!(r.len(), 1);
        assert!(r.contains(7));
        assert!(!r.contains(8));
        assert!(!r.is_empty());
    }

    #[test]
    fn expand_clamps_at_bank_edges() {
        let bank = 64;
        assert_eq!(
            RowRange::new(0, 3).expand_victims(bank),
            RowRange::new(0, 4)
        );
        assert_eq!(
            RowRange::new(60, 63).expand_victims(bank),
            RowRange::new(59, 63)
        );
        assert_eq!(
            RowRange::new(10, 20).expand_victims(bank),
            RowRange::new(9, 21)
        );
    }

    #[test]
    fn iter_yields_every_row() {
        let r = RowRange::new(3, 6);
        let rows: Vec<u32> = r.iter().map(|r| r.0).collect();
        assert_eq!(rows, vec![3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_range_panics() {
        let _ = RowRange::new(5, 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(RowRange::new(1, 2).to_string(), "[1, 2]");
        assert_eq!(RowId(9).to_string(), "9");
        assert_eq!(format!("{:?}", RowId(9)), "RowId(9)");
    }

    #[test]
    fn conversions_round_trip() {
        let r: RowId = 17u32.into();
        let v: u32 = r.into();
        assert_eq!(v, 17);
    }
}
