//! Random-bit sources for PRA: an ideal generator and the cheap LFSR the
//! paper's §III-A warns about.
//!
//! PRA's reliability guarantee (Eq. 1) assumes independent uniform random
//! decisions. A hardware LFSR is far cheaper than a true random number
//! generator but its output sequence is deterministic and recoverable: the
//! paper's Monte-Carlo study (and ours, in `cat-reliability`) shows its
//! unsurvivability collapses once an attacker can track the state.

use cat_prng::rngs::StdRng;
use cat_prng::{RngCore, SeedableRng};

/// A source of `k`-bit random words used to take refresh decisions.
pub trait DecisionRng {
    /// Draws `bits` random bits (1 ≤ `bits` ≤ 32) as the low bits of the
    /// returned word.
    fn draw(&mut self, bits: u32) -> u32;

    /// Serializes the generator's internal state as words for
    /// checkpointing, or `None` when the implementation does not support
    /// state capture (the default for external generators).
    fn save_state(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restores state previously produced by [`DecisionRng::save_state`].
    /// Returns `false` when unsupported or when `words` is malformed — the
    /// generator is left unchanged in that case.
    fn load_state(&mut self, words: &[u64]) -> bool {
        let _ = words;
        false
    }
}

/// An ideal (cryptographic-quality, for our purposes) PRNG standing in for
/// the true random number generator of reference \[25\].
///
/// ```
/// use cat_core::rng::{DecisionRng, IdealRng};
/// let mut rng = IdealRng::seeded(7);
/// let v = rng.draw(9);
/// assert!(v < 512);
/// ```
#[derive(Clone, Debug)]
pub struct IdealRng {
    inner: StdRng,
}

impl IdealRng {
    /// Creates a deterministically seeded instance (reproducible runs).
    pub fn seeded(seed: u64) -> Self {
        IdealRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl DecisionRng for IdealRng {
    fn draw(&mut self, bits: u32) -> u32 {
        debug_assert!((1..=32).contains(&bits));
        if bits == 32 {
            self.inner.next_u32()
        } else {
            self.inner.next_u32() & ((1 << bits) - 1)
        }
    }

    fn save_state(&self) -> Option<Vec<u64>> {
        Some(self.inner.state().to_vec())
    }

    fn load_state(&mut self, words: &[u64]) -> bool {
        // Four non-zero state words; the all-zero state is unreachable from
        // any seed (and a xoshiro fixed point), so it can only be corruption.
        match <[u64; 4]>::try_from(words) {
            Ok(s) if s != [0, 0, 0, 0] => {
                self.inner = StdRng::from_state(s);
                true
            }
            _ => false,
        }
    }
}

/// A 16-bit Fibonacci LFSR with the maximal-length polynomial
/// `x^16 + x^14 + x^13 + x^11 + 1` (taps 16, 14, 13, 11), shifting one bit
/// per output bit — the classic minimal-area hardware generator.
///
/// Successive draws therefore *overlap* in state, which is exactly why the
/// paper finds LFSR-based PRA insufficient: the decision sequence has period
/// 2^16 − 1 and is fully determined by any 16 observed output bits.
///
/// ```
/// use cat_core::rng::{DecisionRng, Lfsr16};
/// let mut a = Lfsr16::new(0xACE1);
/// let mut b = Lfsr16::new(0xACE1);
/// // Deterministic: same seed, same sequence.
/// assert_eq!(a.draw(9), b.draw(9));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR with the given non-zero seed (zero is mapped to the
    /// conventional `0xACE1` since the all-zero state is a fixed point).
    pub fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Advances one step and returns the output bit.
    pub fn step(&mut self) -> u32 {
        let s = self.state;
        let bit = (s ^ (s >> 2) ^ (s >> 3) ^ (s >> 5)) & 1;
        self.state = (s >> 1) | (bit << 15);
        u32::from(s & 1)
    }

    /// Current internal state (observable by a state-recovery attacker).
    pub fn state(&self) -> u16 {
        self.state
    }
}

impl DecisionRng for Lfsr16 {
    fn draw(&mut self, bits: u32) -> u32 {
        debug_assert!((1..=32).contains(&bits));
        let mut v = 0;
        for _ in 0..bits {
            v = (v << 1) | self.step();
        }
        v
    }

    fn save_state(&self) -> Option<Vec<u64>> {
        Some(vec![u64::from(self.state)])
    }

    fn load_state(&mut self, words: &[u64]) -> bool {
        // One word, 16 bits, non-zero (the all-zero state is a fixed point
        // the constructor already remaps).
        match words {
            [w] => match u16::try_from(*w) {
                Ok(s) if s != 0 => {
                    self.state = s;
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_has_maximal_period() {
        let mut l = Lfsr16::new(1);
        let start = l.state();
        let mut period = 0u32;
        loop {
            l.step();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period <= 70_000, "period must not exceed 2^16");
        }
        assert_eq!(period, 65_535);
    }

    #[test]
    fn lfsr_never_reaches_zero_state() {
        let mut l = Lfsr16::new(0x1234);
        for _ in 0..70_000 {
            l.step();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let l = Lfsr16::new(0);
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn draws_are_masked_to_requested_width() {
        let mut i = IdealRng::seeded(3);
        for bits in 1..=32 {
            let v = i.draw(bits);
            if bits < 32 {
                assert!(v < (1u32 << bits));
            }
        }
        let mut l = Lfsr16::new(77);
        for bits in 1..=16 {
            assert!(l.draw(bits) < (1u32 << bits));
        }
    }

    #[test]
    fn state_round_trips_resume_the_decision_stream() {
        let mut ideal = IdealRng::seeded(11);
        ideal.draw(9);
        let saved = ideal.save_state().unwrap();
        let mut resumed = IdealRng::seeded(999);
        assert!(resumed.load_state(&saved));
        for _ in 0..100 {
            assert_eq!(resumed.draw(9), ideal.draw(9));
        }
        let mut lfsr = Lfsr16::new(0xBEEF);
        lfsr.draw(7);
        let saved = lfsr.save_state().unwrap();
        let mut resumed = Lfsr16::new(1);
        assert!(resumed.load_state(&saved));
        for _ in 0..64 {
            assert_eq!(resumed.draw(5), lfsr.draw(5));
        }
    }

    #[test]
    fn load_state_rejects_malformed_words() {
        let mut ideal = IdealRng::seeded(1);
        assert!(!ideal.load_state(&[1, 2, 3]));
        assert!(!ideal.load_state(&[0, 0, 0, 0]));
        assert!(!ideal.load_state(&[1, 2, 3, 4, 5]));
        let mut lfsr = Lfsr16::new(5);
        assert!(!lfsr.load_state(&[]));
        assert!(!lfsr.load_state(&[0]));
        assert!(!lfsr.load_state(&[0x1_0000]));
        assert!(!lfsr.load_state(&[1, 2]));
        // A rejected load leaves the generator untouched.
        assert_eq!(lfsr.state(), 5);
    }

    #[test]
    fn ideal_rng_is_roughly_uniform() {
        let mut rng = IdealRng::seeded(42);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.draw(9) < 1).count();
        // p = 1/512 ⇒ expect ~195; allow wide tolerance.
        let expected = n as f64 / 512.0;
        assert!((hits as f64) > expected * 0.5 && (hits as f64) < expected * 1.7);
    }
}
