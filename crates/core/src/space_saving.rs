//! An extension baseline beyond the paper: a Space-Saving hot-row tracker.
//!
//! Follow-on rowhammer work (e.g. Graphene, MICRO'20) detects aggressors
//! with frequent-item sketches instead of counter trees. We include a
//! per-bank Space-Saving tracker so the benches can position CAT against
//! that design point (see DESIGN.md §6).
//!
//! **Soundness.** Space-Saving maintains the classic invariant that every
//! tracked row's estimate is an *upper bound* on its true activation count
//! (an untracked row takes over the minimum entry with `min + 1` when it
//! first appears, covering any accesses it might have had while
//! untracked). Two firing rules keep per-aggressor exposure ≤ `T` under
//! *any* traffic:
//!
//! 1. a slot fires whenever its estimate advances `T` beyond the slot's
//!    last firing point (tracked rows are refreshed at least every `T`
//!    true activations), and
//! 2. a row *admitted by takeover* fires immediately when it inherits an
//!    estimate ≥ `T` — its true history is unknown, so its victims are
//!    refreshed defensively before tracking restarts.
//!
//! Rule 2 is also the degradation mode: once the table minimum exceeds `T`
//! (possible when `k · T` is smaller than the per-epoch traffic), every
//! access to an untracked row fires a refresh. Sizing therefore wants
//! `k ≥ accesses_per_epoch / T` — the trade-off against CAT's group
//! refinement that this extension explores.

use crate::scheme::{HardwareProfile, MitigationScheme, Refreshes, SchemeKind};
use crate::state::{StateError, StateReader};
use crate::{ConfigError, RowId, RowRange, SchemeStats};

#[derive(Copy, Clone, Debug)]
struct Slot {
    row: u32,
    estimate: u32,
    /// Estimate value at which this slot fires next.
    next_fire: u32,
}

/// Per-bank Space-Saving aggressor tracker with `k` counters.
///
/// ```
/// use cat_core::{MitigationScheme, RowId, SpaceSaving};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let mut ss = SpaceSaving::new(65_536, 16, 4_096)?;
/// let mut refreshed = 0u64;
/// for _ in 0..5_000 {
///     refreshed += ss.on_activation(RowId(7)).total_rows();
/// }
/// assert!(refreshed >= 2, "a solo hammered row is tracked exactly");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    rows: u32,
    refresh_threshold: u32,
    /// At most `k` slots. Linear scans model the CAM a hardware
    /// implementation would use.
    table: Vec<Slot>,
    k: usize,
    stats: SchemeStats,
}

impl SpaceSaving {
    /// Creates a tracker with `k` counters for a bank of `rows` rows.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid row counts, `k = 0`, or
    /// thresholds smaller than 2.
    pub fn new(rows: u32, k: usize, refresh_threshold: u32) -> Result<Self, ConfigError> {
        if !rows.is_power_of_two() || rows < 8 {
            return Err(ConfigError::RowsNotPowerOfTwo(rows));
        }
        if k == 0 {
            return Err(ConfigError::CountersInvalid(k));
        }
        if refresh_threshold < 2 {
            return Err(ConfigError::ThresholdTooSmall(refresh_threshold));
        }
        Ok(SpaceSaving {
            rows,
            refresh_threshold,
            table: Vec::with_capacity(k),
            k,
            stats: SchemeStats::default(),
        })
    }

    /// Number of tracking counters `k`.
    pub fn counters(&self) -> usize {
        self.k
    }

    /// Resident heap bytes of the scheme's state (the CAM table).
    pub fn heap_bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<Slot>()
    }

    /// Appends the scheme's mutable state (stats + the tracking table in
    /// insertion order, which min-takeover tie-breaking depends on) for
    /// checkpointing.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.stats.save_state(out);
        out.push(self.table.len() as u64);
        for slot in &self.table {
            out.push(u64::from(slot.row) | u64::from(slot.estimate) << 32);
            out.push(u64::from(slot.next_fire));
        }
    }

    /// Restores state captured by [`SpaceSaving::save_state`] onto a
    /// freshly built instance of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] when the table overflows `k`, a row is out of
    /// range or duplicated, or a firing point is below its estimate's last
    /// firing window.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.stats.restore_state(r)?;
        let len = r.next_word()? as usize;
        if len > self.k {
            return Err(StateError::Invalid("space-saving table overflow"));
        }
        self.table.clear();
        for _ in 0..len {
            let w = r.next_word()?;
            let row = w as u32;
            let estimate = (w >> 32) as u32;
            let next_fire = r.next_u32()?;
            if row >= self.rows {
                return Err(StateError::Invalid("space-saving row out of range"));
            }
            if self.table.iter().any(|s| s.row == row) {
                return Err(StateError::Invalid("space-saving duplicate row"));
            }
            self.table.push(Slot {
                row,
                estimate,
                next_fire,
            });
        }
        Ok(())
    }

    /// Upper bound on `row`'s activation count since the epoch began: its
    /// estimate if tracked, else the table minimum.
    pub fn upper_bound(&self, row: RowId) -> u32 {
        self.table
            .iter()
            .find(|s| s.row == row.0)
            .map(|s| s.estimate)
            .unwrap_or_else(|| {
                if self.table.len() < self.k {
                    0
                } else {
                    self.table.iter().map(|s| s.estimate).min().unwrap_or(0)
                }
            })
    }

    fn victims(&self, row: RowId) -> Refreshes {
        let below = row.0.checked_sub(1).map(|r| RowRange::new(r, r));
        let above = (row.0 + 1 < self.rows).then(|| RowRange::new(row.0 + 1, row.0 + 1));
        match (below, above) {
            (Some(b), Some(a)) => Refreshes::pair(b, a),
            (Some(b), None) => Refreshes::one(b),
            (None, Some(a)) => Refreshes::one(a),
            (None, None) => Refreshes::none(),
        }
    }
}

impl MitigationScheme for SpaceSaving {
    fn on_activation(&mut self, row: RowId) -> Refreshes {
        assert!(row.0 < self.rows, "row {row} out of range");
        self.stats.activations += 1;
        self.stats.sram_reads += 1;
        self.stats.sram_writes += 1;

        let t = self.refresh_threshold;
        let slot = if let Some(idx) = self.table.iter().position(|s| s.row == row.0) {
            let slot = &mut self.table[idx];
            slot.estimate += 1;
            slot
        } else if self.table.len() < self.k {
            // Before any takeover happens, untracked rows truly have count
            // zero, so a fresh slot starts clean.
            self.table.push(Slot {
                row: row.0,
                estimate: 1,
                next_fire: t,
            });
            self.table.last_mut().expect("just pushed")
        } else {
            // Take over the minimum entry with min + 1 — the Space-Saving
            // step that keeps estimates sound upper bounds. The admitted
            // row's true history is unknown (≤ min), so its firing point is
            // `T` of the *slot scale*: if the inherited estimate already
            // reaches it, the row fires right away (rule 2).
            let idx = self
                .table
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.estimate)
                .expect("k > 0")
                .0;
            let min = self.table[idx].estimate;
            self.table[idx] = Slot {
                row: row.0,
                estimate: min + 1,
                next_fire: t.max(min + 1),
            };
            let fire_now = min + 1 >= t;
            let slot = &mut self.table[idx];
            if fire_now {
                slot.next_fire = slot.estimate.saturating_add(t);
                self.stats.refresh_events += 1;
                let refreshes = self.victims(row);
                self.stats.refreshed_rows += refreshes.total_rows();
                return refreshes;
            }
            slot
        };

        if slot.estimate >= slot.next_fire {
            // Rule 1: the slot advanced T beyond its last firing point.
            slot.next_fire = slot.estimate.saturating_add(t);
            self.stats.refresh_events += 1;
            let refreshes = self.victims(row);
            self.stats.refreshed_rows += refreshes.total_rows();
            refreshes
        } else {
            Refreshes::none()
        }
    }

    fn on_epoch_end(&mut self) {
        self.table.clear();
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn hardware(&self) -> HardwareProfile {
        HardwareProfile {
            // Energy-wise the closest Table II row: an SCA-like array of k
            // counters plus tags (the CAM overhead is charged by the
            // counter-cache factor in the energy crate).
            kind: SchemeKind::CounterCache,
            counters: self.k,
            counter_bits: 32 - (self.refresh_threshold - 1).leading_zeros(),
            max_levels: 1,
            prng_bits_per_activation: 0,
            refresh_threshold: self.refresh_threshold,
        }
    }

    fn rows(&self) -> u32 {
        self.rows
    }

    fn name(&self) -> String {
        format!("SS_{}", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SafetyOracle;

    #[test]
    fn tracks_a_solo_aggressor_exactly() {
        let mut ss = SpaceSaving::new(1024, 8, 100).unwrap();
        for i in 0..99 {
            assert!(ss.on_activation(RowId(5)).is_empty(), "access {i}");
        }
        let r = ss.on_activation(RowId(5));
        assert_eq!(r.total_rows(), 2, "victims 4 and 6 refreshed at T");
    }

    #[test]
    fn takeover_inflates_but_never_underestimates() {
        // With heavy competition the hammered row may be evicted and
        // readmitted with an inflated estimate — it then fires EARLIER
        // than T true accesses, never later.
        let mut ss = SpaceSaving::new(1024, 4, 200).unwrap();
        let mut hammer_count = 0u32;
        let mut fired_at = None;
        for i in 0..100_000u32 {
            let row = if i % 2 == 0 {
                hammer_count += 1;
                RowId(700)
            } else {
                RowId((i * 7) % 1024)
            };
            if !ss.on_activation(row).is_empty() && row == RowId(700) && fired_at.is_none() {
                fired_at = Some(hammer_count);
            }
        }
        let fired = fired_at.expect("hammered row must fire");
        assert!(
            fired <= 200,
            "must fire at or before T true accesses: {fired}"
        );
    }

    #[test]
    fn guarantee_holds_under_noise() {
        let t = 512;
        let mut ss = SpaceSaving::new(1024, 16, t).unwrap();
        let mut oracle = SafetyOracle::new(1024, t);
        for i in 0..200_000u32 {
            let row = if i % 3 == 0 {
                RowId(123)
            } else {
                RowId((i * 657) % 1024)
            };
            let refreshes = ss.on_activation(row);
            oracle.on_activation(row, &refreshes);
        }
        assert_eq!(oracle.violations(), 0);
        assert!(oracle.worst_exposure() <= u64::from(t));
    }

    #[test]
    fn undersized_tables_degrade_to_frequent_refreshes() {
        // The trade-off the extension explores: once the table minimum
        // saturates, broad traffic forces far more refreshes than DRCAT
        // with the same counter budget.
        let t = 2_048;
        let mut ss = SpaceSaving::new(65_536, 64, t).unwrap();
        let cfg = crate::CatConfig::new(65_536, 64, 11, t).unwrap();
        let mut cat = crate::Drcat::new(cfg);
        for i in 0..500_000u32 {
            let row = RowId(i.wrapping_mul(48_271) % 65_536);
            ss.on_activation(row);
            cat.on_activation(row);
        }
        assert!(
            ss.stats().refresh_events > 4 * cat.stats().refresh_events,
            "SS {} vs DRCAT {}",
            ss.stats().refresh_events,
            cat.stats().refresh_events
        );
    }

    #[test]
    fn epoch_reset_clears_state() {
        let mut ss = SpaceSaving::new(1024, 8, 64).unwrap();
        for _ in 0..63 {
            ss.on_activation(RowId(9));
        }
        assert_eq!(ss.upper_bound(RowId(9)), 63);
        ss.on_epoch_end();
        assert_eq!(ss.upper_bound(RowId(9)), 0);
        for _ in 0..63 {
            assert!(ss.on_activation(RowId(9)).is_empty());
        }
    }

    #[test]
    fn untracked_rows_inherit_the_minimum_bound() {
        let mut ss = SpaceSaving::new(1024, 2, 1_000).unwrap();
        for _ in 0..10 {
            ss.on_activation(RowId(1));
            ss.on_activation(RowId(2));
        }
        // Row 3 was never seen, but with a full table its bound is the min.
        assert_eq!(ss.upper_bound(RowId(3)), 10);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(SpaceSaving::new(1000, 8, 64).is_err());
        assert!(SpaceSaving::new(1024, 0, 64).is_err());
        assert!(SpaceSaving::new(1024, 8, 1).is_err());
        let ss = SpaceSaving::new(1024, 8, 64).unwrap();
        assert_eq!(ss.counters(), 8);
        assert_eq!(ss.name(), "SS_8");
    }
}
