//! [`SchemeInstance`] — the six concrete mitigation schemes behind one enum,
//! dispatched statically.
//!
//! The per-activation virtual call through `Box<dyn MitigationScheme>` costs
//! an indirect branch plus a heap pointer chase on the hottest path in the
//! repo (every simulated row activation). `SchemeInstance` replaces it with
//! an enum match the compiler can inline, while [`SchemeInstance::Boxed`]
//! keeps the trait-object escape hatch for schemes defined outside this
//! crate.

use crate::scheme::{HardwareProfile, MitigationScheme, Refreshes};
use crate::state::{StateError, StateReader};
use crate::{CounterCache, Drcat, Pra, Prcat, RowId, Sca, SchemeStats, SpaceSaving};

/// One concrete mitigation scheme, statically dispatched.
///
/// Constructed from a [`crate::SchemeSpec`] via
/// [`build_instance`](crate::SchemeSpec::build_instance); also implements
/// [`MitigationScheme`] itself so it can stand wherever a trait object was
/// expected.
///
/// ```
/// use cat_core::{MitigationScheme, RowId, SchemeSpec};
/// let spec = SchemeSpec::Sca { counters: 64, threshold: 4096 };
/// let mut instance = spec.build_instance(65_536, 0).unwrap();
/// instance.on_activation(RowId(7));
/// assert_eq!(instance.stats().activations, 1);
/// assert_eq!(instance.name(), "SCA_64");
/// ```
pub enum SchemeInstance {
    /// Probabilistic row activation.
    Pra(Pra),
    /// Static counter assignment.
    Sca(Sca),
    /// Periodically reset CAT.
    Prcat(Prcat),
    /// Dynamically reconfigured CAT.
    Drcat(Drcat),
    /// Per-row counters in DRAM with an on-chip counter cache.
    CounterCache(CounterCache),
    /// Space-Saving frequent-item tracker.
    SpaceSaving(SpaceSaving),
    /// Escape hatch: any external [`MitigationScheme`] behind a trait object
    /// (pays the virtual call the other variants avoid).
    Boxed(Box<dyn MitigationScheme + Send>),
}

// Stable state-image kind tags (never renumber: checkpoints persist).
const KIND_PRA: u64 = 1;
const KIND_SCA: u64 = 2;
const KIND_PRCAT: u64 = 3;
const KIND_DRCAT: u64 = 4;
const KIND_COUNTER_CACHE: u64 = 5;
const KIND_SPACE_SAVING: u64 = 6;

/// Delegates one method call to whichever variant is live.
macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            SchemeInstance::Pra($inner) => $body,
            SchemeInstance::Sca($inner) => $body,
            SchemeInstance::Prcat($inner) => $body,
            SchemeInstance::Drcat($inner) => $body,
            SchemeInstance::CounterCache($inner) => $body,
            SchemeInstance::SpaceSaving($inner) => $body,
            SchemeInstance::Boxed($inner) => $body,
        }
    };
}

impl SchemeInstance {
    /// Records the activation of `row`; see
    /// [`MitigationScheme::on_activation`].
    #[inline]
    pub fn on_activation(&mut self, row: RowId) -> Refreshes {
        dispatch!(self, s => s.on_activation(row))
    }

    /// Signals an auto-refresh epoch boundary; see
    /// [`MitigationScheme::on_epoch_end`].
    #[inline]
    pub fn on_epoch_end(&mut self) {
        dispatch!(self, s => s.on_epoch_end())
    }

    /// Event counts accumulated so far.
    #[inline]
    pub fn stats(&self) -> &SchemeStats {
        dispatch!(self, s => s.stats())
    }

    /// Hardware footprint description for the energy/area model.
    pub fn hardware(&self) -> HardwareProfile {
        dispatch!(self, s => s.hardware())
    }

    /// Number of rows in the protected bank.
    pub fn rows(&self) -> u32 {
        dispatch!(self, s => s.rows())
    }

    /// Human-readable name, e.g. `"DRCAT_64"`.
    pub fn name(&self) -> String {
        dispatch!(self, s => s.name())
    }

    /// Drives a whole run of activations through the scheme, feeding each
    /// returned [`Refreshes`] to `sink`.
    ///
    /// The variant match is hoisted out of the loop, so each arm compiles to
    /// a monomorphic inner loop with `on_activation` inlined — this is the
    /// batched hot path of `cat-engine`'s sharded runner.
    #[inline]
    pub fn run(&mut self, rows: &[u32], mut sink: impl FnMut(Refreshes)) {
        dispatch!(self, s => {
            for &row in rows {
                sink(s.on_activation(RowId(row)));
            }
        })
    }

    /// Resident bytes of this scheme's live state: the enum itself plus
    /// each variant's heap allocations (tree slabs, counter arrays, the
    /// counter cache's per-row backing store, …).
    ///
    /// For [`SchemeInstance::Boxed`] only the trait object's immediate
    /// size is visible, so external schemes report that lower bound.
    pub fn footprint_bytes(&self) -> usize {
        let heap = match self {
            SchemeInstance::Pra(s) => s.heap_bytes(),
            SchemeInstance::Sca(s) => s.heap_bytes(),
            SchemeInstance::Prcat(s) => s.heap_bytes(),
            SchemeInstance::Drcat(s) => s.heap_bytes(),
            SchemeInstance::CounterCache(s) => s.heap_bytes(),
            SchemeInstance::SpaceSaving(s) => s.heap_bytes(),
            SchemeInstance::Boxed(b) => std::mem::size_of_val(&**b),
        };
        std::mem::size_of::<Self>() + heap
    }

    /// Appends this scheme's complete mutable state (a stable kind tag
    /// followed by variant-specific words) for checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Unsupported`] for [`SchemeInstance::Boxed`]
    /// (external schemes have no state-capture contract) and for PRA
    /// backends without PRNG state capture.
    pub fn save_state(&self, out: &mut Vec<u64>) -> Result<(), StateError> {
        match self {
            SchemeInstance::Pra(s) => {
                out.push(KIND_PRA);
                s.save_state(out)?;
            }
            SchemeInstance::Sca(s) => {
                out.push(KIND_SCA);
                s.save_state(out);
            }
            SchemeInstance::Prcat(s) => {
                out.push(KIND_PRCAT);
                s.save_state(out);
            }
            SchemeInstance::Drcat(s) => {
                out.push(KIND_DRCAT);
                s.save_state(out);
            }
            SchemeInstance::CounterCache(s) => {
                out.push(KIND_COUNTER_CACHE);
                s.save_state(out);
            }
            SchemeInstance::SpaceSaving(s) => {
                out.push(KIND_SPACE_SAVING);
                s.save_state(out);
            }
            SchemeInstance::Boxed(_) => {
                return Err(StateError::Unsupported("boxed external scheme"));
            }
        }
        Ok(())
    }

    /// Restores state captured by [`SchemeInstance::save_state`] onto a
    /// freshly built instance of the same spec. The leading kind tag must
    /// match the live variant — restoring a DRCAT image into an SCA engine
    /// is a typed error, not a reinterpretation.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on kind mismatch or malformed variant state.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let kind = r.next_word()?;
        match (kind, self) {
            (KIND_PRA, SchemeInstance::Pra(s)) => s.restore_state(r),
            (KIND_SCA, SchemeInstance::Sca(s)) => s.restore_state(r),
            (KIND_PRCAT, SchemeInstance::Prcat(s)) => s.restore_state(r),
            (KIND_DRCAT, SchemeInstance::Drcat(s)) => s.restore_state(r),
            (KIND_COUNTER_CACHE, SchemeInstance::CounterCache(s)) => s.restore_state(r),
            (KIND_SPACE_SAVING, SchemeInstance::SpaceSaving(s)) => s.restore_state(r),
            (_, SchemeInstance::Boxed(_)) => Err(StateError::Unsupported("boxed external scheme")),
            _ => Err(StateError::Invalid("scheme kind tag mismatch")),
        }
    }

    /// Converts into a trait object. A [`SchemeInstance::Boxed`] variant is
    /// unwrapped rather than double-boxed.
    pub fn into_boxed(self) -> Box<dyn MitigationScheme + Send> {
        match self {
            SchemeInstance::Boxed(b) => b,
            other => Box::new(other),
        }
    }
}

impl MitigationScheme for SchemeInstance {
    fn on_activation(&mut self, row: RowId) -> Refreshes {
        SchemeInstance::on_activation(self, row)
    }

    fn on_epoch_end(&mut self) {
        SchemeInstance::on_epoch_end(self)
    }

    fn stats(&self) -> &SchemeStats {
        SchemeInstance::stats(self)
    }

    fn hardware(&self) -> HardwareProfile {
        SchemeInstance::hardware(self)
    }

    fn rows(&self) -> u32 {
        SchemeInstance::rows(self)
    }

    fn name(&self) -> String {
        SchemeInstance::name(self)
    }
}

impl std::fmt::Debug for SchemeInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeInstance")
            .field("name", &self.name())
            .field("rows", &self.rows())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemeSpec;

    #[test]
    fn instance_matches_boxed_build() {
        let spec = SchemeSpec::Drcat {
            counters: 64,
            levels: 11,
            threshold: 512,
        };
        let mut instance = spec.build_instance(4096, 0).unwrap();
        let mut boxed = spec.build(4096, 0).unwrap();
        for i in 0..20_000u32 {
            let row = RowId(if i % 3 == 0 { 77 } else { i % 4096 });
            assert_eq!(instance.on_activation(row), boxed.on_activation(row));
        }
        instance.on_epoch_end();
        boxed.on_epoch_end();
        assert_eq!(instance.stats(), boxed.stats());
        assert_eq!(instance.name(), boxed.name());
        assert_eq!(instance.hardware(), boxed.hardware());
        assert!(
            instance.stats().refresh_events > 0,
            "hammered row must fire"
        );
    }

    #[test]
    fn boxed_escape_hatch_delegates() {
        let spec = SchemeSpec::Sca {
            counters: 16,
            threshold: 64,
        };
        let mut ext = SchemeInstance::Boxed(spec.build(1024, 0).unwrap());
        for _ in 0..64 {
            ext.on_activation(RowId(3));
        }
        assert_eq!(ext.stats().activations, 64);
        assert_eq!(ext.name(), "SCA_16");
        assert_eq!(ext.rows(), 1024);
        // into_boxed must not double-box.
        let b = ext.into_boxed();
        assert_eq!(b.name(), "SCA_16");
        assert!(format!("{:?}", SchemeInstance::Boxed(b)).contains("SCA_16"));
    }

    #[test]
    fn instance_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SchemeInstance>();
    }
}
