//! A ground-truth safety oracle for deterministic mitigation schemes.
//!
//! The guarantee a deterministic scheme (SCA, CAT, PRCAT, DRCAT, counter
//! cache) must provide: **no row is activated more than `T` times while any
//! of its neighbouring victim rows goes unrefreshed**. The oracle tracks,
//! for every aggressor row and each of its two victims, the number of
//! activations since that victim was last refreshed, and records a
//! violation whenever the exposure exceeds the threshold.
//!
//! Note the group-boundary caveat discussed in `DESIGN.md`: a victim whose
//! *two* aggressors are tracked by different counters can accumulate up to
//! `2·(T−1)` combined activations — this is inherent to all group-counting
//! schemes including the paper's, so the oracle checks per-aggressor
//! exposure, matching the guarantee the paper claims.

use crate::{MitigationScheme, Refreshes, RowId, RowRange};

/// Tracks per-(aggressor, victim) exposure and verifies the refresh
/// guarantee of a deterministic scheme.
///
/// ```
/// use cat_core::oracle::SafetyOracle;
/// use cat_core::{MitigationScheme, RowId, Sca};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let mut sca = Sca::new(1024, 8, 64)?;
/// let mut oracle = SafetyOracle::new(1024, 64);
/// for i in 0..100_000u32 {
///     let row = RowId((i * 37) % 1024);
///     let refreshes = sca.on_activation(row);
///     oracle.on_activation(row, &refreshes);
/// }
/// assert_eq!(oracle.violations(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SafetyOracle {
    rows: u32,
    threshold: u64,
    /// `exposure[2·r]`: activations of row `r` since victim `r−1` was
    /// refreshed; `exposure[2·r + 1]`: since victim `r+1` was refreshed.
    exposure: Vec<u64>,
    violations: u64,
    worst_exposure: u64,
}

impl SafetyOracle {
    /// Creates an oracle for a bank of `rows` rows and refresh threshold
    /// `threshold`.
    pub fn new(rows: u32, threshold: u32) -> Self {
        SafetyOracle {
            rows,
            threshold: u64::from(threshold),
            exposure: vec![0; rows as usize * 2],
            violations: 0,
            worst_exposure: 0,
        }
    }

    /// Records an activation of `row` and the scheme's refresh response
    /// (order matters: the scheme sees the activation first, so a refresh
    /// triggered by this very activation protects it).
    pub fn on_activation(&mut self, row: RowId, refreshes: &Refreshes) {
        let r = row.0 as usize;
        // Only track victims that exist: row 0 has no lower neighbour and
        // row N−1 has no upper neighbour.
        if row.0 > 0 {
            self.exposure[2 * r] += 1;
        }
        if row.0 + 1 < self.rows {
            self.exposure[2 * r + 1] += 1;
        }
        for range in *refreshes {
            self.on_refresh(range);
        }
        // After the refresh took effect, any remaining exposure above T is a
        // genuine violation (counted once per offending activation).
        let mut violated = false;
        for side in 0..2 {
            let e = self.exposure[2 * r + side];
            self.worst_exposure = self.worst_exposure.max(e);
            violated |= e > self.threshold;
        }
        if violated {
            self.violations += 1;
        }
    }

    /// Records that every victim row in `range` was refreshed: aggressors
    /// adjacent to those victims get the matching exposure reset.
    pub fn on_refresh(&mut self, range: RowRange) {
        for victim in range.iter() {
            let v = victim.0;
            if v > 0 {
                // Aggressor v−1's "+1 side" victim was refreshed.
                self.exposure[2 * (v as usize - 1) + 1] = 0;
            }
            if v + 1 < self.rows {
                // Aggressor v+1's "−1 side" victim was refreshed.
                self.exposure[2 * (v as usize + 1)] = 0;
            }
        }
    }

    /// Records a full-bank auto-refresh (epoch boundary).
    pub fn on_epoch_end(&mut self) {
        self.exposure.fill(0);
    }

    /// Number of violations observed so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The largest per-(aggressor, victim) exposure seen.
    pub fn worst_exposure(&self) -> u64 {
        self.worst_exposure
    }
}

/// Drives `scheme` with the access sequence `rows` while checking the
/// guarantee; returns the oracle for inspection.
///
/// # Panics
///
/// Panics if the scheme violates the refresh guarantee.
pub fn verify_scheme<S, I>(scheme: &mut S, threshold: u32, accesses: I) -> SafetyOracle
where
    S: MitigationScheme,
    I: IntoIterator<Item = RowId>,
{
    let mut oracle = SafetyOracle::new(scheme.rows(), threshold);
    for row in accesses {
        let refreshes = scheme.on_activation(row);
        oracle.on_activation(row, &refreshes);
        assert_eq!(
            oracle.violations(),
            0,
            "scheme {} exceeded exposure {} at row {row}",
            scheme.name(),
            threshold
        );
    }
    oracle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CatConfig, CatTree, Drcat, Prcat, Sca};

    fn hammer_pattern() -> impl Iterator<Item = RowId> {
        // A hostile mix: one heavily hammered row, a second moving target,
        // and background noise.
        (0..60_000u32).map(|i| match i % 4 {
            0 | 1 => RowId(700),
            2 => RowId((i / 2) % 1024),
            _ => RowId((i * 313) % 1024),
        })
    }

    #[test]
    fn sca_never_violates() {
        let mut sca = Sca::new(1024, 8, 128).unwrap();
        let oracle = verify_scheme(&mut sca, 128, hammer_pattern());
        assert!(oracle.worst_exposure() <= 128);
    }

    #[test]
    fn cat_never_violates() {
        let cfg = CatConfig::new(1024, 8, 6, 128).unwrap();
        let mut cat = CatTree::new(cfg);
        verify_scheme(&mut cat, 128, hammer_pattern());
    }

    #[test]
    fn prcat_never_violates_across_epochs() {
        let cfg = CatConfig::new(1024, 8, 6, 128).unwrap();
        let mut p = Prcat::new(cfg);
        let mut oracle = SafetyOracle::new(1024, 128);
        for (i, row) in hammer_pattern().enumerate() {
            let refreshes = p.on_activation(row);
            oracle.on_activation(row, &refreshes);
            if i % 10_000 == 9_999 {
                p.on_epoch_end();
                oracle.on_epoch_end();
            }
        }
        assert_eq!(oracle.violations(), 0);
    }

    #[test]
    fn drcat_never_violates_with_reconfiguration() {
        let cfg = CatConfig::new(1024, 8, 6, 128).unwrap();
        let mut d = Drcat::new(cfg);
        verify_scheme(&mut d, 128, hammer_pattern());
        assert!(d.stats().refresh_events > 0);
    }

    #[test]
    fn oracle_detects_a_broken_scheme() {
        // A scheme that never refreshes must be caught immediately.
        let mut oracle = SafetyOracle::new(64, 4);
        for _ in 0..5 {
            oracle.on_activation(RowId(10), &Refreshes::none());
        }
        assert_eq!(oracle.violations(), 1);
        assert_eq!(oracle.worst_exposure(), 5);
    }

    #[test]
    fn refresh_resets_only_matching_side() {
        let mut oracle = SafetyOracle::new(64, 100);
        for _ in 0..10 {
            oracle.on_activation(RowId(10), &Refreshes::none());
        }
        // Refreshing row 11 resets aggressor 10's "+1" exposure only.
        oracle.on_refresh(RowRange::new(11, 11));
        oracle.on_activation(RowId(10), &Refreshes::none());
        // "-1 side" is still 11, "+1 side" is 1.
        assert_eq!(oracle.worst_exposure(), 11);
    }
}
