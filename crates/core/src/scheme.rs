//! The [`MitigationScheme`] trait and its small supporting types.

use crate::{RowRange, SchemeStats};

/// Which mitigation scheme a [`HardwareProfile`] describes.
///
/// The energy model (`cat-energy`) keys its Table-II constants on this.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Static counter assignment (uniform groups).
    Sca,
    /// Periodically reset CAT.
    Prcat,
    /// Dynamically reconfigured CAT.
    Drcat,
    /// Probabilistic row activation.
    Pra,
    /// Per-row counters in DRAM with an on-chip counter cache.
    CounterCache,
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchemeKind::Sca => "SCA",
            SchemeKind::Prcat => "PRCAT",
            SchemeKind::Drcat => "DRCAT",
            SchemeKind::Pra => "PRA",
            SchemeKind::CounterCache => "CounterCache",
        };
        f.write_str(s)
    }
}

/// Static description of the hardware a scheme would occupy, consumed by the
/// energy/area model.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct HardwareProfile {
    /// Scheme family.
    pub kind: SchemeKind,
    /// Number of on-chip counters per bank (0 for PRA).
    pub counters: usize,
    /// Width of each counter in bits (⌈log2 T⌉).
    pub counter_bits: u32,
    /// Maximum tree depth `L` (CAT family; 1 otherwise).
    pub max_levels: u32,
    /// PRNG bits drawn per activation (PRA only).
    pub prng_bits_per_activation: u32,
    /// Refresh threshold `T`.
    pub refresh_threshold: u32,
}

/// The (at most two) row ranges a scheme asks the controller to refresh in
/// response to one activation.
///
/// Returned by value to avoid per-activation heap allocation; iterate it to
/// drain the ranges.
///
/// ```
/// use cat_core::{Refreshes, RowRange};
/// let r = Refreshes::pair(RowRange::new(1, 1), RowRange::new(3, 3));
/// let v: Vec<RowRange> = r.into_iter().collect();
/// assert_eq!(v.len(), 2);
/// assert_eq!(Refreshes::none().into_iter().count(), 0);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Refreshes {
    slots: [Option<RowRange>; 2],
}

impl Refreshes {
    /// No refresh required.
    pub fn none() -> Self {
        Refreshes {
            slots: [None, None],
        }
    }

    /// Refresh a single range.
    pub fn one(range: RowRange) -> Self {
        Refreshes {
            slots: [Some(range), None],
        }
    }

    /// Refresh two disjoint ranges (e.g. PRA's two victim rows).
    pub fn pair(a: RowRange, b: RowRange) -> Self {
        Refreshes {
            slots: [Some(a), Some(b)],
        }
    }

    /// `true` when no refresh was requested.
    pub fn is_empty(&self) -> bool {
        self.slots[0].is_none() && self.slots[1].is_none()
    }

    /// Total number of rows across the requested ranges.
    pub fn total_rows(&self) -> u64 {
        self.slots.iter().flatten().map(|range| range.len()).sum()
    }

    /// Number of requested ranges (0, 1 or 2).
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

/// Iterator over the ranges of a [`Refreshes`].
#[derive(Debug)]
pub struct IntoIter {
    slots: [Option<RowRange>; 2],
    idx: usize,
}

impl Iterator for IntoIter {
    type Item = RowRange;

    fn next(&mut self) -> Option<RowRange> {
        while self.idx < 2 {
            let slot = self.slots[self.idx].take();
            self.idx += 1;
            if slot.is_some() {
                return slot;
            }
        }
        None
    }
}

impl IntoIterator for Refreshes {
    type Item = RowRange;
    type IntoIter = IntoIter;

    fn into_iter(self) -> IntoIter {
        IntoIter {
            slots: self.slots,
            idx: 0,
        }
    }
}

/// A wordline-crosstalk mitigation scheme attached to one DRAM bank.
///
/// The memory controller (or the simulator standing in for it) calls
/// [`on_activation`](MitigationScheme::on_activation) for every `ACT` to the
/// bank and issues refreshes for every returned range. At each auto-refresh
/// epoch boundary (64 ms, when the whole bank has been refreshed) it calls
/// [`on_epoch_end`](MitigationScheme::on_epoch_end).
pub trait MitigationScheme {
    /// Records the activation of `row` and returns the row ranges that must
    /// be refreshed *now* to protect potential victims.
    fn on_activation(&mut self, row: crate::RowId) -> Refreshes;

    /// Signals that a full auto-refresh epoch elapsed (every row of the bank
    /// was refreshed by the regular refresh mechanism).
    fn on_epoch_end(&mut self);

    /// Event counts accumulated so far.
    fn stats(&self) -> &SchemeStats;

    /// Hardware footprint description for the energy/area model.
    fn hardware(&self) -> HardwareProfile;

    /// Number of rows in the protected bank.
    fn rows(&self) -> u32;

    /// Human-readable name, e.g. `"DRCAT_64"`.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refreshes_iteration_orders_and_counts() {
        let a = RowRange::new(0, 1);
        let b = RowRange::new(5, 9);
        let r = Refreshes::pair(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_rows(), 2 + 5);
        let got: Vec<_> = r.into_iter().collect();
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn none_is_empty() {
        assert!(Refreshes::none().is_empty());
        assert_eq!(Refreshes::none().total_rows(), 0);
        assert!(!Refreshes::one(RowRange::new(0, 0)).is_empty());
    }

    #[test]
    fn scheme_kind_display() {
        assert_eq!(SchemeKind::Drcat.to_string(), "DRCAT");
        assert_eq!(SchemeKind::Pra.to_string(), "PRA");
    }
}
