//! Sparse bit-block slab — the storage primitive behind lazily
//! materialized per-bank state (`DESIGN.md §10`).
//!
//! A [`SparseSlab`] maps a fixed index space `0..capacity` to at most one
//! payload per index, organised as 64-entry *bit-blocks* in the style of
//! hierarchical sparse arrays: each block keeps a `u64` occupancy bitmask
//! plus a dense, rank-ordered payload vector. Lookup is O(1) — mask test,
//! then `count_ones` over the bits below the queried one selects the
//! payload slot. Absent entries cost zero payload bytes, and blocks past
//! the highest touched index are never allocated, so a slab over a
//! million mostly-cold banks stays a few kilobytes.
//!
//! Blocks whose occupancy crosses 3/4 of the block's span are *promoted*
//! to an uncompressed direct-indexed layout (one `Option<T>` slot per
//! index) so dense regions — e.g. a fully-hot 16-bank engine — pay no
//! rank arithmetic on the hot path; dropping back below 1/4 *demotes*
//! the block to the packed layout again (the gap between the two
//! thresholds is deliberate hysteresis).
//!
//! Determinism: the slab is purely index-addressed — no hashing, no
//! allocation-order dependence. Iteration is always in ascending index
//! order regardless of insertion order.

/// Occupancy numerator over [`PROMOTE_DEN`] at or above which a packed
/// block switches to the direct-indexed layout.
const PROMOTE_NUM: usize = 3;
/// Denominator of the promotion/demotion density thresholds.
const PROMOTE_DEN: usize = 4;

/// A fixed-capacity sparse map from `usize` indices to `T`, stored as
/// 64-entry bit-blocks (see the module docs for layout and complexity).
///
/// ```
/// use cat_core::SparseSlab;
/// let mut slab: SparseSlab<u64> = SparseSlab::new(1 << 20);
/// *slab.get_or_insert_with(1_000_000, u64::default) += 7;
/// assert_eq!(slab.get(1_000_000), Some(&7));
/// assert_eq!(slab.get(3), None);
/// assert_eq!(slab.occupied(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SparseSlab<T> {
    capacity: usize,
    occupied: usize,
    /// Grown lazily up to the highest touched block only.
    blocks: Vec<Block<T>>,
}

#[derive(Clone, Debug)]
struct Block<T> {
    mask: u64,
    store: Store<T>,
}

#[derive(Clone, Debug)]
enum Store<T> {
    /// Rank-ordered dense payload: the entry for local bit `i` lives at
    /// `popcount(mask & ((1 << i) - 1))`.
    Packed(Vec<T>),
    /// Direct-indexed escape hatch for dense blocks: slot `i` holds the
    /// entry for local bit `i`.
    Direct(Vec<Option<T>>),
}

impl<T> Block<T> {
    fn empty() -> Self {
        Block {
            mask: 0,
            store: Store::Packed(Vec::new()),
        }
    }

    /// Packed → direct-indexed, preserving ascending order.
    fn promote(&mut self, span: usize) {
        if let Store::Packed(packed) = &mut self.store {
            let mut direct: Vec<Option<T>> = Vec::with_capacity(span);
            direct.resize_with(span, || None);
            let mut mask = self.mask;
            for value in packed.drain(..) {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                direct[i] = Some(value);
            }
            self.store = Store::Direct(direct);
        }
    }

    /// Direct-indexed → packed; `drain` visits slots in ascending index
    /// order, which is exactly rank order.
    fn demote(&mut self) {
        if let Store::Direct(direct) = &mut self.store {
            let packed: Vec<T> = direct.drain(..).flatten().collect();
            self.store = Store::Packed(packed);
        }
    }
}

/// Ascending iterator over the set bits of a `u64`.
struct MaskBits(u64);

impl Iterator for MaskBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }
}

/// Two-variant iterator so both block layouts share one `flat_map`.
enum Either<A, B> {
    Packed(A),
    Direct(B),
}

impl<A: Iterator<Item = I>, B: Iterator<Item = I>, I> Iterator for Either<A, B> {
    type Item = I;

    fn next(&mut self) -> Option<I> {
        match self {
            Either::Packed(a) => a.next(),
            Either::Direct(b) => b.next(),
        }
    }
}

impl<T> SparseSlab<T> {
    /// An empty slab over the index space `0..capacity`. O(1): no block
    /// is allocated until an index is inserted.
    pub fn new(capacity: usize) -> Self {
        SparseSlab {
            capacity,
            occupied: 0,
            blocks: Vec::new(),
        }
    }

    /// The fixed index-space size this slab was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many indices currently hold an entry.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Allocated capacity of the block directory, in blocks. Unlike the
    /// entry count this is touch-*order* dependent (the directory grows to
    /// cover the highest block seen so far), so checkpoints record it as a
    /// high-water mark and restore it via
    /// [`SparseSlab::reserve_block_capacity`] to keep
    /// [`SparseSlab::heap_bytes`] bit-equal across a save/restore cycle.
    pub fn block_capacity(&self) -> usize {
        self.blocks.capacity()
    }

    /// Grows the block directory's allocation to at least `cap` blocks
    /// without changing its contents. Exact (`reserve_exact`), so restoring
    /// a saved [`SparseSlab::block_capacity`] reproduces it precisely.
    pub fn reserve_block_capacity(&mut self, cap: usize) {
        self.blocks
            .reserve_exact(cap.saturating_sub(self.blocks.len()));
    }

    /// `true` when no index holds an entry.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Number of valid local bits in block `b` (64 except for the tail
    /// block of a capacity that is not a multiple of 64).
    fn span(&self, b: usize) -> usize {
        (self.capacity - (b << 6)).min(64)
    }

    /// `true` when `idx` holds an entry.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        idx < self.capacity
            && self
                .blocks
                .get(idx >> 6)
                .is_some_and(|blk| blk.mask & (1 << (idx & 63)) != 0)
    }

    /// The entry at `idx`, if present. Out-of-capacity indices are `None`.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&T> {
        if idx >= self.capacity {
            return None;
        }
        let block = self.blocks.get(idx >> 6)?;
        let bit = 1u64 << (idx & 63);
        if block.mask & bit == 0 {
            return None;
        }
        match &block.store {
            Store::Packed(v) => v.get((block.mask & (bit - 1)).count_ones() as usize),
            Store::Direct(v) => v.get(idx & 63)?.as_ref(),
        }
    }

    /// Mutable access to the entry at `idx`, if present.
    #[inline]
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut T> {
        if idx >= self.capacity {
            return None;
        }
        let block = self.blocks.get_mut(idx >> 6)?;
        let bit = 1u64 << (idx & 63);
        if block.mask & bit == 0 {
            return None;
        }
        match &mut block.store {
            Store::Packed(v) => v.get_mut((block.mask & (bit - 1)).count_ones() as usize),
            Store::Direct(v) => v.get_mut(idx & 63)?.as_mut(),
        }
    }

    /// Inserts `value` at `idx`, returning the previous entry if any.
    /// Crossing the density threshold promotes the block in place.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is outside the slab's capacity — matching the
    /// bounds behaviour of the dense vectors this type replaces.
    pub fn insert(&mut self, idx: usize, value: T) -> Option<T> {
        assert!(
            idx < self.capacity,
            "index {idx} out of slab capacity {}",
            self.capacity
        );
        let b = idx >> 6;
        if self.blocks.len() <= b {
            self.blocks.resize_with(b + 1, Block::empty);
        }
        let span = self.span(b);
        let block = &mut self.blocks[b];
        let bit = 1u64 << (idx & 63);
        match &mut block.store {
            Store::Direct(v) => {
                let old = v[idx & 63].replace(value);
                if old.is_none() {
                    block.mask |= bit;
                    self.occupied += 1;
                }
                old
            }
            Store::Packed(v) => {
                let rank = (block.mask & (bit - 1)).count_ones() as usize;
                if block.mask & bit != 0 {
                    Some(std::mem::replace(&mut v[rank], value))
                } else {
                    v.insert(rank, value);
                    block.mask |= bit;
                    self.occupied += 1;
                    if block.mask.count_ones() as usize * PROMOTE_DEN >= span * PROMOTE_NUM {
                        block.promote(span);
                    }
                    None
                }
            }
        }
    }

    /// Removes and returns the entry at `idx`. An emptied block releases
    /// its payload allocation; a direct block falling below 1/4 density
    /// demotes back to the packed layout.
    pub fn remove(&mut self, idx: usize) -> Option<T> {
        if idx >= self.capacity {
            return None;
        }
        let b = idx >> 6;
        let span = self.span(b);
        let block = self.blocks.get_mut(b)?;
        let bit = 1u64 << (idx & 63);
        if block.mask & bit == 0 {
            return None;
        }
        block.mask &= !bit;
        self.occupied -= 1;
        let out = match &mut block.store {
            Store::Direct(v) => v[idx & 63].take(),
            Store::Packed(v) => {
                let rank = (block.mask & (bit - 1)).count_ones() as usize;
                Some(v.remove(rank))
            }
        };
        let occ = block.mask.count_ones() as usize;
        if occ == 0 {
            *block = Block::empty();
        } else if matches!(block.store, Store::Direct(_)) && occ * PROMOTE_DEN < span {
            block.demote();
        }
        out
    }

    /// The entry at `idx`, inserting `make()` first if absent.
    ///
    /// This is the engine's per-activation path, so the present case is a
    /// single pass: one occupancy-mask test, then one rank-select (or
    /// direct) payload index — never the `contains` + `insert` + `get_mut`
    /// triple walk of the naive composition.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is outside the slab's capacity (like
    /// [`insert`](Self::insert)).
    #[inline]
    pub fn get_or_insert_with(&mut self, idx: usize, make: impl FnOnce() -> T) -> &mut T {
        let (b, bit) = (idx >> 6, 1u64 << (idx & 63));
        let present =
            idx < self.capacity && self.blocks.get(b).is_some_and(|blk| blk.mask & bit != 0);
        if !present {
            self.insert(idx, make());
        }
        let block = &mut self.blocks[b];
        match &mut block.store {
            Store::Packed(v) => &mut v[(block.mask & (bit - 1)).count_ones() as usize],
            Store::Direct(v) => v[idx & 63].as_mut().expect("entry present: checked above"),
        }
    }

    /// Entries in ascending index order, regardless of insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.blocks.iter().enumerate().flat_map(|(b, block)| {
            let base = b << 6;
            match &block.store {
                Store::Packed(v) => Either::Packed(
                    MaskBits(block.mask)
                        .zip(v.iter())
                        .map(move |(off, t)| (base + off, t)),
                ),
                Store::Direct(v) => Either::Direct(
                    v.iter()
                        .enumerate()
                        .filter_map(move |(off, o)| o.as_ref().map(|t| (base + off, t))),
                ),
            }
        })
    }

    /// Mutable entries in ascending index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.blocks.iter_mut().enumerate().flat_map(|(b, block)| {
            let base = b << 6;
            match &mut block.store {
                Store::Packed(v) => Either::Packed(
                    MaskBits(block.mask)
                        .zip(v.iter_mut())
                        .map(move |(off, t)| (base + off, t)),
                ),
                Store::Direct(v) => Either::Direct(
                    v.iter_mut()
                        .enumerate()
                        .filter_map(move |(off, o)| o.as_mut().map(|t| (base + off, t))),
                ),
            }
        })
    }

    /// Removes and returns every entry with index in `range`, in
    /// ascending index order. Only blocks overlapping the range are
    /// visited, so draining a cold range is O(blocks in range).
    pub fn drain_range(&mut self, range: std::ops::Range<usize>) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        if range.start >= range.end || self.blocks.is_empty() {
            return out;
        }
        let b0 = range.start >> 6;
        let b1 = ((range.end - 1) >> 6).min(self.blocks.len() - 1);
        for b in b0..=b1 {
            let base = b << 6;
            let lo = range.start.max(base) - base;
            let hi = range.end.min(base + 64) - base;
            let window = if hi - lo == 64 {
                u64::MAX
            } else {
                ((1u64 << (hi - lo)) - 1) << lo
            };
            let mut bits = self.blocks[b].mask & window;
            while bits != 0 {
                let off = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if let Some(v) = self.remove(base + off) {
                    out.push((base + off, v));
                }
            }
        }
        out
    }

    /// Drops every entry and releases all block storage, including the
    /// block directory itself; capacity is unchanged.
    pub fn clear(&mut self) {
        self.blocks = Vec::new();
        self.occupied = 0;
    }

    /// Resident heap bytes of the slab itself plus `per_item` bytes for
    /// each live entry (for entries that own further heap state).
    pub fn heap_bytes_with(&self, per_item: impl Fn(&T) -> usize) -> usize {
        let mut bytes = self.blocks.capacity() * std::mem::size_of::<Block<T>>();
        for block in &self.blocks {
            bytes += match &block.store {
                Store::Packed(v) => v.capacity() * std::mem::size_of::<T>(),
                Store::Direct(v) => v.capacity() * std::mem::size_of::<Option<T>>(),
            };
        }
        bytes + self.iter().map(|(_, t)| per_item(t)).sum::<usize>()
    }

    /// Resident heap bytes of the slab's own block storage.
    pub fn heap_bytes(&self) -> usize {
        self.heap_bytes_with(|_| 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_direct<T>(slab: &SparseSlab<T>, idx: usize) -> bool {
        matches!(
            slab.blocks.get(idx >> 6).map(|b| &b.store),
            Some(Store::Direct(_))
        )
    }

    #[test]
    fn empty_slab_allocates_nothing() {
        let slab: SparseSlab<u64> = SparseSlab::new(1 << 30);
        assert_eq!(slab.capacity(), 1 << 30);
        assert_eq!(slab.occupied(), 0);
        assert!(slab.is_empty());
        assert_eq!(slab.heap_bytes(), 0);
        assert_eq!(slab.get(12345), None);
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = SparseSlab::new(200);
        assert_eq!(slab.insert(7, "seven"), None);
        assert_eq!(slab.insert(130, "one-thirty"), None);
        assert_eq!(slab.get(7), Some(&"seven"));
        assert_eq!(slab.get(130), Some(&"one-thirty"));
        assert_eq!(slab.get(8), None);
        assert_eq!(slab.insert(7, "SEVEN"), Some("seven"));
        assert_eq!(slab.occupied(), 2);
        assert_eq!(slab.remove(7), Some("SEVEN"));
        assert_eq!(slab.remove(7), None);
        assert_eq!(slab.occupied(), 1);
        *slab.get_mut(130).unwrap() = "x";
        assert_eq!(slab.get(130), Some(&"x"));
    }

    #[test]
    #[should_panic(expected = "out of slab capacity")]
    fn insert_beyond_capacity_panics() {
        let mut slab = SparseSlab::new(10);
        slab.insert(10, 0u8);
    }

    #[test]
    fn rank_select_survives_out_of_order_inserts() {
        let mut slab = SparseSlab::new(64);
        for idx in [40usize, 3, 17, 62, 0, 41] {
            slab.insert(idx, idx * 10);
        }
        for idx in [0usize, 3, 17, 40, 41, 62] {
            assert_eq!(slab.get(idx), Some(&(idx * 10)), "idx {idx}");
        }
        let order: Vec<usize> = slab.iter().map(|(i, _)| i).collect();
        assert_eq!(order, vec![0, 3, 17, 40, 41, 62]);
    }

    #[test]
    fn promotion_at_three_quarters_density() {
        let mut slab = SparseSlab::new(128);
        for idx in 0..47 {
            slab.insert(idx, idx);
            assert!(!is_direct(&slab, 0), "packed through {idx}");
        }
        slab.insert(47, 47); // 48/64 = 3/4: promote
        assert!(is_direct(&slab, 0));
        // Contents and order survive the layout switch.
        let got: Vec<usize> = slab.iter().map(|(i, _)| i).collect();
        assert_eq!(got, (0..48).collect::<Vec<_>>());
        assert_eq!(slab.get(33), Some(&33));
    }

    #[test]
    fn demotion_below_one_quarter_with_hysteresis() {
        let mut slab = SparseSlab::new(64);
        for idx in 0..48 {
            slab.insert(idx, idx);
        }
        assert!(is_direct(&slab, 0));
        // Dropping to 16 (= 1/4) keeps the direct layout (hysteresis)…
        for idx in 16..48 {
            slab.remove(idx);
        }
        assert!(is_direct(&slab, 0));
        // …one below demotes.
        slab.remove(0);
        assert!(!is_direct(&slab, 0));
        let got: Vec<usize> = slab.iter().map(|(i, _)| i).collect();
        assert_eq!(got, (1..16).collect::<Vec<_>>());
    }

    #[test]
    fn tail_block_promotes_relative_to_its_span() {
        // Capacity 70: tail block spans 6 local bits; 5/6 ≥ 3/4 promotes.
        let mut slab = SparseSlab::new(70);
        for idx in 64..68 {
            slab.insert(idx, idx);
        }
        assert!(!is_direct(&slab, 64));
        slab.insert(68, 68);
        assert!(is_direct(&slab, 64));
        assert_eq!(slab.get(68), Some(&68));
        // A fully-hot tiny slab goes direct immediately.
        let mut tiny = SparseSlab::new(4);
        tiny.insert(0, 0);
        tiny.insert(1, 1);
        tiny.insert(2, 2);
        assert!(is_direct(&tiny, 0));
    }

    #[test]
    fn emptied_block_releases_storage() {
        let mut slab = SparseSlab::new(1 << 20);
        slab.insert(999_999, 1u64);
        let with_entry = slab.heap_bytes();
        slab.remove(999_999);
        let residual = slab.heap_bytes();
        assert!(slab.is_empty());
        // The payload is gone; only the block directory (one empty Block
        // per 64-index span up to the highest touched block) remains —
        // well under the 8 MiB a dense u64-per-index layout would hold.
        assert!(residual < with_entry);
        assert!(residual < (1 << 20) * std::mem::size_of::<u64>() / 10);
        assert_eq!(
            residual,
            slab.blocks.capacity() * std::mem::size_of::<Block<u64>>()
        );
    }

    #[test]
    fn drain_range_is_ascending_and_reinsertable() {
        let mut slab = SparseSlab::new(300);
        for idx in (0..300).step_by(7) {
            slab.insert(idx, idx as u64);
        }
        let before: Vec<(usize, u64)> = slab.iter().map(|(i, v)| (i, *v)).collect();
        let drained = slab.drain_range(100..250);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(drained.iter().all(|&(i, _)| (100..250).contains(&i)));
        assert!(slab.iter().all(|(i, _)| !(100..250).contains(&i)));
        for (i, v) in drained {
            slab.insert(i, v);
        }
        let after: Vec<(usize, u64)> = slab.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(before, after);
        // Ranges past the allocated blocks are a no-op.
        assert!(slab.drain_range(10_000..20_000).is_empty());
        let empty: Vec<(usize, u64)> = Vec::new();
        assert_eq!(slab.drain_range(5..5), empty);
    }

    #[test]
    fn clear_resets_and_releases() {
        let mut slab = SparseSlab::new(1000);
        for idx in 0..1000 {
            slab.insert(idx, idx);
        }
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.heap_bytes(), 0);
        assert_eq!(slab.get(500), None);
        assert_eq!(slab.capacity(), 1000);
        slab.insert(500, 5);
        assert_eq!(slab.get(500), Some(&5));
    }

    #[test]
    fn iter_mut_visits_every_entry_once() {
        let mut slab = SparseSlab::new(256);
        for idx in (0..256).step_by(3) {
            slab.insert(idx, 0u32);
        }
        for (_, v) in slab.iter_mut() {
            *v += 1;
        }
        assert!(slab.iter().all(|(_, v)| *v == 1));
        assert_eq!(slab.iter().count(), slab.occupied());
    }

    #[test]
    fn heap_accounting_tracks_payload_and_per_item_bytes() {
        let mut slab: SparseSlab<Vec<u8>> = SparseSlab::new(64);
        slab.insert(5, vec![0u8; 1024]);
        let shallow = slab.heap_bytes();
        let deep = slab.heap_bytes_with(|v| v.capacity());
        assert_eq!(deep, shallow + 1024);
    }

    #[test]
    fn block_capacity_round_trips_heap_bytes() {
        // Grow a slab with an out-of-order touch pattern (high block first,
        // then low), which leaves directory capacity above its length needs.
        let mut slab = SparseSlab::new(4096);
        slab.insert(4000, 1u64);
        slab.insert(3, 2);
        for idx in (0..2048).step_by(5) {
            slab.insert(idx, idx as u64);
        }
        // Rebuild by ascending reinsertion with the capacity pre-reserved,
        // the way checkpoint restore does.
        let mut rebuilt = SparseSlab::new(4096);
        rebuilt.reserve_block_capacity(slab.block_capacity());
        for (idx, v) in slab.iter() {
            rebuilt.insert(idx, *v);
        }
        assert_eq!(rebuilt.block_capacity(), slab.block_capacity());
        assert_eq!(rebuilt.heap_bytes(), slab.heap_bytes());
        assert_eq!(rebuilt.occupied(), slab.occupied());
    }
}
