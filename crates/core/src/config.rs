//! Validated configuration for the CAT family of schemes.

use std::error::Error;
use std::fmt;

use crate::thresholds::{SplitThresholds, ThresholdPolicy};

/// Errors returned when a [`CatConfig`] (or other scheme configuration) is
/// inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `rows` must be a power of two ≥ 8.
    RowsNotPowerOfTwo(u32),
    /// `counters` must be a power of two ≥ 4.
    CountersInvalid(usize),
    /// `max_levels` must satisfy `λ ≤ L` and `L − 1 ≤ log2(rows)`.
    LevelsOutOfRange {
        /// Requested maximum number of levels `L`.
        max_levels: u32,
        /// Pre-split levels λ.
        lambda: u32,
        /// log2 of the number of rows.
        log2_rows: u32,
    },
    /// The refresh threshold must be at least 2.
    ThresholdTooSmall(u32),
    /// λ must satisfy `1 ≤ λ ≤ log2(counters)`.
    LambdaOutOfRange {
        /// Requested λ.
        lambda: u32,
        /// log2 of the number of counters.
        log2_counters: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::RowsNotPowerOfTwo(rows) => {
                write!(f, "rows must be a power of two >= 8, got {rows}")
            }
            ConfigError::CountersInvalid(m) => {
                write!(f, "counters must be a power of two >= 4, got {m}")
            }
            ConfigError::LevelsOutOfRange {
                max_levels,
                lambda,
                log2_rows,
            } => write!(
                f,
                "max_levels {max_levels} out of range (need lambda {lambda} <= L and L-1 <= log2(rows) = {log2_rows})"
            ),
            ConfigError::ThresholdTooSmall(t) => {
                write!(f, "refresh threshold must be >= 2, got {t}")
            }
            ConfigError::LambdaOutOfRange {
                lambda,
                log2_counters,
            } => write!(
                f,
                "lambda {lambda} out of range (need 1 <= lambda <= log2(counters) = {log2_counters})"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Configuration of a CAT/PRCAT/DRCAT instance protecting one bank.
///
/// ```
/// use cat_core::{CatConfig, ThresholdPolicy};
///
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let cfg = CatConfig::new(65_536, 64, 11, 32_768)?
///     .with_policy(ThresholdPolicy::PaperCurve);
/// assert_eq!(cfg.lambda(), 6); // pre-split to log2(M) levels by default
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CatConfig {
    rows: u32,
    counters: usize,
    max_levels: u32,
    refresh_threshold: u32,
    policy: ThresholdPolicy,
    lambda: u32,
}

impl CatConfig {
    /// Creates a configuration for a bank of `rows` rows protected by
    /// `counters` counters, trees of up to `max_levels` levels and refresh
    /// threshold `refresh_threshold` (the paper's `N`, `M`, `L`, `T`).
    ///
    /// The pre-split depth λ defaults to `log2(counters)` (§IV-C) and the
    /// split-threshold policy to [`ThresholdPolicy::PaperCurve`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is out of range, e.g. when
    /// `rows` or `counters` is not a power of two, or when the tree would be
    /// deeper than `1 + log2(rows)` levels (groups smaller than one row).
    pub fn new(
        rows: u32,
        counters: usize,
        max_levels: u32,
        refresh_threshold: u32,
    ) -> Result<Self, ConfigError> {
        if !rows.is_power_of_two() || rows < 8 {
            return Err(ConfigError::RowsNotPowerOfTwo(rows));
        }
        if !counters.is_power_of_two() || counters < 4 || counters > u16::MAX as usize {
            return Err(ConfigError::CountersInvalid(counters));
        }
        if refresh_threshold < 2 {
            return Err(ConfigError::ThresholdTooSmall(refresh_threshold));
        }
        let lambda = counters.trailing_zeros();
        let cfg = CatConfig {
            rows,
            counters,
            max_levels,
            refresh_threshold,
            policy: ThresholdPolicy::PaperCurve,
            lambda,
        };
        cfg.validate_levels()?;
        Ok(cfg)
    }

    fn validate_levels(&self) -> Result<(), ConfigError> {
        let log2_rows = self.rows.trailing_zeros();
        if self.max_levels < self.lambda || self.max_levels.saturating_sub(1) > log2_rows {
            return Err(ConfigError::LevelsOutOfRange {
                max_levels: self.max_levels,
                lambda: self.lambda,
                log2_rows,
            });
        }
        Ok(())
    }

    /// Selects the split-threshold policy (default: `PaperCurve`).
    pub fn with_policy(mut self, policy: ThresholdPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the pre-split depth λ (§IV-C). `lambda = 1` starts from a
    /// single root counter exactly as in Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `lambda` is 0, exceeds `log2(counters)`,
    /// or exceeds `max_levels`.
    pub fn with_lambda(mut self, lambda: u32) -> Result<Self, ConfigError> {
        let log2_counters = self.counters.trailing_zeros();
        if lambda == 0 || lambda > log2_counters {
            return Err(ConfigError::LambdaOutOfRange {
                lambda,
                log2_counters,
            });
        }
        self.lambda = lambda;
        self.validate_levels()?;
        Ok(self)
    }

    /// Number of rows per bank (`N`).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of counters (`M`).
    pub fn counters(&self) -> usize {
        self.counters
    }

    /// Maximum number of tree levels (`L`).
    pub fn max_levels(&self) -> u32 {
        self.max_levels
    }

    /// Refresh threshold (`T`).
    pub fn refresh_threshold(&self) -> u32 {
        self.refresh_threshold
    }

    /// Split-threshold policy.
    pub fn policy(&self) -> ThresholdPolicy {
        self.policy
    }

    /// Pre-split depth λ.
    pub fn lambda(&self) -> u32 {
        self.lambda
    }

    /// Builds the per-level split thresholds for this configuration.
    pub fn split_thresholds(&self) -> SplitThresholds {
        SplitThresholds::new(
            self.policy,
            self.refresh_threshold,
            self.lambda,
            self.max_levels,
        )
    }

    /// Width of one counter in bits (`⌈log2 T⌉`, §III-B).
    pub fn counter_bits(&self) -> u32 {
        32 - (self.refresh_threshold - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_configuration() {
        let cfg = CatConfig::new(65_536, 64, 11, 32_768).unwrap();
        assert_eq!(cfg.lambda(), 6);
        assert_eq!(cfg.counter_bits(), 15);
        assert_eq!(cfg.policy(), ThresholdPolicy::PaperCurve);
    }

    #[test]
    fn rejects_non_power_of_two_rows() {
        assert_eq!(
            CatConfig::new(1000, 64, 11, 32_768),
            Err(ConfigError::RowsNotPowerOfTwo(1000))
        );
    }

    #[test]
    fn rejects_bad_counter_counts() {
        assert!(matches!(
            CatConfig::new(65_536, 3, 11, 32_768),
            Err(ConfigError::CountersInvalid(3))
        ));
        assert!(matches!(
            CatConfig::new(65_536, 48, 11, 32_768),
            Err(ConfigError::CountersInvalid(48))
        ));
    }

    #[test]
    fn rejects_too_deep_trees() {
        // 16-row bank cannot host a 6-level tree (groups < 1 row).
        assert!(matches!(
            CatConfig::new(16, 4, 6, 1024),
            Err(ConfigError::LevelsOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_levels_below_lambda() {
        // lambda defaults to log2(64) = 6 > L = 4.
        assert!(matches!(
            CatConfig::new(65_536, 64, 4, 32_768),
            Err(ConfigError::LevelsOutOfRange { .. })
        ));
    }

    #[test]
    fn lambda_override_validates() {
        let cfg = CatConfig::new(65_536, 64, 11, 32_768).unwrap();
        assert!(cfg.clone().with_lambda(0).is_err());
        assert!(cfg.clone().with_lambda(7).is_err());
        let cfg = cfg.with_lambda(1).unwrap();
        assert_eq!(cfg.lambda(), 1);
    }

    #[test]
    fn counter_bits_matches_log2_t() {
        for (t, bits) in [(32_768, 15), (16_384, 14), (8_192, 13), (65_536, 16)] {
            let cfg = CatConfig::new(65_536, 64, 11, t).unwrap();
            assert_eq!(cfg.counter_bits(), bits, "T = {t}");
        }
    }

    #[test]
    fn errors_display_meaningfully() {
        let err = CatConfig::new(1000, 64, 11, 32_768).unwrap_err();
        assert!(err.to_string().contains("power of two"));
        let err = CatConfig::new(65_536, 64, 11, 1).unwrap_err();
        assert!(err.to_string().contains("threshold"));
    }
}
