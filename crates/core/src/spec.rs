//! Declarative scheme selection: which mitigation scheme to instantiate per
//! bank, plus textual round-trip parsing for scripts and CLIs.
//!
//! `SchemeSpec` lives in `cat-core` (it moved down from `cat-sim`) so that
//! every layer — the engine, the simulator, the benches — can build scheme
//! instances from one description without depending on the simulator.

use std::fmt;
use std::str::FromStr;

use crate::instance::SchemeInstance;
use crate::{
    CatConfig, CounterCache, CounterCacheConfig, Drcat, HardwareProfile, MitigationScheme, Pra,
    Prcat, Sca, SchemeKind, SpaceSaving, ThresholdPolicy,
};

/// Which crosstalk-mitigation scheme a simulation attaches to every bank.
///
/// ```
/// use cat_core::SchemeSpec;
/// let spec = SchemeSpec::Drcat { counters: 64, levels: 11, threshold: 32_768 };
/// let scheme = spec.build(65_536, 0).unwrap();
/// assert_eq!(scheme.name(), "DRCAT_64");
/// assert_eq!(SchemeSpec::None.build(65_536, 0).is_none(), true);
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum SchemeSpec {
    /// No mitigation (baseline for ETO).
    None,
    /// Probabilistic row activation with nominal probability `p`.
    Pra {
        /// Refresh probability per activation.
        p: f64,
        /// PRNG word width in bits (paper: 9).
        bits: u32,
        /// Base seed (per-bank seeds derive from it).
        seed: u64,
    },
    /// Static counter assignment with `counters` uniform groups.
    Sca {
        /// Counters per bank.
        counters: usize,
        /// Refresh threshold `T`.
        threshold: u32,
    },
    /// Periodically reset CAT.
    Prcat {
        /// Counters per bank (`M`).
        counters: usize,
        /// Maximum tree levels (`L`).
        levels: u32,
        /// Refresh threshold `T`.
        threshold: u32,
    },
    /// Dynamically reconfigured CAT.
    Drcat {
        /// Counters per bank (`M`).
        counters: usize,
        /// Maximum tree levels (`L`).
        levels: u32,
        /// Refresh threshold `T`.
        threshold: u32,
    },
    /// Per-row counters in DRAM with an on-chip counter cache.
    CounterCache {
        /// Cached counter entries per bank.
        entries: usize,
        /// Associativity.
        ways: usize,
        /// Refresh threshold `T`.
        threshold: u32,
    },
    /// Space-Saving frequent-item tracker (extension baseline; DESIGN.md §6).
    SpaceSaving {
        /// Tracking counters per bank.
        counters: usize,
        /// Refresh threshold `T`.
        threshold: u32,
    },
}

/// PRA's default base seed (per-bank seeds derive from it).
pub const PRA_DEFAULT_SEED: u64 = 0x5eed_cafe;

impl SchemeSpec {
    /// PRA with the paper's defaults (9 random bits per access).
    pub fn pra(p: f64) -> Self {
        SchemeSpec::Pra {
            p,
            bits: 9,
            seed: PRA_DEFAULT_SEED,
        }
    }

    /// Instantiates the scheme for one bank of `rows` rows as a
    /// statically-dispatched [`SchemeInstance`].
    ///
    /// Returns `None` for [`SchemeSpec::None`]. PRA banks get distinct,
    /// deterministic PRNG seeds derived from the base seed and `bank_index`,
    /// which is what makes bank-sharded execution reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the specification is invalid for the bank geometry (these
    /// are programming errors in experiment definitions, not runtime
    /// conditions).
    pub fn build_instance(&self, rows: u32, bank_index: u32) -> Option<SchemeInstance> {
        match *self {
            SchemeSpec::None => None,
            SchemeSpec::Pra { p, bits, seed } => {
                let rng = Box::new(crate::rng::IdealRng::seeded(
                    seed ^ (u64::from(bank_index) << 32) ^ 0x9e37_79b9,
                ));
                Some(SchemeInstance::Pra(
                    Pra::with_rng(rows, p, bits, rng).expect("valid PRA spec"),
                ))
            }
            SchemeSpec::Sca {
                counters,
                threshold,
            } => Some(SchemeInstance::Sca(
                Sca::new(rows, counters, threshold).expect("valid SCA spec"),
            )),
            SchemeSpec::Prcat {
                counters,
                levels,
                threshold,
            } => {
                let cfg = CatConfig::new(rows, counters, levels, threshold)
                    .expect("valid PRCAT spec")
                    .with_policy(ThresholdPolicy::PaperCurve);
                Some(SchemeInstance::Prcat(Prcat::new(cfg)))
            }
            SchemeSpec::Drcat {
                counters,
                levels,
                threshold,
            } => {
                let cfg = CatConfig::new(rows, counters, levels, threshold)
                    .expect("valid DRCAT spec")
                    .with_policy(ThresholdPolicy::PaperCurve);
                Some(SchemeInstance::Drcat(Drcat::new(cfg)))
            }
            SchemeSpec::CounterCache {
                entries,
                ways,
                threshold,
            } => {
                let cache = CounterCacheConfig::with_entries(entries, ways)
                    .expect("valid counter-cache spec");
                Some(SchemeInstance::CounterCache(
                    CounterCache::new(rows, cache, threshold).expect("valid counter-cache spec"),
                ))
            }
            SchemeSpec::SpaceSaving {
                counters,
                threshold,
            } => Some(SchemeInstance::SpaceSaving(
                SpaceSaving::new(rows, counters, threshold).expect("valid space-saving spec"),
            )),
        }
    }

    /// Instantiates the scheme for one bank behind a trait object.
    ///
    /// Retained for extensibility (schemes outside the [`SchemeInstance`]
    /// enum); hot paths should prefer [`build_instance`](Self::build_instance).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`build_instance`](Self::build_instance).
    pub fn build(&self, rows: u32, bank_index: u32) -> Option<Box<dyn MitigationScheme + Send>> {
        self.build_instance(rows, bank_index)
            .map(SchemeInstance::into_boxed)
    }

    /// The hardware footprint the scheme would occupy per bank of `rows`
    /// rows, computed directly from the specification (no scheme instance is
    /// constructed). Returns `None` for [`SchemeSpec::None`].
    ///
    /// Guaranteed to equal `self.build(rows, 0).unwrap().hardware()` for
    /// every buildable spec (asserted by unit tests).
    pub fn profile(&self, rows: u32) -> Option<HardwareProfile> {
        debug_assert!(
            rows.is_power_of_two() && rows >= 8,
            "bank geometry must be a power of two >= 8, got {rows}"
        );
        // Saturating: constructors reject threshold < 2, but profile() never
        // builds an instance, so it must not underflow on a bad spec.
        let bits_for = |threshold: u32| 32 - threshold.saturating_sub(1).leading_zeros();
        match *self {
            SchemeSpec::None => None,
            SchemeSpec::Pra { bits, .. } => Some(HardwareProfile {
                kind: SchemeKind::Pra,
                counters: 0,
                counter_bits: 0,
                max_levels: 1,
                prng_bits_per_activation: bits,
                refresh_threshold: 0,
            }),
            SchemeSpec::Sca {
                counters,
                threshold,
            } => Some(HardwareProfile {
                kind: SchemeKind::Sca,
                counters,
                counter_bits: bits_for(threshold),
                max_levels: 1,
                prng_bits_per_activation: 0,
                refresh_threshold: threshold,
            }),
            SchemeSpec::Prcat {
                counters,
                levels,
                threshold,
            } => Some(HardwareProfile {
                kind: SchemeKind::Prcat,
                counters,
                counter_bits: bits_for(threshold),
                max_levels: levels,
                prng_bits_per_activation: 0,
                refresh_threshold: threshold,
            }),
            SchemeSpec::Drcat {
                counters,
                levels,
                threshold,
            } => Some(HardwareProfile {
                kind: SchemeKind::Drcat,
                counters,
                counter_bits: bits_for(threshold),
                max_levels: levels,
                prng_bits_per_activation: 0,
                refresh_threshold: threshold,
            }),
            SchemeSpec::CounterCache {
                entries, threshold, ..
            } => Some(HardwareProfile {
                kind: SchemeKind::CounterCache,
                counters: entries,
                counter_bits: bits_for(threshold),
                max_levels: 1,
                prng_bits_per_activation: 0,
                refresh_threshold: threshold,
            }),
            // Energy-wise the closest Table II row is the counter-cache one
            // (matches SpaceSaving::hardware).
            SchemeSpec::SpaceSaving {
                counters,
                threshold,
            } => Some(HardwareProfile {
                kind: SchemeKind::CounterCache,
                counters,
                counter_bits: bits_for(threshold),
                max_levels: 1,
                prng_bits_per_activation: 0,
                refresh_threshold: threshold,
            }),
        }
    }

    /// Short label used in result tables, e.g. `PRA_0.002` or `DRCAT_64`.
    pub fn label(&self) -> String {
        match *self {
            SchemeSpec::None => "baseline".to_string(),
            SchemeSpec::Pra { p, .. } => format!("PRA_{p}"),
            SchemeSpec::Sca { counters, .. } => format!("SCA_{counters}"),
            SchemeSpec::Prcat { counters, .. } => format!("PRCAT_{counters}"),
            SchemeSpec::Drcat { counters, .. } => format!("DRCAT_{counters}"),
            SchemeSpec::CounterCache { entries, .. } => format!("CC_{entries}"),
            SchemeSpec::SpaceSaving { counters, .. } => format!("SS_{counters}"),
        }
    }
}

/// Textual scheme syntax, `Display`/`FromStr` round-trip safe:
///
/// | Spec | Syntax |
/// |---|---|
/// | `None` | `none` |
/// | `Pra` | `pra:<p>[:<bits>[:<seed>]]` (seed accepts `0x…` hex) |
/// | `Sca` | `sca:<counters>:<threshold>` |
/// | `Prcat` | `prcat:<counters>:<levels>:<threshold>` |
/// | `Drcat` | `drcat:<counters>:<levels>:<threshold>` |
/// | `CounterCache` | `cc:<entries>:<ways>:<threshold>` |
/// | `SpaceSaving` | `ss:<counters>:<threshold>` |
///
/// ```
/// use cat_core::SchemeSpec;
/// let spec: SchemeSpec = "drcat:64:11:32768".parse().unwrap();
/// assert_eq!(spec, SchemeSpec::Drcat { counters: 64, levels: 11, threshold: 32_768 });
/// assert_eq!(spec.to_string().parse::<SchemeSpec>().unwrap(), spec);
/// ```
impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchemeSpec::None => write!(f, "none"),
            SchemeSpec::Pra { p, bits, seed } => write!(f, "pra:{p}:{bits}:{seed:#x}"),
            SchemeSpec::Sca {
                counters,
                threshold,
            } => write!(f, "sca:{counters}:{threshold}"),
            SchemeSpec::Prcat {
                counters,
                levels,
                threshold,
            } => {
                write!(f, "prcat:{counters}:{levels}:{threshold}")
            }
            SchemeSpec::Drcat {
                counters,
                levels,
                threshold,
            } => {
                write!(f, "drcat:{counters}:{levels}:{threshold}")
            }
            SchemeSpec::CounterCache {
                entries,
                ways,
                threshold,
            } => {
                write!(f, "cc:{entries}:{ways}:{threshold}")
            }
            SchemeSpec::SpaceSaving {
                counters,
                threshold,
            } => {
                write!(f, "ss:{counters}:{threshold}")
            }
        }
    }
}

/// Error parsing a [`SchemeSpec`] from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSpecError {
    message: String,
}

impl ParseSpecError {
    fn new(message: impl Into<String>) -> Self {
        ParseSpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scheme spec: {}", self.message)
    }
}

impl std::error::Error for ParseSpecError {}

fn parse_field<T: FromStr>(fields: &[&str], idx: usize, what: &str) -> Result<T, ParseSpecError> {
    let raw = fields
        .get(idx)
        .ok_or_else(|| ParseSpecError::new(format!("missing {what} field")))?;
    raw.parse()
        .map_err(|_| ParseSpecError::new(format!("bad {what} value {raw:?}")))
}

fn parse_seed(raw: &str) -> Result<u64, ParseSpecError> {
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.map_err(|_| ParseSpecError::new(format!("bad seed value {raw:?}")))
}

/// Semantic checks on parsed values that the scheme constructors would only
/// reject later (with a panic, via `build`) or that `profile` assumes — text
/// input must fail with a proper error instead.
fn check(spec: SchemeSpec) -> Result<SchemeSpec, ParseSpecError> {
    let threshold_of = |t: u32| {
        if t < 2 {
            Err(ParseSpecError::new(format!(
                "refresh threshold must be >= 2, got {t}"
            )))
        } else {
            Ok(())
        }
    };
    match spec {
        SchemeSpec::None => {}
        SchemeSpec::Pra { p, bits, .. } => {
            if !(p > 0.0 && p <= 0.5) {
                return Err(ParseSpecError::new(format!(
                    "probability must be in (0, 0.5], got {p}"
                )));
            }
            if !(1..=31).contains(&bits) {
                return Err(ParseSpecError::new(format!(
                    "bits must be in 1..=31, got {bits}"
                )));
            }
        }
        SchemeSpec::Sca { threshold, .. }
        | SchemeSpec::Prcat { threshold, .. }
        | SchemeSpec::Drcat { threshold, .. }
        | SchemeSpec::CounterCache { threshold, .. }
        | SchemeSpec::SpaceSaving { threshold, .. } => threshold_of(threshold)?,
    }
    Ok(spec)
}

impl FromStr for SchemeSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fields: Vec<&str> = s.trim().split(':').collect();
        let tag = fields[0].to_ascii_lowercase();
        let arity = |n: usize| -> Result<(), ParseSpecError> {
            if fields.len() == n + 1 {
                Ok(())
            } else {
                Err(ParseSpecError::new(format!(
                    "{tag} takes {n} field(s), got {}",
                    fields.len() - 1
                )))
            }
        };
        match tag.as_str() {
            "none" | "baseline" => {
                arity(0)?;
                Ok(SchemeSpec::None)
            }
            "pra" => {
                if fields.len() < 2 || fields.len() > 4 {
                    return Err(ParseSpecError::new("pra takes 1 to 3 fields"));
                }
                let p: f64 = parse_field(&fields, 1, "probability")?;
                let bits = if fields.len() > 2 {
                    parse_field(&fields, 2, "bits")?
                } else {
                    9
                };
                let seed = if fields.len() > 3 {
                    parse_seed(fields[3])?
                } else {
                    PRA_DEFAULT_SEED
                };
                Ok(SchemeSpec::Pra { p, bits, seed })
            }
            "sca" => {
                arity(2)?;
                Ok(SchemeSpec::Sca {
                    counters: parse_field(&fields, 1, "counters")?,
                    threshold: parse_field(&fields, 2, "threshold")?,
                })
            }
            "prcat" => {
                arity(3)?;
                Ok(SchemeSpec::Prcat {
                    counters: parse_field(&fields, 1, "counters")?,
                    levels: parse_field(&fields, 2, "levels")?,
                    threshold: parse_field(&fields, 3, "threshold")?,
                })
            }
            "drcat" => {
                arity(3)?;
                Ok(SchemeSpec::Drcat {
                    counters: parse_field(&fields, 1, "counters")?,
                    levels: parse_field(&fields, 2, "levels")?,
                    threshold: parse_field(&fields, 3, "threshold")?,
                })
            }
            "cc" | "countercache" => {
                arity(3)?;
                Ok(SchemeSpec::CounterCache {
                    entries: parse_field(&fields, 1, "entries")?,
                    ways: parse_field(&fields, 2, "ways")?,
                    threshold: parse_field(&fields, 3, "threshold")?,
                })
            }
            "ss" | "spacesaving" => {
                arity(2)?;
                Ok(SchemeSpec::SpaceSaving {
                    counters: parse_field(&fields, 1, "counters")?,
                    threshold: parse_field(&fields, 2, "threshold")?,
                })
            }
            other => Err(ParseSpecError::new(format!("unknown scheme {other:?}"))),
        }
        .and_then(check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowId;

    fn all_buildable() -> [SchemeSpec; 6] {
        [
            SchemeSpec::pra(0.002),
            SchemeSpec::Sca {
                counters: 64,
                threshold: 32_768,
            },
            SchemeSpec::Prcat {
                counters: 64,
                levels: 11,
                threshold: 32_768,
            },
            SchemeSpec::Drcat {
                counters: 64,
                levels: 11,
                threshold: 32_768,
            },
            SchemeSpec::CounterCache {
                entries: 1024,
                ways: 8,
                threshold: 32_768,
            },
            SchemeSpec::SpaceSaving {
                counters: 64,
                threshold: 32_768,
            },
        ]
    }

    #[test]
    fn builds_every_scheme() {
        for spec in all_buildable() {
            let s = spec.build(65_536, 3).expect("buildable");
            assert_eq!(s.rows(), 65_536);
            assert!(!spec.label().is_empty());
        }
        assert!(SchemeSpec::None.build(65_536, 0).is_none());
        assert_eq!(SchemeSpec::None.label(), "baseline");
    }

    #[test]
    fn pra_banks_get_distinct_seeds() {
        let spec = SchemeSpec::pra(0.5);
        let mut a = spec.build(1024, 0).unwrap();
        let mut b = spec.build(1024, 1).unwrap();
        // With p = 0.5 the decision streams diverge almost immediately if
        // the seeds differ.
        let fire = |s: &mut Box<dyn MitigationScheme + Send>| {
            (0..64)
                .map(|_| !s.on_activation(RowId(5)).is_empty())
                .collect::<Vec<_>>()
        };
        assert_ne!(fire(&mut a), fire(&mut b));
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(SchemeSpec::pra(0.002).label(), "PRA_0.002");
        assert_eq!(
            SchemeSpec::Sca {
                counters: 128,
                threshold: 16_384
            }
            .label(),
            "SCA_128"
        );
    }

    #[test]
    fn profile_matches_built_hardware() {
        for spec in all_buildable() {
            let built = spec.build(65_536, 0).unwrap().hardware();
            let computed = spec.profile(65_536).unwrap();
            assert_eq!(computed, built, "{spec}");
        }
        assert!(SchemeSpec::None.profile(65_536).is_none());
    }

    #[test]
    fn display_from_str_round_trips() {
        let mut specs = all_buildable().to_vec();
        specs.push(SchemeSpec::None);
        specs.push(SchemeSpec::Pra {
            p: 0.003,
            bits: 11,
            seed: 42,
        });
        for spec in specs {
            let text = spec.to_string();
            let parsed: SchemeSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, spec, "{text}");
        }
    }

    #[test]
    fn parses_issue_examples() {
        assert_eq!(
            "drcat:64:11:32768".parse::<SchemeSpec>().unwrap(),
            SchemeSpec::Drcat {
                counters: 64,
                levels: 11,
                threshold: 32_768
            }
        );
        assert_eq!(
            "pra:0.002".parse::<SchemeSpec>().unwrap(),
            SchemeSpec::pra(0.002)
        );
        assert_eq!("none".parse::<SchemeSpec>().unwrap(), SchemeSpec::None);
        assert_eq!(
            "PRCAT:32:10:16384".parse::<SchemeSpec>().unwrap(),
            SchemeSpec::Prcat {
                counters: 32,
                levels: 10,
                threshold: 16_384
            }
        );
        assert_eq!(
            "pra:0.005:9:0x5eedcafe".parse::<SchemeSpec>().unwrap(),
            SchemeSpec::pra(0.005)
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "frobnicate",
            "sca",
            "sca:64",
            "sca:64:32768:9",
            "drcat:64:11",
            "pra",
            "pra:zero",
            "pra:0.002:9:0xzz",
            "cc:1024:8",
            "ss:64",
            // Well-formed but semantically invalid: must error, not panic
            // later in build()/profile().
            "sca:64:0",
            "drcat:64:11:1",
            "pra:0.7",
            "pra:0",
            "pra:0.002:0",
            "pra:0.002:32",
        ] {
            assert!(
                bad.parse::<SchemeSpec>().is_err(),
                "{bad:?} should not parse"
            );
        }
    }
}
