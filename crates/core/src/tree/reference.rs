//! A deliberately naive implementation of Algorithm 1 used as a
//! differential-testing oracle for [`CatTree`](super::CatTree).
//!
//! Each counter module stores its row range in explicit `L_i`/`U_i`
//! registers exactly as the paper's Algorithm 1 describes, and lookups do a
//! linear scan — trivially correct, but `O(M)` per access and `O(M·log N)`
//! bits of range storage, which is precisely the overhead §IV-C's pointer
//! layout removes. Tests assert that both implementations produce identical
//! leaf partitions, counter values and refresh decisions on arbitrary
//! access sequences.

use crate::{CatConfig, RowId, RowRange, SplitThresholds};

/// One counter module (`CM_i`) with explicit range registers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Cm {
    /// Lower row bound `L_i`.
    pub lo: u32,
    /// Upper row bound `U_i` (inclusive).
    pub hi: u32,
    /// Counter value `C_i`.
    pub value: u32,
    /// Split-threshold index `l_i`.
    pub tli: u8,
}

/// Algorithm 1 implemented with explicit per-counter range registers.
///
/// ```
/// use cat_core::tree::reference::ReferenceCat;
/// use cat_core::{CatConfig, RowId};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let mut cat = ReferenceCat::new(CatConfig::new(1024, 8, 6, 256)?);
/// let mut refreshed = 0u64;
/// for _ in 0..2048 {
///     if let Some(range) = cat.record(RowId(3)) {
///         refreshed += range.len();
///     }
/// }
/// assert!(refreshed > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReferenceCat {
    config: CatConfig,
    thresholds: SplitThresholds,
    modules: Vec<Cm>,
    all_active: bool,
}

impl ReferenceCat {
    /// Builds the pre-split initial state (2^{λ−1} uniform modules).
    pub fn new(config: CatConfig) -> Self {
        let thresholds = config.split_thresholds();
        let roots = 1u32 << (config.lambda() - 1);
        let span = config.rows() / roots;
        let modules = (0..roots)
            .map(|g| Cm {
                lo: g * span,
                hi: g * span + span - 1,
                value: 0,
                tli: (config.lambda() - 1) as u8,
            })
            .collect();
        let all_active = roots as usize == config.counters();
        let mut this = ReferenceCat {
            config,
            thresholds,
            modules,
            all_active,
        };
        if this.all_active {
            this.latch();
        }
        this
    }

    fn latch(&mut self) {
        let top = (self.config.max_levels() - 1) as u8;
        for m in &mut self.modules {
            m.tli = top;
        }
        self.all_active = true;
    }

    /// Records one activation, returning the range to refresh if the
    /// matching counter reached the refresh threshold.
    pub fn record(&mut self, row: RowId) -> Option<RowRange> {
        let rows = self.config.rows();
        assert!(row.0 < rows);
        // Linear scan: exactly Algorithm 1's "Li <= row_address <= Ui".
        let mut idx = self
            .modules
            .iter()
            .position(|m| m.lo <= row.0 && row.0 <= m.hi)
            .expect("modules partition the bank");
        self.modules[idx].value += 1;
        loop {
            let m = self.modules[idx];
            let threshold = self.thresholds.threshold_for_level(u32::from(m.tli));
            if m.value < threshold {
                return None;
            }
            if u32::from(m.tli) == self.config.max_levels() - 1
                || threshold == self.thresholds.refresh_threshold()
            {
                self.modules[idx].value = 0;
                return Some(RowRange::new(m.lo, m.hi).expand_victims(rows));
            }
            // Split (RCM): halve the range, clone value, bump both levels.
            if self.modules.len() == self.config.counters() || m.lo == m.hi {
                // No counter free (handled by latching) or single row.
                self.modules[idx].tli = (self.config.max_levels() - 1) as u8;
                continue;
            }
            let mid = m.lo + (m.hi - m.lo) / 2;
            self.modules[idx].hi = mid;
            self.modules[idx].tli = m.tli + 1;
            self.modules.push(Cm {
                lo: mid + 1,
                hi: m.hi,
                value: m.value,
                tli: m.tli + 1,
            });
            if self.modules.len() == self.config.counters() {
                self.latch();
            }
            if row.0 > mid {
                idx = self.modules.len() - 1;
            }
        }
    }

    /// The modules sorted by lower row bound — the leaf partition.
    pub fn partition(&self) -> Vec<Cm> {
        let mut v = self.modules.clone();
        v.sort_by_key(|m| m.lo);
        v
    }

    /// Number of activated counter modules.
    pub fn active_counters(&self) -> usize {
        self.modules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CatConfig {
        CatConfig::new(1024, 8, 6, 256).unwrap()
    }

    #[test]
    fn partition_is_contiguous_after_growth() {
        let mut cat = ReferenceCat::new(cfg());
        for i in 0..5000u32 {
            cat.record(RowId(i * 37 % 1024));
        }
        let parts = cat.partition();
        let mut next = 0;
        for m in &parts {
            assert_eq!(m.lo, next);
            next = m.hi + 1;
        }
        assert_eq!(next, 1024);
    }

    #[test]
    fn hammering_one_row_refreshes_its_neighbourhood() {
        let mut cat = ReferenceCat::new(cfg());
        let mut got = None;
        for _ in 0..1024 {
            if let Some(r) = cat.record(RowId(100)) {
                got = Some(r);
                break;
            }
        }
        let r = got.expect("a refresh must fire within T·L activations");
        assert!(r.contains(99) && r.contains(100) && r.contains(101));
    }

    #[test]
    fn latches_thresholds_once_full() {
        let mut cat = ReferenceCat::new(cfg());
        // Touch every region hard enough to use all 8 counters.
        for round in 0..4000u32 {
            cat.record(RowId((round * 129) % 1024));
        }
        assert_eq!(cat.active_counters(), 8);
        for m in cat.partition() {
            assert_eq!(m.tli, 5, "all thresholds latch to L-1");
        }
    }
}
