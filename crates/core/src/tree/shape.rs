//! Structural snapshots of a CAT — used by Fig. 4 style visualisations,
//! invariant checks and the differential tests against the reference
//! implementation.

use super::{CatTree, NodeRef};
use crate::RowRange;

/// One leaf of the tree: which counter, how deep, which rows.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LeafInfo {
    /// Counter index in the `C` array.
    pub counter: u16,
    /// Tree level of the leaf (root = 0).
    pub depth: u8,
    /// Current counter value.
    pub value: u32,
    /// Split-threshold index `l_i`.
    pub tli: u8,
    /// Rows covered by the counter.
    pub range: RowRange,
}

/// The shape of a CAT: every leaf in ascending row order.
///
/// ```
/// use cat_core::{CatConfig, CatTree};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let tree = CatTree::new(CatConfig::new(1024, 8, 6, 256)?);
/// let shape = tree.shape();
/// // λ = 3 pre-split ⇒ 4 uniform leaves of 256 rows.
/// assert_eq!(shape.leaves().len(), 4);
/// assert!(shape.is_partition(1024));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeShape {
    leaves: Vec<LeafInfo>,
}

impl TreeShape {
    /// The leaves in ascending row order.
    pub fn leaves(&self) -> &[LeafInfo] {
        &self.leaves
    }

    /// Checks that the leaves exactly partition `[0, rows)` — the central
    /// structural invariant of the CAT.
    pub fn is_partition(&self, rows: u32) -> bool {
        let mut expected = 0u64;
        for leaf in &self.leaves {
            if u64::from(leaf.range.lo()) != expected {
                return false;
            }
            expected = u64::from(leaf.range.hi()) + 1;
        }
        expected == u64::from(rows)
    }

    /// Maximum leaf depth in the tree.
    pub fn max_depth(&self) -> u8 {
        self.leaves.iter().map(|l| l.depth).max().unwrap_or(0)
    }

    /// Leaf depths in ascending row order (compact shape signature).
    pub fn depth_profile(&self) -> Vec<u8> {
        self.leaves.iter().map(|l| l.depth).collect()
    }

    /// Renders the leaf partition as a Graphviz `dot` digraph (Fig. 4/5
    /// style): interior nodes are synthesised from the binary-subdivision
    /// structure, leaves are labelled with their counter and row range.
    ///
    /// ```
    /// use cat_core::{CatConfig, CatTree};
    /// # fn main() -> Result<(), cat_core::ConfigError> {
    /// let tree = CatTree::new(CatConfig::new(1024, 8, 6, 256)?);
    /// let dot = tree.shape().to_dot("pre_split");
    /// assert!(dot.starts_with("strict digraph pre_split"));
    /// assert!(dot.contains("C0"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        // `strict` de-duplicates the ancestor edges shared by sibling leaves.
        let mut out = format!("strict digraph {name} {{\n  node [shape=box];\n");
        // Interior nodes are implied by shared range prefixes: connect each
        // leaf to its ancestors by halving the covering range.
        let total: u64 = self.leaves.iter().map(|l| l.range.len()).sum();
        for leaf in &self.leaves {
            let _ = writeln!(
                out,
                "  \"C{}\" [label=\"C{} [{}..{}] v={}\", style=filled, fillcolor=lightblue];",
                leaf.counter,
                leaf.counter,
                leaf.range.lo(),
                leaf.range.hi(),
                leaf.value
            );
            // Walk from the root range down to the leaf.
            let (mut lo, mut hi) = (0u64, total - 1);
            let mut parent = String::from("root");
            let mut depth = 0u8;
            while depth < leaf.depth {
                let mid = lo + (hi - lo) / 2;
                let child = if u64::from(leaf.range.lo()) <= mid {
                    hi = mid;
                    format!("I{lo}_{hi}")
                } else {
                    lo = mid + 1;
                    format!("I{lo}_{hi}")
                };
                let _ = writeln!(out, "  \"{parent}\" -> \"{child}\";");
                parent = child;
                depth += 1;
            }
            let _ = writeln!(out, "  \"{parent}\" -> \"C{}\";", leaf.counter);
        }
        out.push_str("}\n");
        out
    }

    /// Renders an indented textual sketch of the tree (Fig. 4 style):
    /// one line per leaf, indented by depth, annotated with its row range.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for leaf in &self.leaves {
            let _ = writeln!(
                out,
                "{:indent$}C{:<3} level {} rows {}..={} ({} rows) value {}",
                "",
                leaf.counter,
                leaf.depth,
                leaf.range.lo(),
                leaf.range.hi(),
                leaf.range.len(),
                leaf.value,
                indent = 2 * usize::from(leaf.depth),
            );
        }
        out
    }
}

pub(super) fn collect(tree: &CatTree) -> TreeShape {
    let span = tree.config().rows() >> (tree.config().lambda() - 1);
    let mut leaves = Vec::with_capacity(tree.active_counters());
    // Roots are in ascending row order; a DFS that visits left before right
    // therefore yields leaves in ascending row order.
    for (g, root) in tree.roots.iter().enumerate() {
        let lo = g as u32 * span;
        let hi = lo + span - 1;
        let mut stack = vec![(*root, lo, hi, tree.config().lambda() as u8 - 1)];
        while let Some((node, lo, hi, depth)) = stack.pop() {
            match node {
                NodeRef::Leaf(c) => {
                    let counter = tree.counters[c as usize];
                    debug_assert!(counter.active, "leaf C{c} must be active");
                    leaves.push(LeafInfo {
                        counter: c,
                        depth,
                        value: counter.value,
                        tli: counter.tli,
                        range: RowRange::new(lo, hi),
                    });
                }
                NodeRef::Inode(i) => {
                    let mid = lo + (hi - lo) / 2;
                    let inode = tree.inodes[i as usize];
                    // Push right first so that left pops first.
                    stack.push((inode.right, mid + 1, hi, depth + 1));
                    stack.push((inode.left, lo, mid, depth + 1));
                }
            }
        }
    }
    TreeShape { leaves }
}
