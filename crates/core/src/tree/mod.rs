//! The Counter-based Adaptive Tree (§IV) in the compact SRAM layout of
//! §IV-C: an array `I` of intermediate nodes (two tagged child pointers
//! each), an array `C` of counters, and — starting from a pre-split complete
//! tree of λ levels — direct indexing of the top `λ−1` address bits.

mod layout;
pub mod reference;
mod shape;

pub use layout::{INode, NodeRef};
pub use shape::{LeafInfo, TreeShape};

use crate::scheme::{HardwareProfile, MitigationScheme, Refreshes, SchemeKind};
use crate::state::{StateError, StateReader};
use crate::{CatConfig, RowId, RowRange, SchemeStats, SplitThresholds};

/// Where a node reference is stored — needed to replace a leaf reference
/// with a freshly allocated intermediate node when the leaf splits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum ParentSlot {
    /// Entry of the direct-indexed root table.
    Root(u32),
    /// Left child slot of intermediate node `i`.
    Left(u16),
    /// Right child slot of intermediate node `i`.
    Right(u16),
}

#[derive(Copy, Clone, Debug, Default)]
pub(crate) struct Counter {
    pub value: u32,
    /// Split-threshold index `l_i` of Algorithm 1 (latched to `L−1` once
    /// every counter is active).
    pub tli: u8,
    /// Structural depth of the leaf in the tree.
    pub depth: u8,
    pub active: bool,
}

/// Result of recording one activation on the tree.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Activation {
    /// Range to refresh (group ± 1 victim row), if a counter reached `T`.
    pub refresh: Option<RowRange>,
    /// Index of the counter that absorbed the activation (after splits).
    pub counter: u16,
}

/// A Counter-based Adaptive Tree protecting one DRAM bank.
///
/// This type implements the bare CAT of §IV: the tree grows according to the
/// split thresholds and is never reset. The paper's deployable variants wrap
/// it: [`crate::Prcat`] rebuilds it at every auto-refresh epoch and
/// [`crate::Drcat`] adds weight-driven reconfiguration.
///
/// ```
/// use cat_core::{CatConfig, CatTree, MitigationScheme, RowId};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let mut tree = CatTree::new(CatConfig::new(1024, 8, 6, 256)?);
/// // A heavily hammered row forces refreshes of its group ± 1 row.
/// let mut rows = 0;
/// for _ in 0..2048 {
///     rows += tree.on_activation(RowId(3)).total_rows();
/// }
/// assert!(rows > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CatTree {
    config: CatConfig,
    thresholds: SplitThresholds,
    pub(crate) roots: Vec<NodeRef>,
    pub(crate) inodes: Vec<INode>,
    pub(crate) counters: Vec<Counter>,
    free_counters: Vec<u16>,
    free_inodes: Vec<u16>,
    active_counters: usize,
    all_active: bool,
    stats: SchemeStats,
}

impl CatTree {
    /// Builds the initial pre-split tree: `2^{λ−1}` active counters at level
    /// `λ−1`, each covering `N / 2^{λ−1}` rows.
    pub fn new(config: CatConfig) -> Self {
        let thresholds = config.split_thresholds();
        let m = config.counters();
        let root_count = 1usize << (config.lambda() - 1);
        let mut counters = vec![Counter::default(); m];
        let mut roots = Vec::with_capacity(root_count);
        for (i, counter) in counters.iter_mut().enumerate().take(root_count) {
            *counter = Counter {
                value: 0,
                tli: (config.lambda() - 1) as u8,
                depth: (config.lambda() - 1) as u8,
                active: true,
            };
            roots.push(NodeRef::Leaf(i as u16));
        }
        // Free counters popped in ascending index order.
        let free_counters: Vec<u16> = (root_count..m).rev().map(|i| i as u16).collect();
        let all_active = root_count == m;
        let mut tree = CatTree {
            config,
            thresholds,
            roots,
            inodes: Vec::with_capacity(m.saturating_sub(1)),
            counters,
            free_counters,
            free_inodes: Vec::new(),
            active_counters: root_count,
            all_active,
            stats: SchemeStats::default(),
        };
        if all_active {
            tree.latch_all_thresholds();
        }
        tree
    }

    /// The configuration this tree was built from.
    pub fn config(&self) -> &CatConfig {
        &self.config
    }

    /// The split thresholds in use.
    pub fn thresholds(&self) -> &SplitThresholds {
        &self.thresholds
    }

    /// Resident heap bytes of the tree's slabs (`I`, `C`, roots and free
    /// lists). The slabs are deliberately dense: they hold at most `M`
    /// (≤ 64 in every paper configuration) entries — the tree itself is
    /// the compression, so bit-block storage would only add overhead.
    pub fn heap_bytes(&self) -> usize {
        self.roots.capacity() * std::mem::size_of::<NodeRef>()
            + self.inodes.capacity() * std::mem::size_of::<INode>()
            + self.counters.capacity() * std::mem::size_of::<Counter>()
            + self.free_counters.capacity() * std::mem::size_of::<u16>()
            + self.free_inodes.capacity() * std::mem::size_of::<u16>()
    }

    /// Number of currently active counters.
    pub fn active_counters(&self) -> usize {
        self.active_counters
    }

    /// `true` once every counter has been activated (Algorithm 1 then
    /// latches every split-threshold index to `L−1`).
    pub fn fully_grown(&self) -> bool {
        self.all_active
    }

    /// Rows per direct-indexed subtree root.
    fn root_span(&self) -> u32 {
        self.config.rows() >> (self.config.lambda() - 1)
    }

    /// Walks the tree to the leaf covering `row`. Returns the counter index,
    /// its range, its parent slot and the number of intermediate nodes read.
    pub(crate) fn locate(&self, row: u32) -> (u16, u32, u32, ParentSlot, u32) {
        debug_assert!(row < self.config.rows());
        let span = self.root_span();
        let g = row / span;
        let mut lo = g * span;
        let mut hi = lo + span - 1;
        let mut slot = ParentSlot::Root(g);
        let mut node = self.roots[g as usize];
        let mut visits = 0u32;
        loop {
            match node {
                NodeRef::Leaf(c) => return (c, lo, hi, slot, visits),
                NodeRef::Inode(i) => {
                    visits += 1;
                    let mid = lo + (hi - lo) / 2;
                    let inode = &self.inodes[i as usize];
                    if row <= mid {
                        hi = mid;
                        slot = ParentSlot::Left(i);
                        node = inode.left;
                    } else {
                        lo = mid + 1;
                        slot = ParentSlot::Right(i);
                        node = inode.right;
                    }
                }
            }
        }
    }

    pub(crate) fn set_slot(&mut self, slot: ParentSlot, node: NodeRef) {
        match slot {
            ParentSlot::Root(g) => self.roots[g as usize] = node,
            ParentSlot::Left(i) => self.inodes[i as usize].left = node,
            ParentSlot::Right(i) => self.inodes[i as usize].right = node,
        }
    }

    fn alloc_inode(&mut self, inode: INode) -> u16 {
        if let Some(idx) = self.free_inodes.pop() {
            self.inodes[idx as usize] = inode;
            idx
        } else {
            let idx = self.inodes.len() as u16;
            self.inodes.push(inode);
            idx
        }
    }

    fn latch_all_thresholds(&mut self) {
        let top = (self.config.max_levels() - 1) as u8;
        for c in self.counters.iter_mut().filter(|c| c.active) {
            c.tli = top;
        }
        self.all_active = true;
    }

    /// Splits leaf `c` (covering `[lo, hi]`, stored in `slot`): the left
    /// half stays with `c`, the right half goes to a newly activated clone
    /// (Algorithm 1 lines 15–22). Returns `(new counter, new intermediate
    /// node)`, or `None` when no counter is free or the leaf is one row.
    pub(crate) fn split_leaf(
        &mut self,
        c: u16,
        lo: u32,
        hi: u32,
        slot: ParentSlot,
    ) -> Option<(u16, u16)> {
        if lo == hi {
            return None;
        }
        let nc = self.free_counters.pop()?;
        let parent = self.counters[c as usize];
        let child_tli = (parent.tli + 1).min((self.config.max_levels() - 1) as u8);
        self.counters[nc as usize] = Counter {
            value: parent.value,
            tli: child_tli,
            depth: parent.depth + 1,
            active: true,
        };
        self.counters[c as usize].tli = child_tli;
        self.counters[c as usize].depth = parent.depth + 1;
        let inode = self.alloc_inode(INode {
            left: NodeRef::Leaf(c),
            right: NodeRef::Leaf(nc),
        });
        self.set_slot(slot, NodeRef::Inode(inode));
        self.active_counters += 1;
        self.stats.splits += 1;
        self.stats.sram_writes += 2; // new intermediate node + cloned counter
        if self.active_counters == self.config.counters() {
            self.latch_all_thresholds();
        }
        Some((nc, inode))
    }

    /// Records one activation; the core of Algorithm 1's counter module plus
    /// the reconfiguration counter module's split handling.
    pub fn record(&mut self, row: RowId) -> Activation {
        let rows = self.config.rows();
        assert!(
            row.0 < rows,
            "row {row} out of range (bank has {rows} rows)"
        );
        self.stats.activations += 1;
        let (mut c, mut lo, mut hi, mut slot, visits) = self.locate(row.0);
        // One read per traversed intermediate node, plus the counter
        // read-modify-write.
        self.stats.sram_reads += u64::from(visits) + 1;
        self.stats.sram_writes += 1;
        self.stats.max_depth_touched = self
            .stats
            .max_depth_touched
            .max(u64::from(self.counters[c as usize].depth));

        self.counters[c as usize].value += 1;
        loop {
            let counter = self.counters[c as usize];
            let threshold = self.thresholds.threshold_for_level(u32::from(counter.tli));
            if counter.value < threshold {
                return Activation {
                    refresh: None,
                    counter: c,
                };
            }
            let top_level = counter.tli as u32 == self.config.max_levels() - 1;
            if top_level || threshold == self.thresholds.refresh_threshold() {
                // Refresh the group plus its two adjacent victim rows.
                self.counters[c as usize].value = 0;
                let range = RowRange::new(lo, hi).expand_victims(rows);
                self.stats.refresh_events += 1;
                self.stats.refreshed_rows += range.len();
                return Activation {
                    refresh: Some(range),
                    counter: c,
                };
            }
            // Split threshold reached below the maximum level: activate a
            // clone (RCM). If no counter is free the tree is fully grown and
            // thresholds were latched to T, so the loop terminates above.
            match self.split_leaf(c, lo, hi, slot) {
                Some((nc, inode)) => {
                    // Descend into the half containing the activated row;
                    // the clone kept the parent's value, so a larger split
                    // threshold may already be met (cascade).
                    let mid = lo + (hi - lo) / 2;
                    if row.0 <= mid {
                        hi = mid;
                        slot = ParentSlot::Left(inode);
                    } else {
                        lo = mid + 1;
                        c = nc;
                        slot = ParentSlot::Right(inode);
                    }
                }
                None => {
                    // Cannot split further (single-row group): count up to T
                    // at this level instead.
                    self.counters[c as usize].tli = (self.config.max_levels() - 1) as u8;
                }
            }
        }
    }

    /// Depth-first search for an intermediate node whose two children are
    /// both leaves with zero weight — a pair of cold sibling counters that
    /// DRCAT may merge (§V-B step 1). The hot counter `exclude` is never
    /// eligible. Returns `(slot of the inode, inode index, left leaf,
    /// right leaf)`.
    pub(crate) fn find_cold_pair(
        &self,
        weights: &[u8],
        exclude: u16,
    ) -> Option<(ParentSlot, u16, u16, u16)> {
        let mut stack: Vec<(NodeRef, ParentSlot)> = self
            .roots
            .iter()
            .enumerate()
            .map(|(g, node)| (*node, ParentSlot::Root(g as u32)))
            .collect();
        while let Some((node, slot)) = stack.pop() {
            if let NodeRef::Inode(i) = node {
                let inode = self.inodes[i as usize];
                if let Some((l, r)) = inode.both_leaves() {
                    if l != exclude
                        && r != exclude
                        && weights[l as usize] == 0
                        && weights[r as usize] == 0
                    {
                        return Some((slot, i, l, r));
                    }
                } else {
                    stack.push((inode.left, ParentSlot::Left(i)));
                    stack.push((inode.right, ParentSlot::Right(i)));
                }
            }
        }
        None
    }

    /// Merges the two cold sibling leaves below intermediate node `inode`:
    /// the right leaf is promoted into the parent slot (as in Fig. 7, where
    /// C5 is promoted and C2 released) carrying the *maximum* of the two
    /// counter values — merging must never under-count any row in the
    /// combined group. Returns the released counter index.
    pub(crate) fn merge_pair(
        &mut self,
        slot: ParentSlot,
        inode: u16,
        left: u16,
        right: u16,
    ) -> u16 {
        debug_assert_eq!(
            self.inodes[inode as usize].both_leaves(),
            Some((left, right))
        );
        let lv = self.counters[left as usize].value;
        let rv = self.counters[right as usize].value;
        self.counters[right as usize].value = lv.max(rv);
        self.counters[right as usize].depth -= 1;
        self.counters[left as usize] = Counter::default();
        self.set_slot(slot, NodeRef::Leaf(right));
        self.free_inodes.push(inode);
        self.free_counters.push(left);
        self.active_counters -= 1;
        self.stats.merges += 1;
        self.stats.sram_writes += 2;
        left
    }

    /// Finds the leaf holding counter `c`: its parent slot and row range.
    pub(crate) fn find_leaf(&self, c: u16) -> Option<(ParentSlot, u32, u32)> {
        let span = self.root_span();
        for (g, root) in self.roots.iter().enumerate() {
            let lo = g as u32 * span;
            let mut stack = vec![(*root, lo, lo + span - 1, ParentSlot::Root(g as u32))];
            while let Some((node, lo, hi, slot)) = stack.pop() {
                match node {
                    NodeRef::Leaf(idx) if idx == c => return Some((slot, lo, hi)),
                    NodeRef::Leaf(_) => {}
                    NodeRef::Inode(i) => {
                        let mid = lo + (hi - lo) / 2;
                        let inode = self.inodes[i as usize];
                        stack.push((inode.left, lo, mid, ParentSlot::Left(i)));
                        stack.push((inode.right, mid + 1, hi, ParentSlot::Right(i)));
                    }
                }
            }
        }
        None
    }

    /// Splits the (hot) leaf `c` using a previously released counter (§V-B
    /// step 2). Fails when the leaf is already at the maximum level, covers
    /// a single row, or no counter is free. Returns the new counter index.
    pub(crate) fn split_hot(&mut self, c: u16) -> Option<u16> {
        if u32::from(self.counters[c as usize].depth) + 1 > self.config.max_levels() - 1 {
            return None;
        }
        let (slot, lo, hi) = self.find_leaf(c)?;
        let was_tli = self.counters[c as usize].tli;
        let split = self.split_leaf(c, lo, hi, slot);
        if let Some((nc, _)) = split {
            // Reconfiguration happens on the fully grown tree: thresholds
            // stay latched at L−1 rather than following the depth.
            if self.all_active {
                let top = (self.config.max_levels() - 1) as u8;
                self.counters[c as usize].tli = top;
                self.counters[nc as usize].tli = top;
            } else {
                self.counters[c as usize].tli = was_tli;
                self.counters[nc as usize].tli = was_tli;
            }
            Some(nc)
        } else {
            None
        }
    }

    /// Resets the tree to its initial pre-split state (used by PRCAT at
    /// every auto-refresh epoch). Statistics are preserved.
    pub fn reset(&mut self) {
        let stats = self.stats;
        *self = CatTree::new(self.config.clone());
        self.stats = stats;
    }

    /// Zeroes every active counter value but keeps the tree structure
    /// (DRCAT's epoch behaviour: rows were just auto-refreshed, so counts
    /// restart, but the learned shape is retained).
    pub fn zero_counters(&mut self) {
        for c in self.counters.iter_mut().filter(|c| c.active) {
            c.value = 0;
        }
    }

    /// Current value of counter `c` (for tests and diagnostics).
    pub fn counter_value(&self, c: u16) -> Option<u32> {
        let counter = self.counters.get(c as usize)?;
        counter.active.then_some(counter.value)
    }

    /// Snapshot of the tree shape (leaf ranges and depths), ordered by row.
    pub fn shape(&self) -> TreeShape {
        shape::collect(self)
    }

    pub(crate) fn stats_mut(&mut self) -> &mut SchemeStats {
        &mut self.stats
    }

    /// Appends the tree's complete mutable state for checkpointing: stats,
    /// the node arrays `I` and `C`, the root table, both free lists (whose
    /// pop/push *order* determines future allocations, so they round-trip
    /// verbatim), and the growth latch.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.stats.save_state(out);
        out.push(self.active_counters as u64);
        out.push(u64::from(self.all_active));
        out.push(self.roots.len() as u64);
        out.extend(self.roots.iter().map(|&n| pack_node(n)));
        out.push(self.inodes.len() as u64);
        for inode in &self.inodes {
            out.push(pack_node(inode.left));
            out.push(pack_node(inode.right));
        }
        out.push(self.counters.len() as u64);
        for c in &self.counters {
            out.push(
                u64::from(c.value)
                    | u64::from(c.tli) << 32
                    | u64::from(c.depth) << 40
                    | u64::from(c.active) << 48,
            );
        }
        out.push(self.free_counters.len() as u64);
        out.extend(self.free_counters.iter().map(|&i| u64::from(i)));
        out.push(self.free_inodes.len() as u64);
        out.extend(self.free_inodes.iter().map(|&i| u64::from(i)));
    }

    /// Restores state captured by [`CatTree::save_state`] onto a freshly
    /// built tree of the same configuration.
    ///
    /// Every structural invariant is revalidated: index bounds, the active
    /// count against the counter flags, free-list sizes against the active
    /// count, and entry distinctness — a corrupted stream cannot produce a
    /// silently inconsistent tree.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on any malformed or inconsistent value.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let m = self.counters.len();
        let root_count = self.roots.len();
        let top = (self.config.max_levels() - 1) as u8;
        self.stats.restore_state(r)?;
        let active_counters = r.next_word()? as usize;
        if !(root_count..=m).contains(&active_counters) {
            return Err(StateError::Invalid("tree active counter count"));
        }
        let all_active = r.next_bool()?;
        // The latch is sticky: it fires when the tree first becomes fully
        // grown and survives later merges, so only the forward implication
        // can be checked.
        if active_counters == m && !all_active {
            return Err(StateError::Invalid("tree growth latch"));
        }
        if r.next_word()? != root_count as u64 {
            return Err(StateError::Invalid("tree root count"));
        }
        let mut roots = Vec::with_capacity(root_count);
        // Inode count arrives after the roots; node references into the
        // inode array are validated against it in a second pass below.
        for _ in 0..root_count {
            roots.push(r.next_word()?);
        }
        let inode_len = r.next_word()? as usize;
        if inode_len > m.saturating_sub(1) {
            return Err(StateError::Invalid("tree inode count"));
        }
        let mut inodes = Vec::with_capacity(inode_len);
        for _ in 0..inode_len {
            let left = unpack_node(r.next_word()?, m, inode_len)?;
            let right = unpack_node(r.next_word()?, m, inode_len)?;
            inodes.push(INode { left, right });
        }
        let roots: Vec<NodeRef> = roots
            .into_iter()
            .map(|w| unpack_node(w, m, inode_len))
            .collect::<Result<_, _>>()?;
        if r.next_word()? != m as u64 {
            return Err(StateError::Invalid("tree counter count"));
        }
        let mut counters = Vec::with_capacity(m);
        let mut active_seen = 0usize;
        for _ in 0..m {
            let w = r.next_word()?;
            if w >> 49 != 0 {
                return Err(StateError::Invalid("tree counter stray bits"));
            }
            let counter = Counter {
                value: w as u32,
                tli: (w >> 32) as u8,
                depth: (w >> 40) as u8,
                active: (w >> 48) & 1 == 1,
            };
            if counter.tli > top || counter.depth > top {
                return Err(StateError::Invalid("tree counter level out of range"));
            }
            active_seen += usize::from(counter.active);
            counters.push(counter);
        }
        if active_seen != active_counters {
            return Err(StateError::Invalid("tree active flags vs count"));
        }
        let free_counters =
            read_free_list(r, m - active_counters, m, |i| !counters[i as usize].active)?;
        let live_inodes = active_counters - root_count;
        if inode_len < live_inodes {
            return Err(StateError::Invalid("tree inode count vs active"));
        }
        let free_inodes = read_free_list(r, inode_len - live_inodes, inode_len, |_| true)?;
        // clear + extend (rather than replacing the Vecs) preserves the
        // capacities `new()` established, keeping `heap_bytes` bit-equal
        // with a never-checkpointed tree.
        self.roots.clear();
        self.roots.extend(roots);
        self.inodes.clear();
        self.inodes.extend(inodes);
        self.counters = counters;
        self.free_counters.clear();
        self.free_counters.extend(free_counters);
        self.free_inodes.clear();
        self.free_inodes.extend(free_inodes);
        self.active_counters = active_counters;
        self.all_active = all_active;
        Ok(())
    }

    fn profile(&self, kind: SchemeKind) -> HardwareProfile {
        HardwareProfile {
            kind,
            counters: self.config.counters(),
            counter_bits: self.config.counter_bits(),
            max_levels: self.config.max_levels(),
            prng_bits_per_activation: 0,
            refresh_threshold: self.config.refresh_threshold(),
        }
    }

    pub(crate) fn hardware_as(&self, kind: SchemeKind) -> HardwareProfile {
        self.profile(kind)
    }
}

/// Packs a node reference as `tag << 16 | index` (tag 1 = leaf).
fn pack_node(n: NodeRef) -> u64 {
    u64::from(n.is_leaf()) << 16 | u64::from(n.index())
}

/// Unpacks and bounds-checks a node reference against the counter and
/// intermediate-node array sizes.
fn unpack_node(w: u64, counters: usize, inodes: usize) -> Result<NodeRef, StateError> {
    if w >> 17 != 0 {
        return Err(StateError::Invalid("tree node reference stray bits"));
    }
    let idx = (w & 0xffff) as u16;
    if w >> 16 == 1 {
        if (idx as usize) < counters {
            Ok(NodeRef::Leaf(idx))
        } else {
            Err(StateError::Invalid("tree leaf index out of range"))
        }
    } else if (idx as usize) < inodes {
        Ok(NodeRef::Inode(idx))
    } else {
        Err(StateError::Invalid("tree inode index out of range"))
    }
}

/// Reads a free list of exactly `expect` entries, each `< bound`, all
/// distinct, each passing `eligible` (e.g. "that counter is inactive").
fn read_free_list(
    r: &mut StateReader<'_>,
    expect: usize,
    bound: usize,
    eligible: impl Fn(u16) -> bool,
) -> Result<Vec<u16>, StateError> {
    if r.next_word()? != expect as u64 {
        return Err(StateError::Invalid("tree free-list length"));
    }
    let mut seen = vec![false; bound];
    let mut list = Vec::with_capacity(expect);
    for _ in 0..expect {
        let idx = r.next_u16()?;
        let Some(slot) = seen.get_mut(idx as usize) else {
            return Err(StateError::Invalid("tree free-list index out of range"));
        };
        if *slot || !eligible(idx) {
            return Err(StateError::Invalid("tree free-list entry inconsistent"));
        }
        *slot = true;
        list.push(idx);
    }
    Ok(list)
}

impl MitigationScheme for CatTree {
    fn on_activation(&mut self, row: RowId) -> Refreshes {
        match self.record(row).refresh {
            Some(range) => Refreshes::one(range),
            None => Refreshes::none(),
        }
    }

    fn on_epoch_end(&mut self) {
        // The bare CAT keeps counting across epochs (conservative but safe:
        // counts only over-estimate activations since the last refresh).
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn hardware(&self) -> HardwareProfile {
        // Hardware-wise the bare CAT is PRCAT without the epoch reset.
        self.profile(SchemeKind::Prcat)
    }

    fn rows(&self) -> u32 {
        self.config.rows()
    }

    fn name(&self) -> String {
        format!("CAT_{}", self.config.counters())
    }
}

/// Drives the access sequence that sculpts Figure 5(a)'s tree shape on the
/// N = 32, M = 8, L = 6, T = 64, λ = 1, doubling-thresholds configuration:
/// leaf depths (ascending rows) 3,5,5,4,3,4,4,1 over row fractions
/// 4,1,1,2,4,2,2,16 (out of 32). Test helper shared with the DRCAT tests.
#[cfg(test)]
pub(crate) fn build_figure5<S: FnMut(RowId)>(mut access: S) {
    for _ in 0..32 {
        access(RowId(4)); // splits [0,32)→…→[4,5)/[5,6) chain
    }
    for _ in 0..12 {
        access(RowId(12)); // splits [8,16)→[8,12)+[12,16)→[12,14)+[14,16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdPolicy;

    fn small_cfg() -> CatConfig {
        CatConfig::new(1024, 8, 6, 256).unwrap()
    }

    /// The configuration used to reproduce Figure 5's tree: N = 32, M = 8,
    /// L = 6, T = 64, built from the root (λ = 1) with doubling thresholds
    /// (2, 4, 8, 16, 32).
    fn figure5_cfg() -> CatConfig {
        CatConfig::new(32, 8, 6, 64)
            .unwrap()
            .with_policy(ThresholdPolicy::Doubling)
            .with_lambda(1)
            .unwrap()
    }

    #[test]
    fn initial_shape_is_pre_split_partition() {
        let tree = CatTree::new(small_cfg());
        let shape = tree.shape();
        assert_eq!(shape.leaves().len(), 4); // λ = 3 ⇒ 2^{λ−1} = 4 leaves
        assert!(shape.is_partition(1024));
        assert_eq!(shape.depth_profile(), vec![2, 2, 2, 2]);
        assert_eq!(tree.active_counters(), 4);
        assert!(!tree.fully_grown());
    }

    #[test]
    fn figure5_shape_reproduced() {
        let mut tree = CatTree::new(figure5_cfg());
        build_figure5(|row| {
            tree.record(row);
        });
        let shape = tree.shape();
        assert!(shape.is_partition(32));
        assert_eq!(shape.depth_profile(), vec![3, 5, 5, 4, 3, 4, 4, 1]);
        let spans: Vec<u64> = shape.leaves().iter().map(|l| l.range.len()).collect();
        assert_eq!(spans, vec![4, 1, 1, 2, 4, 2, 2, 16]);
        assert!(tree.fully_grown());
        // All split-threshold indices latch to L−1 = 5 once fully grown.
        assert!(shape.leaves().iter().all(|l| l.tli == 5));
        assert_eq!(tree.stats().splits, 7);
    }

    #[test]
    fn uniform_accesses_grow_a_balanced_tree() {
        // Fig. 4(b): uniform row accesses distribute the counters uniformly
        // (the CAT "mimics SCA" at level log2 M). Rotate across the four
        // pre-split regions so the access rate is uniform in time.
        let mut tree = CatTree::new(small_cfg());
        let mut i = 0u32;
        while !tree.fully_grown() {
            let row = (i % 4) * 256 + (i * 61) % 256;
            tree.record(RowId(row));
            i += 1;
        }
        let shape = tree.shape();
        assert_eq!(shape.depth_profile(), vec![3; 8]);
        assert!(shape.is_partition(1024));
    }

    #[test]
    fn biased_accesses_grow_an_unbalanced_tree() {
        // Fig. 4(a): a hammered row drags counters to the deepest level
        // around itself while cold regions keep coarse counters.
        let mut tree = CatTree::new(small_cfg());
        for _ in 0..600 {
            tree.record(RowId(700));
        }
        let shape = tree.shape();
        assert!(shape.is_partition(1024));
        let hot = shape
            .leaves()
            .iter()
            .find(|l| l.range.contains(700))
            .unwrap();
        assert_eq!(u32::from(hot.depth), tree.config().max_levels() - 1);
        // Some other region must still be at the pre-split level.
        assert!(shape.leaves().iter().any(|l| l.depth == 2));
    }

    #[test]
    fn refresh_covers_group_plus_victims() {
        let cfg = small_cfg();
        let mut tree = CatTree::new(cfg);
        let mut refresh = None;
        for _ in 0..2048 {
            if let Some(r) = tree.record(RowId(512)).refresh {
                refresh = Some(r);
                break;
            }
        }
        let r = refresh.expect("hot row must trigger a refresh");
        // The group containing row 512 at max depth L−1 = 5 spans
        // 1024/2^5 = 32 rows, plus one victim on each side.
        assert_eq!(r.len(), 34);
        assert!(r.contains(512));
        assert_eq!(tree.stats().refresh_events, 1);
        assert_eq!(tree.stats().refreshed_rows, 34);
    }

    #[test]
    fn refresh_range_clamps_at_bank_edges() {
        let mut tree = CatTree::new(small_cfg());
        let mut seen = None;
        for _ in 0..2048 {
            if let Some(r) = tree.record(RowId(0)).refresh {
                seen = Some(r);
                break;
            }
        }
        let r = seen.unwrap();
        assert_eq!(r.lo(), 0, "no victim below row 0");
        assert_eq!(r.len(), 33);
    }

    #[test]
    fn uniform_policy_cascades_terminate() {
        let cfg = CatConfig::new(1024, 8, 6, 256)
            .unwrap()
            .with_policy(ThresholdPolicy::Uniform);
        let mut tree = CatTree::new(cfg);
        for i in 0..50_000u32 {
            tree.record(RowId((i * 613) % 1024));
        }
        assert!(tree.shape().is_partition(1024));
    }

    #[test]
    fn reset_restores_initial_shape_but_keeps_stats() {
        let mut tree = CatTree::new(small_cfg());
        for _ in 0..600 {
            tree.record(RowId(10));
        }
        let activations = tree.stats().activations;
        assert!(tree.shape().max_depth() > 2);
        tree.reset();
        assert_eq!(tree.shape().depth_profile(), vec![2, 2, 2, 2]);
        assert_eq!(tree.stats().activations, activations);
        assert_eq!(tree.active_counters(), 4);
    }

    #[test]
    fn zero_counters_keeps_structure() {
        let mut tree = CatTree::new(small_cfg());
        for _ in 0..600 {
            tree.record(RowId(10));
        }
        let before = tree.shape();
        tree.zero_counters();
        let after = tree.shape();
        assert_eq!(before.depth_profile(), after.depth_profile());
        assert!(after.leaves().iter().all(|l| l.value == 0));
    }

    #[test]
    fn merge_then_split_preserves_partition() {
        let mut tree = CatTree::new(figure5_cfg());
        tests_build_full(&mut tree);
        let weights = vec![0u8; 8];
        let (slot, inode, l, r) = tree
            .find_cold_pair(&weights, u16::MAX)
            .expect("a sibling leaf pair must exist in a full tree");
        let freed = tree.merge_pair(slot, inode, l, r);
        assert!(tree.shape().is_partition(32));
        assert_eq!(tree.active_counters(), 7);
        // The freed counter is reused by the next hot split.
        let hot = tree.shape().leaves()[0].counter;
        let nc = tree.split_hot(hot).expect("split must succeed after merge");
        assert_eq!(nc, freed);
        assert!(tree.shape().is_partition(32));
        assert_eq!(tree.active_counters(), 8);
        assert_eq!(tree.stats().merges, 1);
    }

    #[test]
    fn split_hot_respects_depth_limit() {
        let mut tree = CatTree::new(figure5_cfg());
        tests_build_full(&mut tree);
        // Find the deepest leaf (level 5 = L−1): cannot be split further.
        let deep = tree
            .shape()
            .leaves()
            .iter()
            .find(|l| l.depth == 5)
            .unwrap()
            .counter;
        assert_eq!(tree.split_hot(deep), None);
    }

    #[test]
    fn sram_traffic_is_bounded_by_tree_height() {
        let mut tree = CatTree::new(small_cfg());
        for i in 0..10_000u32 {
            tree.record(RowId((i * 997) % 1024));
        }
        let s = tree.stats();
        // ≤ (L − λ + 1) reads plus the counter access per activation.
        let max_reads_per_access = f64::from(tree.config().max_levels());
        assert!(s.sram_accesses_per_activation() <= max_reads_per_access + 1.0);
        assert!(s.sram_accesses_per_activation() >= 2.0);
    }

    #[test]
    fn activation_out_of_range_panics() {
        let mut tree = CatTree::new(small_cfg());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tree.record(RowId(1024));
        }));
        assert!(result.is_err());
    }

    fn tests_build_full(tree: &mut CatTree) {
        build_figure5(|row| {
            tree.record(row);
        });
        assert!(tree.fully_grown());
    }

    #[test]
    fn state_round_trip_is_bit_exact() {
        // Sculpt a tree with splits, merges, and a reconfiguration-style
        // split so the free lists carry non-trivial order, then round-trip.
        let mut tree = CatTree::new(figure5_cfg());
        tests_build_full(&mut tree);
        let weights = vec![0u8; 8];
        let (slot, inode, l, rr) = tree.find_cold_pair(&weights, u16::MAX).unwrap();
        tree.merge_pair(slot, inode, l, rr);
        let mut words = Vec::new();
        tree.save_state(&mut words);
        let mut fresh = CatTree::new(figure5_cfg());
        let mut r = crate::state::StateReader::new(&words);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.shape().leaves(), tree.shape().leaves());
        assert_eq!(fresh.stats(), tree.stats());
        assert_eq!(fresh.active_counters(), tree.active_counters());
        assert_eq!(fresh.heap_bytes(), tree.heap_bytes());
        // The free lists round-trip in order: subsequent growth allocates
        // the same counters in both trees.
        for i in 0..500u32 {
            assert_eq!(
                tree.record(RowId(i * 13 % 32)),
                fresh.record(RowId(i * 13 % 32))
            );
        }
        assert_eq!(fresh.shape().leaves(), tree.shape().leaves());
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let mut tree = CatTree::new(small_cfg());
        for _ in 0..600 {
            tree.record(RowId(10));
        }
        let mut words = Vec::new();
        tree.save_state(&mut words);
        // Truncation at every prefix length must fail, never panic.
        for len in 0..words.len() {
            let mut fresh = CatTree::new(small_cfg());
            let mut r = crate::state::StateReader::new(&words[..len]);
            let outcome = fresh
                .restore_state(&mut r)
                .err()
                .map(|_| ())
                .or_else(|| r.finish().err().map(|_| ()));
            assert!(outcome.is_some(), "truncation to {len} words must error");
        }
        // Corrupting the active-counter count (word 12, right after the
        // stats block) breaks either the growth latch or the flag count
        // consistency check.
        for delta in [1u64, 7] {
            let mut bad = words.clone();
            bad[12] = bad[12].wrapping_add(delta);
            let mut fresh = CatTree::new(small_cfg());
            let mut r = crate::state::StateReader::new(&bad);
            assert!(fresh.restore_state(&mut r).is_err());
        }
    }
}
