//! The SRAM representation of §IV-C: tagged child pointers.
//!
//! The hardware stores, per intermediate node, two pointers (`L_ptr`,
//! `R_ptr`) of `log2 M` bits and two flags (`L_leaf`, `R_leaf`) that say
//! whether each pointer addresses the intermediate-node array `I` or the
//! counter array `C`. [`NodeRef`] models exactly that tagged pointer.

/// A tagged pointer into either the intermediate-node array `I` or the
/// counter array `C` (one `L/R_ptr` + `L/R_leaf` pair of Fig. 5(b)).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// Pointer into the intermediate-node array `I`.
    Inode(u16),
    /// Pointer into the counter array `C` (an active counter / tree leaf).
    Leaf(u16),
}

impl NodeRef {
    /// `true` when the reference addresses a counter (leaf).
    pub fn is_leaf(&self) -> bool {
        matches!(self, NodeRef::Leaf(_))
    }

    /// The raw pointer value, regardless of the tag.
    pub fn index(&self) -> u16 {
        match *self {
            NodeRef::Inode(i) | NodeRef::Leaf(i) => i,
        }
    }
}

/// One entry of the intermediate-node array `I` (Fig. 5(b)): the two tagged
/// child pointers. The storage cost modeled by the energy crate is
/// `2·(log2 M + 1)` bits per entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct INode {
    /// Left successor (covers the lower half of the parent's row range).
    pub left: NodeRef,
    /// Right successor (covers the upper half).
    pub right: NodeRef,
}

impl INode {
    /// Both successors are leaves — the precondition for a DRCAT merge.
    pub fn both_leaves(&self) -> Option<(u16, u16)> {
        match (self.left, self.right) {
            (NodeRef::Leaf(l), NodeRef::Leaf(r)) => Some((l, r)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_pointer_accessors() {
        assert!(NodeRef::Leaf(3).is_leaf());
        assert!(!NodeRef::Inode(3).is_leaf());
        assert_eq!(NodeRef::Leaf(7).index(), 7);
        assert_eq!(NodeRef::Inode(9).index(), 9);
    }

    #[test]
    fn both_leaves_detection() {
        let n = INode {
            left: NodeRef::Leaf(1),
            right: NodeRef::Leaf(2),
        };
        assert_eq!(n.both_leaves(), Some((1, 2)));
        let n = INode {
            left: NodeRef::Inode(0),
            right: NodeRef::Leaf(2),
        };
        assert_eq!(n.both_leaves(), None);
    }
}
