//! Split-threshold models (§IV-D) and the analytical cost model of Fig. 6.
//!
//! The paper derives split thresholds for the 4-counter example
//! (`T1 = T/4`, `T2 = T/2`) and quotes the output of its generalized model
//! for `M = 64`, `L = 10`, `T = 32K`:
//! `T5 = 5155, T6 = 10309, T7 = 12886, T8 = 16384, T9 = T = 32768`.
//! The generalized derivation itself lives in a technical report that is not
//! publicly available, so this module offers three policies (see
//! `DESIGN.md §3.4`):
//!
//! * [`ThresholdPolicy::PaperCurve`] — anchors `T[L-2] = T/2` and shapes the
//!   interior thresholds with the fraction curve `28:56:70:89` (of `89·T/178`)
//!   published for the M = 64 example, interpolating for other tree heights.
//!   This reproduces the quoted values *exactly*.
//! * [`ThresholdPolicy::Doubling`] — our re-derivation of the critical-bias
//!   race (the savings-per-counter argument that also yields Eq. 4's
//!   `x > 3w`): consecutive thresholds double, ending at `T/2`.
//!   This reproduces the paper's 4-counter example exactly.
//! * [`ThresholdPolicy::Uniform`] — every split threshold equals `T/2`
//!   (greedy splitting ablation).

/// Strategy used to place the split thresholds `T_{λ-1} … T_{L-2}`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ThresholdPolicy {
    /// The published fraction curve (default; matches the paper's M = 64,
    /// L = 10 example exactly).
    PaperCurve,
    /// Doubling thresholds ending at `T/2` (matches the paper's 4-counter
    /// derivation exactly).
    Doubling,
    /// All split thresholds equal to `T/2` (ablation).
    Uniform,
}

impl std::fmt::Display for ThresholdPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ThresholdPolicy::PaperCurve => "paper-curve",
            ThresholdPolicy::Doubling => "doubling",
            ThresholdPolicy::Uniform => "uniform",
        };
        f.write_str(s)
    }
}

/// Per-level split thresholds of a CAT.
///
/// `threshold_for_level(l)` returns the count at which a counter at level
/// `l` splits (or, at the deepest level `L−1`, triggers a victim refresh).
///
/// ```
/// use cat_core::{SplitThresholds, ThresholdPolicy};
///
/// // The paper's quoted example: M = 64 (λ = 6), L = 10, T = 32K.
/// let t = SplitThresholds::new(ThresholdPolicy::PaperCurve, 32_768, 6, 10);
/// assert_eq!(t.threshold_for_level(5), 5_155);
/// assert_eq!(t.threshold_for_level(6), 10_309);
/// assert_eq!(t.threshold_for_level(7), 12_886);
/// assert_eq!(t.threshold_for_level(8), 16_384);
/// assert_eq!(t.threshold_for_level(9), 32_768);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitThresholds {
    per_level: Vec<u32>,
    refresh_threshold: u32,
}

/// Control polyline of the published fraction curve, as fractions of `T`
/// at normalized stage positions 0, 1/3, 2/3, 1.
const PAPER_CONTROL: [(f64, f64); 4] = [
    (0.0, 28.0 / 178.0),
    (1.0 / 3.0, 56.0 / 178.0),
    (2.0 / 3.0, 70.0 / 178.0),
    (1.0, 0.5),
];

fn paper_curve_fraction(u: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&u));
    for w in PAPER_CONTROL.windows(2) {
        let (u0, f0) = w[0];
        let (u1, f1) = w[1];
        if u <= u1 {
            let t = if u1 > u0 { (u - u0) / (u1 - u0) } else { 0.0 };
            return f0 + t * (f1 - f0);
        }
    }
    0.5
}

impl SplitThresholds {
    /// Builds thresholds for refresh threshold `t`, pre-split depth
    /// `lambda` and maximum tree height `max_levels` (`L`).
    ///
    /// Levels `0 ..= λ−2` never consult a threshold (they are pre-split);
    /// they are filled with the level `λ−1` value for uniformity. Level
    /// `L−1` always holds `t` itself.
    ///
    /// # Panics
    ///
    /// Panics if `max_levels < lambda`, `lambda == 0` or `t < 2` — these are
    /// prevented upstream by [`crate::CatConfig`] validation.
    pub fn new(policy: ThresholdPolicy, t: u32, lambda: u32, max_levels: u32) -> Self {
        assert!(lambda >= 1 && max_levels >= lambda && t >= 2);
        let l = max_levels as usize;
        let mut per_level = vec![t; l.max(1)];
        // Number of split thresholds: levels λ−1 ..= L−2.
        let k = (max_levels - lambda) as usize;
        if k > 0 {
            let first = (lambda - 1) as usize;
            let values = match policy {
                ThresholdPolicy::Uniform => vec![(t / 2).max(1); k],
                ThresholdPolicy::Doubling => (0..k)
                    .map(|i| {
                        let shift = (k - i) as u32;
                        (t >> shift.min(31)).max(1)
                    })
                    .collect(),
                ThresholdPolicy::PaperCurve => {
                    if k == 1 {
                        vec![(t / 2).max(1)]
                    } else if k == 2 {
                        // The paper's 4-counter derivation: T/4 then T/2.
                        vec![(t / 4).max(1), (t / 2).max(1)]
                    } else {
                        (0..k)
                            .map(|i| {
                                let u = i as f64 / (k - 1) as f64;
                                let frac = paper_curve_fraction(u);
                                ((t as f64 * frac).round() as u32).max(1)
                            })
                            .collect()
                    }
                }
            };
            per_level[first..first + k].copy_from_slice(&values);
            // Levels shallower than λ−1 mirror the first split threshold.
            for entry in per_level.iter_mut().take(first) {
                *entry = values[0];
            }
        }
        SplitThresholds {
            per_level,
            refresh_threshold: t,
        }
    }

    /// Threshold consulted by a counter at tree level `level`. Levels at or
    /// beyond `L−1` return the refresh threshold `T`.
    pub fn threshold_for_level(&self, level: u32) -> u32 {
        let idx = (level as usize).min(self.per_level.len() - 1);
        self.per_level[idx]
    }

    /// The refresh threshold `T`.
    pub fn refresh_threshold(&self) -> u32 {
        self.refresh_threshold
    }

    /// Number of levels (`L`).
    pub fn levels(&self) -> u32 {
        self.per_level.len() as u32
    }

    /// All per-level thresholds, indexed by level.
    pub fn as_slice(&self) -> &[u32] {
        &self.per_level
    }
}

/// Analytical cost model of §IV-D (Fig. 6 and Eqs. 2–4).
///
/// The model analyses a 4-counter CAT over a bank whose rows are split in
/// groups of `w = N/4`: a balanced tree refreshes `CostSCA = w·R/T` rows per
/// interval, while the unbalanced tree of Fig. 6(c) refreshes `CostCAT`
/// rows, where the bias `x` is the number of extra references received by
/// the hot quarter-group. CAT wins exactly when `x > 3w` (Eq. 4).
pub mod cost {
    /// Eq. 2 — rows refreshed per interval by the balanced (SCA-like) tree.
    ///
    /// ```
    /// assert_eq!(cat_core::thresholds::cost::cost_sca(16_384.0, 655_360.0, 32_768.0), 327_680.0);
    /// ```
    pub fn cost_sca(w: f64, r: f64, t: f64) -> f64 {
        w * r / t
    }

    /// Eq. 3 — rows refreshed per interval by the unbalanced CAT of
    /// Fig. 6(c) when the hot half-group receives `x` extra references.
    pub fn cost_cat(w: f64, x: f64, r: f64, t: f64) -> f64 {
        let alpha = r / (x + 4.0 * w);
        ((2.0 * w).powi(2) + w * w + (w / 2.0).powi(2) + (x + w / 2.0) * (w / 2.0)) * alpha / t
    }

    /// Eq. 4 — the critical bias above which the unbalanced CAT refreshes
    /// fewer rows than the balanced tree: `x > 3w`.
    pub fn critical_bias(w: f64) -> f64 {
        3.0 * w
    }

    /// The split thresholds the derivation picks for the 4-counter example:
    /// `(T1, T2) = (T/4, T/2)`.
    pub fn four_counter_thresholds(t: u32) -> (u32, u32) {
        (t / 4, t / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::cost::*;
    use super::*;

    #[test]
    fn paper_curve_reproduces_published_m64_l10_values() {
        let t = SplitThresholds::new(ThresholdPolicy::PaperCurve, 32_768, 6, 10);
        assert_eq!(t.as_slice()[5..], [5_155, 10_309, 12_886, 16_384, 32_768]);
    }

    #[test]
    fn paper_curve_reproduces_four_counter_example() {
        // M = 4 → λ = 2; L = 4: thresholds at levels 1 and 2 are T/4, T/2.
        let t = SplitThresholds::new(ThresholdPolicy::PaperCurve, 32_768, 2, 4);
        assert_eq!(t.threshold_for_level(1), 8_192);
        assert_eq!(t.threshold_for_level(2), 16_384);
        assert_eq!(t.threshold_for_level(3), 32_768);
    }

    #[test]
    fn doubling_matches_four_counter_example_and_ends_at_half_t() {
        let t = SplitThresholds::new(ThresholdPolicy::Doubling, 32_768, 2, 4);
        assert_eq!(t.threshold_for_level(1), 8_192);
        assert_eq!(t.threshold_for_level(2), 16_384);

        let t = SplitThresholds::new(ThresholdPolicy::Doubling, 32_768, 6, 11);
        assert_eq!(t.threshold_for_level(9), 16_384);
        assert_eq!(t.threshold_for_level(10), 32_768);
        // Consecutive thresholds double.
        for l in 5..9 {
            assert_eq!(
                t.threshold_for_level(l + 1),
                2 * t.threshold_for_level(l),
                "level {l}"
            );
        }
    }

    #[test]
    fn uniform_policy_sets_all_to_half_t() {
        let t = SplitThresholds::new(ThresholdPolicy::Uniform, 16_384, 6, 11);
        for l in 5..10 {
            assert_eq!(t.threshold_for_level(l), 8_192);
        }
        assert_eq!(t.threshold_for_level(10), 16_384);
    }

    #[test]
    fn thresholds_are_monotone_for_all_policies() {
        for policy in [
            ThresholdPolicy::PaperCurve,
            ThresholdPolicy::Doubling,
            ThresholdPolicy::Uniform,
        ] {
            for (lambda, l) in [(2u32, 4u32), (5, 9), (6, 10), (6, 11), (6, 14), (7, 12)] {
                let t = SplitThresholds::new(policy, 32_768, lambda, l);
                let s = t.as_slice();
                for w in s.windows(2) {
                    assert!(w[0] <= w[1], "{policy:?} λ={lambda} L={l}: {s:?}");
                }
                assert_eq!(*s.last().unwrap(), 32_768);
            }
        }
    }

    #[test]
    fn deep_levels_clamp_to_refresh_threshold() {
        let t = SplitThresholds::new(ThresholdPolicy::PaperCurve, 32_768, 6, 10);
        assert_eq!(t.threshold_for_level(25), 32_768);
    }

    #[test]
    fn degenerate_single_level_tree() {
        // L = λ: no split thresholds, everything refreshes at T.
        let t = SplitThresholds::new(ThresholdPolicy::PaperCurve, 1024, 6, 6);
        for l in 0..6 {
            assert_eq!(t.threshold_for_level(l), 1024);
        }
    }

    #[test]
    fn cost_model_crossover_is_exactly_3w() {
        let (w, r, t) = (16_384.0_f64, 1.0e6, 32_768.0);
        let x = critical_bias(w);
        let sca = cost_sca(w, r, t);
        let at_crit = cost_cat(w, x, r, t);
        assert!(
            (at_crit - sca).abs() / sca < 1e-12,
            "costs must tie at x = 3w: {at_crit} vs {sca}"
        );
        assert!(cost_cat(w, x * 1.01, r, t) < sca);
        assert!(cost_cat(w, x * 0.99, r, t) > sca);
    }

    #[test]
    fn cost_cat_decreases_with_bias() {
        let (w, r, t) = (1_000.0_f64, 5.0e5, 16_384.0);
        let mut prev = f64::INFINITY;
        for x in [0.0, 500.0, 1_000.0, 3_000.0, 10_000.0, 50_000.0] {
            let c = cost_cat(w, x, r, t);
            assert!(c < prev, "cost must fall as bias grows");
            prev = c;
        }
    }

    #[test]
    fn four_counter_threshold_helper() {
        assert_eq!(four_counter_thresholds(32_768), (8_192, 16_384));
    }

    #[test]
    fn policy_display() {
        assert_eq!(ThresholdPolicy::PaperCurve.to_string(), "paper-curve");
    }
}
