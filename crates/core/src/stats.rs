//! Per-scheme event counters consumed by the energy model and the benches.

use crate::state::{StateError, StateReader};

/// Raw event counts accumulated by a [`crate::MitigationScheme`].
///
/// All counts are monotonically increasing over the lifetime of the scheme
/// (they are *not* reset at epoch boundaries) so that a simulation can
/// compute rates by differencing snapshots.
///
/// ```
/// use cat_core::SchemeStats;
/// let mut a = SchemeStats::default();
/// a.activations = 10;
/// let mut b = SchemeStats::default();
/// b.activations = 5;
/// a.merge(&b);
/// assert_eq!(a.activations, 15);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Row activations observed (`on_activation` calls).
    pub activations: u64,
    /// Mitigation refresh commands issued.
    pub refresh_events: u64,
    /// Total rows covered by mitigation refreshes (victim + group rows).
    pub refreshed_rows: u64,
    /// SRAM words read while traversing / updating counter state.
    pub sram_reads: u64,
    /// SRAM words written.
    pub sram_writes: u64,
    /// Pseudo-random bits generated (PRA only).
    pub prng_bits: u64,
    /// Counter splits performed (CAT family).
    pub splits: u64,
    /// Cold-pair merges performed (DRCAT only).
    pub merges: u64,
    /// DRCAT reconfigurations (merge + split of a hot leaf).
    pub reconfigurations: u64,
    /// Counter-cache misses (counter-cache baseline only).
    pub cache_misses: u64,
    /// Counter values fetched from / written back to DRAM
    /// (counter-cache baseline only).
    pub dram_counter_transfers: u64,
    /// Deepest tree level touched by any traversal (CAT family).
    pub max_depth_touched: u64,
}

/// One field of [`SchemeStats`] in the canonical encode order shared by the
/// wire `StatsSnapshot` and the engine checkpoint format.
pub struct StatsField {
    /// Field name — matches the struct field identifier (checked by test
    /// against the `Debug` field list, so a new field can't silently skew
    /// the encoders).
    pub name: &'static str,
    /// Reads the field.
    pub get: fn(&SchemeStats) -> u64,
    /// Writes the field.
    pub set: fn(&mut SchemeStats, u64),
}

macro_rules! stats_fields {
    ($($field:ident),* $(,)?) => {
        [$(StatsField {
            name: stringify!($field),
            get: |s: &SchemeStats| s.$field,
            set: |s: &mut SchemeStats, v: u64| s.$field = v,
        }),*]
    };
}

impl SchemeStats {
    /// Canonical field table: every encoder and decoder of `SchemeStats`
    /// (wire stats frames, engine checkpoints) iterates this table instead
    /// of hand-listing fields, so the encode order is defined exactly once.
    pub const FIELDS: [StatsField; 12] = stats_fields!(
        activations,
        refresh_events,
        refreshed_rows,
        sram_reads,
        sram_writes,
        prng_bits,
        splits,
        merges,
        reconfigurations,
        cache_misses,
        dram_counter_transfers,
        max_depth_touched,
    );

    /// Appends the counters as words in [`SchemeStats::FIELDS`] order.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(Self::FIELDS.iter().map(|f| (f.get)(self)));
    }

    /// Reads the counters back in [`SchemeStats::FIELDS`] order.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        for f in &Self::FIELDS {
            (f.set)(self, r.next_word()?);
        }
        Ok(())
    }

    /// Adds every counter of `other` into `self` (`max_depth_touched` takes
    /// the maximum). Used to aggregate per-bank schemes into system totals.
    pub fn merge(&mut self, other: &SchemeStats) {
        self.activations += other.activations;
        self.refresh_events += other.refresh_events;
        self.refreshed_rows += other.refreshed_rows;
        self.sram_reads += other.sram_reads;
        self.sram_writes += other.sram_writes;
        self.prng_bits += other.prng_bits;
        self.splits += other.splits;
        self.merges += other.merges;
        self.reconfigurations += other.reconfigurations;
        self.cache_misses += other.cache_misses;
        self.dram_counter_transfers += other.dram_counter_transfers;
        self.max_depth_touched = self.max_depth_touched.max(other.max_depth_touched);
    }

    /// Average SRAM accesses (reads + writes) per activation.
    pub fn sram_accesses_per_activation(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            (self.sram_reads + self.sram_writes) as f64 / self.activations as f64
        }
    }

    /// Average rows refreshed per mitigation refresh command.
    pub fn rows_per_refresh(&self) -> f64 {
        if self.refresh_events == 0 {
            0.0
        } else {
            self.refreshed_rows as f64 / self.refresh_events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = SchemeStats {
            activations: 1,
            refresh_events: 2,
            refreshed_rows: 3,
            sram_reads: 4,
            sram_writes: 5,
            prng_bits: 6,
            splits: 7,
            merges: 8,
            reconfigurations: 9,
            cache_misses: 10,
            dram_counter_transfers: 11,
            max_depth_touched: 4,
        };
        let b = SchemeStats {
            max_depth_touched: 9,
            ..a
        };
        a.merge(&b);
        assert_eq!(a.activations, 2);
        assert_eq!(a.refreshed_rows, 6);
        assert_eq!(a.dram_counter_transfers, 22);
        assert_eq!(a.max_depth_touched, 9);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SchemeStats::default();
        assert_eq!(s.sram_accesses_per_activation(), 0.0);
        assert_eq!(s.rows_per_refresh(), 0.0);
    }

    #[test]
    fn field_table_names_every_struct_field_exactly_once() {
        // `Debug` renders `SchemeStats { activations: 0, refresh_events: 0,
        // … }` — one `name: value` pair per struct field. Any field added to
        // the struct but not to `FIELDS` (or vice versa) breaks one of
        // these assertions, so the encode table can never silently skew.
        let debug = format!("{:?}", SchemeStats::default());
        assert_eq!(
            debug.matches(": ").count(),
            SchemeStats::FIELDS.len(),
            "struct field count diverged from the encode table: {debug}"
        );
        for f in &SchemeStats::FIELDS {
            assert!(
                debug.contains(&format!("{}: ", f.name)),
                "table names unknown field {:?}",
                f.name
            );
        }
        let mut names: Vec<&str> = SchemeStats::FIELDS.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SchemeStats::FIELDS.len(), "duplicate names");
    }

    #[test]
    fn field_table_getters_and_setters_agree() {
        let mut s = SchemeStats::default();
        for (i, f) in SchemeStats::FIELDS.iter().enumerate() {
            (f.set)(&mut s, i as u64 + 1);
        }
        let mut words = Vec::new();
        s.save_state(&mut words);
        assert_eq!(words, (1..=12).collect::<Vec<u64>>());
        let mut back = SchemeStats::default();
        let mut r = crate::state::StateReader::new(&words);
        back.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rates_compute_averages() {
        let s = SchemeStats {
            activations: 10,
            sram_reads: 25,
            sram_writes: 15,
            refresh_events: 2,
            refreshed_rows: 100,
            ..SchemeStats::default()
        };
        assert_eq!(s.sram_accesses_per_activation(), 4.0);
        assert_eq!(s.rows_per_refresh(), 50.0);
    }
}
