//! Per-scheme event counters consumed by the energy model and the benches.

/// Raw event counts accumulated by a [`crate::MitigationScheme`].
///
/// All counts are monotonically increasing over the lifetime of the scheme
/// (they are *not* reset at epoch boundaries) so that a simulation can
/// compute rates by differencing snapshots.
///
/// ```
/// use cat_core::SchemeStats;
/// let mut a = SchemeStats::default();
/// a.activations = 10;
/// let mut b = SchemeStats::default();
/// b.activations = 5;
/// a.merge(&b);
/// assert_eq!(a.activations, 15);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Row activations observed (`on_activation` calls).
    pub activations: u64,
    /// Mitigation refresh commands issued.
    pub refresh_events: u64,
    /// Total rows covered by mitigation refreshes (victim + group rows).
    pub refreshed_rows: u64,
    /// SRAM words read while traversing / updating counter state.
    pub sram_reads: u64,
    /// SRAM words written.
    pub sram_writes: u64,
    /// Pseudo-random bits generated (PRA only).
    pub prng_bits: u64,
    /// Counter splits performed (CAT family).
    pub splits: u64,
    /// Cold-pair merges performed (DRCAT only).
    pub merges: u64,
    /// DRCAT reconfigurations (merge + split of a hot leaf).
    pub reconfigurations: u64,
    /// Counter-cache misses (counter-cache baseline only).
    pub cache_misses: u64,
    /// Counter values fetched from / written back to DRAM
    /// (counter-cache baseline only).
    pub dram_counter_transfers: u64,
    /// Deepest tree level touched by any traversal (CAT family).
    pub max_depth_touched: u64,
}

impl SchemeStats {
    /// Adds every counter of `other` into `self` (`max_depth_touched` takes
    /// the maximum). Used to aggregate per-bank schemes into system totals.
    pub fn merge(&mut self, other: &SchemeStats) {
        self.activations += other.activations;
        self.refresh_events += other.refresh_events;
        self.refreshed_rows += other.refreshed_rows;
        self.sram_reads += other.sram_reads;
        self.sram_writes += other.sram_writes;
        self.prng_bits += other.prng_bits;
        self.splits += other.splits;
        self.merges += other.merges;
        self.reconfigurations += other.reconfigurations;
        self.cache_misses += other.cache_misses;
        self.dram_counter_transfers += other.dram_counter_transfers;
        self.max_depth_touched = self.max_depth_touched.max(other.max_depth_touched);
    }

    /// Average SRAM accesses (reads + writes) per activation.
    pub fn sram_accesses_per_activation(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            (self.sram_reads + self.sram_writes) as f64 / self.activations as f64
        }
    }

    /// Average rows refreshed per mitigation refresh command.
    pub fn rows_per_refresh(&self) -> f64 {
        if self.refresh_events == 0 {
            0.0
        } else {
            self.refreshed_rows as f64 / self.refresh_events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = SchemeStats {
            activations: 1,
            refresh_events: 2,
            refreshed_rows: 3,
            sram_reads: 4,
            sram_writes: 5,
            prng_bits: 6,
            splits: 7,
            merges: 8,
            reconfigurations: 9,
            cache_misses: 10,
            dram_counter_transfers: 11,
            max_depth_touched: 4,
        };
        let b = SchemeStats {
            max_depth_touched: 9,
            ..a
        };
        a.merge(&b);
        assert_eq!(a.activations, 2);
        assert_eq!(a.refreshed_rows, 6);
        assert_eq!(a.dram_counter_transfers, 22);
        assert_eq!(a.max_depth_touched, 9);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SchemeStats::default();
        assert_eq!(s.sram_accesses_per_activation(), 0.0);
        assert_eq!(s.rows_per_refresh(), 0.0);
    }

    #[test]
    fn rates_compute_averages() {
        let s = SchemeStats {
            activations: 10,
            sram_reads: 25,
            sram_writes: 15,
            refresh_events: 2,
            refreshed_rows: 100,
            ..SchemeStats::default()
        };
        assert_eq!(s.sram_accesses_per_activation(), 4.0);
        assert_eq!(s.rows_per_refresh(), 50.0);
    }
}
