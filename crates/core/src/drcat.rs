//! DRCAT — Dynamically Reconfigured CAT (§V-B).

use crate::scheme::{HardwareProfile, MitigationScheme, Refreshes, SchemeKind};
use crate::tree::CatTree;
use crate::{CatConfig, RowId, SchemeStats};

/// Saturation limit of the 2-bit weight registers.
const WEIGHT_MAX: u8 = 3;
/// Weight assigned to freshly split counters ("to ensure they remain split
/// for a reasonable period of time", §V-B step 3).
const WEIGHT_AFTER_SPLIT: u8 = 1;

/// Dynamically Reconfigured CAT: a [`CatTree`] augmented with one 2-bit
/// weight register per counter (the `W` array of Fig. 5(d)).
///
/// Every time a counter reaches the refresh threshold its weight is
/// incremented (saturating at 3) and all other weights are decremented
/// (saturating at 0). When a weight saturates, DRCAT finds an intermediate
/// node whose two children are zero-weight leaves, merges them (releasing a
/// counter), and uses the released counter to split the hot leaf — thereby
/// migrating counters from regions that went cold to regions that became
/// hot, without ever discarding the learned tree shape.
///
/// At auto-refresh epoch boundaries the counter *values* are zeroed (the
/// rows were just refreshed) but the tree structure and the weights are
/// retained — unlike [`crate::Prcat`], which rebuilds from scratch.
///
/// ```
/// use cat_core::{CatConfig, Drcat, MitigationScheme, RowId};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let mut d = Drcat::new(CatConfig::new(65_536, 64, 11, 32_768)?);
/// for _ in 0..100_000 {
///     d.on_activation(RowId(4_242));
/// }
/// assert!(d.stats().refresh_events > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Drcat {
    tree: CatTree,
    weights: Vec<u8>,
}

impl Drcat {
    /// Creates a DRCAT instance for the given configuration.
    pub fn new(config: CatConfig) -> Self {
        let m = config.counters();
        Drcat {
            tree: CatTree::new(config),
            weights: vec![0; m],
        }
    }

    /// Read access to the underlying tree.
    pub fn tree(&self) -> &CatTree {
        &self.tree
    }

    /// Current weight register values, indexed by counter.
    pub fn weights(&self) -> &[u8] {
        &self.weights
    }

    /// Resident heap bytes of the scheme's state (tree slabs + weights).
    pub fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes() + self.weights.capacity()
    }

    /// Appends the scheme's mutable state (tree + weight registers) for
    /// checkpointing.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.tree.save_state(out);
        out.push(self.weights.len() as u64);
        out.extend(self.weights.iter().map(|&w| u64::from(w)));
    }

    /// Restores state captured by [`Drcat::save_state`] onto a freshly
    /// built instance of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StateError`] when the tree state is malformed or a
    /// weight exceeds the 2-bit register range.
    pub fn restore_state(
        &mut self,
        r: &mut crate::state::StateReader<'_>,
    ) -> Result<(), crate::StateError> {
        use crate::StateError;
        self.tree.restore_state(r)?;
        if r.next_word()? != self.weights.len() as u64 {
            return Err(StateError::Invalid("DRCAT weight count"));
        }
        for w in &mut self.weights {
            let v = r.next_u8()?;
            if v > WEIGHT_MAX {
                return Err(StateError::Invalid("DRCAT weight out of range"));
            }
            *w = v;
        }
        Ok(())
    }

    /// Overrides the weight registers — test/diagnostic hook used to
    /// reproduce the paper's Fig. 7 walk-through from a known state.
    #[doc(hidden)]
    pub fn force_weights(&mut self, weights: &[u8]) {
        assert_eq!(weights.len(), self.weights.len());
        self.weights.copy_from_slice(weights);
    }

    /// §V-B weight update on a refresh event of counter `hot`, followed by
    /// reconfiguration when the hot weight saturates.
    fn on_refresh_event(&mut self, hot: u16) {
        let h = hot as usize;
        self.weights[h] = (self.weights[h] + 1).min(WEIGHT_MAX);
        for (i, w) in self.weights.iter_mut().enumerate() {
            if i != h {
                *w = w.saturating_sub(1);
            }
        }
        if self.weights[h] == WEIGHT_MAX {
            self.try_reconfigure(hot);
        }
    }

    /// Steps (1)–(3) of §V-B: merge a cold sibling pair, split the hot leaf
    /// with the released counter, and set both new weights to 1.
    fn try_reconfigure(&mut self, hot: u16) {
        // The hot leaf must be splittable at all (depth and range limits)
        // before we commit to releasing a counter.
        let max_depth = self.tree.config().max_levels() - 1;
        let splittable = self
            .tree
            .shape()
            .leaves()
            .iter()
            .any(|l| l.counter == hot && u32::from(l.depth) < max_depth && l.range.len() > 1);
        if !splittable {
            return;
        }
        let Some((slot, inode, l, r)) = self.tree.find_cold_pair(&self.weights, hot) else {
            return;
        };
        let released = self.tree.merge_pair(slot, inode, l, r);
        self.weights[released as usize] = 0;
        let new = self
            .tree
            .split_hot(hot)
            .expect("split must succeed right after releasing a counter");
        self.weights[hot as usize] = WEIGHT_AFTER_SPLIT;
        self.weights[new as usize] = WEIGHT_AFTER_SPLIT;
        self.tree.stats_mut().reconfigurations += 1;
    }
}

impl MitigationScheme for Drcat {
    fn on_activation(&mut self, row: RowId) -> Refreshes {
        let activation = self.tree.record(row);
        match activation.refresh {
            Some(range) => {
                self.on_refresh_event(activation.counter);
                Refreshes::one(range)
            }
            None => Refreshes::none(),
        }
    }

    fn on_epoch_end(&mut self) {
        // Rows were auto-refreshed: counts restart, shape and weights persist.
        self.tree.zero_counters();
    }

    fn stats(&self) -> &SchemeStats {
        self.tree.stats()
    }

    fn hardware(&self) -> HardwareProfile {
        self.tree.hardware_as(SchemeKind::Drcat)
    }

    fn rows(&self) -> u32 {
        self.tree.config().rows()
    }

    fn name(&self) -> String {
        format!("DRCAT_{}", self.tree.config().counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdPolicy;

    fn small_cfg() -> CatConfig {
        CatConfig::new(1024, 8, 6, 256).unwrap()
    }

    /// N = 32, M = 8, L = 6, T = 64, λ = 1 — the Figure 5/7 configuration.
    fn figure_cfg() -> CatConfig {
        CatConfig::new(32, 8, 6, 64)
            .unwrap()
            .with_policy(ThresholdPolicy::Doubling)
            .with_lambda(1)
            .unwrap()
    }

    /// Reproduces the §V-B / Figure 7 reconfiguration walk-through.
    ///
    /// We first sculpt Figure 5(a)'s tree (leaf depths 3,5,5,4,3,4,4,1 over
    /// rows [0,4) [4,5) [5,6) [6,8) [8,12) [12,14) [14,16) [16,32)), load
    /// the figure's weight state, and drive the counter over rows [12,14)
    /// (the figure's C6) to its refresh threshold. DRCAT must then merge the
    /// two zero-weight sibling leaves [4,5)/[5,6) (the figure's C2 and C5,
    /// with the right sibling promoted) and split the hot leaf in two.
    #[test]
    fn figure7_reconfiguration() {
        let mut d = Drcat::new(figure_cfg());
        crate::tree::build_figure5(|row| {
            d.on_activation(row);
        });
        assert_eq!(
            d.tree().shape().depth_profile(),
            vec![3, 5, 5, 4, 3, 4, 4, 1],
            "precondition: Figure 5(a) shape"
        );
        // Figure 5(d) weights [C0..C7] = [0,1,1,2,1,1,2,2] in the paper's
        // labels map to our allocation order as follows (see tree tests):
        // paper C1→0, C0→1, C3→2, C2→3, C4→4, C5→5, C6→6, C7→7.
        d.force_weights(&[1, 0, 2, 1, 1, 1, 2, 2]);

        // Drive the leaf over [12,14) (paper's C6, our counter 6, value 16
        // after the build) to the refresh threshold of 64.
        let mut refreshed = None;
        for _ in 0..48 {
            let r = d.on_activation(RowId(12));
            if !r.is_empty() {
                refreshed = Some(r);
            }
        }
        let refreshed = refreshed.expect("hot counter must hit T = 64");
        assert_eq!(refreshed.total_rows(), 4, "refresh [11,14]");

        // Weight update: hot 2→3 (trigger), everyone else decremented, then
        // the reconfiguration resets the hot pair to 1 and the released
        // counter joins the new pair with weight 1: paper Fig. 7(d) =
        // [0,0,1,1,0,0,1,1] in paper labels, identical under our mapping.
        assert_eq!(d.weights(), &[0, 0, 1, 1, 0, 0, 1, 1]);

        // Fig. 7(a) shape: cold pair [4,5)/[5,6) merged into [4,6) at depth
        // 4; hot leaf [12,14) split into [12,13)/[13,14) at depth 5.
        let shape = d.tree().shape();
        assert!(shape.is_partition(32));
        assert_eq!(shape.depth_profile(), vec![3, 4, 4, 3, 5, 5, 4, 1]);
        let merged = &shape.leaves()[1];
        assert_eq!((merged.range.lo(), merged.range.hi()), (4, 5));
        assert_eq!(merged.counter, 5, "right sibling (paper C5) is promoted");
        let split_left = &shape.leaves()[4];
        let split_right = &shape.leaves()[5];
        assert_eq!(split_left.counter, 6, "hot counter keeps the left half");
        assert_eq!(split_right.counter, 3, "released counter (paper C2) reused");
        assert_eq!(
            split_left.value, 0,
            "hot pair restarts counting after refresh"
        );
        assert_eq!(d.stats().merges, 1);
        assert_eq!(d.stats().reconfigurations, 1);
    }

    #[test]
    fn weights_saturate_and_decay() {
        let mut d = Drcat::new(small_cfg());
        // Hammer a single row so its counter refreshes repeatedly.
        for _ in 0..256 * 8 {
            d.on_activation(RowId(900));
        }
        assert!(d.stats().refresh_events >= 2);
        let max_w = *d.weights().iter().max().unwrap();
        assert!((1..=3).contains(&max_w));
    }

    #[test]
    fn reconfiguration_moves_counters_to_new_hot_spot() {
        let mut d = Drcat::new(small_cfg());
        // Phase 1: two hot regions (rows 100 and 600) until the tree is
        // fully grown around them.
        for i in 0..6000u32 {
            d.on_activation(RowId(if i.is_multiple_of(2) { 100 } else { 600 }));
        }
        assert!(d.tree().fully_grown());
        // Phase 2: the hot spot migrates to row 900.
        for _ in 0..256 * 40 {
            d.on_activation(RowId(900));
        }
        let shape = d.tree().shape();
        let hot = shape
            .leaves()
            .iter()
            .find(|l| l.range.contains(900))
            .unwrap();
        assert_eq!(
            u32::from(hot.depth),
            d.tree().config().max_levels() - 1,
            "counters must migrate to the new hot spot: {}",
            shape.render()
        );
        assert!(d.stats().reconfigurations >= 1);
    }

    #[test]
    fn epoch_end_zeroes_values_keeps_shape_and_weights() {
        let mut d = Drcat::new(small_cfg());
        for _ in 0..3000 {
            d.on_activation(RowId(100));
        }
        let shape_before = d.tree().shape().depth_profile();
        let weights_before = d.weights().to_vec();
        d.on_epoch_end();
        assert_eq!(d.tree().shape().depth_profile(), shape_before);
        assert_eq!(d.weights(), &weights_before[..]);
        assert!(d.tree().shape().leaves().iter().all(|l| l.value == 0));
    }

    #[test]
    fn no_reconfiguration_without_cold_pair() {
        let mut d = Drcat::new(small_cfg());
        d.force_weights(&[1; 8]);
        for _ in 0..256 * 10 {
            d.on_activation(RowId(100));
        }
        // Weights of non-hot counters decay to zero over refresh events, so
        // eventually reconfiguration can fire — but never before a
        // zero-weight sibling pair exists.
        assert!(d.tree().shape().is_partition(1024));
    }

    #[test]
    fn deep_hot_leaf_does_not_reconfigure() {
        // Once the hot leaf is at the maximum level, saturated weights must
        // not trigger merges (nothing to gain).
        let mut d = Drcat::new(small_cfg());
        for _ in 0..3000 {
            d.on_activation(RowId(100));
        }
        let merges_before = d.stats().merges;
        for _ in 0..256 * 20 {
            d.on_activation(RowId(100));
        }
        // The hot leaf is already at L−1: its own saturation cannot merge
        // cold pairs on its behalf.
        assert_eq!(d.stats().merges, merges_before);
        assert_eq!(d.name(), "DRCAT_8");
    }
}
