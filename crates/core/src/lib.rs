//! # cat-core — Counter-based Adaptive Trees for wordline-crosstalk mitigation
//!
//! This crate implements the mitigation schemes studied in *"Mitigating
//! Wordline Crosstalk using Adaptive Trees of Counters"* (Seyedzadeh, Jones,
//! Melhem — ISCA 2018):
//!
//! * [`CatTree`] — the paper's contribution: a dynamically grown,
//!   potentially unbalanced binary tree of activation counters stored in the
//!   compact SRAM pointer layout of §IV-C (arrays `I`, `C` and, for DRCAT,
//!   `W`).
//! * [`Prcat`] — Periodically Reset CAT (§V-A): the tree is rebuilt at every
//!   64 ms auto-refresh epoch.
//! * [`Drcat`] — Dynamically Reconfigured CAT (§V-B): 2-bit weight registers
//!   track hot counters; cold sibling leaves are merged so their counter can
//!   split a hot region.
//! * [`Sca`] — Static Counter Assignment: `M` counters uniformly cover the
//!   bank (§III-B).
//! * [`Pra`] — Probabilistic Row Activation: refresh the two neighbours of
//!   an activated row with probability `p` (§III-A), with pluggable PRNGs
//!   (ideal or [`rng::Lfsr16`]).
//! * [`CounterCache`] — the per-row-counter + on-chip counter-cache baseline
//!   of Kim et al. (CAL 2015), reference \[26\] in the paper.
//!
//! All schemes implement the [`MitigationScheme`] trait: the memory
//! controller calls [`MitigationScheme::on_activation`] for every row
//! activation of a bank and receives the set of row ranges that must be
//! refreshed to protect potential victims.
//!
//! ## Quick example
//!
//! ```
//! use cat_core::{CatConfig, Drcat, MitigationScheme, RowId};
//!
//! # fn main() -> Result<(), cat_core::ConfigError> {
//! // A 64K-row bank protected by 64 counters, trees up to 11 levels,
//! // refresh threshold T = 32K (the paper's default configuration).
//! let cfg = CatConfig::new(65_536, 64, 11, 32_768)?;
//! let mut scheme = Drcat::new(cfg);
//!
//! // Hammer one aggressor row; eventually its victims get refreshed.
//! let aggressor = RowId(1_000);
//! let mut refreshed = 0u64;
//! for _ in 0..40_000 {
//!     for range in scheme.on_activation(aggressor) {
//!         refreshed += range.len();
//!     }
//! }
//! assert!(refreshed > 0, "victims of a hammered row must be refreshed");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod config;
mod counter_cache;
mod drcat;
mod instance;
pub mod oracle;
mod pra;
mod prcat;
pub mod rng;
mod sca;
mod scheme;
mod space_saving;
pub mod sparse;
mod spec;
pub mod state;
mod stats;
pub mod thresholds;
pub mod tree;

pub use addr::{RowId, RowRange};
pub use config::{CatConfig, ConfigError};
pub use counter_cache::{CounterCache, CounterCacheConfig};
pub use drcat::Drcat;
pub use instance::SchemeInstance;
pub use pra::Pra;
pub use prcat::Prcat;
pub use sca::Sca;
pub use scheme::{HardwareProfile, MitigationScheme, Refreshes, SchemeKind};
pub use space_saving::SpaceSaving;
pub use sparse::SparseSlab;
pub use spec::{ParseSpecError, SchemeSpec, PRA_DEFAULT_SEED};
pub use state::{StateError, StateReader};
pub use stats::{SchemeStats, StatsField};
pub use thresholds::{SplitThresholds, ThresholdPolicy};
pub use tree::CatTree;
