//! SCA — Static Counter Assignment (§III-B).

use crate::scheme::{HardwareProfile, MitigationScheme, Refreshes, SchemeKind};
use crate::state::{StateError, StateReader};
use crate::{ConfigError, RowId, RowRange, SchemeStats};

/// Static Counter Assignment: the bank's `N` rows are split into `M`
/// fixed, equal groups of `N/M` rows, each tracked by one counter. When a
/// group counter reaches the refresh threshold `T` it is reset and the
/// `N/M + 2` rows of the group plus its two adjacent victims are refreshed.
///
/// This is the deterministic baseline the paper calls `SCA_M`; its energy
/// sweet spot is around `M = 128` for 64K-row banks (Fig. 2).
///
/// ```
/// use cat_core::{MitigationScheme, RowId, Sca};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let mut sca = Sca::new(65_536, 64, 32_768)?;
/// let mut refreshed = 0;
/// for _ in 0..32_768 {
///     refreshed += sca.on_activation(RowId(5_000)).total_rows();
/// }
/// // One full group of 1024 rows plus two victims.
/// assert_eq!(refreshed, 1026);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Sca {
    rows: u32,
    group_rows: u32,
    refresh_threshold: u32,
    counters: Vec<u32>,
    stats: SchemeStats,
}

impl Sca {
    /// Creates an SCA instance with `counters` uniformly assigned counters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `rows` is not a power of two, when
    /// `counters` is not a power of two dividing `rows`, or when the
    /// threshold is smaller than 2.
    pub fn new(rows: u32, counters: usize, refresh_threshold: u32) -> Result<Self, ConfigError> {
        if !rows.is_power_of_two() || rows < 8 {
            return Err(ConfigError::RowsNotPowerOfTwo(rows));
        }
        if !counters.is_power_of_two() || counters == 0 || counters as u64 > u64::from(rows) {
            return Err(ConfigError::CountersInvalid(counters));
        }
        if refresh_threshold < 2 {
            return Err(ConfigError::ThresholdTooSmall(refresh_threshold));
        }
        Ok(Sca {
            rows,
            group_rows: rows / counters as u32,
            refresh_threshold,
            counters: vec![0; counters],
            stats: SchemeStats::default(),
        })
    }

    /// Rows per counter group (`N/M`).
    pub fn group_rows(&self) -> u32 {
        self.group_rows
    }

    /// Current value of counter `idx`.
    pub fn counter_value(&self, idx: usize) -> Option<u32> {
        self.counters.get(idx).copied()
    }

    /// Resident heap bytes of the scheme's state (the counter array).
    pub fn heap_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<u32>()
    }

    /// Appends the scheme's mutable state (stats + counter values) for
    /// checkpointing.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.stats.save_state(out);
        out.push(self.counters.len() as u64);
        out.extend(self.counters.iter().map(|&c| u64::from(c)));
    }

    /// Restores state captured by [`Sca::save_state`] onto a freshly built
    /// instance of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] when the counter count does not match the
    /// configuration or a value is at or above the refresh threshold
    /// (counters reset on reaching it, so such a value cannot occur).
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.stats.restore_state(r)?;
        if r.next_word()? != self.counters.len() as u64 {
            return Err(StateError::Invalid("SCA counter count"));
        }
        for c in &mut self.counters {
            let v = r.next_u32()?;
            if v >= self.refresh_threshold {
                return Err(StateError::Invalid("SCA counter above threshold"));
            }
            *c = v;
        }
        Ok(())
    }
}

impl MitigationScheme for Sca {
    fn on_activation(&mut self, row: RowId) -> Refreshes {
        assert!(row.0 < self.rows, "row {row} out of range");
        self.stats.activations += 1;
        // One read + one write of the counter word.
        self.stats.sram_reads += 1;
        self.stats.sram_writes += 1;
        let group = (row.0 / self.group_rows) as usize;
        self.counters[group] += 1;
        if self.counters[group] >= self.refresh_threshold {
            self.counters[group] = 0;
            let lo = group as u32 * self.group_rows;
            let hi = lo + self.group_rows - 1;
            let range = RowRange::new(lo, hi).expand_victims(self.rows);
            self.stats.refresh_events += 1;
            self.stats.refreshed_rows += range.len();
            Refreshes::one(range)
        } else {
            Refreshes::none()
        }
    }

    fn on_epoch_end(&mut self) {
        // Rows were just auto-refreshed: counting restarts.
        self.counters.fill(0);
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn hardware(&self) -> HardwareProfile {
        HardwareProfile {
            kind: SchemeKind::Sca,
            counters: self.counters.len(),
            counter_bits: 32 - (self.refresh_threshold - 1).leading_zeros(),
            max_levels: 1,
            prng_bits_per_activation: 0,
            refresh_threshold: self.refresh_threshold,
        }
    }

    fn rows(&self) -> u32 {
        self.rows
    }

    fn name(&self) -> String {
        format!("SCA_{}", self.counters.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_refresh_covers_group_and_victims() {
        let mut sca = Sca::new(1024, 8, 16).unwrap();
        let mut got = None;
        for _ in 0..16 {
            let r = sca.on_activation(RowId(300));
            if !r.is_empty() {
                got = Some(r);
            }
        }
        let r: Vec<RowRange> = got.unwrap().into_iter().collect();
        // Group 2 covers rows 256..=383, plus victims 255 and 384.
        assert_eq!(r, vec![RowRange::new(255, 384)]);
        assert_eq!(sca.stats().refreshed_rows, 130);
    }

    #[test]
    fn counter_resets_after_refresh() {
        let mut sca = Sca::new(1024, 8, 16).unwrap();
        for _ in 0..16 {
            sca.on_activation(RowId(0));
        }
        assert_eq!(sca.counter_value(0), Some(0));
        for _ in 0..15 {
            assert!(sca.on_activation(RowId(0)).is_empty());
        }
        assert!(!sca.on_activation(RowId(0)).is_empty());
    }

    #[test]
    fn accesses_across_groups_do_not_interfere() {
        let mut sca = Sca::new(1024, 8, 16).unwrap();
        for i in 0..15 {
            sca.on_activation(RowId(i * 64 % 1024));
        }
        assert_eq!(sca.stats().refresh_events, 0);
    }

    #[test]
    fn epoch_end_resets_counters() {
        let mut sca = Sca::new(1024, 8, 16).unwrap();
        for _ in 0..15 {
            sca.on_activation(RowId(0));
        }
        sca.on_epoch_end();
        for _ in 0..15 {
            assert!(sca.on_activation(RowId(0)).is_empty());
        }
    }

    #[test]
    fn single_counter_per_row_acts_like_per_row_tracking() {
        // M = N: every row has its own counter (the expensive extreme).
        let mut sca = Sca::new(64, 64, 4).unwrap();
        for _ in 0..4 {
            sca.on_activation(RowId(10));
        }
        assert_eq!(sca.stats().refreshed_rows, 3); // row ± 1 victims
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Sca::new(1000, 8, 16).is_err());
        assert!(Sca::new(1024, 3, 16).is_err());
        assert!(Sca::new(1024, 8, 1).is_err());
        assert!(Sca::new(1024, 2048, 16).is_err());
    }

    #[test]
    fn hardware_profile_reports_sca() {
        let sca = Sca::new(65_536, 128, 32_768).unwrap();
        let hw = sca.hardware();
        assert_eq!(hw.kind, SchemeKind::Sca);
        assert_eq!(hw.counters, 128);
        assert_eq!(hw.counter_bits, 15);
        assert_eq!(sca.name(), "SCA_128");
    }
}
