//! PRA — Probabilistic Row Activation (§II, §III-A).

use crate::rng::{DecisionRng, IdealRng};
use crate::scheme::{HardwareProfile, MitigationScheme, Refreshes, SchemeKind};
use crate::state::{StateError, StateReader};
use crate::{ConfigError, RowId, RowRange, SchemeStats};

/// Probabilistic Row Activation: on every activation the controller draws
/// `k` random bits and, with probability `p`, refreshes the two rows
/// adjacent to the activated one (the aggressor itself is not refreshed).
///
/// The hardware draws a fixed number of bits per access (9 in the paper,
/// `~log2(1/p)` for `p ∈ {0.002, 0.003}`); the decision compares the drawn
/// word against `round(p · 2^k)`, so the effective probability is the
/// closest multiple of `2^-k`.
///
/// ```
/// use cat_core::{MitigationScheme, Pra, RowId};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let mut pra = Pra::new(65_536, 0.002, 7)?;
/// let mut refreshed = 0u64;
/// for _ in 0..100_000 {
///     refreshed += pra.on_activation(RowId(123)).total_rows();
/// }
/// // ~100_000 × (1/512) × 2 rows ≈ 390.
/// assert!(refreshed > 150 && refreshed < 800);
/// # Ok(())
/// # }
/// ```
pub struct Pra {
    rows: u32,
    probability: f64,
    bits: u32,
    accept_below: u32,
    rng: Box<dyn DecisionRng + Send>,
    stats: SchemeStats,
}

impl std::fmt::Debug for Pra {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pra")
            .field("rows", &self.rows)
            .field("probability", &self.probability)
            .field("bits", &self.bits)
            .field("accept_below", &self.accept_below)
            .finish_non_exhaustive()
    }
}

/// PRA's default PRNG word width (the paper's 9 bits).
pub const DEFAULT_PRNG_BITS: u32 = 9;

impl Pra {
    /// Creates a PRA instance with the paper's 9-bit draws and an ideal PRNG
    /// seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid row counts or probabilities
    /// outside `(0, 0.5]`.
    pub fn new(rows: u32, probability: f64, seed: u64) -> Result<Self, ConfigError> {
        Self::with_rng(
            rows,
            probability,
            DEFAULT_PRNG_BITS,
            Box::new(IdealRng::seeded(seed)),
        )
    }

    /// Creates a PRA instance with an explicit PRNG and word width — used to
    /// study LFSR-based PRA ([`crate::rng::Lfsr16`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid row counts, probabilities outside
    /// `(0, 0.5]`, or `bits` outside `1..=31`. Probabilities that round to 0
    /// at the given width are rounded up to one ulp (`2^-bits`).
    pub fn with_rng(
        rows: u32,
        probability: f64,
        bits: u32,
        rng: Box<dyn DecisionRng + Send>,
    ) -> Result<Self, ConfigError> {
        if !rows.is_power_of_two() || rows < 8 {
            return Err(ConfigError::RowsNotPowerOfTwo(rows));
        }
        if !(probability > 0.0 && probability <= 0.5 && (1..=31).contains(&bits)) {
            return Err(ConfigError::ThresholdTooSmall(0));
        }
        let scale = f64::from(1u32 << bits);
        let accept_below = ((probability * scale).round() as u32).max(1);
        Ok(Pra {
            rows,
            probability,
            bits,
            accept_below,
            rng,
            stats: SchemeStats::default(),
        })
    }

    /// The configured nominal probability `p`.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The effective probability after quantisation to `2^-bits`.
    pub fn effective_probability(&self) -> f64 {
        f64::from(self.accept_below) / f64::from(1u32 << self.bits)
    }

    /// Resident heap bytes of the scheme's state (the boxed PRNG).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(&*self.rng)
    }

    /// Appends the scheme's mutable state (stats + PRNG words) for
    /// checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Unsupported`] when the PRNG backend does not
    /// implement state capture.
    pub fn save_state(&self, out: &mut Vec<u64>) -> Result<(), StateError> {
        let Some(rng) = self.rng.save_state() else {
            return Err(StateError::Unsupported("PRA PRNG backend"));
        };
        self.stats.save_state(out);
        out.push(rng.len() as u64);
        out.extend(rng);
        Ok(())
    }

    /// Restores state captured by [`Pra::save_state`] onto a freshly built
    /// instance of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] when the word stream is malformed or the PRNG
    /// backend rejects the saved state.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.stats.restore_state(r)?;
        let len = r.next_u32()? as usize;
        if len > 16 || len > r.remaining() {
            return Err(StateError::Invalid("PRA PRNG state length"));
        }
        let mut words = Vec::with_capacity(len);
        for _ in 0..len {
            words.push(r.next_word()?);
        }
        if !self.rng.load_state(&words) {
            return Err(StateError::Invalid("PRA PRNG state rejected"));
        }
        Ok(())
    }
}

impl MitigationScheme for Pra {
    fn on_activation(&mut self, row: RowId) -> Refreshes {
        assert!(row.0 < self.rows, "row {row} out of range");
        self.stats.activations += 1;
        self.stats.prng_bits += u64::from(self.bits);
        let draw = self.rng.draw(self.bits);
        if draw < self.accept_below {
            self.stats.refresh_events += 1;
            let below = row.0.checked_sub(1).map(|r| RowRange::new(r, r));
            let above = (row.0 + 1 < self.rows).then(|| RowRange::new(row.0 + 1, row.0 + 1));
            let refreshes = match (below, above) {
                (Some(b), Some(a)) => Refreshes::pair(b, a),
                (Some(b), None) => Refreshes::one(b),
                (None, Some(a)) => Refreshes::one(a),
                (None, None) => Refreshes::none(),
            };
            self.stats.refreshed_rows += refreshes.total_rows();
            refreshes
        } else {
            Refreshes::none()
        }
    }

    fn on_epoch_end(&mut self) {
        // Stateless per-access decisions: nothing to reset.
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn hardware(&self) -> HardwareProfile {
        HardwareProfile {
            kind: SchemeKind::Pra,
            counters: 0,
            counter_bits: 0,
            max_levels: 1,
            prng_bits_per_activation: self.bits,
            refresh_threshold: 0,
        }
    }

    fn rows(&self) -> u32 {
        self.rows
    }

    fn name(&self) -> String {
        format!("PRA_{}", self.probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Lfsr16;

    #[test]
    fn refreshes_both_neighbours() {
        // p = 0.5 with 1 bit: refresh fires on draw 0 — about half the time.
        let mut pra = Pra::with_rng(1024, 0.5, 1, Box::new(IdealRng::seeded(1))).unwrap();
        let mut fired = 0;
        for _ in 0..1000 {
            let r = pra.on_activation(RowId(100));
            if !r.is_empty() {
                fired += 1;
                let v: Vec<RowRange> = r.into_iter().collect();
                assert_eq!(v, vec![RowRange::new(99, 99), RowRange::new(101, 101)]);
            }
        }
        assert!(fired > 350 && fired < 650, "fired {fired} of 1000");
    }

    #[test]
    fn edge_rows_have_one_victim() {
        let mut pra = Pra::with_rng(1024, 0.5, 1, Box::new(IdealRng::seeded(2))).unwrap();
        for _ in 0..64 {
            let r = pra.on_activation(RowId(0));
            if !r.is_empty() {
                assert_eq!(r.total_rows(), 1);
                let v: Vec<RowRange> = r.into_iter().collect();
                assert_eq!(v, vec![RowRange::new(1, 1)]);
                return;
            }
        }
        panic!("p = 0.5 must fire within 64 draws");
    }

    #[test]
    fn effective_probability_quantises() {
        let pra = Pra::new(1024, 0.002, 3).unwrap();
        // round(0.002 × 512) = 1 ⇒ 1/512.
        assert!((pra.effective_probability() - 1.0 / 512.0).abs() < 1e-12);
        let pra = Pra::new(1024, 0.005, 3).unwrap();
        // round(0.005 × 512) = 3 ⇒ 3/512.
        assert!((pra.effective_probability() - 3.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn prng_bit_accounting() {
        let mut pra = Pra::new(1024, 0.002, 3).unwrap();
        for _ in 0..100 {
            pra.on_activation(RowId(5));
        }
        assert_eq!(pra.stats().prng_bits, 900);
        assert_eq!(pra.hardware().prng_bits_per_activation, 9);
    }

    #[test]
    fn works_with_lfsr_backend() {
        let mut pra = Pra::with_rng(1024, 0.01, 9, Box::new(Lfsr16::new(0xBEEF))).unwrap();
        let mut fired = 0u32;
        for _ in 0..65_535 {
            if !pra.on_activation(RowId(512)).is_empty() {
                fired += 1;
            }
        }
        // round(0.01 × 512) = 5 ⇒ expect 5/512 × 65535 ≈ 640 fires; the LFSR
        // visits every 9-bit window of its period, so the count is close to
        // the expectation by construction.
        assert!(fired > 400 && fired < 900, "fired {fired}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Pra::new(1000, 0.002, 3).is_err());
        assert!(Pra::new(1024, 0.0, 3).is_err());
        assert!(Pra::new(1024, 0.7, 3).is_err());
        assert!(Pra::with_rng(1024, 0.01, 0, Box::new(IdealRng::seeded(0))).is_err());
    }

    #[test]
    fn name_and_debug() {
        let pra = Pra::new(1024, 0.002, 3).unwrap();
        assert_eq!(pra.name(), "PRA_0.002");
        assert!(format!("{pra:?}").contains("Pra"));
    }
}
