//! PRCAT — Periodically Reset CAT (§V-A).

use crate::scheme::{HardwareProfile, MitigationScheme, Refreshes, SchemeKind};
use crate::{CatConfig, CatTree, RowId, SchemeStats};

/// Periodically Reset CAT: the adaptive tree of [`CatTree`] rebuilt from its
/// pre-split state at every auto-refresh epoch (64 ms for DDRx).
///
/// Rebuilding keeps counting exact for devices with burst refresh (§V-A) at
/// the cost of re-learning the access pattern every epoch: early in an epoch
/// the counters are coarse, so a hot row drags whole coarse groups into the
/// refresh, which is exactly the inefficiency [`crate::Drcat`] removes.
///
/// ```
/// use cat_core::{CatConfig, MitigationScheme, Prcat, RowId};
/// # fn main() -> Result<(), cat_core::ConfigError> {
/// let mut p = Prcat::new(CatConfig::new(65_536, 64, 11, 32_768)?);
/// p.on_activation(RowId(7));
/// p.on_epoch_end(); // tree rebuilt, counter values forgotten
/// assert_eq!(p.tree().active_counters(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Prcat {
    tree: CatTree,
}

impl Prcat {
    /// Creates a PRCAT instance for the given configuration.
    pub fn new(config: CatConfig) -> Self {
        Prcat {
            tree: CatTree::new(config),
        }
    }

    /// Read access to the underlying tree (shape inspection, diagnostics).
    pub fn tree(&self) -> &CatTree {
        &self.tree
    }

    /// Resident heap bytes of the scheme's state (the tree slabs).
    pub fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes()
    }

    /// Appends the scheme's mutable state (the tree) for checkpointing.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.tree.save_state(out);
    }

    /// Restores state captured by [`Prcat::save_state`] onto a freshly
    /// built instance of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StateError`] when the tree state is malformed.
    pub fn restore_state(
        &mut self,
        r: &mut crate::state::StateReader<'_>,
    ) -> Result<(), crate::StateError> {
        self.tree.restore_state(r)
    }
}

impl MitigationScheme for Prcat {
    fn on_activation(&mut self, row: RowId) -> Refreshes {
        match self.tree.record(row).refresh {
            Some(range) => Refreshes::one(range),
            None => Refreshes::none(),
        }
    }

    fn on_epoch_end(&mut self) {
        self.tree.reset();
    }

    fn stats(&self) -> &SchemeStats {
        self.tree.stats()
    }

    fn hardware(&self) -> HardwareProfile {
        self.tree.hardware_as(SchemeKind::Prcat)
    }

    fn rows(&self) -> u32 {
        self.tree.config().rows()
    }

    fn name(&self) -> String {
        format!("PRCAT_{}", self.tree.config().counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CatConfig {
        CatConfig::new(1024, 8, 6, 256).unwrap()
    }

    #[test]
    fn epoch_reset_rebuilds_the_tree() {
        let mut p = Prcat::new(cfg());
        for _ in 0..200 {
            p.on_activation(RowId(3));
        }
        assert!(p.tree().shape().max_depth() > 2);
        p.on_epoch_end();
        assert_eq!(p.tree().shape().depth_profile(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn stats_survive_epochs() {
        let mut p = Prcat::new(cfg());
        for _ in 0..100 {
            p.on_activation(RowId(3));
        }
        p.on_epoch_end();
        for _ in 0..100 {
            p.on_activation(RowId(3));
        }
        assert_eq!(p.stats().activations, 200);
    }

    #[test]
    fn re_learning_costs_coarse_refreshes() {
        // With the epoch reset, a persistently hot row is re-discovered from
        // coarse groups each epoch, refreshing more rows overall than a
        // scheme that retains its shape (see Drcat tests for the contrast).
        let mut p = Prcat::new(cfg());
        let mut rows_epoch0 = 0u64;
        for _ in 0..1024 {
            rows_epoch0 += p.on_activation(RowId(70)).total_rows();
        }
        assert!(rows_epoch0 > 0);
        let profile = p.hardware();
        assert_eq!(profile.kind, crate::SchemeKind::Prcat);
        assert_eq!(profile.counters, 8);
        assert_eq!(p.name(), "PRCAT_8");
    }
}
