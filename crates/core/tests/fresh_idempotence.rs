//! Fresh-idempotence: `on_epoch_end` applied to a *fresh* scheme instance
//! is a bit-exact no-op — state and stats stay identical to a fresh build.
//!
//! This is the invariant that makes the engine's lazy bank materialization
//! (`DESIGN.md §10`) sound: a bank first touched in epoch `k` can be built
//! on touch instead of at construction, because the `k` epoch boundaries
//! it "missed" would not have changed it. Every scheme upholds it by
//! construction — PRCAT rebuilds to the pre-split shape, DRCAT zeroes
//! counters it never incremented, SCA/CC clear already-zero counters,
//! Space-Saving empties an empty table, PRA's epoch hook is stateless —
//! and this test keeps future schemes honest.

use cat_core::{RowId, SchemeSpec};

const ROWS: u32 = 8192;

fn all_specs() -> Vec<SchemeSpec> {
    [
        "pra:0.002",
        "sca:64:512",
        "prcat:64:11:512",
        "drcat:64:11:512",
        "cc:256:4:512",
        "ss:64:512",
    ]
    .iter()
    .map(|s| s.parse().expect("valid spec"))
    .collect()
}

#[test]
fn epoch_end_on_fresh_instance_is_identity() {
    for spec in all_specs() {
        // Two bank indices so PRA's per-bank seed derivation is covered.
        for bank in [0u32, 7] {
            let mut idled = spec.build_instance(ROWS, bank).expect("buildable");
            let mut fresh = spec.build_instance(ROWS, bank).expect("buildable");
            for _ in 0..5 {
                idled.on_epoch_end();
            }
            assert_eq!(idled.stats(), fresh.stats(), "{spec} bank {bank}: stats");

            // The instances must stay indistinguishable under load:
            // identical refresh decisions on every subsequent activation.
            for i in 0..50_000u32 {
                let row = RowId(if i.is_multiple_of(4) { 1_000 } else { i % ROWS });
                assert_eq!(
                    idled.on_activation(row),
                    fresh.on_activation(row),
                    "{spec} bank {bank}: diverged at access {i}"
                );
            }
            assert_eq!(
                idled.stats(),
                fresh.stats(),
                "{spec} bank {bank}: stats after load"
            );
            assert!(
                idled.stats().activations == 50_000,
                "{spec}: trace must have run"
            );
        }
    }
}
